"""Baseline protocol tests: sequencer, token ring, point-to-point mesh."""

import pytest

from repro.baselines import (
    FTMPProtocol,
    PtpMeshProtocol,
    SequencerProtocol,
    TokenRingProtocol,
    pack_frame,
    unpack_frame,
)
from repro.simnet import Network, lan

ORDERED = [SequencerProtocol, TokenRingProtocol, FTMPProtocol]
ALL = ORDERED + [PtpMeshProtocol]


def run_protocol(cls, pids=(1, 2, 3), msgs=10, seed=1, duration=1.0):
    net = Network(lan(), seed=seed)
    delivered = {p: [] for p in pids}
    protos = {
        p: cls(net.endpoint(p), 700, tuple(pids), delivered[p].append) for p in pids
    }
    for i in range(msgs):
        for p in pids:
            net.scheduler.at(0.001 * i + 0.0001 * p, protos[p].multicast,
                             f"{p}:{i}".encode())
    net.run_for(duration)
    return net, protos, delivered


def test_frame_round_trip():
    frame = pack_frame(2, 7, 42, 99, b"body")
    assert unpack_frame(frame) == (2, 7, 42, 99, b"body")


def test_frame_rejects_garbage():
    with pytest.raises(ValueError):
        unpack_frame(b"xx")


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
def test_all_messages_delivered(cls):
    _net, _protos, delivered = run_protocol(cls)
    for p in (1, 2, 3):
        assert len(delivered[p]) == 30
        assert {d.payload for d in delivered[p]} == {
            f"{s}:{i}".encode() for s in (1, 2, 3) for i in range(10)
        }


@pytest.mark.parametrize("cls", ORDERED, ids=lambda c: c.name)
def test_total_order_agreement(cls):
    _net, _protos, delivered = run_protocol(cls)
    orders = [[(d.source, d.payload) for d in delivered[p]] for p in (1, 2, 3)]
    assert orders[0] == orders[1] == orders[2]


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
def test_source_fifo(cls):
    _net, _protos, delivered = run_protocol(cls)
    for p in (1, 2, 3):
        for s in (1, 2, 3):
            own = [d.payload for d in delivered[p] if d.source == s]
            assert own == [f"{s}:{i}".encode() for i in range(10)]


def test_ptp_mesh_makes_no_total_order_promise():
    # informational: with jitter, cross-source orders typically diverge;
    # the protocol's contract is only per-source FIFO (checked above)
    _net, protos, _delivered = run_protocol(PtpMeshProtocol)
    assert protos[1].name == "ptp-mesh"


def test_sequencer_is_lowest_member():
    net = Network(lan(), seed=0)
    protos = {
        p: SequencerProtocol(net.endpoint(p), 700, (3, 1, 2), lambda d: None)
        for p in (1, 2, 3)
    }
    assert protos[1].is_sequencer
    assert not protos[2].is_sequencer


def test_sequencer_orders_only_once_per_message():
    net, protos, delivered = run_protocol(SequencerProtocol, msgs=5)
    # one ORDER per DATA
    assert protos[1].control_sent == 15


def test_token_ring_latency_includes_token_wait():
    # a message sent right after the token departs waits ~a full rotation
    net = Network(lan(), seed=0)
    delivered = {p: [] for p in (1, 2, 3)}
    protos = {
        p: TokenRingProtocol(net.endpoint(p), 700, (1, 2, 3), delivered[p].append)
        for p in (1, 2, 3)
    }
    net.run_for(0.01)  # token circulating
    t0 = net.scheduler.now
    protos[2].multicast(b"probe")
    net.run_for(0.05)
    arrival = [d for d in delivered[1] if d.payload == b"probe"][0]
    assert arrival.delivered_at > t0  # waited for the token, then delivered
    assert len(delivered[1]) == 1


def test_token_ring_counts_control_traffic():
    net, protos, _d = run_protocol(TokenRingProtocol, msgs=2, duration=0.5)
    # the token keeps rotating even when idle: control messages accumulate
    assert sum(p.control_sent for p in protos.values()) > 10


def test_ftmp_wrapper_exposes_stack():
    net, protos, delivered = run_protocol(FTMPProtocol, msgs=3)
    assert protos[1].stack.group(700) is not None
    assert protos[1].messages_sent == 3
