"""Trans-style causal broadcast baseline tests."""

from repro.baselines import CausalProtocol
from repro.simnet import Network, lan


def build(pids=(1, 2, 3), seed=1):
    net = Network(lan(), seed=seed)
    delivered = {p: [] for p in pids}
    protos = {
        p: CausalProtocol(net.endpoint(p), 700, tuple(pids), delivered[p].append)
        for p in pids
    }
    return net, protos, delivered


def test_all_messages_delivered():
    net, protos, delivered = build()
    for i in range(10):
        for p in (1, 2, 3):
            net.scheduler.at(0.001 * i, protos[p].multicast, f"{p}:{i}".encode())
    net.run_for(1.0)
    for p in (1, 2, 3):
        assert len(delivered[p]) == 30
        assert protos[p].held_back() == 0


def test_source_fifo_is_a_special_case_of_causal():
    net, protos, delivered = build()
    for i in range(10):
        net.scheduler.at(0.001 * i, protos[1].multicast, f"m{i}".encode())
    net.run_for(0.5)
    assert [d.payload for d in delivered[2]] == [f"m{i}".encode() for i in range(10)]


def test_causal_request_reply_ordering():
    # node 2 replies only after delivering node 1's request: every member
    # must deliver request before reply (causality), even with jitter
    net, protos, delivered = build(seed=9)

    replied = []

    def deliver_and_reply(d):
        delivered[2].append(d)
        if d.payload == b"request" and not replied:
            replied.append(True)
            protos[2].multicast(b"reply")

    protos[2].on_deliver = deliver_and_reply
    protos[1].multicast(b"request")
    net.run_for(0.5)
    for p in (1, 3):
        payloads = [d.payload for d in delivered[p]]
        assert payloads.index(b"request") < payloads.index(b"reply")


def test_transitive_causality_chain():
    net, protos, delivered = build()

    # 1 -> (2 observes, sends) -> (3 observes, sends): chain a<b<c everywhere
    def chain_2(d):
        delivered[2].append(d)
        if d.payload == b"a":
            protos[2].multicast(b"b")

    def chain_3(d):
        delivered[3].append(d)
        if d.payload == b"b":
            protos[3].multicast(b"c")

    protos[2].on_deliver = chain_2
    protos[3].on_deliver = chain_3
    protos[1].multicast(b"a")
    net.run_for(0.5)
    for p in (1, 2, 3):
        payloads = [d.payload for d in delivered[p]]
        assert payloads.index(b"a") < payloads.index(b"b") < payloads.index(b"c")


def test_concurrent_messages_may_interleave_differently():
    # causal order makes NO promise about concurrent messages; this test
    # pins the (weaker) contract: same multiset, per-source FIFO
    net, protos, delivered = build(seed=13)
    for i in range(20):
        for p in (1, 2, 3):
            net.scheduler.at(0.0007 * i + 0.00003 * p, protos[p].multicast,
                             f"{p}:{i}".encode())
    net.run_for(1.0)
    sets = [sorted(d.payload for d in delivered[p]) for p in (1, 2, 3)]
    assert sets[0] == sets[1] == sets[2]
    for p in (1, 2, 3):
        for s in (1, 2, 3):
            own = [d.payload for d in delivered[p] if d.source == s]
            assert own == [f"{s}:{i}".encode() for i in range(20)]
