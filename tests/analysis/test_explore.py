"""The schedule explorer end to end: record→replay, shrinking, self-test.

Cluster-level guarantees of the DST subsystem:

* ``FifoPolicy`` runs are byte-identical to policy-free runs — same
  delivery orders, same stats counters, same packet trace;
* any decision list is a valid schedule and replays deterministically
  (hypothesis, over a scaled-down churn plan for speed);
* the shrinker is monotone, bounded, and never accepts a reduction that
  loses the target violation key (unit-tested against fake runners —
  no simulation needed);
* the injected-ordering-bug self-test catches, shrinks to a minimal
  artifact, and that artifact replays red with the corruption and green
  without it.
"""

from __future__ import annotations

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.chaos import default_chaos_config, execute_plan
from repro.analysis.explore import (
    _with_timeline,
    explore,
    replay_explore_artifact,
    run_schedule,
    shrink_failure,
)
from repro.replication.chaos import ChaosPlan
from repro.simnet import FifoPolicy, PCTPolicy, ReplayPolicy


def _small_plan(scenario="churn", seed=0):
    """A chaos plan with the traffic window scaled down for test speed."""
    return _with_timeline(ChaosPlan.generate(seed, scenario), 0.25)


def _fingerprint(plan, policy):
    """Everything the oracles can see, plus the stats counters."""
    result, decisions, cluster, _inj = run_schedule(
        plan, default_chaos_config(), policy, keep_cluster=True)
    orders = {pid: tuple(lst.delivery_order(cluster.group))
              for pid, lst in cluster.listeners.items()}
    snapshots = {pid: cluster.stacks[pid].snapshot() for pid in cluster.stacks}
    trace = (cluster.net.trace.sends, cluster.net.trace.deliveries,
             cluster.net.trace.drops)
    cluster.stop()
    return result.ok, orders, snapshots, trace, decisions


# ----------------------------------------------------------------------
# FIFO identity + record→replay at cluster level
# ----------------------------------------------------------------------
def test_fifo_policy_run_is_byte_identical_to_policy_free_run():
    plan = _small_plan()
    cfg = default_chaos_config()
    base_result, base_cluster, _ = execute_plan(plan, cfg)
    base = ({pid: tuple(lst.delivery_order(base_cluster.group))
             for pid, lst in base_cluster.listeners.items()},
            {pid: base_cluster.stacks[pid].snapshot()
             for pid in base_cluster.stacks},
            (base_cluster.net.trace.sends, base_cluster.net.trace.deliveries,
             base_cluster.net.trace.drops))
    base_cluster.stop()

    ok, orders, snapshots, trace, decisions = _fingerprint(plan, FifoPolicy())
    assert base == (orders, snapshots, trace)
    assert ok and decisions and all(d == 0 for d in decisions)


def test_recorded_pct_schedule_replays_byte_exactly():
    plan = _small_plan()
    a = _fingerprint(plan, PCTPolicy(5, depth=3))
    b = _fingerprint(plan, ReplayPolicy(a[4]))
    assert a == b  # orders, snapshots, trace AND the re-recorded log


def test_pct_schedule_actually_permutes_the_run():
    plan = _small_plan()
    fifo = _fingerprint(plan, FifoPolicy())
    pct = _fingerprint(plan, PCTPolicy(5, depth=3))
    assert pct[4] != fifo[4]  # non-FIFO choices were actually taken
    assert pct[0] and fifo[0]  # and the protocol survived both


@settings(max_examples=6, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), max_size=60))
def test_any_schedule_is_deterministic_at_cluster_level(decisions):
    plan = _small_plan()
    a = _fingerprint(plan, ReplayPolicy(decisions))
    b = _fingerprint(plan, ReplayPolicy(decisions))
    assert a == b


def test_same_scenario_seed_schedule_runs_twice_identically():
    # satellite: every nondeterminism source is seed-derived — two runs of
    # the same (scenario, plan seed, schedule) triple diff clean, traces
    # and recovery counters included
    for scenario in ("churn", "partition"):
        plan = _small_plan(scenario)
        a = _fingerprint(plan, PCTPolicy(9, depth=3))
        b = _fingerprint(plan, PCTPolicy(9, depth=3))
        assert a == b


# ----------------------------------------------------------------------
# shrinker (fake runners: no simulation involved)
# ----------------------------------------------------------------------
def _plan_with_events(n=6):
    plan = ChaosPlan.generate(0, "combo")
    assert len(plan.events) >= 2
    return plan


def test_shrinker_minimizes_and_stays_monotone():
    plan = _plan_with_events()
    loss_kinds = [e.kind for e in plan.events]
    assert "loss" in loss_kinds

    def still_fails(decisions, p):
        # "bug" needs a 3 somewhere in the schedule and at least one loss
        # event in the timeline
        return 3 in decisions and any(e.kind == "loss" for e in p.events)

    decisions = [0, 1, 3, 0, 2, 3, 1]
    min_plan, min_decisions, stats = shrink_failure(
        plan, decisions, still_fails, budget=100)
    assert min_decisions == [3]
    assert [e.kind for e in min_plan.events] == ["loss"]
    assert stats.replayed
    assert stats.final_decisions <= stats.original_decisions
    assert stats.final_events <= stats.original_events
    assert still_fails(min_decisions, min_plan)


def test_shrinker_respects_budget_and_terminates():
    plan = _plan_with_events()
    calls = 0

    def still_fails(decisions, p):
        nonlocal calls
        calls += 1
        return True  # everything "fails": worst case for the search

    budget = 17
    min_plan, min_decisions, stats = shrink_failure(
        plan, list(range(50)), still_fails, budget=budget)
    assert calls <= budget
    assert stats.runs <= budget
    assert min_decisions == []  # all-failing shrinks to the empty schedule


def test_shrinker_gives_up_on_unreproducible_failures():
    plan = _plan_with_events()
    calls = 0

    def never_fails(decisions, p):
        nonlocal calls
        calls += 1
        return False

    min_plan, min_decisions, stats = shrink_failure(
        plan, [1, 2, 3], never_fails, budget=50)
    assert not stats.replayed
    assert calls == 1  # one replay check, then give up
    assert min_decisions == [1, 2, 3]  # returned unshrunk
    assert len(min_plan.events) == len(plan.events)


def test_shrinker_treats_runner_exceptions_as_not_failing():
    plan = _plan_with_events()

    def touchy(decisions, p):
        if not p.events:
            raise RuntimeError("degenerate run")
        return 2 in decisions

    min_plan, min_decisions, stats = shrink_failure(
        plan, [2, 0, 2], touchy, budget=60)
    assert min_decisions == [2]
    assert len(min_plan.events) >= 1  # the raising reduction was rejected


def test_timeline_shrink_preserves_cooldown():
    plan = ChaosPlan.generate(0, "churn")
    scaled = _with_timeline(plan, 0.5)
    assert scaled.traffic_stop < plan.traffic_stop
    cooldown = plan.duration - plan.traffic_stop
    assert abs((scaled.duration - scaled.traffic_stop) - cooldown) < 1e-9
    assert all(e.at < scaled.traffic_stop and e.stop <= scaled.traffic_stop
               for e in scaled.events)


# ----------------------------------------------------------------------
# explorer self-test: catch, shrink, write, replay
# ----------------------------------------------------------------------
def test_injected_bug_is_caught_shrunk_and_replayable(tmp_path):
    outcomes = explore(
        scenarios=("churn",), plan_seeds=(0,), n_schedules=1,
        policy_kind="pct", depth=3, artifact_dir=str(tmp_path),
        inject_ordering_bug=True, shrink_budget=30, verbose=False,
    )
    (outcome,) = outcomes
    assert not outcome.ok
    assert any(v.oracle == "total-order" for v in outcome.violations)
    assert outcome.artifact_path and os.path.exists(outcome.artifact_path)
    assert outcome.shrink is not None and outcome.shrink.replayed
    # the injected corruption is schedule-independent, so the shrinker
    # must drive the schedule all the way down to pure FIFO
    assert outcome.shrink.final_decisions == 0
    assert outcome.shrink.final_events <= outcome.shrink.original_events
    assert outcome.shrink.runs <= 30

    with open(outcome.artifact_path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert artifact["kind"] == "explore"
    assert artifact["schedule"]["decisions"] == []
    assert artifact["inject_ordering_bug"] is True
    assert any(v["key"][0] == "total-order" for v in artifact["violations"])

    # red with the corruption, green against "fixed" code
    red, _ = replay_explore_artifact(outcome.artifact_path)
    assert any(v.oracle == "total-order" for v in red.violations)
    green, _ = replay_explore_artifact(outcome.artifact_path,
                                       inject_override=False)
    assert green.ok


def test_clean_exploration_smoke(tmp_path):
    outcomes = explore(
        scenarios=("churn",), plan_seeds=(0,), n_schedules=2,
        policy_kind="random", depth=3, artifact_dir=str(tmp_path),
        verbose=False,
    )
    (outcome,) = outcomes
    assert outcome.ok, outcome.violations
    assert outcome.schedules_run == 2
    assert outcome.contested_choices > 0
    assert outcome.deliveries > 0
    assert not os.listdir(tmp_path)  # no artifacts for clean runs
