"""Harness and workload generator tests."""

from repro.analysis import PoissonWorkload, TimedWorkload, make_cluster
from repro.analysis.workload import RequestReplyDriver
from repro.orb import ORB, IIOPNetwork
from repro.simnet import Scheduler


def test_make_cluster_builds_group_everywhere():
    c = make_cluster((1, 2, 3))
    for pid in (1, 2, 3):
        assert c.stacks[pid].group(1) is not None
        assert c.stacks[pid].group(1).membership == (1, 2, 3)


def test_timed_workload_latency_measurement():
    c = make_cluster((1, 2, 3))
    w = TimedWorkload(c)
    for i in range(5):
        w.send_at(0.01 * (i + 1), sender=1)
    c.run_for(0.5)
    lats = w.latencies(receivers=(2, 3))
    assert len(lats) == 10  # 5 sends x 2 receivers
    assert all(0 < latency < 0.1 for latency in lats)
    assert w.delivered_fraction((2, 3)) == 1.0


def test_timed_workload_uniform_schedule():
    c = make_cluster((1, 2))
    w = TimedWorkload(c)
    w.uniform(senders=(1, 2), start=0.01, stop=0.05, interval=0.01)
    c.run_for(0.5)
    assert len(w.sends) == 8  # 4 rounds x 2 senders
    assert len(w.latencies((1, 2))) == 16


def test_timed_workload_payload_size():
    c = make_cluster((1, 2))
    w = TimedWorkload(c)
    w.send_at(0.01, 1, size=128)
    c.run_for(0.2)
    assert len(w.sends[0].payload) == 128


def test_poisson_workload_is_seeded():
    c1 = make_cluster((1, 2))
    w1 = PoissonWorkload(c1)
    w1.poisson((1,), rate_per_sender=500, start=0.0, stop=0.1, seed=7)
    c2 = make_cluster((1, 2))
    w2 = PoissonWorkload(c2)
    w2.poisson((1,), rate_per_sender=500, start=0.0, stop=0.1, seed=7)
    c1.run_for(0.5)
    c2.run_for(0.5)
    assert [r.sent_at for r in w1.sends] == [r.sent_at for r in w2.sends]
    assert len(w1.sends) > 10


def test_cluster_assert_agreement_detects_divergence():
    c = make_cluster((1, 2))
    c.stacks[1].multicast(1, b"x")
    c.run_for(0.3)
    c.assert_agreement()  # identical -> fine
    # forge divergence
    c.listeners[1].deliveries.clear()
    import pytest

    with pytest.raises(AssertionError):
        c.assert_agreement()


class Echo:
    def ping(self, i):
        return i


def test_request_reply_driver_closed_loop():
    sched = Scheduler()
    iiop = IIOPNetwork(sched)
    server = ORB(1, sched)
    client = ORB(2, sched)
    server.attach_iiop(iiop)
    client.attach_iiop(iiop)
    ref = server.activate(b"echo", Echo())
    finished = []
    driver = RequestReplyDriver(
        orb=client,
        proxy=client.proxy(ref),
        operation="ping",
        make_args=lambda i: (i,),
        requests=10,
        now_fn=lambda: sched.now,
        on_done=finished.append,
    )
    driver.start()
    sched.run(max_events=100_000)
    assert driver.completed == 10
    assert driver.results == list(range(10))
    assert not driver.errors
    assert finished == [driver]
    assert all(lat > 0 for lat in driver.latencies)


def test_request_reply_driver_think_time():
    sched = Scheduler()
    iiop = IIOPNetwork(sched)
    server = ORB(1, sched)
    client = ORB(2, sched)
    server.attach_iiop(iiop)
    client.attach_iiop(iiop)
    ref = server.activate(b"echo", Echo())
    driver = RequestReplyDriver(
        orb=client,
        proxy=client.proxy(ref),
        operation="ping",
        make_args=lambda i: (i,),
        requests=3,
        now_fn=lambda: sched.now,
        think_time=0.050,
    )
    driver.start()
    sched.run(max_events=100_000)
    assert driver.completed == 3
    assert sched.now >= 0.100  # two think pauses elapsed
