"""Statistics and reporting helpers."""

import pytest

from repro.analysis import Table, format_series, percentile, summarize


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_median_even(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        xs = list(range(101))
        assert percentile(xs, 0) == 0
        assert percentile(xs, 100) == 100
        assert percentile(xs, 50) == 50

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_unsorted_input(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.p50 == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_scaled(self):
        s = summarize([0.001, 0.002]).scaled(1e3)
        assert s.mean == 1.5
        assert s.count == 2

    def test_str_format(self):
        text = str(summarize([0.5]))
        assert "n=1" in text and "mean=0.5" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("a", 1)
        t.add_row("longer-name", 2.5)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(0.000123456)
        assert "0.0001235" in t.render()

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_table_renders_headers(self):
        t = Table(["only"])
        assert "only" in t.render()


def test_format_series():
    out = format_series("lat vs hb", [1, 2], [0.1, 0.2], "hb", "lat")
    assert "lat vs hb" in out
    assert "hb" in out and "lat" in out
    assert "0.1" in out and "2" in out
