"""CLI experiment-runner tests."""

import os
import pathlib
import subprocess
import sys

from repro.analysis.cli import EXPERIMENTS, main

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_unknown_experiment_rejected(capsys):
    assert main(["run", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_every_registered_file_exists():
    import pathlib

    bench = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    for key, (fname, _desc) in EXPERIMENTS.items():
        assert (bench / fname).is_file(), f"{key} -> {fname} missing"


def test_run_one_experiment_subprocess():
    # F2 is the fastest experiment; run it through the real CLI.  The
    # child needs repro importable regardless of how pytest itself found
    # it (pythonpath ini option vs. an exported PYTHONPATH).
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH", "")) if p
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", "run", "F2"],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
