"""Packet trace / accounting tests."""

from repro.simnet import Network, NetworkTrace, lan


def test_keep_packets_records_details():
    net = Network(lan(), seed=0, keep_packets=True)
    eps = {}
    for pid in (1, 2, 3):
        ep = net.endpoint(pid)
        ep.set_receiver(lambda d: None)
        ep.join(100)
        eps[pid] = ep
    eps[1].multicast(100, b"abcd")
    net.run_for(0.01)
    (rec,) = net.trace.packets
    assert rec.src == 1
    assert rec.group == 100
    assert rec.size == 4
    assert rec.delivered_to == 3
    assert rec.dropped_at == 0


def test_reset_clears_counters_keeps_mode():
    t = NetworkTrace(keep_packets=True)
    t.record_send(0.0, 1, 100, 10, 2, 1)
    assert t.sends == 1 and len(t.packets) == 1
    t.reset()
    assert t.sends == 0 and t.packets == [] and t.keep_packets


def test_loss_fraction_and_summary():
    t = NetworkTrace()
    t.record_send(0.0, 1, 100, 10, 3, 1)
    assert abs(t.loss_fraction() - 0.25) < 1e-9
    s = t.summary()
    assert "sends=1" in s and "drops=1" in s


def test_sends_by_source():
    t = NetworkTrace()
    t.record_send(0.0, 1, 100, 10, 1, 0)
    t.record_send(0.0, 1, 100, 10, 1, 0)
    t.record_send(0.0, 2, 100, 10, 1, 0)
    assert t.sends_by_source[1] == 2
    assert t.sends_by_source[2] == 1
