"""Unit tests for the simulated multicast network."""

from repro.simnet import LinkModel, Network, Topology, lan, two_site_wan


def collect(net: Network, pid: int):
    inbox = []
    ep = net.endpoint(pid)
    ep.set_receiver(inbox.append)
    return ep, inbox


def test_multicast_reaches_all_members_including_sender():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2, 3):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    eps[1].multicast(100, b"hello")
    net.run_for(0.01)
    assert boxes[1] == [b"hello"]  # IP multicast loopback
    assert boxes[2] == [b"hello"]
    assert boxes[3] == [b"hello"]


def test_non_members_do_not_receive():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
    eps[1].join(100)
    eps[1].multicast(100, b"x")
    net.run_for(0.01)
    assert boxes[2] == []


def test_sender_need_not_be_member():
    # FTMP's ConnectRequest relies on open-group sends.
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
    eps[2].join(100)
    eps[1].multicast(100, b"req")
    net.run_for(0.01)
    assert boxes[2] == [b"req"]
    assert boxes[1] == []  # not joined: no loopback


def test_leave_stops_delivery():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    eps[2].leave(100)
    eps[1].multicast(100, b"x")
    net.run_for(0.01)
    assert boxes[2] == []


def test_loss_drops_packets_deterministically():
    topo = Topology(default=LinkModel(latency=0.001, jitter=0, loss=1.0))
    net = Network(topo, seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    eps[1].multicast(100, b"x")
    net.run_for(0.01)
    assert boxes[2] == []  # lossy link
    assert boxes[1] == [b"x"]  # loopback never drops
    assert net.trace.drops == 1


def test_crashed_node_neither_sends_nor_receives():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    net.crash(2)
    eps[1].multicast(100, b"a")
    eps[2].multicast(100, b"b")
    net.run_for(0.01)
    assert boxes[2] == []
    assert boxes[1] == [b"a"]  # own loopback only; node 2 sent nothing


def test_crash_blocks_in_flight_delivery():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    eps[1].multicast(100, b"x")
    net.crash(2)  # crash before the propagation delay elapses
    net.run_for(0.01)
    assert boxes[2] == []


def test_partition_blocks_cross_component_traffic():
    net = Network(lan(), seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2, 3):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    net.partition({1, 2}, {3})
    eps[1].multicast(100, b"x")
    net.run_for(0.01)
    assert boxes[2] == [b"x"]
    assert boxes[3] == []
    net.heal()
    eps[1].multicast(100, b"y")
    net.run_for(0.01)
    assert boxes[3] == [b"y"]


def test_trace_counters():
    net = Network(lan(), seed=0)
    eps = {}
    for pid in (1, 2, 3):
        eps[pid], _ = collect(net, pid)
        eps[pid].join(100)
    eps[1].multicast(100, b"abcd")
    net.run_for(0.01)
    assert net.trace.sends == 1
    assert net.trace.deliveries == 3
    assert net.trace.bytes_sent == 4
    assert net.trace.bytes_delivered == 12


def test_two_site_wan_latency_split():
    topo = two_site_wan((1, 2), (3, 4), wan_latency=0.040, lan_latency=0.0001)
    net = Network(topo, seed=0)
    eps, arrivals = {}, {}
    for pid in (1, 2, 3):
        ep = net.endpoint(pid)
        arrivals[pid] = []
        ep.set_receiver(lambda data, p=pid: arrivals[p].append(net.scheduler.now))
        ep.join(100)
        eps[pid] = ep
    eps[1].multicast(100, b"x")
    net.run_for(0.2)
    assert arrivals[2][0] < 0.001  # same site: LAN latency
    assert arrivals[3][0] >= 0.040  # cross-site: WAN latency


def test_link_override_and_set_loss():
    topo = lan()
    topo.set_link(1, 2, LinkModel(latency=0.5, jitter=0, loss=0))
    net = Network(topo, seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    eps[1].multicast(100, b"x")
    net.run_for(0.1)
    assert boxes[2] == []  # still in flight on the slow link
    net.run_for(0.5)
    assert boxes[2] == [b"x"]
    topo.set_loss(0.25)
    assert topo.default.loss == 0.25
    assert topo.link(1, 2).loss == 0.25


def test_noop_join_leave_do_not_rebuild_fanout():
    # a re-join (or a leave by a non-member) leaves the receiver set
    # unchanged, so the cached fan-out tuple must survive identically —
    # rebuilding it on every no-op churns an allocation per heartbeat
    net = Network(lan(), seed=0)
    eps = {pid: net.endpoint(pid) for pid in (1, 2, 3)}
    for pid in (1, 2, 3):
        eps[pid].join(100)
    fanout = net._fanout[100]
    eps[2].join(100)       # no-op: already a member
    net.leave(9, 100)      # no-op: never joined
    assert net._fanout[100] is fanout  # same tuple object, not rebuilt
    eps[3].leave(100)      # real change: rebuild expected
    assert net._fanout[100] == (1, 2)


def test_bounded_egress_queue_tail_drops():
    # with egress_queue_limit set, offered load beyond the backlog bound
    # is dropped at the sender instead of queueing without bound
    topo = Topology(default=LinkModel(latency=0.0001),
                    egress_bandwidth=10_000.0,   # 1 kB costs 100 ms
                    egress_queue_limit=0.150)
    net = Network(topo, seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    for _ in range(5):  # 500 ms of serialization against a 150 ms bound
        eps[1].multicast(100, b"x" * 1000)
    net.run_for(1.0)
    assert net.egress_drops.get(1, 0) > 0
    delivered = len(boxes[2])
    assert 0 < delivered < 5
    assert delivered + net.egress_drops[1] == 5


def test_unbounded_egress_queue_is_legacy_default():
    topo = Topology(default=LinkModel(latency=0.0001),
                    egress_bandwidth=10_000.0)  # no queue limit
    net = Network(topo, seed=0)
    eps, boxes = {}, {}
    for pid in (1, 2):
        eps[pid], boxes[pid] = collect(net, pid)
        eps[pid].join(100)
    for _ in range(5):
        eps[1].multicast(100, b"x" * 1000)
    net.run_for(1.0)
    assert net.egress_drops == {}
    assert len(boxes[2]) == 5  # everything queues and eventually lands
