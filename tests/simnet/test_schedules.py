"""The SchedulePolicy seam: ready sets, decision logs, PCT purity.

Scheduler-level coverage of the schedule-exploration machinery (the
cluster-level record→replay properties live in
``tests/analysis/test_explore.py``):

* a ``FifoPolicy`` run is identical to a policy-free run, decision log
  aside;
* recorded decision logs replay byte-exactly, including when callbacks
  schedule new same-time events into the live ready set;
* ``PCTPolicy`` priorities and change points are pure functions of the
  seed — no global :mod:`random` state is read or written;
* cancellation inside a ready set neither runs the event nor corrupts
  the live counter.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import (
    FifoPolicy,
    PCTPolicy,
    RandomPolicy,
    ReplayPolicy,
    Schedule,
    Scheduler,
)


def _workload(sched: Scheduler):
    """A branching workload with plenty of same-time ties.

    Three "processors" tick at the same instants; each tick re-arms
    itself and occasionally spawns an extra same-time event, so the ready
    sets stay contested and grow mid-step.
    """
    hits = []

    def tick(pid: int, n: int) -> None:
        hits.append((sched.now, pid, n))
        if n < 8:
            sched.schedule(0.01, tick, pid, n + 1)
        if n % 3 == pid % 3:
            sched.at(sched.now, hits.append, (sched.now, pid, -n))

    for pid in (1, 2, 3):
        sched.at(0.01, tick, pid, 0)
    return hits


def _run(policy):
    sched = Scheduler(policy)
    hits = _workload(sched)
    sched.run_until(1.0)
    return hits, list(sched.decision_log)


# ----------------------------------------------------------------------
# FIFO identity and the policy-free path
# ----------------------------------------------------------------------
def test_fifo_policy_matches_policy_free_run():
    baseline, log = _run(None)
    assert log == []  # no policy, no recording
    fifo_hits, fifo_log = _run(FifoPolicy())
    assert fifo_hits == baseline
    assert fifo_log and all(d == 0 for d in fifo_log)


def test_policy_property_and_reset():
    sched = Scheduler()
    assert sched.policy is None
    pol = RandomPolicy(1)
    sched.set_policy(pol)
    assert sched.policy is pol
    sched.at(0.0, lambda: None)
    sched.at(0.0, lambda: None)
    sched.run()
    assert len(sched.decision_log) == 1
    sched.set_policy(FifoPolicy())
    assert sched.decision_log == []  # installing a policy resets the log


# ----------------------------------------------------------------------
# record → replay (scheduler level)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", [RandomPolicy(7), PCTPolicy(7, depth=3),
                                    PCTPolicy(11, depth=1)])
def test_recorded_log_replays_byte_exactly(policy):
    hits, log = _run(policy)
    replay_hits, replay_log = _run(ReplayPolicy(log))
    assert replay_hits == hits
    assert replay_log == log  # same contested points, same choices


def test_exhausted_or_invalid_decisions_fall_back_to_fifo():
    baseline, _ = _run(None)
    # an empty log is all-FIFO; wildly out-of-range indices clamp to FIFO
    assert _run(ReplayPolicy([]))[0] == baseline
    assert _run(ReplayPolicy([999] * 50))[0] == baseline


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), max_size=40))
def test_any_decision_list_is_a_valid_deterministic_schedule(decisions):
    a = _run(ReplayPolicy(decisions))
    b = _run(ReplayPolicy(decisions))
    assert a == b


def test_different_seeds_explore_different_interleavings():
    logs = {seed: _run(RandomPolicy(seed))[1] for seed in range(4)}
    assert len({tuple(log) for log in logs.values()}) > 1


# ----------------------------------------------------------------------
# ready-set semantics
# ----------------------------------------------------------------------
def test_same_time_events_scheduled_by_callbacks_join_ready_set():
    sched = Scheduler(ReplayPolicy([1]))
    hits = []
    sched.at(1.0, lambda: (hits.append("a"), sched.at(1.0, hits.append, "spawned")))
    sched.at(1.0, hits.append, "b")
    sched.run()
    # decision [1] fires "b" first; "a" then spawns an event at the same
    # time which must enter the contested set with "a"'s leftovers
    assert hits == ["b", "a", "spawned"]


def test_cancel_inside_ready_set_is_honoured():
    sched = Scheduler(FifoPolicy())
    hits = []
    sched.at(1.0, lambda: ev_c.cancel())
    ev_c = sched.at(1.0, hits.append, "c")  # sits in the ready set when cancelled
    sched.at(1.0, hits.append, "b")
    sched.at(0.5, hits.append, "early")
    sched.run()
    assert hits == ["early", "b"]
    assert sched.pending == 0  # live counter survived the in-ready cancel


def test_run_until_limits_hold_with_policy():
    sched = Scheduler(RandomPolicy(3))
    hits = []
    for i in range(5):
        sched.at(1.0, hits.append, i)
    sched.at(2.0, hits.append, "late")
    ran = sched.run_until(1.5)
    assert ran == 5 and sched.now == 1.5 and "late" not in hits
    sched2 = Scheduler(RandomPolicy(3))
    for i in range(5):
        sched2.at(1.0, hits.append, i)
    assert sched2.run_until(1.5, max_events=2) == 2


# ----------------------------------------------------------------------
# PCT purity (no global random-state leakage)
# ----------------------------------------------------------------------
def test_pct_change_points_are_a_pure_function_of_seed_and_depth():
    a = PCTPolicy.change_points(5, 4)
    b = PCTPolicy.change_points(5, 4)
    assert a == b and len(a) == 3
    assert PCTPolicy.change_points(6, 4) != a
    assert PCTPolicy.change_points(5, 1) == frozenset()
    assert PCTPolicy(9, depth=2)._change_points == PCTPolicy.change_points(9, 2)


def test_pct_priorities_are_a_pure_function_of_seed_and_event_seq():
    assert PCTPolicy.priority(3, 17) == PCTPolicy.priority(3, 17)
    assert PCTPolicy.priority(3, 17) != PCTPolicy.priority(4, 17)
    assert PCTPolicy.priority(3, 17) != PCTPolicy.priority(3, 18)


def test_policies_do_not_touch_global_random_state():
    random.seed(1234)
    expected = random.Random(1234).random()
    PCTPolicy(1, depth=5)
    _run(PCTPolicy(2, depth=3))
    _run(RandomPolicy(3))
    assert random.random() == expected  # global stream unconsumed


def test_pct_rejects_nonpositive_depth():
    with pytest.raises(ValueError):
        PCTPolicy(0, depth=0)


def test_pct_choices_are_reproducible_across_instances():
    assert _run(PCTPolicy(21, depth=3)) == _run(PCTPolicy(21, depth=3))


# ----------------------------------------------------------------------
# Schedule value object
# ----------------------------------------------------------------------
def test_schedule_round_trips_through_dict():
    s = Schedule(policy="pct", seed=42, depth=3, decisions=[0, 2, 1])
    assert Schedule.from_dict(s.as_dict()) == s
    assert Schedule.from_dict({}).decisions == []


def test_make_policy_factory():
    assert isinstance(Schedule.make_policy("fifo"), FifoPolicy)
    assert isinstance(Schedule.make_policy("random", 1), RandomPolicy)
    assert isinstance(Schedule.make_policy("pct", 1, 4), PCTPolicy)
    with pytest.raises(ValueError):
        Schedule.make_policy("quantum")
