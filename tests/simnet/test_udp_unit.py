"""UDP endpoint unit behaviour (fast, socket-level)."""

import time

import pytest

from repro.simnet import UdpFabric


@pytest.fixture
def fabric():
    f = UdpFabric()
    yield f
    f.close()


def test_endpoint_identity_and_clock(fabric):
    ep = fabric.endpoint(5)
    assert ep.processor_id == 5
    t0 = ep.now
    time.sleep(0.01)
    assert ep.now > t0


def test_timer_fires_and_cancels(fabric):
    ep = fabric.endpoint(1)
    hits = []
    ep.schedule(0.01, hits.append, "a")
    t = ep.schedule(0.01, hits.append, "b")
    t.cancel()
    deadline = time.monotonic() + 2.0
    while "a" not in hits and time.monotonic() < deadline:
        time.sleep(0.005)
    time.sleep(0.05)
    assert hits == ["a"]


def test_join_leave_controls_delivery(fabric):
    a = fabric.endpoint(1)
    b = fabric.endpoint(2)
    inbox = []
    b.set_receiver(inbox.append)
    b.join(100)
    a.multicast(100, b"one")
    deadline = time.monotonic() + 2.0
    while not inbox and time.monotonic() < deadline:
        time.sleep(0.005)
    assert inbox == [b"one"]
    b.leave(100)
    a.multicast(100, b"two")
    time.sleep(0.05)
    assert inbox == [b"one"]


def test_oversized_datagram_rejected(fabric):
    ep = fabric.endpoint(1)
    with pytest.raises(ValueError):
        ep.multicast(100, b"x" * 70_000)


def test_timers_after_close_do_not_fire(fabric):
    ep = fabric.endpoint(1)
    hits = []
    ep.schedule(0.02, hits.append, "late")
    ep.close()
    time.sleep(0.1)
    assert hits == []


def test_multicast_roundtrip_includes_sender_loopback(fabric):
    """A sender joined to its own group receives its own multicasts."""
    a = fabric.endpoint(1)
    b = fabric.endpoint(2)
    got_a, got_b = [], []
    a.set_receiver(got_a.append)
    b.set_receiver(got_b.append)
    a.join(7)
    b.join(7)
    a.multicast(7, b"ping")
    deadline = time.monotonic() + 2.0
    while (not got_a or not got_b) and time.monotonic() < deadline:
        time.sleep(0.005)
    assert got_a == [b"ping"]
    assert got_b == [b"ping"]


def test_no_receive_callbacks_after_close(fabric):
    """close() guarantees the receiver is never invoked again."""
    a = fabric.endpoint(1)
    b = fabric.endpoint(2)
    inbox = []
    b.set_receiver(inbox.append)
    b.join(100)
    a.multicast(100, b"before")
    deadline = time.monotonic() + 2.0
    while not inbox and time.monotonic() < deadline:
        time.sleep(0.005)
    assert inbox == [b"before"]
    b.close()
    for _ in range(5):
        a.multicast(100, b"after")
    time.sleep(0.1)
    assert inbox == [b"before"]


def test_close_unregisters_from_fabric(fabric):
    """A closed endpoint drops out of every group's fan-out targets, so
    its (potentially rebinding) port never appears as a send target."""
    a = fabric.endpoint(1)
    b = fabric.endpoint(2)
    b.join(100)
    a.join(100)
    assert len(fabric.targets(100)) == 2
    b.close()
    assert fabric.targets(100) == (a.address,)


def test_schedule_after_close_never_fires(fabric):
    ep = fabric.endpoint(1)
    ep.close()
    hits = []
    handle = ep.schedule(0.01, hits.append, "x")
    time.sleep(0.05)
    handle.cancel()  # handle stays cancellable
    assert hits == []
