"""UDP endpoint unit behaviour (fast, socket-level)."""

import time

import pytest

from repro.simnet import UdpFabric


@pytest.fixture
def fabric():
    f = UdpFabric()
    yield f
    f.close()


def test_endpoint_identity_and_clock(fabric):
    ep = fabric.endpoint(5)
    assert ep.processor_id == 5
    t0 = ep.now
    time.sleep(0.01)
    assert ep.now > t0


def test_timer_fires_and_cancels(fabric):
    ep = fabric.endpoint(1)
    hits = []
    ep.schedule(0.01, hits.append, "a")
    t = ep.schedule(0.01, hits.append, "b")
    t.cancel()
    deadline = time.monotonic() + 2.0
    while "a" not in hits and time.monotonic() < deadline:
        time.sleep(0.005)
    time.sleep(0.05)
    assert hits == ["a"]


def test_join_leave_controls_delivery(fabric):
    a = fabric.endpoint(1)
    b = fabric.endpoint(2)
    inbox = []
    b.set_receiver(inbox.append)
    b.join(100)
    a.multicast(100, b"one")
    deadline = time.monotonic() + 2.0
    while not inbox and time.monotonic() < deadline:
        time.sleep(0.005)
    assert inbox == [b"one"]
    b.leave(100)
    a.multicast(100, b"two")
    time.sleep(0.05)
    assert inbox == [b"one"]


def test_oversized_datagram_rejected(fabric):
    ep = fabric.endpoint(1)
    with pytest.raises(ValueError):
        ep.multicast(100, b"x" * 70_000)


def test_timers_after_close_do_not_fire(fabric):
    ep = fabric.endpoint(1)
    hits = []
    ep.schedule(0.02, hits.append, "late")
    ep.close()
    time.sleep(0.1)
    assert hits == []
