"""Egress-bandwidth (NIC serialization) model tests."""

from repro.simnet import Network, Topology, LinkModel


def build(bw):
    topo = Topology(default=LinkModel(latency=0.001, jitter=0, loss=0),
                    egress_bandwidth=bw)
    net = Network(topo, seed=0)
    arrivals = []
    ep1 = net.endpoint(1)
    ep2 = net.endpoint(2)
    ep2.set_receiver(lambda d: arrivals.append((net.scheduler.now, len(d))))
    ep1.join(100)
    ep2.join(100)
    return net, ep1, arrivals


def test_infinite_bandwidth_by_default():
    net, ep1, arrivals = build(bw=None)
    for _ in range(5):
        ep1.multicast(100, b"x" * 1000)
    net.run_for(0.01)
    times = [t for t, _n in arrivals]
    assert len(times) == 5
    assert max(times) - min(times) < 1e-9  # all arrive together


def test_serialization_spaces_back_to_back_packets():
    net, ep1, arrivals = build(bw=1_000_000)  # 1 MB/s -> 1 ms per 1000 B
    for _ in range(5):
        ep1.multicast(100, b"x" * 1000)
    net.run_for(0.1)
    times = [t for t, _n in arrivals]
    assert len(times) == 5
    gaps = [b - a for a, b in zip(times, times[1:])]
    for gap in gaps:
        assert abs(gap - 0.001) < 1e-9  # exactly the serialization time


def test_first_packet_pays_its_own_serialization():
    net, ep1, arrivals = build(bw=1_000_000)
    ep1.multicast(100, b"x" * 2000)  # 2 ms serialization + 1 ms latency
    net.run_for(0.1)
    assert abs(arrivals[0][0] - 0.003) < 1e-9


def test_idle_egress_does_not_accumulate_debt():
    net, ep1, arrivals = build(bw=1_000_000)
    ep1.multicast(100, b"x" * 1000)
    net.run_for(0.05)  # long idle gap
    ep1.multicast(100, b"x" * 1000)
    net.run_for(0.05)
    t0, t1 = [t for t, _n in arrivals]
    assert abs((t1 - 0.05) - t0) < 1e-9  # second send starts fresh


def test_multicast_serialized_once_not_per_receiver():
    topo = Topology(default=LinkModel(latency=0.001, jitter=0, loss=0),
                    egress_bandwidth=1_000_000)
    net = Network(topo, seed=0)
    arrivals = {2: [], 3: [], 4: []}
    ep1 = net.endpoint(1)
    ep1.join(100)
    for pid in (2, 3, 4):
        ep = net.endpoint(pid)
        ep.set_receiver(lambda d, p=pid: arrivals[p].append(net.scheduler.now))
        ep.join(100)
    ep1.multicast(100, b"x" * 1000)
    net.run_for(0.1)
    # all three receivers get it after ONE serialization delay
    for pid in (2, 3, 4):
        assert abs(arrivals[pid][0] - 0.002) < 1e-9
