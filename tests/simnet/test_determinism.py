"""Seeded determinism: the foundation of reproducible experiments."""

from repro.analysis import make_cluster
from repro.core import FTMPConfig
from repro.simnet import lossy_lan


def run(seed):
    c = make_cluster((1, 2, 3), topology=lossy_lan(0.15), seed=seed,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(25):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.001 * i, c.stacks[pid].multicast, 1,
                               f"{pid}:{i}".encode())
    c.run_for(2.0)
    orders = {p: tuple(c.orders(1)[p]) for p in (1, 2, 3)}
    trace = (c.net.trace.sends, c.net.trace.deliveries, c.net.trace.drops)
    stats = tuple(
        (c.stacks[p].group(1).rmp.stats.nacks_sent,
         c.stacks[p].group(1).rmp.stats.retransmissions_sent)
        for p in (1, 2, 3)
    )
    return orders, trace, stats


def test_same_seed_identical_run():
    a = run(seed=123)
    b = run(seed=123)
    assert a == b  # bit-for-bit: orders, packet counts, recovery traffic


def test_different_seeds_diverge():
    a = run(seed=1)
    b = run(seed=2)
    # loss patterns differ, so the packet trace must differ
    assert a[1] != b[1]


def test_crash_scenarios_are_reproducible():
    def crash_run(seed):
        c = make_cluster((1, 2, 3, 4), seed=seed)
        for i in range(20):
            for pid in (1, 2, 3, 4):
                c.net.scheduler.at(0.002 * i, c.stacks[pid].multicast, 1,
                                   f"{pid}:{i}".encode())
        c.net.scheduler.at(0.015, c.net.crash, 4)
        c.run_for(2.0)
        return {p: tuple(c.orders(1)[p]) for p in (1, 2, 3)}, [
            (v.reason, v.membership, v.view_timestamp)
            for v in c.listeners[1].views
        ]

    assert crash_run(7) == crash_run(7)
