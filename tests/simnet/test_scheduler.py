"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simnet import Scheduler, SimTimeError


def test_events_run_in_time_order():
    s = Scheduler()
    hits = []
    s.schedule(2.0, hits.append, "c")
    s.schedule(1.0, hits.append, "a")
    s.schedule(1.5, hits.append, "b")
    s.run()
    assert hits == ["a", "b", "c"]


def test_ties_run_in_insertion_order():
    s = Scheduler()
    hits = []
    for name in "abcde":
        s.schedule(1.0, hits.append, name)
    s.run()
    assert hits == list("abcde")


def test_now_advances_to_event_time():
    s = Scheduler()
    seen = []
    s.schedule(0.5, lambda: seen.append(s.now))
    s.schedule(1.25, lambda: seen.append(s.now))
    s.run()
    assert seen == [0.5, 1.25]
    assert s.now == 1.25


def test_cancelled_events_are_skipped():
    s = Scheduler()
    hits = []
    ev = s.schedule(1.0, hits.append, "x")
    s.schedule(2.0, hits.append, "y")
    ev.cancel()
    s.run()
    assert hits == ["y"]


def test_negative_delay_rejected():
    s = Scheduler()
    with pytest.raises(SimTimeError):
        s.schedule(-0.1, lambda: None)


def test_at_in_past_rejected():
    s = Scheduler()
    s.schedule(1.0, lambda: None)
    s.run()
    with pytest.raises(SimTimeError):
        s.at(0.5, lambda: None)


def test_run_until_stops_at_deadline():
    s = Scheduler()
    hits = []
    s.schedule(1.0, hits.append, "a")
    s.schedule(2.0, hits.append, "b")
    s.run_until(1.5)
    assert hits == ["a"]
    assert s.now == 1.5
    s.run_until(3.0)
    assert hits == ["a", "b"]


def test_run_until_advances_now_even_with_no_events():
    s = Scheduler()
    s.run_until(5.0)
    assert s.now == 5.0


def test_events_scheduled_during_run_execute():
    s = Scheduler()
    hits = []

    def outer():
        hits.append("outer")
        s.schedule(0.5, hits.append, "inner")

    s.schedule(1.0, outer)
    s.run()
    assert hits == ["outer", "inner"]


def test_step_returns_false_when_empty():
    s = Scheduler()
    assert s.step() is False
    s.schedule(0.1, lambda: None)
    assert s.step() is True
    assert s.step() is False


def test_run_max_events_bound():
    s = Scheduler()

    def rearm():
        s.schedule(1.0, rearm)

    s.schedule(1.0, rearm)
    ran = s.run(max_events=10)
    assert ran == 10


def test_events_processed_counter():
    s = Scheduler()
    for i in range(5):
        s.schedule(float(i), lambda: None)
    s.run()
    assert s.events_processed == 5


def test_pending_excludes_cancelled():
    s = Scheduler()
    ev = s.schedule(1.0, lambda: None)
    s.schedule(2.0, lambda: None)
    assert s.pending == 2
    ev.cancel()
    assert s.pending == 1


def test_pending_counter_tracks_push_pop_cancel():
    s = Scheduler()
    events = [s.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert s.pending == 6
    # double-cancel must decrement exactly once
    events[0].cancel()
    events[0].cancel()
    assert s.pending == 5
    # popping live events decrements; popping cancelled ones must not
    s.run_until(3.0)  # fires events[1], events[2] (events[0] skipped)
    assert s.pending == 3
    # cancelling an event that already fired is a no-op for the counter
    events[1].cancel()
    assert s.pending == 3
    s.run()
    assert s.pending == 0


def test_pending_counter_survives_compaction():
    s = Scheduler()
    threshold = Scheduler._COMPACT_MIN_GARBAGE
    # strand a burst of cancellations beneath one live far-future event
    live = s.schedule(1000.0, lambda: None)
    doomed = [s.schedule(float(i + 1), lambda: None) for i in range(threshold + 2)]
    for ev in doomed:
        ev.cancel()
    # compaction has rebuilt the heap: the burst of dead entries is gone
    # (a handful cancelled after the rebuild may linger below threshold)
    assert s.pending == 1
    assert len(s._heap) < threshold
    assert live in s._heap
    s.run()
    assert s.pending == 0
    assert s.events_processed == 1


def test_cancel_after_fire_is_noop():
    s = Scheduler()
    hits = []
    ev = s.schedule(1.0, hits.append, "a")
    s.schedule(2.0, hits.append, "b")
    s.run_until(1.5)
    ev.cancel()  # already fired: must not disturb remaining events
    assert s.pending == 1
    s.run()
    assert hits == ["a", "b"]
