"""GIOP message tests: all eight types round-trip (paper §3.1)."""

import pytest

from repro.giop import (
    CancelRequestMessage,
    CloseConnectionMessage,
    FragmentMessage,
    GIOPHeader,
    GIOPMessageType,
    LocateReplyMessage,
    LocateRequestMessage,
    LocateStatus,
    MarshalError,
    MessageErrorMessage,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    ServiceContext,
    decode_giop,
    encode_giop,
    encode_values,
)


def hdr(t, little=True):
    return GIOPHeader(message_type=t, little_endian=little)


@pytest.mark.parametrize("little", [True, False], ids=["LE", "BE"])
def test_request_round_trip(little):
    msg = RequestMessage(
        header=hdr(GIOPMessageType.REQUEST, little),
        service_context=[ServiceContext(5, b"\x01\x02")],
        request_id=42,
        response_expected=True,
        object_key=b"bank/account-1",
        operation="deposit",
        requesting_principal=b"alice",
        body=encode_values([100, "memo"], little),
    )
    out = decode_giop(encode_giop(msg))
    assert isinstance(out, RequestMessage)
    assert out.request_id == 42
    assert out.response_expected is True
    assert out.object_key == b"bank/account-1"
    assert out.operation == "deposit"
    assert out.requesting_principal == b"alice"
    assert out.service_context == [ServiceContext(5, b"\x01\x02")]
    assert out.body == msg.body


@pytest.mark.parametrize("status", list(ReplyStatus))
def test_reply_round_trip_all_statuses(status):
    msg = ReplyMessage(
        header=hdr(GIOPMessageType.REPLY),
        request_id=7,
        reply_status=status,
        body=encode_values([True]),
    )
    out = decode_giop(encode_giop(msg))
    assert isinstance(out, ReplyMessage)
    assert out.reply_status == status
    assert out.request_id == 7


def test_cancel_request_round_trip():
    out = decode_giop(encode_giop(
        CancelRequestMessage(header=hdr(GIOPMessageType.CANCEL_REQUEST), request_id=9)
    ))
    assert isinstance(out, CancelRequestMessage) and out.request_id == 9


def test_locate_request_round_trip():
    out = decode_giop(encode_giop(LocateRequestMessage(
        header=hdr(GIOPMessageType.LOCATE_REQUEST), request_id=3, object_key=b"k"
    )))
    assert isinstance(out, LocateRequestMessage)
    assert out.object_key == b"k"


@pytest.mark.parametrize("status", list(LocateStatus))
def test_locate_reply_round_trip(status):
    out = decode_giop(encode_giop(LocateReplyMessage(
        header=hdr(GIOPMessageType.LOCATE_REPLY), request_id=3, locate_status=status
    )))
    assert isinstance(out, LocateReplyMessage)
    assert out.locate_status == status


def test_close_connection_and_message_error():
    for cls, t in (
        (CloseConnectionMessage, GIOPMessageType.CLOSE_CONNECTION),
        (MessageErrorMessage, GIOPMessageType.MESSAGE_ERROR),
    ):
        out = decode_giop(encode_giop(cls(header=hdr(t))))
        assert isinstance(out, cls)
        assert out.header.message_size == 0


def test_fragment_round_trip():
    out = decode_giop(encode_giop(FragmentMessage(
        header=hdr(GIOPMessageType.FRAGMENT), data=b"partial-body"
    )))
    assert isinstance(out, FragmentMessage)
    assert out.data == b"partial-body"


def test_giop_magic_enforced():
    raw = bytearray(encode_giop(CancelRequestMessage(
        header=hdr(GIOPMessageType.CANCEL_REQUEST), request_id=1)))
    raw[:4] = b"BLAH"
    with pytest.raises(MarshalError):
        decode_giop(bytes(raw))


def test_size_field_validated():
    raw = encode_giop(CancelRequestMessage(
        header=hdr(GIOPMessageType.CANCEL_REQUEST), request_id=1))
    with pytest.raises(MarshalError):
        decode_giop(raw + b"x")


def test_unknown_type_rejected():
    raw = bytearray(encode_giop(CancelRequestMessage(
        header=hdr(GIOPMessageType.CANCEL_REQUEST), request_id=1)))
    raw[7] = 99
    with pytest.raises(MarshalError):
        decode_giop(bytes(raw))


def test_size_excludes_header():
    msg = CancelRequestMessage(header=hdr(GIOPMessageType.CANCEL_REQUEST), request_id=1)
    raw = encode_giop(msg)
    assert msg.header.message_size == len(raw) - 12


def test_version_preserved():
    msg = RequestMessage(header=GIOPHeader(GIOPMessageType.REQUEST, version=(1, 1)))
    out = decode_giop(encode_giop(msg))
    assert out.header.version == (1, 1)
