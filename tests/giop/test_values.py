"""Tagged-value marshaling tests (the ORB's argument convention)."""

import pytest

from repro.giop import MarshalError, decode_values, encode_values
from repro.giop.cdr import CDRDecoder, CDREncoder
from repro.giop.values import decode_value, encode_value


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2**63 - 1,
        -(2**63),
        1.5,
        -2.25,
        "",
        "text with spaces and ünïcode",
        b"",
        b"\x00\xff" * 10,
        [],
        [1, "two", 3.0, None],
        [[1, 2], [3, [4]]],
        {},
        {"a": 1, "b": [True, None]},
        {"nested": {"deep": {"deeper": "value"}}},
    ],
)
def test_single_value_round_trip(value):
    enc = CDREncoder()
    encode_value(enc, value)
    out = decode_value(CDRDecoder(enc.getvalue()))
    assert out == value
    assert type(out) is type(value) or isinstance(value, tuple)


def test_tuple_decodes_as_list():
    enc = CDREncoder()
    encode_value(enc, (1, 2))
    assert decode_value(CDRDecoder(enc.getvalue())) == [1, 2]


def test_bool_not_confused_with_int():
    out = decode_values(encode_values([True, 1, False, 0]))
    assert out == [True, 1, False, 0]
    assert [type(v) for v in out] == [bool, int, bool, int]


def test_bytearray_encodes_as_bytes():
    out = decode_values(encode_values([bytearray(b"xy")]))
    assert out == [b"xy"]


def test_value_list_round_trip_both_orders():
    values = [1, "a", {"k": [2.5, None]}]
    for little in (True, False):
        assert decode_values(encode_values(values, little), little) == values


def test_int_out_of_64bit_range_rejected():
    with pytest.raises(MarshalError):
        encode_values([2**63])


def test_unsupported_type_rejected():
    with pytest.raises(MarshalError):
        encode_values([object()])


def test_non_string_dict_key_rejected():
    with pytest.raises(MarshalError):
        encode_values([{1: "x"}])


def test_unknown_tag_rejected():
    with pytest.raises(MarshalError):
        decode_value(CDRDecoder(b"\x63"))


def test_empty_args_list():
    assert decode_values(encode_values([])) == []
