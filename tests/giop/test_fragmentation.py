"""GIOP fragmentation tests (the Fragment message type in action)."""

import pytest

from repro.giop import (
    GIOPHeader,
    GIOPMessageType,
    RequestMessage,
    decode_giop,
    encode_giop,
    encode_values,
)
from repro.giop.fragmentation import (
    FragmentationError,
    Reassembler,
    fragment_giop,
    more_fragments_flag,
)


def big_request(size: int = 5000, little: bool = True) -> bytes:
    return encode_giop(RequestMessage(
        header=GIOPHeader(GIOPMessageType.REQUEST, little_endian=little),
        request_id=1,
        object_key=b"key",
        operation="bulk",
        body=encode_values([b"x" * size], little),
    ))


def test_small_message_not_fragmented():
    raw = big_request(10)
    assert fragment_giop(raw, 64_000) == [raw]
    assert more_fragments_flag(raw) is False


@pytest.mark.parametrize("little", [True, False])
def test_fragment_and_reassemble(little):
    raw = big_request(5000, little)
    pieces = fragment_giop(raw, mtu=1024)
    assert len(pieces) > 1
    assert all(len(p) <= 1024 for p in pieces)
    # first piece keeps the Request type; continuations are Fragments
    assert pieces[0][7] == GIOPMessageType.REQUEST
    assert all(p[7] == GIOPMessageType.FRAGMENT for p in pieces[1:])
    # more-fragments flag set on all but the last
    assert all(more_fragments_flag(p) for p in pieces[:-1])
    assert not more_fragments_flag(pieces[-1])

    r = Reassembler()
    results = [r.push("src", p) for p in pieces]
    assert results[:-1] == [None] * (len(pieces) - 1)
    full = results[-1]
    assert full == raw
    out = decode_giop(full)
    assert out.operation == "bulk"


def test_exact_boundary():
    raw = big_request(100)
    pieces = fragment_giop(raw, mtu=len(raw))
    assert pieces == [raw]
    pieces = fragment_giop(raw, mtu=len(raw) - 1)
    assert len(pieces) == 2
    r = Reassembler()
    assert r.push("s", pieces[0]) is None
    assert r.push("s", pieces[1]) == raw


def test_per_source_isolation():
    raw_a = big_request(2000)
    raw_b = big_request(3000)
    pa = fragment_giop(raw_a, 512)
    pb = fragment_giop(raw_b, 512)
    r = Reassembler()
    # interleave two sources: each reassembles independently
    out_a = out_b = None
    for a, b in zip(pa, pb):
        out_a = r.push("a", a) or out_a
        out_b = r.push("b", b) or out_b
    for rest in pb[len(pa):]:
        out_b = r.push("b", rest) or out_b
    assert out_a == raw_a
    assert out_b == raw_b
    assert r.pending() == 0


def test_orphan_fragment_rejected():
    raw = big_request(2000)
    pieces = fragment_giop(raw, 512)
    r = Reassembler()
    with pytest.raises(FragmentationError):
        r.push("s", pieces[1])  # continuation without the initial message


def test_interrupted_stream_rejected():
    raw = big_request(2000)
    pieces = fragment_giop(raw, 512)
    r = Reassembler()
    r.push("s", pieces[0])
    with pytest.raises(FragmentationError):
        r.push("s", big_request(10))  # a new message mid-reassembly


def test_abort_clears_partial_state():
    raw = big_request(2000)
    pieces = fragment_giop(raw, 512)
    r = Reassembler()
    r.push("s", pieces[0])
    assert r.pending() == 1
    r.abort("s")
    assert r.pending() == 0
    # a fresh unfragmented message now goes straight through
    small = big_request(10)
    assert r.push("s", small) == small


def test_tiny_mtu_rejected():
    with pytest.raises(FragmentationError):
        fragment_giop(big_request(100), mtu=12)


def test_non_giop_rejected():
    with pytest.raises(FragmentationError):
        fragment_giop(b"nonsense-bytes-here", mtu=8)
    with pytest.raises(FragmentationError):
        Reassembler().push("s", b"nonsense-bytes-here")


def test_end_to_end_over_ftmp_adapter():
    """A 50 KB argument crosses the FTMP connection in ~1 KB fragments."""
    from repro.core import FTMPConfig, FTMPStack
    from repro.giop import GroupRef
    from repro.orb import ORB, ClientIdentity, FTMPAdapter
    from repro.simnet import Network, lan

    class Blob:
        def __init__(self):
            self.received = 0

        def put(self, data):
            self.received = len(data)
            return len(data)

    ref = GroupRef("T", domain=7, object_group=100, object_key=b"blob")
    net = Network(lan(), seed=1)
    hosts = {}
    for pid in (1, 2):
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), FTMPConfig())
        adapter = FTMPAdapter(orb, stack, giop_mtu=1024)
        servant = Blob()
        orb.poa.activate(b"blob", servant)
        adapter.export(7, 100, (1, 2))
        hosts[pid] = (orb, servant)
    corb = ORB(8, net.scheduler)
    cstack = FTMPStack(net.endpoint(8), FTMPConfig())
    cadapter = FTMPAdapter(corb, cstack, giop_mtu=1024)
    cadapter.set_client(ClientIdentity(3, 200, (8,)))
    proxy = corb.proxy(ref)

    result = corb.call(proxy, "put", b"z" * 50_000, timeout=10.0)
    assert result == 50_000
    net.run_for(0.5)
    assert hosts[1][1].received == 50_000
    assert hosts[2][1].received == 50_000
