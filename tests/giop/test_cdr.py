"""CDR marshaling unit tests: primitives, alignment, both byte orders."""

import pytest

from repro.giop import CDRDecoder, CDREncoder, MarshalError


@pytest.mark.parametrize("little", [True, False])
class TestPrimitives:
    def roundtrip(self, little, write, read, value):
        enc = CDREncoder(little)
        write(enc, value)
        dec = CDRDecoder(enc.getvalue(), little)
        assert read(dec) == value

    def test_octet(self, little):
        self.roundtrip(little, lambda e, v: e.octet(v), lambda d: d.octet(), 200)

    def test_boolean(self, little):
        self.roundtrip(little, lambda e, v: e.boolean(v), lambda d: d.boolean(), True)
        self.roundtrip(little, lambda e, v: e.boolean(v), lambda d: d.boolean(), False)

    def test_char(self, little):
        self.roundtrip(little, lambda e, v: e.char(v), lambda d: d.char(), "Z")

    def test_short_negative(self, little):
        self.roundtrip(little, lambda e, v: e.short(v), lambda d: d.short(), -12345)

    def test_ushort(self, little):
        self.roundtrip(little, lambda e, v: e.ushort(v), lambda d: d.ushort(), 65535)

    def test_long(self, little):
        self.roundtrip(little, lambda e, v: e.long(v), lambda d: d.long(), -(2**31))

    def test_ulong(self, little):
        self.roundtrip(little, lambda e, v: e.ulong(v), lambda d: d.ulong(), 2**32 - 1)

    def test_longlong(self, little):
        self.roundtrip(little, lambda e, v: e.longlong(v), lambda d: d.longlong(), -(2**63))

    def test_ulonglong(self, little):
        self.roundtrip(little, lambda e, v: e.ulonglong(v), lambda d: d.ulonglong(), 2**64 - 1)

    def test_double(self, little):
        self.roundtrip(little, lambda e, v: e.double(v), lambda d: d.double(), 3.14159265)

    def test_string_unicode(self, little):
        self.roundtrip(little, lambda e, v: e.string(v), lambda d: d.string(), "héllo wörld")

    def test_empty_string(self, little):
        self.roundtrip(little, lambda e, v: e.string(v), lambda d: d.string(), "")

    def test_octets(self, little):
        self.roundtrip(little, lambda e, v: e.octets(v), lambda d: d.octets(), bytes(range(50)))

    def test_ulong_seq(self, little):
        self.roundtrip(little, lambda e, v: e.ulong_seq(v), lambda d: d.ulong_seq(), [1, 2, 3])


class TestAlignment:
    def test_ulong_after_octet_is_padded(self):
        enc = CDREncoder()
        enc.octet(1)
        enc.ulong(0x11223344)
        data = enc.getvalue()
        assert len(data) == 8  # 1 octet + 3 pad + 4
        assert data[1:4] == b"\x00\x00\x00"
        dec = CDRDecoder(data)
        assert dec.octet() == 1
        assert dec.ulong() == 0x11223344

    def test_double_aligned_to_eight(self):
        enc = CDREncoder()
        enc.octet(1)
        enc.double(1.5)
        assert len(enc.getvalue()) == 16
        dec = CDRDecoder(enc.getvalue())
        dec.octet()
        assert dec.double() == 1.5

    def test_mixed_sequence_round_trip(self):
        enc = CDREncoder()
        enc.boolean(True)
        enc.ushort(7)
        enc.octet(3)
        enc.ulonglong(12)
        enc.string("x")
        enc.short(-1)
        dec = CDRDecoder(enc.getvalue())
        assert dec.boolean() is True
        assert dec.ushort() == 7
        assert dec.octet() == 3
        assert dec.ulonglong() == 12
        assert dec.string() == "x"
        assert dec.short() == -1


class TestEncapsulation:
    def test_round_trip_with_inner_endianness(self):
        inner = CDREncoder(little_endian=False)
        inner.ulong(99)
        inner.string("nested")
        outer = CDREncoder(little_endian=True)
        outer.ulong(1)
        outer.encapsulation(inner)
        dec = CDRDecoder(outer.getvalue(), little_endian=True)
        assert dec.ulong() == 1
        inner_dec = dec.encapsulation()
        assert inner_dec.little_endian is False
        assert inner_dec.ulong() == 99
        assert inner_dec.string() == "nested"

    def test_empty_encapsulation_rejected(self):
        enc = CDREncoder()
        enc.octets(b"")
        with pytest.raises(MarshalError):
            CDRDecoder(enc.getvalue()).encapsulation()


class TestErrors:
    def test_truncated_stream(self):
        with pytest.raises(MarshalError):
            CDRDecoder(b"\x01\x02").ulong()

    def test_truncated_string(self):
        enc = CDREncoder()
        enc.string("hello world")
        with pytest.raises(MarshalError):
            CDRDecoder(enc.getvalue()[:-5]).string()

    def test_char_must_be_single(self):
        with pytest.raises(MarshalError):
            CDREncoder().char("ab")

    def test_out_of_range_value(self):
        with pytest.raises(MarshalError):
            CDREncoder().octet(300)

    def test_remaining_and_position(self):
        enc = CDREncoder()
        enc.ulong(1)
        enc.raw(b"tail")
        dec = CDRDecoder(enc.getvalue())
        dec.ulong()
        assert dec.remaining() == b"tail"
        assert dec.position == 4
