"""Property-based tests for GIOP fragmentation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.giop import GIOPHeader, GIOPMessageType, RequestMessage, encode_giop
from repro.giop.fragmentation import Reassembler, fragment_giop, more_fragments_flag


@st.composite
def giop_requests(draw):
    body = draw(st.binary(min_size=0, max_size=8000))
    little = draw(st.booleans())
    return encode_giop(RequestMessage(
        header=GIOPHeader(GIOPMessageType.REQUEST, little_endian=little),
        request_id=draw(st.integers(0, 2**32 - 1)),
        object_key=draw(st.binary(max_size=32)),
        operation=draw(st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            max_size=16)),
        body=body,
    ))


@settings(max_examples=60, deadline=None)
@given(raw=giop_requests(), mtu=st.integers(13, 4096))
def test_fragment_reassemble_identity(raw, mtu):
    pieces = fragment_giop(raw, mtu)
    # every piece respects the MTU (when fragmentation occurred)
    if len(pieces) > 1:
        assert all(len(p) <= mtu for p in pieces)
        assert all(more_fragments_flag(p) for p in pieces[:-1])
        assert not more_fragments_flag(pieces[-1])
    r = Reassembler()
    out = None
    for p in pieces:
        out = r.push("src", p)
    assert out == raw
    assert r.pending() == 0


@settings(max_examples=30, deadline=None)
@given(
    raws=st.lists(giop_requests(), min_size=1, max_size=5),
    mtu=st.integers(64, 1024),
)
def test_sequential_messages_one_source(raws, mtu):
    """Back-to-back (fragmented) messages on one FIFO stream reassemble."""
    r = Reassembler()
    outs = []
    for raw in raws:
        for p in fragment_giop(raw, mtu):
            got = r.push("s", p)
            if got is not None:
                outs.append(got)
    assert outs == raws


@settings(max_examples=30, deadline=None)
@given(
    raw_a=giop_requests(),
    raw_b=giop_requests(),
    mtu=st.integers(64, 512),
    seed=st.integers(0, 1000),
)
def test_interleaved_sources_reassemble_independently(raw_a, raw_b, mtu, seed):
    import random

    rng = random.Random(seed)
    pa = [("a", p) for p in fragment_giop(raw_a, mtu)]
    pb = [("b", p) for p in fragment_giop(raw_b, mtu)]
    # random interleaving that preserves each source's order
    merged = []
    ia = ib = 0
    while ia < len(pa) or ib < len(pb):
        if ia < len(pa) and (ib >= len(pb) or rng.random() < 0.5):
            merged.append(pa[ia])
            ia += 1
        else:
            merged.append(pb[ib])
            ib += 1
    r = Reassembler()
    outs = {}
    for src, piece in merged:
        got = r.push(src, piece)
        if got is not None:
            outs[src] = got
    assert outs == {"a": raw_a, "b": raw_b}
