"""Object reference tests."""

import pytest

from repro.giop import GroupRef, ObjectRef, MarshalError
from repro.giop.ior import decode_ref


def test_object_ref_round_trip():
    ref = ObjectRef(type_id="IDL:Bank:1.0", processor=3, object_key=b"acct-1")
    out = decode_ref(ref.encode())
    assert out == ref


def test_group_ref_round_trip():
    ref = GroupRef(type_id="IDL:Bank:1.0", domain=7, object_group=100,
                   object_key=b"acct-1")
    out = decode_ref(ref.encode())
    assert out == ref


def test_stringified_forms_differ_by_profile():
    o = ObjectRef("T", 3, b"\x01")
    g = GroupRef("T", 7, 100, b"\x01")
    assert o.stringify().startswith("corbaloc:sim:")
    assert g.stringify().startswith("corbaloc:ftmp:")
    assert "7/100" in g.stringify()


def test_refs_are_hashable_and_comparable():
    a = GroupRef("T", 1, 2, b"k")
    b = GroupRef("T", 1, 2, b"k")
    assert a == b and hash(a) == hash(b)
    assert a != GroupRef("T", 1, 3, b"k")


def test_unknown_profile_tag_rejected():
    with pytest.raises(MarshalError):
        decode_ref(b"\x07garbage")
