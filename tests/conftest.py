"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.harness import Cluster, make_cluster  # noqa: F401


@pytest.fixture
def cluster3() -> Cluster:
    return make_cluster((1, 2, 3))


@pytest.fixture
def cluster5() -> Cluster:
    return make_cluster((1, 2, 3, 4, 5))
