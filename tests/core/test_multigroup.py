"""Multi-group atomic multicast: engine unit tests + stack API guards.

The :class:`MultiGroupEngine` is a deterministic state machine fed one
group's totally-ordered release sequence, so the unit tests here drive
it directly with hand-built messages through a stub ``GroupContext`` —
the only two methods the engine calls back into are ``deliver_regular``
and ``pgmp_receive_ordered``.  The stack-level tests at the bottom cover
the ``multicast_groups`` entry points on a small simulated cluster.
"""

import pytest

from repro.analysis import make_cluster, make_multigroup_cluster
from repro.core import ConnectionId, FTMPConfig, MessageType
from repro.core.messages import (
    FTMPHeader,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    RegularMessage,
    RemoveProcessorMessage,
)
from repro.core.multigroup import (
    MULTI_GROUP_CID,
    MULTI_GROUP_COMMUTATIVE_CID,
    MultiGroupEngine,
    is_multigroup_delivery,
    is_total_multigroup_delivery,
    mg_request_num,
)


class _StubGroup:
    """Records the engine's two upcalls into the surrounding datapath."""

    def __init__(self):
        self.delivered = []
        self.pgmp = []

    def deliver_regular(self, msg):
        self.delivered.append(msg)

    def pgmp_receive_ordered(self, msg):
        self.pgmp.append(msg)


def _engine():
    g = _StubGroup()
    return MultiGroupEngine(g), g


def _hdr(mtype, source, ts):
    return FTMPHeader(message_type=mtype, source=source, group=1,
                      sequence_number=0, timestamp=ts, ack_timestamp=0)


def _propose(source, ts, mg_seq=1, conflict_class=0, groups=(1, 2),
             payload=b"mg"):
    return MultiGroupProposeMessage(
        _hdr(MessageType.MULTI_GROUP_PROPOSE, source, ts),
        mg_seq, conflict_class, tuple(groups), payload)


def _commit(source, ts, origin, mg_seq=1, commit_ts=0):
    return MultiGroupCommitMessage(
        _hdr(MessageType.MULTI_GROUP_COMMIT, source, ts),
        origin, mg_seq, commit_ts)


def _regular(source, ts, payload=b"app"):
    return RegularMessage(_hdr(MessageType.REGULAR, source, ts),
                          ConnectionId(0, 0, 0, 0), 1, payload)


# ---------------------------------------------------------------------------
# config + sentinel surface
# ---------------------------------------------------------------------------

def test_multigroup_mode_is_mutually_exclusive():
    with pytest.raises(ValueError):
        FTMPConfig(multigroup_mode=True, llft_mode=True)
    with pytest.raises(ValueError):
        FTMPConfig(multigroup_mode=True, overlay_mode=True)
    with pytest.raises(ValueError):
        FTMPConfig(multigroup_mode=True, delivery_mode="safe")
    FTMPConfig(multigroup_mode=True)  # alone: fine


def test_sentinel_predicates_and_request_num():
    assert is_multigroup_delivery(MULTI_GROUP_CID)
    assert is_multigroup_delivery(MULTI_GROUP_COMMUTATIVE_CID)
    assert is_total_multigroup_delivery(MULTI_GROUP_CID)
    assert not is_total_multigroup_delivery(MULTI_GROUP_COMMUTATIVE_CID)
    assert not is_multigroup_delivery(ConnectionId(1, 2, 3, 4))
    # (origin, mg_seq) pack into one request number, injectively enough
    # for real pids/seqs, and distinct multicasts never collide
    assert mg_request_num(3, 7) != mg_request_num(7, 3)
    assert mg_request_num(3, 7) == (3 << 32) | 7


# ---------------------------------------------------------------------------
# engine: commit/deliver datapath
# ---------------------------------------------------------------------------

def test_commit_delivers_at_committed_key():
    eng, g = _engine()
    eng.on_ordered(_propose(source=1, ts=5, mg_seq=1))
    eng.on_ordered(_regular(source=2, ts=7))
    # uncommitted proposal holds back everything behind its lower bound
    assert g.delivered == []
    assert eng.backlog() == 2
    eng.on_ordered(_commit(source=1, ts=9, origin=1, commit_ts=6))
    # the multi-group message delivers at commit_ts, then the regular
    assert [m.header.timestamp for m in g.delivered] == [6, 7]
    synth = g.delivered[0]
    assert synth.connection_id == MULTI_GROUP_CID
    assert synth.request_num == mg_request_num(1, 1)
    assert synth.payload == b"mg"
    assert eng.backlog() == 0
    assert eng.stats.commits_applied == 1
    assert eng.stats.delivered_total == 1


def test_ordinary_traffic_below_the_bound_flows_through():
    eng, g = _engine()
    eng.on_ordered(_regular(source=2, ts=3, payload=b"early"))
    assert [m.payload for m in g.delivered] == [b"early"]
    eng.on_ordered(_propose(source=1, ts=5))
    eng.on_ordered(_regular(source=2, ts=7, payload=b"late"))
    # nothing past the uncommitted bound moves
    assert [m.payload for m in g.delivered] == [b"early"]
    assert eng.backlog() == 2


def test_commutative_class_skips_commit_entirely():
    eng, g = _engine()
    eng.on_ordered(_propose(source=1, ts=5, conflict_class=2))
    # delivered at the propose position itself, no pending entry
    assert len(g.delivered) == 1
    synth = g.delivered[0]
    assert synth.header.timestamp == 5
    assert synth.connection_id == MULTI_GROUP_COMMUTATIVE_CID
    assert eng.backlog() == 0
    assert eng.stats.delivered_commutative == 1
    assert eng.stats.delivered_total == 0


def test_orphan_commit_is_counted_and_ignored():
    eng, g = _engine()
    eng.on_ordered(_commit(source=1, ts=9, origin=1, commit_ts=6))
    assert g.delivered == []
    assert eng.stats.orphan_commits == 1
    assert eng.backlog() == 0


def test_equal_commit_ts_tie_breaks_by_origin():
    eng, g = _engine()
    eng.on_ordered(_propose(source=1, ts=3, mg_seq=1))
    eng.on_ordered(_propose(source=2, ts=4, mg_seq=1))
    # committing the later origin first releases nothing: the earlier
    # origin's uncommitted bound (3, 1, 1) still fences the stage
    eng.on_ordered(_commit(source=2, ts=7, origin=2, commit_ts=6))
    assert g.delivered == []
    eng.on_ordered(_commit(source=1, ts=8, origin=1, commit_ts=6))
    # both committed at ts 6: the (commit_ts, origin, mg_seq) key breaks
    # the tie by origin, identically at every member
    assert [(m.header.timestamp, m.header.source) for m in g.delivered] == \
        [(6, 1), (6, 2)]


def test_abort_origin_drops_uncommitted_and_unblocks():
    eng, g = _engine()
    eng.on_ordered(_propose(source=3, ts=5, mg_seq=1))
    eng.on_ordered(_regular(source=2, ts=6))
    rm = RemoveProcessorMessage(
        _hdr(MessageType.REMOVE_PROCESSOR, 2, 8), member_to_remove=3)
    eng.on_ordered(rm)
    assert g.delivered == [] and g.pgmp == []
    # fault-view install path: the §7.2 sync made "still uncommitted"
    # the same fact at every survivor, so the abort is deterministic
    eng.abort_origin(3)
    assert eng.stats.aborted == 1
    assert [m.header.timestamp for m in g.delivered] == [6]
    assert g.pgmp == [rm]  # membership message forwarded after the abort
    assert eng.backlog() == 0
    # the origin's commit trickling in afterwards is just an orphan
    eng.on_ordered(_commit(source=3, ts=9, origin=3, commit_ts=5))
    assert eng.stats.orphan_commits == 1


def test_ordered_remove_processor_aborts_later_origin_entries():
    # graceful path: the RemoveProcessor dispatches (nothing fences it)
    # and its _dispatch hook aborts the evicted origin's entries
    eng, g = _engine()
    rm = RemoveProcessorMessage(
        _hdr(MessageType.REMOVE_PROCESSOR, 2, 4), member_to_remove=3)
    eng.on_ordered(rm)
    assert g.pgmp == [rm]
    assert eng.stats.aborted == 0  # nothing pending from 3 yet


def test_identical_release_sequence_yields_identical_deliveries():
    # the determinism argument in one assertion: two engines fed the
    # same release sequence produce byte-identical delivery streams
    seq = [
        _regular(source=4, ts=2, payload=b"a"),
        _propose(source=1, ts=3, mg_seq=1, payload=b"x"),
        _propose(source=2, ts=4, mg_seq=1, conflict_class=1, payload=b"y"),
        _commit(source=1, ts=6, origin=1, commit_ts=5),
        _regular(source=4, ts=7, payload=b"b"),
    ]
    streams = []
    for _ in range(2):
        eng, g = _engine()
        for m in seq:
            eng.on_ordered(m)
        streams.append([(m.header.timestamp, m.header.source,
                         m.connection_id, m.request_num, m.payload)
                        for m in g.delivered])
    assert streams[0] == streams[1]
    assert len(streams[0]) == 4  # a, commutative y, committed x, b


# ---------------------------------------------------------------------------
# stack API guards + end-to-end agreement on a small cluster
# ---------------------------------------------------------------------------

def test_multicast_groups_requires_multigroup_mode():
    c = make_cluster((1, 2))
    with pytest.raises(RuntimeError):
        c.stacks[1].multicast_groups((1,), b"x")


def test_multicast_groups_requires_membership_of_every_group():
    c = make_multigroup_cluster((1, 2, 3), {1: (1, 2), 2: (2, 3)})
    c.run_for(0.5)
    with pytest.raises(KeyError):
        c.stacks[1].multicast_groups((1, 2), b"x")  # 1 is not in group 2
    with pytest.raises(ValueError):
        c.stacks[2].multicast_groups((), b"x")


def test_cross_group_agreement_and_genuineness():
    # groups 1 and 2 overlap on {2, 3}; group 9 is never addressed
    c = make_multigroup_cluster(
        (1, 2, 3, 4),
        {1: (1, 2, 3), 2: (2, 3, 4), 9: (1, 2, 3, 4)})
    c.run_for(0.5)
    for i in range(6):
        origin = 2 if i % 2 == 0 else 3
        c.stacks[origin].multicast_groups((1, 2), b"mg%d" % i)
    c.run_for(1.0)

    def order(pid, gid):
        return [d.request_num for d in c.listeners[pid].deliveries
                if d.group == gid and is_multigroup_delivery(d.connection_id)]

    # every member of each addressed group delivered all 6, same order
    for gid, members in ((1, (1, 2, 3)), (2, (2, 3, 4))):
        orders = [order(pid, gid) for pid in members]
        assert all(len(o) == 6 for o in orders)
        assert all(o == orders[0] for o in orders)
    # the overlap members see the same relative order in both groups
    assert order(2, 1) == order(2, 2) == order(3, 1) == order(3, 2)
    # genuineness: the uninvolved group moved no ordering machinery
    for pid in (1, 2, 3, 4):
        assert order(pid, 9) == []
        mg = c.stacks[pid].group(9).romp.multigroup
        assert mg.stats.proposes_ordered == 0
        assert mg.stats.delivered_total == 0


def test_commutative_stack_level_no_commit_traffic():
    c = make_multigroup_cluster((1, 2, 3), {1: (1, 2), 2: (1, 3)})
    c.run_for(0.5)
    c.stacks[1].multicast_groups((1, 2), b"commute", conflict_class=7)
    c.run_for(0.5)
    for pid, gid in ((2, 1), (3, 2)):
        cids = [d.connection_id for d in c.listeners[pid].deliveries
                if d.group == gid and is_multigroup_delivery(d.connection_id)]
        assert cids == [MULTI_GROUP_COMMUTATIVE_CID]
    for gid in (1, 2):
        assert c.stacks[1].group(gid).romp.multigroup.stats.commits_sent == 0
