"""Ranked responder failover for connection establishment."""

from repro.core import ConnectionId, FTMPConfig, FTMPStack, RecordingListener
from repro.core.connection import default_allocator
from repro.simnet import Network, lan

CID = ConnectionId(3, 200, 7, 100)


def build(seed=0):
    net = Network(lan(), seed=seed)
    stacks = {}
    for pid in (1, 2, 8):
        stacks[pid] = FTMPStack(net.endpoint(pid), FTMPConfig(),
                                RecordingListener())
    for pid in (1, 2):
        stacks[pid].serve(domain=7, object_group=100, server_pids=(1, 2))
    return net, stacks


def test_default_allocation_is_deterministic_in_membership():
    a = default_allocator((1, 2, 8))
    b = default_allocator((8, 2, 1))  # order-insensitive
    assert a == b
    assert a != default_allocator((1, 2, 9))


def test_standby_answers_when_primary_responder_is_dead():
    net, stacks = build()
    net.crash(1)  # the would-be responder is gone before any request
    stacks[8].request_connection(CID, client_pids=(8,))
    net.run_for(1.0)
    b8 = stacks[8].connection_binding(CID)
    b2 = stacks[2].connection_binding(CID)
    assert b8 is not None and b8.established
    assert b2 is not None and b2.responder  # the standby stepped in
    # and the connection actually works
    stacks[8].send_on_connection(CID, b"via-standby", 1)
    net.run_for(0.3)
    payloads = [d.payload for d in stacks[2].listener.deliveries]
    assert b"via-standby" in payloads


def test_standby_does_not_answer_when_primary_is_alive():
    net, stacks = build()
    stacks[8].request_connection(CID, client_pids=(8,))
    net.run_for(1.0)
    b1 = stacks[1].connection_binding(CID)
    b2 = stacks[2].connection_binding(CID)
    assert b1 is not None and b1.responder
    # the standby adopted the primary's Connect rather than answering
    assert b2 is not None and not b2.responder


def test_concurrent_answers_converge_on_one_group():
    # even if primary and standby both answer (slow primary), the
    # deterministic allocation makes their Connects identical
    net, stacks = build()
    g1 = stacks[1].allocate_connection_group((1, 2, 8))
    g2 = stacks[2].allocate_connection_group((1, 2, 8))
    assert g1 == g2
    stacks[8].request_connection(CID, client_pids=(8,))
    net.run_for(1.0)
    gids = {stacks[p].connection_binding(CID).group_id for p in (1, 2, 8)}
    assert len(gids) == 1
