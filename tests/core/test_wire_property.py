"""Property tests for the FTMP codec (hypothesis).

Two invariants protect the precompiled-``struct.Struct`` fast paths added
for performance:

* **round-trip identity** — ``decode(encode(msg)) == msg`` for randomized
  instances of every message type, in both byte orders;
* **fast path == reference** — ``encode`` (one-pack fast paths) produces
  exactly the bytes of :func:`repro.core.wire.encode_reference` (the
  field-at-a-time writer), so the wire format cannot drift between the
  two implementations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AckSummaryMessage,
    AddProcessorMessage,
    BatchMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    HeartbeatMessage,
    MembershipMessage,
    MessageType,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
    decode,
    encode,
)
from repro.core.wire import encode_reference

U16 = st.integers(0, 0xFFFF)
U32 = st.integers(0, 0xFFFFFFFF)
U64 = st.integers(0, 0xFFFFFFFFFFFFFFFF)
PIDS = st.tuples(*[]) | st.lists(U32, max_size=6).map(tuple)
SEQ_VECTOR = st.dictionaries(U32, U32, max_size=6)
PAYLOAD = st.binary(max_size=256)


def _header(mtype: MessageType):
    return st.builds(
        FTMPHeader,
        message_type=st.just(mtype),
        source=U32,
        group=U32,
        sequence_number=U32,
        timestamp=U64,
        ack_timestamp=U64,
        retransmission=st.booleans(),
        little_endian=st.booleans(),
    )


CID_S = st.builds(ConnectionId, U32, U32, U32, U32)

REGULAR = st.builds(RegularMessage, _header(MessageType.REGULAR),
                    CID_S, U64, PAYLOAD)

MESSAGES = st.one_of(
    REGULAR,
    st.builds(RetransmitRequestMessage,
              _header(MessageType.RETRANSMIT_REQUEST), U32, U32, U32),
    st.builds(HeartbeatMessage, _header(MessageType.HEARTBEAT)),
    st.builds(ConnectRequestMessage,
              _header(MessageType.CONNECT_REQUEST), CID_S, PIDS),
    st.builds(ConnectMessage,
              _header(MessageType.CONNECT), CID_S, U32, U32, U64, PIDS),
    st.builds(AddProcessorMessage,
              _header(MessageType.ADD_PROCESSOR), U64, PIDS, SEQ_VECTOR, U32),
    st.builds(RemoveProcessorMessage,
              _header(MessageType.REMOVE_PROCESSOR), U32),
    st.builds(SuspectMessage, _header(MessageType.SUSPECT), U64, PIDS),
    st.builds(MembershipMessage,
              _header(MessageType.MEMBERSHIP), U64, PIDS, SEQ_VECTOR, PIDS),
    st.builds(AckSummaryMessage,
              _header(MessageType.ACK_SUMMARY),
              st.sampled_from([AckSummaryMessage.KIND_UP,
                               AckSummaryMessage.KIND_DOWN]),
              U64, U64,
              st.lists(st.tuples(U32, U32, U64), max_size=6).map(tuple)),
    st.builds(MultiGroupProposeMessage,
              _header(MessageType.MULTI_GROUP_PROPOSE),
              U64, U32, PIDS, PAYLOAD),
    st.builds(MultiGroupCommitMessage,
              _header(MessageType.MULTI_GROUP_COMMIT), U32, U64, U64),
)

# Batch parts are complete encodings of other messages; randomized parts
# exercise both the compact per-part record (part shares the envelope's
# source/group/endianness) and the verbatim fallback (it does not).
BATCHES = st.builds(
    BatchMessage,
    _header(MessageType.BATCH),
    st.lists(MESSAGES, max_size=4).map(
        lambda msgs: tuple(encode(m) for m in msgs)),
)

ALL_MESSAGES = st.one_of(MESSAGES, BATCHES)


@settings(max_examples=300, deadline=None)
@given(ALL_MESSAGES)
def test_roundtrip_identity(msg):
    raw = encode(msg)  # back-fills header.message_size on msg
    out = decode(raw)
    assert out == msg
    assert out.header.message_size == len(raw)


@settings(max_examples=300, deadline=None)
@given(ALL_MESSAGES)
def test_fast_path_matches_reference(msg):
    assert encode(msg) == encode_reference(msg)


@settings(max_examples=200, deadline=None)
@given(BATCHES)
def test_batch_parts_reconstructed_byte_exact(batch):
    """Unpacked parts must be byte-for-byte the original encodings —
    retention buffers and retransmission identity depend on it."""
    out = decode(encode(batch))
    assert out.parts == batch.parts
