"""FTMPConfig and listener-utility tests."""

import dataclasses

import pytest

from repro.core import (
    ConnectionId,
    Delivery,
    FTMPConfig,
    Listener,
    RecordingListener,
    ViewChange,
)


def test_config_is_frozen():
    cfg = FTMPConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.heartbeat_interval = 1.0


def test_with_creates_modified_copy():
    cfg = FTMPConfig()
    cfg2 = cfg.with_(heartbeat_interval=0.5, suspect_timeout=2.0)
    assert cfg2.heartbeat_interval == 0.5
    assert cfg2.suspect_timeout == 2.0
    assert cfg.heartbeat_interval == 0.010  # original untouched
    assert cfg2.nack_delay == cfg.nack_delay


def test_default_listener_is_noop():
    listener = Listener()
    d = Delivery(group=1, source=1, sequence_number=1, timestamp=1,
                 connection_id=ConnectionId.none(), request_num=0,
                 payload=b"", delivered_at=0.0)
    listener.on_deliver(d)  # must not raise
    listener.on_view_change(None)
    listener.on_fault_report(None)
    listener.on_connection(None)


def make_delivery(group, payload, ts=1, src=1):
    return Delivery(group=group, source=src, sequence_number=1, timestamp=ts,
                    connection_id=ConnectionId.none(), request_num=0,
                    payload=payload, delivered_at=0.0)


def test_recording_listener_filters_by_group():
    lst = RecordingListener()
    lst.on_deliver(make_delivery(1, b"a"))
    lst.on_deliver(make_delivery(2, b"b"))
    assert lst.payloads(1) == [b"a"]
    assert lst.payloads(2) == [b"b"]
    assert lst.payloads() == [b"a", b"b"]
    assert lst.delivery_order(1) == [(1, 1)]


def test_recording_listener_current_membership():
    lst = RecordingListener()
    assert lst.current_membership(1) is None
    lst.on_view_change(ViewChange(group=1, membership=(1, 2),
                                  view_timestamp=5, added=(), removed=(),
                                  reason="bootstrap", installed_at=0.0))
    lst.on_view_change(ViewChange(group=2, membership=(9,),
                                  view_timestamp=6, added=(), removed=(),
                                  reason="bootstrap", installed_at=0.0))
    assert lst.current_membership(1) == (1, 2)
    assert lst.current_membership(2) == (9,)
    assert lst.current_membership(3) is None
