"""Ordering clock tests (Lamport and synchronized/hybrid modes)."""

import pytest

from repro.core import LamportClock, SynchronizedClock
from repro.core.config import ClockMode
from repro.core.lamport import make_clock


class TestLamportClock:
    def test_tick_strictly_increases(self):
        c = LamportClock()
        values = [c.tick() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_observe_advances_past_received(self):
        c = LamportClock()
        c.observe(50)
        assert c.time == 50
        assert c.tick() == 51

    def test_observe_smaller_is_noop(self):
        c = LamportClock()
        c.observe(10)
        c.observe(5)
        assert c.time == 10

    def test_paper_invariant_greater_than_any_received_or_sent(self):
        # §6: "always greater than the timestamp of any message that it has
        # received or sent"
        c = LamportClock()
        sent = c.tick()
        c.observe(sent + 7)
        assert c.tick() > sent + 7


class TestSynchronizedClock:
    def test_tracks_physical_time(self):
        now = [0.0]
        c = SynchronizedClock(lambda: now[0], resolution=1e-3)
        now[0] = 0.5
        assert c.tick() == 500

    def test_strictly_monotonic_even_if_time_stalls(self):
        now = [1.0]
        c = SynchronizedClock(lambda: now[0], resolution=1e-3)
        a = c.tick()
        b = c.tick()  # physical time unchanged
        assert b == a + 1

    def test_skew_shifts_timestamps(self):
        now = [1.0]
        a = SynchronizedClock(lambda: now[0], resolution=1e-3, skew=0.0)
        b = SynchronizedClock(lambda: now[0], resolution=1e-3, skew=0.010)
        assert b.tick() - a.tick() == 10

    def test_hybrid_preserves_causality_under_skew(self):
        # A message from a fast clock must not be ordered before a later
        # causally-dependent message from a slow clock.
        now = [1.0]
        fast = SynchronizedClock(lambda: now[0], resolution=1e-3, skew=0.100)
        slow = SynchronizedClock(lambda: now[0], resolution=1e-3, skew=-0.100)
        t_send = fast.tick()
        slow.observe(t_send)  # slow clock receives the message
        t_reply = slow.tick()
        assert t_reply > t_send  # causality preserved despite skew


def test_make_clock_factory():
    lam = make_clock(ClockMode.LAMPORT, lambda: 0.0, 1e-6, 0.0)
    syn = make_clock(ClockMode.SYNCHRONIZED, lambda: 1.0, 1e-6, 0.0)
    assert isinstance(lam, LamportClock)
    assert isinstance(syn, SynchronizedClock)
    with pytest.raises(ValueError):
        make_clock("bogus", lambda: 0.0, 1e-6, 0.0)
