"""Direct unit tests of RMP's NACK / retransmission timer lifecycle.

The cluster tests exercise these paths statistically; here we drive an
isolated RMP against a mock :class:`~repro.core.datapath.GroupContext`
with a real scheduler, so the cancellation edges are deterministic:

* the pending NACK timer is cancelled when the gap fills before the
  randomized delay fires (no spurious RetransmitRequest);
* a holder's scheduled retransmission is suppressed when another
  holder's copy arrives first (paper §5 implosion avoidance).
"""

import random
from typing import List, Tuple

from repro.core import FTMPConfig, MessageType, RetransmissionBuffer, encode
from repro.core.messages import (
    ConnectionId,
    FTMPHeader,
    HeartbeatMessage,
    RegularMessage,
    RetransmitRequestMessage,
)
from repro.core.rmp import RMP
from repro.simnet import Scheduler


class MockContext:
    """Just enough GroupContext for an isolated RMP."""

    def __init__(self, pid: int = 2, config: FTMPConfig = None):
        self._pid = pid
        self.config = config if config is not None else FTMPConfig()
        self.scheduler = Scheduler()
        self.buffer = RetransmissionBuffer()
        self.rng = random.Random(7)
        self.delivered: List[RegularMessage] = []
        self.heartbeats: List[HeartbeatMessage] = []
        self.nacks: List[Tuple[int, int, int]] = []
        self.retransmitted: List[bytes] = []

    @property
    def pid(self):
        return self._pid

    def trace(self, *a, **k):
        pass

    def schedule(self, delay, fn, *args):
        return self.scheduler.schedule(delay, fn, *args)

    def retain(self, msg):
        h = msg.header
        self.buffer.add(h.source, h.sequence_number, h.timestamp, encode(msg))

    def romp_receive(self, msg):
        self.delivered.append(msg)

    def romp_heartbeat(self, msg):
        self.heartbeats.append(msg)

    def pgmp_receive_unreliable(self, msg):
        pass

    def send_retransmit_request(self, src, start, stop):
        self.nacks.append((src, start, stop))

    def retransmit_raw(self, raw, address=None):
        self.retransmitted.append(raw)


def regular(src: int, seq: int, ts: int = 0, retransmission: bool = False):
    h = FTMPHeader(MessageType.REGULAR, source=src, group=1,
                   sequence_number=seq, timestamp=ts or seq, ack_timestamp=0)
    h.retransmission = retransmission
    return RegularMessage(h, ConnectionId.none(), 0, b"m%d" % seq)


def nack(src: int, wanted: int, start: int, stop: int):
    h = FTMPHeader(MessageType.RETRANSMIT_REQUEST, source=src, group=1,
                   sequence_number=0, timestamp=0, ack_timestamp=0)
    return RetransmitRequestMessage(h, processor_id=wanted,
                                    start_seq=start, stop_seq=stop)


def test_gap_arms_nack_timer_and_fires():
    ctx = MockContext()
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 3))  # gap at seq 2
    assert rmp.stats.gaps_detected == 1
    assert ctx.nacks == []  # not yet: randomized delay pending
    ctx.scheduler.run_until(ctx.config.nack_delay * 2)
    assert ctx.nacks == [(1, 2, 2)]
    assert rmp.stats.nacks_sent == 1


def test_nack_cancelled_when_gap_fills_before_delay():
    ctx = MockContext()
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 3))  # gap at seq 2 -> timer armed
    st = rmp.sources()[1]
    assert st.nack_timer is not None
    rmp.on_message(regular(1, 2))  # gap fills before nack_delay elapses
    assert st.nack_timer is None  # _cancel_nack ran
    ctx.scheduler.run_until(ctx.config.nack_retry_interval * 3)
    assert ctx.nacks == []  # the armed NACK never fired
    assert rmp.stats.nacks_sent == 0
    assert [m.header.sequence_number for m in ctx.delivered] == [1, 2, 3]


def test_nack_retries_until_gap_fills():
    ctx = MockContext()
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 4))
    ctx.scheduler.run_until(
        ctx.config.nack_delay + ctx.config.nack_retry_interval * 2.5
    )
    assert len(ctx.nacks) == 3  # initial + two retries
    assert all(n == (1, 2, 3) for n in ctx.nacks)
    rmp.on_message(regular(1, 2))
    rmp.on_message(regular(1, 3))
    before = len(ctx.nacks)
    ctx.scheduler.run_until(ctx.scheduler.now + ctx.config.nack_retry_interval * 3)
    assert len(ctx.nacks) == before  # retry timer cancelled on fill


def test_holder_retransmission_suppressed_by_anothers_copy():
    # pid 2 is a *holder* (not the source), so its answer to a NACK gets a
    # randomized backoff; the source's copy arriving first must cancel it.
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))  # retained in ctx.buffer
    rmp.on_message(nack(3, 1, 1, 1))  # pid 3 asks for (src 1, seq 1)
    assert ctx.retransmitted == []  # backoff pending
    # the source's retransmitted copy arrives before our backoff expires
    rmp.on_message(regular(1, 1, retransmission=True))
    assert rmp.stats.retransmissions_suppressed == 1
    ctx.scheduler.run_until(ctx.config.retransmit_backoff * 2)
    assert ctx.retransmitted == []  # our scheduled answer was cancelled
    assert rmp.stats.retransmissions_sent == 0
    assert rmp.stats.duplicates == 1  # the copy itself counted as duplicate


def test_holder_answers_when_no_other_copy_arrives():
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(ctx.config.retransmit_backoff * 2)
    assert len(ctx.retransmitted) == 1
    assert rmp.stats.retransmissions_sent == 1
    assert rmp.stats.retransmissions_suppressed == 0


def test_source_answers_nack_immediately():
    ctx = MockContext(pid=1)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))  # our own message looped back, retained
    rmp.on_message(nack(3, 1, 1, 1))
    # the source schedules with zero delay: fires at the next step
    ctx.scheduler.run_until(0.0)
    assert len(ctx.retransmitted) == 1


# ----------------------------------------------------------------------
# multi-hole gap recovery (first-hole NACKs walk the stream hole by hole)
# ----------------------------------------------------------------------
def test_missing_range_reports_first_hole_only():
    ctx = MockContext()
    rmp = RMP(ctx)
    for seq in (1, 3, 6, 7):  # holes at 2 and at 4-5
        rmp.on_message(regular(1, seq))
    st = rmp.sources()[1]
    assert rmp._missing_range(st) == (2, 2)
    rmp.on_message(regular(1, 2))  # fills the first hole, delivers 2-3
    assert rmp._missing_range(st) == (4, 5)


def test_multi_hole_recovery_walks_hole_by_hole():
    ctx = MockContext()
    rmp = RMP(ctx)
    for seq in (1, 3, 5):  # two single-message holes: 2 and 4
        rmp.on_message(regular(1, seq))
    ctx.scheduler.run_until(ctx.config.nack_delay * 2)
    assert ctx.nacks == [(1, 2, 2)]  # only the first hole is requested
    rmp.on_message(regular(1, 2))  # retransmission arrives: 2-3 deliver
    # the still-armed retry timer must now target the *second* hole
    ctx.scheduler.run_until(ctx.scheduler.now + ctx.config.nack_retry_interval * 2)
    assert (1, 4, 4) in ctx.nacks
    rmp.on_message(regular(1, 4))
    assert [m.header.sequence_number for m in ctx.delivered] == [1, 2, 3, 4, 5]
    # fully contiguous: the retry timer is gone
    n = len(ctx.nacks)
    ctx.scheduler.run_until(ctx.scheduler.now + ctx.config.nack_retry_interval * 3)
    assert len(ctx.nacks) == n


# ----------------------------------------------------------------------
# NACK escalation-count hygiene (purge on membership change, cap eviction)
# ----------------------------------------------------------------------
def _nack_round(ctx, rmp, src, seq):
    """One full NACK round: request arrives, backoff elapses, answer sent."""
    rmp.on_message(nack(3, src, seq, seq))
    ctx.scheduler.run_until(ctx.scheduler.now + ctx.config.retransmit_backoff * 2)


def test_drop_source_purges_escalation_counts():
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    _nack_round(ctx, rmp, 1, 1)
    _nack_round(ctx, rmp, 1, 1)
    assert rmp._nack_counts == {(1, 1): 2}
    rmp.drop_source(1)
    assert rmp._nack_counts == {}


def test_set_baseline_purges_escalation_counts():
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    _nack_round(ctx, rmp, 1, 1)
    assert rmp._nack_counts == {(1, 1): 1}
    rmp.set_baseline(1, 5)  # rejoin: the source restarts its numbering
    assert rmp._nack_counts == {}


def test_rejoined_source_first_nack_is_suppressible_again():
    # Without the purge, a source that leaves and rejoins with reset
    # sequence numbers inherits its old incarnation's >= 3 escalation
    # count, and the very first NACK for a reused (src, seq) triggers an
    # unsuppressed retransmit storm.
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    for _ in range(3):  # escalate (1, 1) to count 3
        _nack_round(ctx, rmp, 1, 1)
    assert rmp._nack_counts[(1, 1)] >= 3
    rmp.drop_source(1)
    rmp.on_message(regular(1, 1))  # new incarnation reuses seq 1
    before = len(ctx.retransmitted)
    rmp.on_message(nack(3, 1, 1, 1))
    # first request for the new incarnation: randomized backoff, NOT an
    # immediate unsuppressible answer
    assert len(ctx.retransmitted) == before


def test_nack_count_cap_evicts_cold_keys_first():
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp._NACK_COUNT_CAP = 3  # shrink the cap so the test stays small
    for seq in range(1, 6):
        rmp.on_message(regular(1, seq))
    _nack_round(ctx, rmp, 1, 1)
    _nack_round(ctx, rmp, 1, 1)  # (1, 1) is escalating: count 2
    for seq in (2, 3, 4, 5):
        _nack_round(ctx, rmp, 1, seq)
    assert len(rmp._nack_counts) <= 3  # bounded, not ever-growing
    # per-key eviction spared the escalating key and dropped cold ones
    assert rmp._nack_counts[(1, 1)] == 2


def test_nack_count_cap_bounds_even_when_all_keys_escalate():
    ctx = MockContext(pid=2)
    rmp = RMP(ctx)
    rmp._NACK_COUNT_CAP = 2
    for seq in range(1, 5):
        rmp.on_message(regular(1, seq))
    for seq in range(1, 5):
        _nack_round(ctx, rmp, 1, seq)
        _nack_round(ctx, rmp, 1, seq)  # every key reaches count 2
    assert len(rmp._nack_counts) <= 2


# -- SRM-style retry backoff (nack_backoff_factor) ---------------------

def test_nack_backoff_widens_retry_interval():
    ctx = MockContext(config=FTMPConfig(nack_backoff_factor=2.0))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 4))  # hole 2..3
    # initial NACK after nack_delay (2 ms), then retries at 10, 20,
    # 40 ms spacing: fires at 2, 12, 32, 72 ms
    ctx.scheduler.run_until(0.075)
    assert len(ctx.nacks) == 4  # fixed-interval would be 8 by now
    # the interval is capped at nack_retry_max (160 ms): after the
    # 80 ms step the spacing stops doubling
    ctx.scheduler.run_until(0.500)
    assert len(ctx.nacks) == 7  # 152, 312, 472 ms — capped at 160 apart


def test_nack_backoff_resets_on_partial_repair():
    ctx = MockContext(config=FTMPConfig(nack_backoff_factor=2.0))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 4))  # hole 2..3
    ctx.scheduler.run_until(0.040)  # fires at 2, 12, 32 ms; next at 72
    assert len(ctx.nacks) == 3
    rmp.on_message(regular(1, 2))  # partial repair: hole is now just 3
    # at the 72 ms fire the progress is noticed, the backoff resets and
    # the next retry comes at the base 10 ms again (82 ms), not 80 later
    ctx.scheduler.run_until(0.085)
    assert len(ctx.nacks) == 5
    assert ctx.nacks[-1] == (1, 3, 3)


def test_default_backoff_factor_keeps_fixed_interval():
    ctx = MockContext()  # nack_backoff_factor = 1.0 (legacy)
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(regular(1, 4))
    ctx.scheduler.run_until(0.075)
    # 2 ms initial + every 10 ms: 2, 12, 22, ..., 72
    assert len(ctx.nacks) == 8
