"""Adaptive batching window (FTMPConfig.batch_adaptive).

An EWMA of the gap between eligible sends estimates how many messages
the next window would coalesce.  Below ``batch_min_fill`` the send
bypasses the window (low-load latency returns to unbatched); above it
the fixed-window coalescing engages unchanged.  Off by default, and only
meaningful with ``batch_window > 0``.
"""

from repro.analysis.harness import make_cluster
from repro.core import FTMPConfig
from repro.simnet import LinkModel, Topology


def adaptive_cluster(gap: float, n_msgs: int, adaptive: bool = True,
                     seed: int = 3, window: float = 0.001):
    c = make_cluster(
        (1, 2, 3),
        topology=Topology(default=LinkModel(latency=0.0001, jitter=0.00002)),
        seed=seed,
        config=FTMPConfig(heartbeat_interval=0.002, suspect_timeout=10.0,
                          batch_window=window, batch_adaptive=adaptive),
    )
    for i in range(n_msgs):
        c.net.scheduler.at(gap * i, c.stacks[1].multicast, 1,
                           f"1:{i}".encode())
    c.run_for(gap * n_msgs + 1.0)
    return c


def test_low_rate_bypasses_window():
    # 100 msg/s against a 1 ms window: a window would coalesce exactly one
    # message, so every send should go straight to the wire
    c = adaptive_cluster(gap=0.010, n_msgs=50)
    snap = c.stacks[1].snapshot()
    assert snap["group.1.batch.adaptive_bypasses"] == 50
    assert snap["group.1.batch.batches_sent"] == 0
    c.assert_agreement()
    c.stop()


def test_high_rate_engages_coalescing():
    # 10k msg/s: ~10 messages per window — the window must engage after a
    # short EWMA ramp and carry the overwhelming majority of the traffic
    c = adaptive_cluster(gap=0.0001, n_msgs=400)
    snap = c.stacks[1].snapshot()
    assert snap["group.1.batch.batches_sent"] > 10
    assert snap["group.1.batch.messages_batched"] > 350
    assert snap["group.1.batch.adaptive_bypasses"] < 50  # ramp only
    c.assert_agreement()
    c.stop()


def test_adaptive_off_means_fixed_window():
    c = adaptive_cluster(gap=0.010, n_msgs=50, adaptive=False)
    snap = c.stacks[1].snapshot()
    assert snap["group.1.batch.adaptive_bypasses"] == 0
    # the fixed window taxes every lone send with a timer flush
    assert snap["group.1.batch.flushes_on_timer"] == 50
    c.assert_agreement()
    c.stop()


def test_adaptive_low_rate_latency_near_unbatched():
    from repro.analysis.harness import TimedWorkload

    def mean_low_rate_latency(adaptive: bool) -> float:
        c = make_cluster(
            (1, 2, 3),
            topology=Topology(default=LinkModel(latency=0.0001,
                                                jitter=0.00002)),
            seed=3,
            # tight heartbeats so the ordering gate's wait (~one heartbeat
            # interval) does not mask the batch window's latency tax
            config=FTMPConfig(heartbeat_interval=0.0003, suspect_timeout=10.0,
                              batch_window=0.001, batch_adaptive=adaptive),
        )
        w = TimedWorkload(c)
        w.uniform(senders=(1,), start=0.05, stop=0.55, interval=0.010)
        c.run_for(1.0)
        lat = w.latencies((2, 3))
        c.stop()
        return sum(lat) / len(lat)

    lat_fixed = mean_low_rate_latency(adaptive=False)
    lat_adapt = mean_low_rate_latency(adaptive=True)
    # the fixed window adds ~batch_window to every send at this rate;
    # adaptive recovers most of it
    assert lat_adapt < lat_fixed - 0.0005, (lat_fixed, lat_adapt)


def test_rate_transition_quiet_burst_quiet():
    c = make_cluster(
        (1, 2, 3),
        topology=Topology(default=LinkModel(latency=0.0001, jitter=0.00002)),
        seed=3,
        config=FTMPConfig(heartbeat_interval=0.002, suspect_timeout=10.0,
                          batch_window=0.001, batch_adaptive=True),
    )
    n = 0
    # quiet phase: 20 sends at 100/s
    for i in range(20):
        c.net.scheduler.at(0.010 * i, c.stacks[1].multicast, 1,
                           f"1:{n + i}".encode())
    n += 20
    # burst phase: 300 sends at 10k/s
    for i in range(300):
        c.net.scheduler.at(0.5 + 0.0001 * i, c.stacks[1].multicast, 1,
                           f"1:{n + i}".encode())
    n += 300
    # quiet again: the idle hard-reset must restore bypassing at once
    for i in range(20):
        c.net.scheduler.at(1.0 + 0.010 * i, c.stacks[1].multicast, 1,
                           f"1:{n + i}".encode())
    n += 20
    c.run_for(2.0)
    snap = c.stacks[1].snapshot()
    # the two quiet phases bypass (40 sends) plus a short burst ramp
    assert snap["group.1.batch.adaptive_bypasses"] >= 40
    assert snap["group.1.batch.adaptive_bypasses"] <= 70
    # the burst still coalesced heavily
    assert snap["group.1.batch.messages_batched"] > 250
    expected = [f"1:{i}".encode() for i in range(n)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.assert_agreement()
    c.stop()


def test_bypass_never_reorders_past_pending_window():
    # A send while the window is non-empty must never bypass it — that
    # would put the sender's reliable stream out of order on the wire.
    c = make_cluster(
        (1, 2),
        seed=2,
        config=FTMPConfig(heartbeat_interval=0.002, suspect_timeout=10.0,
                          batch_window=0.050, batch_adaptive=True,
                          batch_min_fill=4),
    )
    g = c.stacks[1].group(1)
    # prime the EWMA into "bypass" territory with slow sends
    for i in range(5):
        c.net.scheduler.at(0.3 * i, c.stacks[1].multicast, 1, b"slow%d" % i)
    c.run_for(1.6)
    # two back-to-back sends: the first may bypass, but once something
    # sits in the window the second must join it, not jump the queue
    c.stacks[1].multicast(1, b"first")
    if g.send_path.pending_batch == 0:
        # first bypassed (EWMA still slow); force one into the window by
        # sending again within the same instant until one is pending
        c.stacks[1].multicast(1, b"second")
    pending_before = g.send_path.pending_batch
    c.stacks[1].multicast(1, b"third")
    assert g.send_path.pending_batch >= pending_before  # joined, no bypass
    c.run_for(1.0)
    payloads = c.listeners[2].payloads(1)
    mine = [p for p in payloads if not p.startswith(b"slow")]
    assert mine == [b"first", b"second", b"third"][:len(mine)]
    c.assert_agreement()
    c.stop()
