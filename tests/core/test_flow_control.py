"""Stability-driven flow control (FTMPConfig.flow_control_window).

The credit window bounds how far a sender's own Regular stream may run
ahead of the group-wide *stability timestamp* (ROMP's §6 positive-ack
minimum).  Sends beyond the window queue at the sender — backpressure —
and drain as stability advances.  Off by default; with the window at 0
the controller is inert and the datapath is bit-identical to the legacy
stack (the legacy suites assert that side).
"""

import pytest

from repro.analysis.harness import make_cluster
from repro.core import FlowControlSaturated, FTMPConfig
from repro.simnet import LinkModel, Topology, lossy_lan


def fc_cluster(window: int, seed: int = 3, loss: float = 0.0, **cfg):
    topo = (
        lossy_lan(loss)
        if loss
        else Topology(default=LinkModel(latency=0.0001, jitter=0.00002))
    )
    return make_cluster(
        (1, 2, 3),
        topology=topo,
        seed=seed,
        config=FTMPConfig(heartbeat_interval=0.002, suspect_timeout=10.0,
                          flow_control_window=window, **cfg),
    )


def test_flow_control_off_by_default_inert():
    c = fc_cluster(window=0)
    for i in range(50):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    g = c.stacks[1].group(1)
    assert g.flow.queue_depth == 0  # nothing ever queues
    assert g.flow.credits == 0  # gauge reads 0 when disabled
    c.run_for(1.0)
    snap = c.stacks[1].snapshot()
    assert snap["group.1.flow.sends_admitted"] == 0
    assert snap["group.1.flow.sends_queued"] == 0
    c.assert_agreement()
    c.stop()


def test_burst_beyond_window_queues_then_drains_in_order():
    c = fc_cluster(window=8)
    g = c.stacks[1].group(1)
    for i in range(100):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    # only the window's worth went out; the rest are backpressured
    assert g.flow.inflight == 8
    assert g.flow.queue_depth == 92
    assert g.flow.blocked
    c.run_for(2.0)
    # stability advances released everything, in submission order
    assert g.flow.queue_depth == 0
    expected = [f"1:{i}".encode() for i in range(100)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    snap = c.stacks[1].snapshot()
    assert snap["group.1.flow.sends_queued"] == 92
    assert snap["group.1.flow.sends_released"] == 92
    assert snap["group.1.flow.sends_admitted"] == 100
    assert snap["group.1.flow.credit_stalls"] >= 1
    assert snap["group.1.flow.max_queue_depth"] == 92
    c.assert_agreement()
    c.stop()


def test_inflight_tracks_stability_not_wire():
    c = fc_cluster(window=8)
    g = c.stacks[1].group(1)
    c.stacks[1].multicast(1, b"one")
    assert g.flow.inflight == 1
    assert g.flow.credits == 7
    c.run_for(0.5)  # acked by everyone -> stable -> credit recycled
    assert g.flow.inflight == 0
    assert g.flow.credits == 8
    c.stop()


def test_flow_control_survives_loss():
    c = fc_cluster(window=8, loss=0.15, seed=11)
    for i in range(60):
        c.net.scheduler.at(0.0004 * i, c.stacks[1].multicast, 1,
                           f"1:{i}".encode())
    c.run_for(3.0)
    expected = [f"1:{i}".encode() for i in range(60)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    assert c.stacks[1].group(1).flow.queue_depth == 0
    c.assert_agreement()
    c.stop()


def test_multiple_flow_controlled_senders():
    c = fc_cluster(window=4)
    for i in range(40):
        for s in (1, 2, 3):
            c.net.scheduler.at(0.0002 * i, c.stacks[s].multicast, 1,
                               f"{s}:{i}".encode())
    c.run_for(2.0)
    c.assert_agreement()
    for pid in (1, 2, 3):
        payloads = c.listeners[pid].payloads(1)
        for s in (1, 2, 3):
            own = [p for p in payloads if p.startswith(f"{s}:".encode())]
            assert own == [f"{s}:{i}".encode() for i in range(40)]
    c.stop()


def test_control_traffic_not_subject_to_credits():
    # A membership change must go through while the sender is fully
    # backpressured: credits gate only application Regulars.
    c = fc_cluster(window=2)
    g1 = c.stacks[1].group(1)
    for i in range(30):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    assert g1.flow.blocked
    c.stacks[4] = type(c.stacks[1])(c.net.endpoint(4), c.stacks[1].config)
    c.stacks[4].join_as_new_member(1, 5001)
    c.stacks[1].add_processor(1, 4)  # control send despite zero credits
    c.run_for(2.0)
    assert 4 in g1.membership
    for pid in (1, 2, 3, 4):
        assert 4 in c.stacks[pid].group(1).membership
    c.stop()


# ----------------------------------------------------------------------
# the heartbeat-liveness regression (satellite fix)
# ----------------------------------------------------------------------
def test_heartbeats_not_suppressed_while_credit_blocked():
    # Regression: heartbeat suppression under batching keyed only on a
    # non-empty batch window.  A sender blocked on credits with a pending
    # window would then go silent — but its heartbeats are exactly what
    # advances the peers' stability view and refills its credits.
    c = fc_cluster(window=2, batch_window=0.004)
    g = c.stacks[1].group(1)
    for i in range(50):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    assert g.flow.blocked
    hb_before = g.stats.heartbeats_sent
    c.run_for(2.0)
    # everything drained (liveness held: stability kept advancing)...
    assert g.flow.queue_depth == 0
    expected = [f"1:{i}".encode() for i in range(50)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    # ...and nobody suspected the backpressured sender
    for pid in (1, 2, 3):
        assert not c.stacks[pid].group(1).fault_detector.suspected
    assert g.stats.heartbeats_sent > hb_before
    c.stop()


def test_heartbeat_tick_fires_despite_pending_window_when_blocked():
    # Direct unit exercise of the guard in SendPath._heartbeat_tick: a
    # pending batch normally suppresses the heartbeat, but never while
    # the flow controller reports blocked.
    c = fc_cluster(window=1, batch_window=0.050)
    g = c.stacks[1].group(1)
    c.stacks[1].multicast(1, b"a")  # consumes the only credit
    c.stacks[1].multicast(1, b"b")  # queues: blocked
    # arrange a pending window: bypass the flow controller deliberately
    g.send_path._pending = [b"fake-part"]
    assert g.flow.blocked and g.send_path.pending_batch > 0
    suppressed_before = g.batch_stats.heartbeats_suppressed
    hb_before = g.stats.heartbeats_sent
    g.send_path._last_send_time = -1.0  # look idle to the heartbeat check
    g.send_path._heartbeat_tick()
    assert g.stats.heartbeats_sent == hb_before + 1  # fired, not suppressed
    assert g.batch_stats.heartbeats_suppressed == suppressed_before
    g.send_path._pending = []
    c.stop()


def test_stability_advance_does_not_breach_quiescence_barrier():
    # The other direction of the barrier/credits composition: a stability
    # advance while a §7 Connect barrier is pending (heartbeats keep
    # flowing exactly so a blocked sender's credits refill) must NOT
    # release credit-queued Regulars past the barrier — and the queue
    # must drain once the barrier clears, even without a further
    # stability advance.
    c = fc_cluster(window=2)
    c.run_for(0.1)  # let clocks advance so the barrier can clear later
    g = c.stacks[1].group(1)
    for i in range(10):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    assert g.flow.inflight == 2 and g.flow.queue_depth == 8
    g.romp.set_send_barrier(g.clock.time + 5000)
    sent_before = g.stats.regulars_sent
    c.run_for(0.2)  # stability covers the 2 in-flight; barrier still up
    assert not g.romp.can_send_ordered()
    assert g.flow.inflight == 0  # credits recycled by stability...
    assert g.flow.queue_depth == 8  # ...but the queue held at the barrier
    assert g.stats.regulars_sent == sent_before
    c.run_for(10.0)  # heartbeats clear the barrier; everything drains
    assert g.romp.can_send_ordered()
    assert g.flow.queue_depth == 0
    expected = [f"1:{i}".encode() for i in range(10)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.assert_agreement()
    c.stop()


def test_quiescence_barrier_and_credits_compose():
    # Sends deferred by the §7 quiescence barrier re-enter through the
    # flow controller when the barrier clears — the two queues compose
    # without reordering or losing messages.
    c = fc_cluster(window=4)
    c.run_for(0.1)  # let clocks advance so a low barrier can clear
    g = c.stacks[1].group(1)
    barrier = g.clock.time + 2  # just ahead: heartbeats clear it soon
    g.romp.set_send_barrier(barrier)
    for i in range(12):
        c.stacks[1].multicast(1, f"1:{i}".encode())
    assert g.stats.ordered_sends_deferred == 12
    assert g.flow.inflight == 0  # nothing reached the wire
    c.run_for(2.0)
    snap = c.stacks[1].snapshot()
    # the barrier released into the flow controller: only a window's
    # worth was admitted at once, the rest queued and drained
    assert snap["group.1.flow.sends_queued"] == 8
    assert snap["group.1.flow.sends_released"] == 8
    assert snap["group.1.flow.sends_admitted"] == 12
    expected = [f"1:{i}".encode() for i in range(12)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.stop()


# ----------------------------------------------------------------------
# synchronous backpressure surface: admission signal + queue cap
# ----------------------------------------------------------------------
def test_multicast_returns_admission():
    c = fc_cluster(window=1)
    assert c.stacks[1].multicast(1, b"a") is True  # consumed the credit
    assert c.stacks[1].multicast(1, b"b") is False  # queued: backpressure
    c.run_for(1.0)
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == [b"a", b"b"]
    c.stop()


def test_flow_queue_limit_rejects_with_explicit_error():
    c = fc_cluster(window=2, flow_queue_limit=5)
    g = c.stacks[1].group(1)
    admitted = [c.stacks[1].multicast(1, f"1:{i}".encode()) for i in range(7)]
    assert admitted == [True] * 2 + [False] * 5
    with pytest.raises(FlowControlSaturated):
        c.stacks[1].multicast(1, b"overflow")
    assert g.flow.queue_depth == 5  # the rejected send was not queued
    assert g.flow.stats.sends_rejected == 1
    c.run_for(2.0)
    # accepted sends all drain and deliver; the rejected one never does
    expected = [f"1:{i}".encode() for i in range(7)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.assert_agreement()
    c.stop()


def test_flow_queue_limit_counts_barrier_deferrals():
    # The cap bounds everything held at the sender, including sends
    # deferred by a §7 quiescence barrier — otherwise the barrier queue
    # would be the unbounded loophole.
    c = fc_cluster(window=2, flow_queue_limit=3)
    c.run_for(0.05)
    g = c.stacks[1].group(1)
    g.romp.set_send_barrier(g.clock.time + 100000)
    for i in range(3):
        assert c.stacks[1].multicast(1, f"1:{i}".encode()) is False
    with pytest.raises(FlowControlSaturated):
        c.stacks[1].multicast(1, b"overflow")
    assert g.flow.stats.sends_rejected == 1
    c.stop()


def test_flow_queue_unbounded_by_default():
    c = fc_cluster(window=1)
    for i in range(500):
        c.stacks[1].multicast(1, f"1:{i}".encode())  # never raises
    assert c.stacks[1].group(1).flow.queue_depth == 499
    c.stop()
