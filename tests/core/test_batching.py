"""Batched / piggybacked send path (FTMPConfig.batch_window) and the
unified stats registry.

Batching is a transport-level extension: small Regulars bound for the
same group address coalesce into one Batch datagram for up to
``batch_window`` seconds.  The protocol layers are batch-oblivious — the
receive path unpacks before RMP — so ordering, reliability and agreement
must be unaffected, only the datagram count changes.
"""

from repro.analysis.harness import make_cluster
from repro.core import FTMPConfig
from repro.simnet import LinkModel, Topology, lossy_lan


def loaded_cluster(batch_window: float, seed: int = 3, loss: float = 0.0,
                   n_msgs: int = 100, senders=(1,)):
    topo = (
        lossy_lan(loss)
        if loss
        else Topology(default=LinkModel(latency=0.0001, jitter=0.00002))
    )
    c = make_cluster(
        (1, 2, 3),
        topology=topo,
        seed=seed,
        config=FTMPConfig(heartbeat_interval=0.002, suspect_timeout=10.0,
                          batch_window=batch_window),
    )
    for i in range(n_msgs):
        for s in senders:
            c.net.scheduler.at(0.0004 * i, c.stacks[s].multicast, 1,
                               f"{s}:{i}".encode())
    c.run_for(1.0)
    return c


def test_batching_off_by_default_no_batch_traffic():
    c = loaded_cluster(batch_window=0.0)
    for pid in (1, 2, 3):
        snap = c.stacks[pid].snapshot()
        assert snap["group.1.batch.batches_sent"] == 0
        assert snap["group.1.batch.batches_received"] == 0
        assert snap["group.1.batch.heartbeats_suppressed"] == 0
    c.assert_agreement()
    c.stop()


def test_batching_preserves_delivery_and_agreement():
    c = loaded_cluster(batch_window=0.001)
    expected = [f"1:{i}".encode() for i in range(100)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.assert_agreement()
    snap = c.stacks[1].snapshot()
    assert snap["group.1.batch.batches_sent"] > 0
    assert snap["group.1.batch.messages_batched"] > snap["group.1.batch.batches_sent"]
    c.stop()


def test_batching_reduces_datagrams_at_equal_load():
    off = loaded_cluster(batch_window=0.0)
    on = loaded_cluster(batch_window=0.001)
    eff_off = off.batch_efficiency()
    eff_on = on.batch_efficiency()
    # same delivered work...
    assert eff_on["ordered_deliveries"] == eff_off["ordered_deliveries"]
    # ...with measurably fewer datagrams per delivered message
    assert eff_on["datagrams_per_delivery"] < eff_off["datagrams_per_delivery"]
    off.stop()
    on.stop()


def test_batching_survives_loss():
    c = loaded_cluster(batch_window=0.001, loss=0.15, seed=11, n_msgs=40)
    expected = [f"1:{i}".encode() for i in range(40)]
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == expected
    c.assert_agreement()
    c.stop()


def test_multiple_senders_batch_independently():
    c = loaded_cluster(batch_window=0.001, senders=(1, 2, 3), n_msgs=50)
    c.assert_agreement()
    for pid in (1, 2, 3):
        payloads = c.listeners[pid].payloads(1)
        for s in (1, 2, 3):
            own = [p for p in payloads if p.startswith(f"{s}:".encode())]
            assert own == [f"{s}:{i}".encode() for i in range(50)]
    c.stop()


def test_control_messages_flush_pending_window_first():
    # An AddProcessor (non-batchable) while Regulars sit in the window
    # must drain the window first, or receivers would see the sender's
    # reliable stream out of order on the wire.
    c = make_cluster((1, 2, 3), seed=5,
                     config=FTMPConfig(heartbeat_interval=0.002,
                                       suspect_timeout=10.0,
                                       batch_window=0.005))
    g1 = c.stacks[1].group(1)
    c.stacks[1].multicast(1, b"queued-behind-window")
    assert g1.send_path.pending_batch == 1
    c.stacks[4] = type(c.stacks[1])(c.net.endpoint(4), c.stacks[1].config)
    c.stacks[4].join_as_new_member(1, 5001)
    c.stacks[1].add_processor(1, 4)  # reliable control message
    assert g1.send_path.pending_batch == 0  # window drained first
    assert g1.batch_stats.flushes_on_order >= 1
    c.run_for(1.0)
    assert b"queued-behind-window" in c.listeners[2].payloads(1)
    assert 4 in g1.membership
    c.stop()


def test_heartbeats_suppressed_while_window_pending():
    c = loaded_cluster(batch_window=0.004)
    snap = c.stacks[1].snapshot()
    assert snap["group.1.batch.heartbeats_suppressed"] > 0
    # liveness unharmed: nobody suspected anybody
    for pid in (1, 2, 3):
        assert not c.stacks[pid].group(1).fault_detector.suspected
    c.stop()


def test_window_flushes_on_size_threshold():
    c = make_cluster((1, 2), seed=2,
                     config=FTMPConfig(suspect_timeout=10.0, batch_window=10.0,
                                       batch_max_bytes=400))
    g1 = c.stacks[1].group(1)
    # window time is huge; only the byte cap can flush
    for _ in range(20):
        c.stacks[1].multicast(1, b"x" * 80)
    assert g1.batch_stats.flushes_on_size > 0
    c.run_for(0.5)
    c.stop()


def test_snapshot_exposes_layer_counters():
    c = loaded_cluster(batch_window=0.0)
    snap = c.stacks[1].snapshot()
    for key in (
        "stack.datagrams_sent",
        "stack.datagrams_received",
        "group.1.send.regulars_sent",
        "group.1.rmp.delivered",
        "group.1.romp.ordered_deliveries",
        "group.1.pgmp.views_installed",
        "group.1.fault_detector.suspicions_raised",
        "group.1.gauges.queue_depth",
        "connections.duplicates_suppressed",
    ):
        assert key in snap, key
    assert snap["group.1.send.regulars_sent"] == 100
    # snapshot agrees with the legacy per-object counters
    assert snap["stack.datagrams_sent"] == c.stacks[1].stats.datagrams_sent
    assert snap["group.1.rmp.delivered"] == c.stacks[1].group(1).rmp.stats.delivered
    c.stop()


def test_group_counters_unregistered_on_group_stop():
    c = loaded_cluster(batch_window=0.0)
    reg = c.stacks[1].registry
    assert any(n.startswith("group.1.") for n in reg.names())
    c.stacks[1].remove_group(1)
    assert not any(n.startswith("group.1.") for n in reg.names())
    assert "stack" in reg.names()  # stack-level counters survive
    c.stop()


def test_aggregate_snapshot_sums_across_members():
    c = loaded_cluster(batch_window=0.0)
    agg = c.aggregate_snapshot()
    assert agg["stack.datagrams_sent"] == sum(
        st.stats.datagrams_sent for st in c.stacks.values()
    )
    assert agg["group.1.romp.ordered_deliveries"] == 300  # 100 msgs x 3 members
    c.stop()
