"""Partition behaviour (primary-component semantics).

The side of a partition holding a strict majority of the membership
convicts and removes the other side and continues; minority components
cannot convict and stall until the partition heals — so the total order
never splits.  These semantics follow from the DESIGN.md §2 conviction
rule and are pinned down here.
"""

from repro.analysis import make_cluster
from repro.core import FTMPConfig


def test_majority_side_continues_minority_stalls():
    cfg = FTMPConfig(suspect_timeout=0.060)
    c = make_cluster((1, 2, 3, 4, 5), config=cfg, seed=1)
    c.run_for(0.05)
    c.net.partition({1, 2, 3}, {4, 5})
    c.run_for(1.5)
    # majority component: convicted and removed the minority
    for pid in (1, 2, 3):
        assert c.listeners[pid].current_membership(1) == (1, 2, 3)
    # majority keeps making progress
    c.stacks[1].multicast(1, b"majority-works")
    c.run_for(0.3)
    assert b"majority-works" in c.listeners[3].payloads(1)
    # minority (2 of 5): cannot reach a strict majority of the full
    # membership, so no fault view forms there — it stalls
    for pid in (4, 5):
        fault_views = [v for v in c.listeners[pid].views if v.reason == "fault"]
        assert fault_views == []
    # a minority send is not delivered on the majority side
    c.stacks[4].multicast(1, b"minority-cry")
    c.run_for(0.3)
    assert b"minority-cry" not in c.listeners[1].payloads(1)


def test_even_split_no_side_can_convict():
    cfg = FTMPConfig(suspect_timeout=0.060)
    c = make_cluster((1, 2, 3, 4), config=cfg, seed=2)
    c.run_for(0.05)
    c.net.partition({1, 2}, {3, 4})
    c.run_for(1.0)
    # 2 votes is not a strict majority of 4: neither side convicts
    for pid in (1, 2, 3, 4):
        assert [v for v in c.listeners[pid].views if v.reason == "fault"] == []
    # after healing, the group recovers with its full membership
    c.net.heal()
    c.run_for(1.5)
    c.stacks[1].multicast(1, b"after-heal")
    c.run_for(0.5)
    for pid in (1, 2, 3, 4):
        m = c.listeners[pid].current_membership(1)
        assert m in (None, (1, 2, 3, 4))
        assert b"after-heal" in c.listeners[pid].payloads(1)


def test_short_partition_heals_without_eviction():
    cfg = FTMPConfig(suspect_timeout=0.300)
    c = make_cluster((1, 2, 3), config=cfg, seed=3)
    c.run_for(0.05)
    c.stacks[1].multicast(1, b"before")
    c.run_for(0.05)
    c.net.partition({1, 2}, {3})
    c.stacks[1].multicast(1, b"during")
    c.run_for(0.1)  # shorter than the suspect timeout
    c.net.heal()
    c.run_for(1.0)
    # nobody was evicted; node 3 recovered the partition-era message
    for pid in (1, 2, 3):
        assert c.listeners[pid].current_membership(1) in (None, (1, 2, 3))
        assert c.listeners[pid].payloads(1) == [b"before", b"during"]


def test_evicted_minority_member_knows_it_was_removed():
    cfg = FTMPConfig(suspect_timeout=0.060)
    c = make_cluster((1, 2, 3), config=cfg, seed=4)
    c.run_for(0.05)
    c.net.partition({1, 2}, {3})
    c.run_for(1.0)
    c.net.heal()
    c.run_for(1.0)
    # the majority formed (1,2); when healed, node 3 receives their
    # Membership traffic naming a view without it and evicts itself
    assert c.listeners[1].current_membership(1) == (1, 2)
    evicted = [v for v in c.listeners[3].views if v.reason == "evicted"]
    assert evicted and c.stacks[3].group(1) is None
