"""Protocol event tracing tests."""

from repro.analysis import make_cluster
from repro.core import FTMPConfig, Tracer
from repro.simnet import lossy_lan


def traced_cluster(pids=(1, 2, 3), **kwargs):
    c = make_cluster(pids, **kwargs)
    tracers = {}
    for pid in pids:
        t = Tracer()
        c.stacks[pid].tracer = t
        tracers[pid] = t
    return c, tracers


def test_send_recv_deliver_events():
    c, tracers = traced_cluster()
    c.stacks[1].multicast(1, b"traced")
    c.run_for(0.1)
    t1 = tracers[1]
    sends = t1.of_kind("send")
    assert any(e.detail["type"] == "REGULAR" for e in sends)
    assert t1.count("deliver") == 1
    d = t1.of_kind("deliver")[0]
    assert d.detail["src"] == 1 and d.detail["bytes"] == 6
    assert d.processor == 1 and d.group == 1
    # the receiver saw recv + deliver too
    assert tracers[2].count("deliver") == 1
    assert tracers[2].count("recv") >= 1


def test_gap_nack_resend_events_under_loss():
    c, tracers = traced_cluster(topology=lossy_lan(0.3), seed=9,
                                config=FTMPConfig(suspect_timeout=10.0))
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, b"x")
    c.run_for(2.0)
    total_gaps = sum(t.count("gap") for t in tracers.values())
    total_nacks = sum(t.count("nack") for t in tracers.values())
    total_resends = sum(t.count("resend") for t in tracers.values())
    assert total_gaps > 0
    assert total_nacks > 0
    assert total_resends > 0
    # nack events carry the missing range
    nack = next(e for t in tracers.values() for e in t.of_kind("nack"))
    assert nack.detail["start"] <= nack.detail["stop"]


def test_suspect_fault_view_events_on_crash():
    c, tracers = traced_cluster()
    c.run_for(0.05)
    c.net.crash(3)
    c.run_for(1.0)
    t1 = tracers[1]
    suspects = t1.of_kind("suspect")
    assert any(e.detail == {"suspect": 3, "action": "raised"} for e in suspects)
    faults = t1.of_kind("fault")
    assert faults and faults[0].detail["convicted"] == (3,)
    views = t1.of_kind("view")
    assert views[-1].detail["membership"] == (1, 2)
    # events are time-ordered: suspicion precedes the fault view
    assert suspects[0].time < faults[0].time


def test_capacity_bound_drops_excess():
    c, tracers = traced_cluster(pids=(1, 2))
    t = Tracer(capacity=5)
    c.stacks[1].tracer = t
    for i in range(10):
        c.stacks[1].multicast(1, b"y")
    c.run_for(0.2)
    assert len(t) == 5
    assert t.dropped > 0


def test_timeline_and_clear():
    c, tracers = traced_cluster(pids=(1, 2))
    c.stacks[1].multicast(1, b"z")
    c.run_for(0.1)
    text = tracers[1].timeline()
    assert "deliver" in text and "p1 g1" in text
    tracers[1].clear()
    assert len(tracers[1]) == 0


def test_no_tracer_means_no_events_and_no_errors():
    c = make_cluster((1, 2))
    c.stacks[1].multicast(1, b"ok")
    c.run_for(0.1)  # simply must not raise
    assert c.listeners[2].payloads(1) == [b"ok"]
