"""RMP behaviour: reliable source-ordered delivery, NACKs, retransmission."""

from repro.core import FTMPConfig
from repro.simnet import LinkModel, lan, lossy_lan

from repro.analysis.harness import make_cluster


def test_all_messages_delivered_under_heavy_loss():
    c = make_cluster((1, 2, 3), topology=lossy_lan(0.25), seed=11,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(30):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, f"m{i}".encode())
    c.run_for(3.0)
    for pid in (1, 2, 3):
        assert c.listeners[pid].payloads(1) == [f"m{i}".encode() for i in range(30)]


def test_source_order_preserved_per_sender():
    c = make_cluster((1, 2, 3), topology=lossy_lan(0.15), seed=5,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(20):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.001 * i, c.stacks[pid].multicast, 1, f"{pid}:{i}".encode())
    c.run_for(3.0)
    for receiver in (1, 2, 3):
        payloads = c.listeners[receiver].payloads(1)
        for sender in (1, 2, 3):
            own = [p for p in payloads if p.startswith(f"{sender}:".encode())]
            assert own == [f"{sender}:{i}".encode() for i in range(20)]


def test_nacks_are_sent_on_gaps():
    c = make_cluster((1, 2), topology=lossy_lan(0.3), seed=9,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, f"m{i}".encode())
    c.run_for(2.0)
    stats = c.stacks[2].group(1).rmp.stats
    assert stats.nacks_sent > 0
    assert c.listeners[2].payloads(1) == [f"m{i}".encode() for i in range(20)]


def test_no_nacks_without_loss():
    c = make_cluster((1, 2, 3), seed=1)
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, b"x")
    c.run_for(1.0)
    for pid in (1, 2, 3):
        assert c.stacks[pid].group(1).rmp.stats.nacks_sent == 0


def test_any_holder_may_retransmit():
    # Degrade the 1->3 link to 90% loss: node 3 learns of node 1's
    # messages only from the occasional packet that gets through, and
    # recovery must come mostly from node 2's buffer ("any processor that
    # has received ... may retransmit", §5).
    topo = lan()
    topo.set_link(1, 3, LinkModel(latency=0.0001, jitter=0, loss=0.9), symmetric=False)
    c = make_cluster((1, 2, 3), topology=topo, seed=3,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(10):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, f"m{i}".encode())
    c.run_for(5.0)
    assert c.listeners[3].payloads(1) == [f"m{i}".encode() for i in range(10)]
    # node 2 must have answered at least one NACK
    assert c.stacks[2].group(1).rmp.stats.retransmissions_sent > 0


def test_retransmissions_carry_the_flag_and_are_deduplicated():
    c = make_cluster((1, 2, 3), topology=lossy_lan(0.2), seed=21,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(25):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, f"m{i}".encode())
    c.run_for(3.0)
    g2 = c.stacks[2].group(1)
    # duplicates (original + retransmission both arriving) are absorbed
    assert c.listeners[2].payloads(1) == [f"m{i}".encode() for i in range(25)]
    assert g2.rmp.stats.delivered == 25


def test_heartbeat_reveals_gap_when_last_message_lost():
    # Drop everything 1->2 for a while, then stop sending: only node 1's
    # heartbeats tell node 2 it missed messages.
    topo = lan()
    link = LinkModel(latency=0.0001, jitter=0, loss=1.0)
    topo.set_link(1, 2, link, symmetric=False)
    c = make_cluster((1, 2, 3), topology=topo, seed=4,
                     config=FTMPConfig(suspect_timeout=10.0))
    c.stacks[1].multicast(1, b"lost-on-1-to-2")
    # heal after the original transmission + first NACK window
    c.net.scheduler.at(0.005, lambda: setattr(link, "loss", 0.0))
    c.run_for(1.0)
    assert c.listeners[2].payloads(1) == [b"lost-on-1-to-2"]


def test_duplicate_regular_messages_counted_not_redelivered():
    c = make_cluster((1, 2), seed=2)
    g1 = c.stacks[1].group(1)
    c.stacks[1].multicast(1, b"once")
    c.run_for(0.05)
    # re-inject the retained wire message as a spurious retransmission
    buffered = g1.buffer.get(1, 1)
    if buffered is not None:  # may already be GC'd; then fabricate nothing
        g1.retransmit_raw(buffered.data)
        c.run_for(0.05)
    assert c.listeners[2].payloads(1) == [b"once"]


def test_retransmit_request_not_answered_for_unknown_messages():
    c = make_cluster((1, 2), seed=2)
    g1 = c.stacks[1].group(1)
    before = g1.rmp.stats.retransmissions_sent
    # ask for messages that never existed
    g2 = c.stacks[2].group(1)
    g2.send_retransmit_request(source=1, start=100, stop=105)
    c.run_for(0.1)
    assert g1.rmp.stats.retransmissions_sent == before


def test_stats_track_out_of_order_buffering():
    c = make_cluster((1, 2), topology=lossy_lan(0.3), seed=17,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(30):
        c.net.scheduler.at(0.0005 * i, c.stacks[1].multicast, 1, b"z")
    c.run_for(2.0)
    s = c.stacks[2].group(1).rmp.stats
    assert s.delivered == 30
    assert s.out_of_order > 0
    assert s.gaps_detected > 0
