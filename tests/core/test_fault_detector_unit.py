"""Fault detector unit behaviour (suspicion lifecycle, grace, rejoin)."""

from repro.analysis import make_cluster
from repro.core import FTMPConfig, FTMPStack, RecordingListener


def test_no_suspicion_while_everyone_heartbeats():
    c = make_cluster((1, 2, 3), config=FTMPConfig(suspect_timeout=0.050))
    c.run_for(1.0)
    for pid in (1, 2, 3):
        fd = c.stacks[pid].group(1).fault_detector
        assert fd.stats.suspicions_raised == 0
        assert fd.suspected == set()


def test_silence_raises_suspicion_within_bounds():
    cfg = FTMPConfig(heartbeat_interval=0.005, suspect_timeout=0.050)
    c = make_cluster((1, 2, 3), config=cfg)
    c.run_for(0.05)
    t_crash = c.net.scheduler.now
    c.net.crash(3)
    c.run_for(0.5)
    # suspicion was raised (then consumed by the conviction) and the
    # resulting fault report lands within detection bounds
    fd = c.stacks[1].group(1).fault_detector
    assert fd.stats.suspicions_raised >= 1
    report = c.listeners[1].faults[0]
    elapsed = report.reported_at - t_crash
    assert cfg.suspect_timeout <= elapsed <= cfg.suspect_timeout + 0.050


def test_grace_period_defers_suspicion_of_new_members():
    cfg = FTMPConfig(suspect_timeout=0.030, join_grace=0.200)
    c = make_cluster((1, 2), config=cfg)
    g = c.stacks[1].group(1)
    # partition 2 away and grant it a long grace window
    c.net.partition({1}, {2})
    g.fault_detector.watch(2, grace=0.2)
    c.run_for(0.1)  # silence > timeout but < grace
    assert g.fault_detector.stats.suspicions_raised == 0
    c.run_for(0.3)  # grace expired, still silent -> suspicion now fires
    assert g.fault_detector.stats.suspicions_raised >= 1


def test_forget_clears_state():
    c = make_cluster((1, 2))
    fd = c.stacks[1].group(1).fault_detector
    c.run_for(0.05)
    fd.forget(2)
    assert 2 not in fd.suspected


def test_evicted_processor_can_rejoin_as_new_member():
    # full lifecycle: crash-evicted pid is later re-added with fresh state
    cfg = FTMPConfig(suspect_timeout=0.050)
    c = make_cluster((1, 2, 3), config=cfg, seed=6)
    c.run_for(0.05)
    c.net.crash(3)
    c.stacks[3].stop()  # the crashed process is gone, not just partitioned
    c.run_for(1.0)
    assert c.listeners[1].current_membership(1) == (1, 2)
    # processor 3 "reboots": new stack, rejoins via AddProcessor
    c.net.recover(3)
    lst3 = RecordingListener()
    st3 = FTMPStack(c.net.endpoint(3), cfg, lst3)
    c.stacks[3] = st3
    c.listeners[3] = lst3
    st3.join_as_new_member(1, 5001)
    c.stacks[1].add_processor(1, 3)
    c.run_for(0.5)
    assert lst3.current_membership(1) == (1, 2, 3)
    assert c.listeners[1].current_membership(1) == (1, 2, 3)
    st3.multicast(1, b"back-from-the-dead")
    c.run_for(0.3)
    assert b"back-from-the-dead" in c.listeners[1].payloads(1)


def test_suspicion_stats_accumulate():
    cfg = FTMPConfig(suspect_timeout=0.040)
    c = make_cluster((1, 2, 3), config=cfg, seed=8)
    c.run_for(0.05)
    # brief partition triggers suspicion then withdrawal
    c.net.partition({1, 2}, {3})
    c.run_for(0.055)
    c.net.heal()
    c.run_for(0.5)
    fd = c.stacks[1].group(1).fault_detector
    total = fd.stats.suspicions_raised
    # either it was withdrawn (heard again) or 3 was convicted; both legal
    assert total >= 1


def test_scan_purges_liveness_entries_for_non_members():
    # note_alive records *every* datagram source (any processor may send
    # to the group address): without the scan-time purge, liveness entries
    # for non-members accumulate without bound under connection traffic,
    # and a stale suspicion of a since-removed processor lingers forever.
    cfg = FTMPConfig(suspect_timeout=0.050)
    c = make_cluster((1, 2, 3), config=cfg)
    c.run_for(0.05)
    fd = c.stacks[1].group(1).fault_detector
    fd.note_alive(9)  # a non-member (e.g. a client's Connect datagram)
    fd._suspected.add(9)
    assert 9 in fd._last_heard
    c.run_for(cfg.suspect_timeout)  # at least one scan elapses
    assert 9 not in fd._last_heard
    assert 9 not in fd.suspected
    # members are of course kept
    assert 2 in fd._last_heard and 3 in fd._last_heard
