"""ROMP behaviour: total order, causal order, acks, buffer management."""

from repro.core import ClockMode, FTMPConfig
from repro.simnet import lan, lossy_lan, two_site_wan

from repro.analysis.harness import make_cluster


def test_total_order_identical_across_members():
    c = make_cluster((1, 2, 3, 4, 5), seed=8)
    for i in range(20):
        for pid in (1, 2, 3, 4, 5):
            c.net.scheduler.at(0.0009 * i + 0.00005 * pid,
                               c.stacks[pid].multicast, 1, f"{pid}:{i}".encode())
    c.run_for(2.0)
    orders = c.orders(1)
    reference = orders[1]
    assert len(reference) == 100
    for pid in (2, 3, 4, 5):
        assert orders[pid] == reference


def test_total_order_identical_under_loss_and_jitter():
    c = make_cluster((1, 2, 3), topology=lossy_lan(0.15), seed=13,
                     config=FTMPConfig(suspect_timeout=10.0))
    for i in range(30):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.0011 * i, c.stacks[pid].multicast, 1, f"{pid}:{i}".encode())
    c.run_for(4.0)
    orders = c.orders(1)
    assert len(orders[1]) == 90
    assert orders[1] == orders[2] == orders[3]


def test_delivery_respects_timestamp_then_source_rule():
    c = make_cluster((1, 2, 3), seed=1)
    # all three send "simultaneously": identical Lamport ts, tie by pid
    for pid in (1, 2, 3):
        c.stacks[pid].multicast(1, str(pid).encode())
    c.run_for(0.5)
    order = c.orders(1)[1]
    keys = order
    assert keys == sorted(keys)  # (timestamp, source) ascending


def test_causal_order_request_before_reply():
    c = make_cluster((1, 2, 3), seed=2)
    # node 1 sends a request; node 2 replies only after delivering it.
    replied = []

    orig = c.listeners[2].on_deliver

    def reply_on_delivery(d):
        orig(d)
        if d.payload == b"request" and not replied:
            replied.append(True)
            c.stacks[2].multicast(1, b"reply")

    c.listeners[2].on_deliver = reply_on_delivery
    c.stacks[1].multicast(1, b"request")
    c.run_for(0.5)
    for pid in (1, 2, 3):
        payloads = c.listeners[pid].payloads(1)
        assert payloads.index(b"request") < payloads.index(b"reply")


def test_quiet_processor_does_not_stall_ordering():
    # nodes 2,3 never send application messages; heartbeats must keep the
    # order advancing (§5: liveness via Heartbeat messages).
    c = make_cluster((1, 2, 3), seed=3)
    c.stacks[1].multicast(1, b"solo")
    c.run_for(0.5)
    assert c.listeners[3].payloads(1) == [b"solo"]


def test_latency_bounded_by_heartbeat_interval():
    cfg = FTMPConfig(heartbeat_interval=0.010)
    c = make_cluster((1, 2, 3), config=cfg, seed=4)
    c.run_for(0.1)  # let heartbeats settle
    t0 = c.net.scheduler.now
    c.stacks[1].multicast(1, b"x")
    c.run_for(0.2)
    d = [d for d in c.listeners[2].deliveries if d.payload == b"x"][0]
    latency = d.delivered_at - t0
    assert latency <= 2 * cfg.heartbeat_interval + 0.005


def test_ack_timestamps_advance_and_buffers_drain():
    c = make_cluster((1, 2, 3), seed=5)
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, b"payload")
    c.run_for(1.0)
    for pid in (1, 2, 3):
        g = c.stacks[pid].group(1)
        assert g.romp.ack_timestamp > 0
        assert g.romp.stability_timestamp() > 0
        assert len(g.buffer) == 0  # everything stable and reclaimed
        assert g.buffer.total_reclaimed > 0


def test_buffer_gc_disabled_retains_everything():
    cfg = FTMPConfig(buffer_gc_enabled=False)
    c = make_cluster((1, 2, 3), config=cfg, seed=5)
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[1].multicast, 1, b"payload")
    c.run_for(1.0)
    g = c.stacks[2].group(1)
    assert len(g.buffer) >= 20
    assert g.buffer.total_reclaimed == 0


def test_synchronized_clocks_also_totally_order():
    cfg = FTMPConfig(clock_mode=ClockMode.SYNCHRONIZED)
    c = make_cluster((1, 2, 3), config=cfg, seed=6)
    for i in range(15):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.001 * i, c.stacks[pid].multicast, 1, f"{pid}:{i}".encode())
    c.run_for(2.0)
    orders = c.orders(1)
    assert len(orders[1]) == 45
    assert orders[1] == orders[2] == orders[3]


def test_synchronized_clocks_cut_wan_ordering_latency():
    # E2's mechanism at unit scale.  A busy sender's Lamport clock runs
    # ahead of the quiet remote site's (which catches up only on receipt,
    # one WAN hop later), so ordering a local message waits a WAN round
    # trip for the remote site's covering heartbeat.  Synchronized clocks
    # keep remote heartbeat timestamps current, cutting that to one hop.
    results = {}
    for mode in (ClockMode.LAMPORT, ClockMode.SYNCHRONIZED):
        cfg = FTMPConfig(heartbeat_interval=0.005, clock_mode=mode,
                         suspect_timeout=5.0)
        topo = two_site_wan((1, 2), (3, 4), wan_latency=0.040)
        c = make_cluster((1, 2, 3, 4), topology=topo, config=cfg, seed=7)
        # busy sender at site A inflates its logical clock
        sent_at = {}
        for i in range(200):
            t = 0.1 + 0.001 * i
            payload = f"s{i}".encode()
            sent_at[payload] = t
            c.net.scheduler.at(t, c.stacks[1].multicast, 1, payload)
        c.run_for(1.0)
        lat = [
            d.delivered_at - sent_at[d.payload]
            for d in c.listeners[2].deliveries
            if d.payload in sent_at
        ]
        assert len(lat) == 200
        results[mode] = sum(lat) / len(lat)
    # synchronized clocks should save roughly one WAN one-way delay
    assert results[ClockMode.SYNCHRONIZED] < results[ClockMode.LAMPORT] - 0.010


def test_deliveries_report_metadata():
    c = make_cluster((1, 2), seed=1)
    c.stacks[1].multicast(1, b"meta")
    c.run_for(0.5)
    d = c.listeners[2].deliveries[0]
    assert d.group == 1
    assert d.source == 1
    assert d.sequence_number == 1
    assert d.timestamp >= 1
    assert d.payload == b"meta"
