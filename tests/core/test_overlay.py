"""Overlay dissemination + aggregated stability (PR 8 tentpole).

Regulars route over a deterministic k-ary tree derived from the sorted
membership; per-edge AckSummaries aggregate the §6 ack exchange so the
stability frontier converges in O(depth) messages.  These tests pin the
tree math, the mode wiring (knob off = legacy), the end-to-end ordering
semantics, the aggregation-scope gating of the stability floor, and the
entry merge law the cross-node aggregation relies on.
"""

import pytest

from repro.analysis import make_cluster
from repro.core import FTMPConfig
from repro.core.overlay import OVERLAY_UNICAST_BASE, tree_links, unicast_address


def _overlay_cfg(**overrides) -> FTMPConfig:
    base = dict(heartbeat_interval=0.010, suspect_timeout=0.150,
                overlay_mode=True, overlay_fanout=2,
                overlay_summary_interval=0.010)
    base.update(overrides)
    return FTMPConfig(**base)


# -- tree math ---------------------------------------------------------

def test_tree_links_k2_shape():
    members = (1, 2, 3, 4, 5, 6, 7)
    # sorted index i: parent (i-1)//2, children 2i+1, 2i+2
    assert tree_links(members, 2, 1) == (
        None, (2, 3), {2: 2, 3: 3, 4: 2, 5: 2, 6: 3, 7: 3})
    parent, children, toward = tree_links(members, 2, 2)
    assert parent == 1
    assert children == (4, 5)
    assert toward == {1: 1, 3: 1, 4: 4, 5: 5, 6: 1, 7: 1}
    # leaves route everything through the parent
    parent, children, toward = tree_links(members, 2, 7)
    assert (parent, children) == (3, ())
    assert set(toward.values()) == {3}


def test_tree_links_parent_child_consistency():
    members = tuple(range(1, 14))
    for k in (1, 2, 3, 4):
        for pid in members:
            _, children, _ = tree_links(members, k, pid)
            for c in children:
                parent_of_c, _, _ = tree_links(members, k, c)
                assert parent_of_c == pid
        # exactly n-1 edges: every non-root has one parent
        roots = [p for p in members
                 if tree_links(members, k, p)[0] is None]
        assert roots == [members[0]]


def test_tree_links_degenerate():
    assert tree_links((), 2, 1) == (None, (), {})
    assert tree_links((1,), 2, 1) == (None, (), {})
    assert tree_links((1, 2), 2, 9) == (None, (), {})  # not a member


def test_unicast_address_is_collision_free():
    seen = set()
    for group_addr in (5001, 5002):
        for pid in range(1, 600):
            a = unicast_address(group_addr, pid)
            assert a >= OVERLAY_UNICAST_BASE
            seen.add(a)
    assert len(seen) == 2 * 599


# -- mode wiring -------------------------------------------------------

def test_llft_and_overlay_are_mutually_exclusive():
    with pytest.raises(ValueError):
        FTMPConfig(llft_mode=True, overlay_mode=True)


def test_knob_off_is_legacy():
    cluster = make_cluster((1, 2, 3))
    try:
        for pid in (1, 2, 3):
            assert cluster.stacks[pid].group(1).romp.overlay is None
        cluster.multicast(1, 1, b"legacy")
        cluster.run_for(0.3)
        cluster.assert_agreement()
        # no overlay stats subtree is registered in legacy mode
        assert not any(".overlay." in k for k in cluster.snapshot(1))
    finally:
        cluster.stop()


# -- end-to-end ordering over the tree ---------------------------------

def test_overlay_total_order_and_stability():
    pids = (1, 2, 3, 4, 5, 6, 7)
    cluster = make_cluster(pids, config=_overlay_cfg(), seed=42)
    try:
        cluster.run_for(0.1)
        for i in range(10):
            for pid in (1, 4, 7):  # root, interior, leaf senders
                cluster.multicast(pid, 1, b"m%d-%d" % (pid, i))
        cluster.run_for(0.6)
        cluster.assert_agreement()
        for pid in pids:
            g = cluster.stacks[pid].group(1)
            assert g.romp.overlay is not None
            assert len(cluster.listeners[pid].deliveries) == 30
        # the tree actually carried the load: the root unicast k copies
        # per send and interior members relayed
        root = cluster.stacks[1].group(1).romp.overlay
        assert root.stats.regulars_tree_routed > 0
        interior = cluster.stacks[2].group(1).romp.overlay
        assert interior.stats.relayed_copies > 0
        # aggregated stability advanced past zero on every member
        for pid in pids:
            assert cluster.stacks[pid].group(1).romp.stability_timestamp() > 0
    finally:
        cluster.stop()


# -- aggregation-scope gating ------------------------------------------

def test_stability_floor_zero_until_scope_complete():
    pids = (1, 2, 3, 4, 5)
    cluster = make_cluster(pids, config=_overlay_cfg(), seed=7)
    try:
        # before any summary exchange no neighbour has reported: the
        # floor must refuse to guess and the legacy minimum rules
        for pid in pids:
            overlay = cluster.stacks[pid].group(1).romp.overlay
            assert overlay.stability_floor() == 0
        cluster.multicast(1, 1, b"payload")
        cluster.run_for(0.5)
        # after a few summary rounds every edge has reported and the
        # aggregated floor covers the delivered message
        for pid in pids:
            g = cluster.stacks[pid].group(1)
            ts = g.romp.overlay.stability_floor()
            assert ts > 0
            assert ts <= g.romp.ack_timestamp
    finally:
        cluster.stop()


def test_stability_floor_is_monotone_within_view():
    cluster = make_cluster((1, 2, 3), config=_overlay_cfg(), seed=3)
    try:
        seen = []
        for _ in range(20):
            cluster.multicast(1, 1, b"x")
            cluster.run_for(0.05)
            seen.append(cluster.stacks[1].group(1).romp.overlay
                        .stability_floor())
        assert seen == sorted(seen)
        assert seen[-1] > 0
    finally:
        cluster.stop()


# -- entry merge law ---------------------------------------------------

def test_progress_entries_merge_max_max():
    """Cross-node aggregation takes max(seq), max(ts) per source: both
    halves of an entry are global facts about the source's stream, so
    the pointwise maximum is still a valid claim."""
    from repro.core import FTMPHeader, MessageType
    from repro.core.messages import AckSummaryMessage

    cluster = make_cluster((1, 2, 3, 4, 5), config=_overlay_cfg(), seed=11)
    try:
        cluster.run_for(0.05)
        overlay = cluster.stacks[1].group(1).romp.overlay

        def summary(src, entries):
            h = FTMPHeader(MessageType.ACK_SUMMARY, source=src, group=1,
                           sequence_number=0, timestamp=0, ack_timestamp=0)
            return AckSummaryMessage(h, AckSummaryMessage.KIND_UP,
                                     cover_ts=0, ack_ts=0,
                                     entries=tuple(entries))

        # one neighbour claims (seq 10, ts 1000), the other (seq 8,
        # ts 2000): the merged vector dominates both claims pointwise
        overlay.on_summary(summary(2, [(5, 10, 1000)]))
        assert overlay._best[5] == (10, 1000)
        overlay.on_summary(summary(3, [(5, 8, 2000)]))
        assert overlay._best[5] == (10, 2000)
        # a stale entry dominated on both axes never regresses the merge
        overlay.on_summary(summary(2, [(5, 4, 500)]))
        assert overlay._best[5] == (10, 2000)
        # entries for non-members are ignored, not merged
        overlay.on_summary(summary(2, [(99, 50, 5000)]))
        assert 99 not in overlay._best
    finally:
        cluster.stop()
