"""Safe-delivery mode tests (Totem's agreed/safe distinction on FTMP)."""

from repro.analysis import make_cluster
from repro.core import FTMPConfig
from repro.simnet import LinkModel, lan

SAFE = FTMPConfig(delivery_mode="safe")


def test_safe_mode_delivers_everything_in_order():
    c = make_cluster((1, 2, 3), config=SAFE)
    for i in range(10):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.002 * i, c.stacks[pid].multicast, 1,
                               f"{pid}:{i}".encode())
    c.run_for(1.0)
    orders = c.orders(1)
    assert len(orders[1]) == 30
    assert orders[1] == orders[2] == orders[3]


def test_safe_delivery_waits_for_stability():
    # a member on a slow link holds stability back: agreed mode delivers
    # long before the slow member's ack arrives, safe mode does not
    def run(mode):
        topo = lan()
        slow = LinkModel(latency=0.020, jitter=0, loss=0)
        topo.set_link(1, 3, slow)
        topo.set_link(2, 3, slow)
        cfg = FTMPConfig(delivery_mode=mode, heartbeat_interval=0.005,
                         suspect_timeout=5.0)
        c = make_cluster((1, 2, 3), topology=topo, config=cfg, seed=2)
        c.run_for(0.1)
        t0 = c.net.scheduler.now
        c.stacks[1].multicast(1, b"probe")
        c.run_for(0.5)
        d = [d for d in c.listeners[2].deliveries if d.payload == b"probe"][0]
        return d.delivered_at - t0

    agreed = run("agreed")
    safe = run("safe")
    # safe delivery waits for the slow member's ack to make the round trip
    assert safe > agreed + 0.020


def test_safe_holds_visible_in_romp_counters():
    topo = lan()
    topo.set_link(1, 3, LinkModel(latency=0.050, jitter=0, loss=0))
    topo.set_link(2, 3, LinkModel(latency=0.050, jitter=0, loss=0))
    cfg = FTMPConfig(delivery_mode="safe", suspect_timeout=5.0)
    c = make_cluster((1, 2, 3), topology=topo, config=cfg, seed=1)
    c.run_for(0.1)
    c.stacks[1].multicast(1, b"held")
    c.run_for(0.06)  # ordered at 1,2 but not yet stable (3's ack pending)
    g2 = c.stacks[2].group(1)
    held_during = g2.romp.unsafe_held()
    c.run_for(1.0)
    assert held_during >= 1
    assert g2.romp.unsafe_held() == 0
    assert c.listeners[2].payloads(1) == [b"held"]


def test_safe_mode_releases_after_member_crash():
    # a crashed member can never ack: safe delivery must release once the
    # fault view removes it (stability recomputed over survivors)
    cfg = FTMPConfig(delivery_mode="safe", suspect_timeout=0.060)
    c = make_cluster((1, 2, 3), config=cfg, seed=3)
    c.run_for(0.05)
    c.net.crash(3)
    c.run_for(0.005)
    c.stacks[1].multicast(1, b"stuck-until-view")
    c.run_for(2.0)
    assert b"stuck-until-view" in c.listeners[1].payloads(1)
    assert b"stuck-until-view" in c.listeners[2].payloads(1)
    assert c.orders(1)[1] == c.orders(1)[2]


def test_safe_mode_agreement_under_loss():
    cfg = FTMPConfig(delivery_mode="safe", suspect_timeout=10.0)
    from repro.simnet import lossy_lan

    c = make_cluster((1, 2, 3), topology=lossy_lan(0.1), config=cfg, seed=7)
    for i in range(20):
        for pid in (1, 2, 3):
            c.net.scheduler.at(0.002 * i, c.stacks[pid].multicast, 1,
                               f"{pid}:{i}".encode())
    c.run_for(4.0)
    orders = c.orders(1)
    assert len(orders[1]) == 60
    assert orders[1] == orders[2] == orders[3]


def test_long_safe_hold_queue_releases_in_fifo_order():
    # the safe-mode hold queue is a deque (popleft), not a list with
    # O(n) pop(0): a long hold released in one stability step must come
    # out in timestamp order and drain completely
    from collections import deque

    topo = lan()
    slow = LinkModel(latency=0.050, jitter=0, loss=0)
    topo.set_link(1, 3, slow)
    topo.set_link(2, 3, slow)
    cfg = FTMPConfig(delivery_mode="safe", suspect_timeout=5.0)
    c = make_cluster((1, 2, 3), topology=topo, config=cfg, seed=4)
    c.run_for(0.1)
    for i in range(60):  # a burst that all lands before 3's acks return
        c.net.scheduler.at(c.net.scheduler.now + 0.0002 * i,
                           c.stacks[1].multicast, 1, b"h%d" % i)
    g2 = c.stacks[2].group(1)
    assert isinstance(g2.romp._unsafe, deque)
    # sample the hold depth across the whole ordered-but-unstable window
    # (ordering needs 3's clock past the burst: ~ one one-way latency;
    # stability needs 3's acks back: ~ a full round trip)
    depths = []
    for k in range(150):
        c.net.scheduler.at(c.net.scheduler.now + 0.002 * k,
                           lambda: depths.append(g2.romp.unsafe_held()))
    c.run_for(2.0)
    assert max(depths) >= 30  # a genuinely long hold built up
    assert depths[-1] == 0
    assert g2.romp.unsafe_held() == 0
    payloads = c.listeners[2].payloads(1)
    assert payloads == [b"h%d" % i for i in range(60)]
    assert c.orders(1)[2] == c.orders(1)[1]
