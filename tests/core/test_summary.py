"""stack.summary() diagnostics tests."""

from repro.analysis import make_cluster


def test_summary_reflects_protocol_state():
    c = make_cluster((1, 2, 3))
    for i in range(5):
        c.stacks[1].multicast(1, b"x")
    c.run_for(0.3)
    s = c.stacks[1].summary()
    assert s["processor"] == 1
    assert s["clock"] > 0
    g = s["groups"][1]
    assert g["membership"] == (1, 2, 3)
    assert g["regulars_sent"] == 5
    assert g["ordered_deliveries"] == 5
    assert g["queue_depth"] == 0
    assert g["buffer_messages"] == 0  # stable and reclaimed
    assert g["suspected"] == []
    assert not g["in_fault_round"]
    assert s["datagrams_sent"] > 0


def test_summary_shows_fault_state():
    from repro.core import FTMPConfig

    c = make_cluster((1, 2, 3), config=FTMPConfig(suspect_timeout=0.050))
    c.run_for(0.05)
    c.net.crash(3)
    c.run_for(1.0)
    g = c.stacks[1].summary()["groups"][1]
    assert g["membership"] == (1, 2)
