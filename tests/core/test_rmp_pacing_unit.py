"""Direct unit tests of RMP retransmission pacing and duplicate-request
suppression (the flow-control PR's recovery-path half).

Driven against the same mock-context pattern as ``test_rmp_nack_unit``,
extended with ``now()`` — the pacing token bucket and the dedupe window
are the first RMP features that read the clock.  Both default off
(``retransmit_rate_limit=0``, ``nack_dedupe_window=0``), in which case
``now()`` is never called and behaviour is bit-identical to the legacy
stack — the legacy unit tests assert that side.
"""

import random
from typing import List, Tuple

from repro.core import FTMPConfig, MessageType, RetransmissionBuffer, encode
from repro.core.messages import (
    ConnectionId,
    FTMPHeader,
    HeartbeatMessage,
    RegularMessage,
    RetransmitRequestMessage,
)
from repro.core.rmp import RMP
from repro.simnet import Scheduler


class MockContext:
    """Just enough GroupContext for an isolated RMP, clock included."""

    def __init__(self, pid: int = 2, config: FTMPConfig = None):
        self._pid = pid
        self.config = config if config is not None else FTMPConfig()
        self.scheduler = Scheduler()
        self.buffer = RetransmissionBuffer()
        self.rng = random.Random(7)
        self.delivered: List[RegularMessage] = []
        self.heartbeats: List[HeartbeatMessage] = []
        self.nacks: List[Tuple[int, int, int]] = []
        self.retransmitted: List[bytes] = []
        #: (time, raw) of every retransmission, for pacing assertions
        self.retransmit_times: List[float] = []

    @property
    def pid(self):
        return self._pid

    def now(self):
        return self.scheduler.now

    def trace(self, *a, **k):
        pass

    def schedule(self, delay, fn, *args):
        return self.scheduler.schedule(delay, fn, *args)

    def retain(self, msg):
        h = msg.header
        self.buffer.add(h.source, h.sequence_number, h.timestamp, encode(msg))

    def romp_receive(self, msg):
        self.delivered.append(msg)

    def romp_heartbeat(self, msg):
        self.heartbeats.append(msg)

    def pgmp_receive_unreliable(self, msg):
        pass

    def send_retransmit_request(self, src, start, stop):
        self.nacks.append((src, start, stop))

    def retransmit_raw(self, raw, address=None):
        self.retransmitted.append(raw)
        self.retransmit_times.append(self.scheduler.now)


def regular(src: int, seq: int, ts: int = 0, retransmission: bool = False):
    h = FTMPHeader(MessageType.REGULAR, source=src, group=1,
                   sequence_number=seq, timestamp=ts or seq, ack_timestamp=0)
    h.retransmission = retransmission
    return RegularMessage(h, ConnectionId.none(), 0, b"m%d" % seq)


def nack(src: int, wanted: int, start: int, stop: int):
    h = FTMPHeader(MessageType.RETRANSMIT_REQUEST, source=src, group=1,
                   sequence_number=0, timestamp=0, ack_timestamp=0)
    return RetransmitRequestMessage(h, processor_id=wanted,
                                    start_seq=start, stop_seq=stop)


def paced_source(n_msgs: int = 20, rate: float = 100.0, burst: int = 2,
                 dedupe: float = 0.0):
    """pid 1 *is* the source: answers are immediate, only pacing defers."""
    ctx = MockContext(pid=1, config=FTMPConfig(
        retransmit_rate_limit=rate, retransmit_burst=burst,
        nack_dedupe_window=dedupe,
    ))
    rmp = RMP(ctx)
    for seq in range(1, n_msgs + 1):
        rmp.on_message(regular(1, seq))
    return ctx, rmp


# ----------------------------------------------------------------------
# pacing token bucket
# ----------------------------------------------------------------------
def test_pacing_defers_beyond_burst():
    ctx, rmp = paced_source(n_msgs=10, rate=100.0, burst=2)
    rmp.on_message(nack(3, 1, 1, 10))  # one NACK asks for all 10 at once
    ctx.scheduler.run_until(0.0)
    # the burst allowance answers immediately; the rest are deferred
    assert len(ctx.retransmitted) <= 3
    assert rmp.stats.retransmissions_paced >= 7
    ctx.scheduler.run_until(1.0)
    # deferred, never dropped: all 10 eventually go out...
    assert len(ctx.retransmitted) == 10
    # ...spaced at the bucket rate, not back-to-back
    late = [t for t in ctx.retransmit_times if t > 0]
    gaps = [b - a for a, b in zip(late, late[1:])]
    assert all(g >= 0.009 for g in gaps), gaps  # 1/rate = 10 ms


def test_pacing_off_by_default_all_immediate():
    ctx, rmp = paced_source(n_msgs=10, rate=0.0)
    rmp.on_message(nack(3, 1, 1, 10))
    ctx.scheduler.run_until(0.0)
    assert len(ctx.retransmitted) == 10
    assert rmp.stats.retransmissions_paced == 0


def test_bucket_refills_after_idle():
    ctx, rmp = paced_source(n_msgs=8, rate=100.0, burst=4)
    rmp.on_message(nack(3, 1, 1, 4))
    ctx.scheduler.run_until(0.0)
    assert len(ctx.retransmitted) == 4  # within the burst: all immediate
    ctx.scheduler.run_until(1.0)  # a second of idle refills the bucket
    rmp.on_message(nack(3, 1, 5, 8))
    ctx.scheduler.run_until(1.0)
    assert len(ctx.retransmitted) == 8
    assert rmp.stats.retransmissions_paced == 0


def test_paced_holder_answer_stays_suppressible():
    # pid 2 is a holder; its backoff answer lands in a dry bucket and is
    # deferred — the deferred answer must still be cancelled by another
    # holder's copy arriving first (pacing must not break §5 suppression).
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_rate_limit=100.0, retransmit_burst=0,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(ctx.config.retransmit_backoff * 2)
    assert ctx.retransmitted == []  # paced past the backoff
    assert rmp.stats.retransmissions_paced == 1
    rmp.on_message(regular(1, 1, retransmission=True))  # copy arrives
    ctx.scheduler.run_until(1.0)
    assert ctx.retransmitted == []  # the paced answer was suppressed
    assert rmp.stats.retransmissions_suppressed == 1


def test_escalated_answer_survives_pacing_unsuppressed():
    # An escalated (count >= 3) answer must go out even when deferred by
    # the bucket, and a copy from elsewhere must NOT cancel it — the whole
    # point of escalation is that the usual copies are not arriving.
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_rate_limit=100.0, retransmit_burst=0,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    for _ in range(2):
        rmp.on_message(nack(3, 1, 1, 1))
        ctx.scheduler.run_until(ctx.scheduler.now + 1.0)
    sent_before = len(ctx.retransmitted)
    rmp.on_message(nack(3, 1, 1, 1))  # third request: escalates
    assert len(ctx.retransmitted) == sent_before  # bucket dry: deferred
    rmp.on_message(regular(1, 1, retransmission=True))  # copy arrives
    ctx.scheduler.run_until(ctx.scheduler.now + 1.0)
    assert len(ctx.retransmitted) == sent_before + 1  # still answered


def test_repeated_request_for_escalated_answer_not_amplified():
    # Regression: escalated paced answers used to be keyed anonymously,
    # so with pacing on but the dedupe window off, every repeated
    # RetransmitRequest for the same escalated message enqueued another
    # paced copy — amplifying the recovery traffic the pacer bounds.
    # The answer now pends under its real (source, seq) key and repeats
    # hit the pending-job check.
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_rate_limit=100.0, retransmit_burst=0,
        nack_dedupe_window=0.0,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    for _ in range(2):
        rmp.on_message(nack(3, 1, 1, 1))
        ctx.scheduler.run_until(ctx.scheduler.now + 1.0)
    sent_before = len(ctx.retransmitted)
    rmp.on_message(nack(3, 1, 1, 1))  # third request: escalates, deferred
    assert len(rmp._retransmit_jobs) == 1
    for _ in range(3):  # repeats while the paced answer is still pending
        rmp.on_message(nack(3, 1, 1, 1))
    assert len(rmp._retransmit_jobs) == 1  # deduped, no second copy
    ctx.scheduler.run_until(ctx.scheduler.now + 1.0)
    assert len(ctx.retransmitted) == sent_before + 1  # answered exactly once
    assert rmp._retransmit_jobs == {}


def test_unsuppressible_mark_cleared_after_answer_and_on_drop():
    # The unsuppressible mark must not outlive the paced answer (or the
    # source): a stale mark would shield future ordinary backoff answers
    # for the same key from §5 suppression forever.
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_rate_limit=100.0, retransmit_burst=0,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    for _ in range(3):  # third request escalates; let each answer drain
        rmp.on_message(nack(3, 1, 1, 1))
        ctx.scheduler.run_until(ctx.scheduler.now + 1.0)
    assert not rmp._unsuppressible
    rmp.on_message(nack(3, 1, 1, 1))  # escalated again: pending + marked
    assert rmp._unsuppressible == {(1, 1)}
    rmp.drop_source(1)  # source left: pending answer and mark both go
    assert not rmp._unsuppressible and not rmp._retransmit_jobs


def test_ablation_no_suppression_still_paced():
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_suppression=False,
        retransmit_rate_limit=100.0, retransmit_burst=1,
    ))
    rmp = RMP(ctx)
    for seq in range(1, 6):
        rmp.on_message(regular(1, seq))
    rmp.on_message(nack(3, 1, 1, 5))
    assert len(ctx.retransmitted) == 1  # burst of 1, rest deferred
    assert rmp.stats.retransmissions_paced == 4
    ctx.scheduler.run_until(1.0)
    assert len(ctx.retransmitted) == 5


def test_stop_cancels_paced_emissions():
    ctx, rmp = paced_source(n_msgs=10, rate=100.0, burst=0)
    rmp.on_message(nack(3, 1, 1, 10))
    assert rmp._retransmit_jobs  # deferred answers pending
    rmp.stop()
    ctx.scheduler.run_until(1.0)
    assert ctx.retransmitted == []  # nothing fires after shutdown
    assert rmp._retransmit_jobs == {}


# ----------------------------------------------------------------------
# duplicate-request suppression
# ----------------------------------------------------------------------
def test_duplicate_request_suppressed_inside_window():
    ctx, rmp = paced_source(n_msgs=1, rate=0.0, dedupe=0.050)
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(0.0)
    assert len(ctx.retransmitted) == 1
    # pid 4's request for the same message lands 10 ms later — the answer
    # is already in flight; answering again would double the repair traffic
    ctx.scheduler.run_until(0.010)
    rmp.on_message(nack(4, 1, 1, 1))
    ctx.scheduler.run_until(ctx.scheduler.now + 0.010)
    assert len(ctx.retransmitted) == 1
    assert rmp.stats.duplicate_requests_suppressed == 1


def test_duplicate_request_answered_after_window_expires():
    ctx, rmp = paced_source(n_msgs=1, rate=0.0, dedupe=0.050)
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(0.0)
    ctx.scheduler.run_until(0.100)  # well past the window
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(ctx.scheduler.now)
    assert len(ctx.retransmitted) == 2
    assert rmp.stats.duplicate_requests_suppressed == 0


def test_dedupe_off_by_default_every_request_answered():
    ctx, rmp = paced_source(n_msgs=1, rate=0.0, dedupe=0.0)
    for _ in range(3):
        rmp.on_message(nack(3, 1, 1, 1))
        ctx.scheduler.run_until(ctx.scheduler.now)
    assert len(ctx.retransmitted) == 3
    assert rmp.stats.duplicate_requests_suppressed == 0


def test_dedupe_is_per_message_not_per_requester():
    ctx, rmp = paced_source(n_msgs=2, rate=0.0, dedupe=0.050)
    rmp.on_message(nack(3, 1, 1, 1))
    rmp.on_message(nack(3, 1, 2, 2))  # different message: answered
    ctx.scheduler.run_until(0.0)
    assert len(ctx.retransmitted) == 2


def test_drop_source_purges_answered_records():
    ctx, rmp = paced_source(n_msgs=1, rate=0.0, dedupe=10.0)
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(0.0)
    assert rmp._answered
    rmp.drop_source(1)
    assert rmp._answered == {}
    # the rejoined incarnation's first NACK for a reused seq is answered
    rmp.on_message(regular(1, 1))
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(ctx.scheduler.now)
    assert len(ctx.retransmitted) == 2
    assert rmp.stats.duplicate_requests_suppressed == 0


def test_answered_map_bounded_by_cap():
    ctx, rmp = paced_source(n_msgs=40, rate=0.0, dedupe=0.001)
    rmp._ANSWERED_CAP = 16
    for seq in range(1, 41):
        rmp.on_message(nack(3, 1, seq, seq))
        ctx.scheduler.run_until(ctx.scheduler.now + 0.002)  # windows expire
    assert len(rmp._answered) <= 17  # cap + the entry that triggered purge


# ----------------------------------------------------------------------
# any-holder selection under pacing (ablation A2 interaction)
# ----------------------------------------------------------------------
def test_any_holder_off_source_only_still_paced():
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_any_holder=False,
        retransmit_rate_limit=100.0, retransmit_burst=8,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(nack(3, 1, 1, 1))  # we hold it but are not the source
    ctx.scheduler.run_until(1.0)
    assert ctx.retransmitted == []  # A2: only the source answers


def test_any_holder_on_holder_answers_under_pacing():
    ctx = MockContext(pid=2, config=FTMPConfig(
        retransmit_rate_limit=100.0, retransmit_burst=8,
    ))
    rmp = RMP(ctx)
    rmp.on_message(regular(1, 1))
    rmp.on_message(nack(3, 1, 1, 1))
    ctx.scheduler.run_until(ctx.config.retransmit_backoff * 2)
    assert len(ctx.retransmitted) == 1
    assert rmp.stats.retransmissions_sent == 1
