"""Direct unit tests of PGMP's conviction rule and round bookkeeping."""

from typing import Dict, List, Tuple

from repro.core import FTMPConfig
from repro.core.messages import FTMPHeader, MembershipMessage, SuspectMessage
from repro.core.constants import MessageType
from repro.core.pgmp import PGMP
from repro.core.rmp import RMP


class MockTimer:
    def cancel(self):
        pass


class MockRMP:
    def __init__(self):
        self.tops: Dict[int, int] = {}

    def contiguous_top(self, pid):
        return self.tops.get(pid, 0)

    def set_baseline(self, pid, seq):
        self.tops[pid] = seq


class MockROMP:
    """Everyone is always heard arbitrarily far ahead: the fault-view
    drain phase completes immediately, so these tests exercise the
    conviction/sync logic without a live ordering layer."""

    def __init__(self):
        self.transition = None

    def order_ts(self, pid):
        return 10**9

    def begin_transition(self, survivors, cut_ts, targets=None):
        self.transition = (frozenset(survivors), cut_ts)

    def end_transition(self):
        self.transition = None

    def transition_drained(self, cut_ts):
        return True

    def evaluate(self):
        pass


class MockGroup:
    def __init__(self, pid=1, membership=(1, 2, 3, 4, 5)):
        self._pid = pid
        self.membership = tuple(membership)
        self.view_timestamp = 0
        self.config = FTMPConfig()
        self.rmp = MockRMP()
        self.romp = MockROMP()
        self.last_sent_seq = 0
        self.sent_suspects: List[Tuple[int, Tuple[int, ...]]] = []
        self.sent_memberships: List[Tuple] = []
        self.nacks: List[Tuple[int, int, int]] = []
        self.installed: List[Tuple] = []
        self.evicted: List[Tuple] = []

    @property
    def pid(self):
        return self._pid

    def trace(self, *a, **k):
        pass

    def schedule(self, delay, fn, *args):
        return MockTimer()

    def send_suspect(self, membership_timestamp, suspects):
        self.sent_suspects.append((membership_timestamp, suspects))

    def send_membership(self, membership_timestamp, current_membership,
                        sequence_numbers, new_membership):
        self.sent_memberships.append(
            (membership_timestamp, current_membership, sequence_numbers,
             new_membership)
        )

    def send_retransmit_request(self, src, start, stop):
        self.nacks.append((src, start, stop))

    def install_fault_view(self, membership, view_timestamp, removed,
                           sync_targets=None):
        self.installed.append((membership, view_timestamp, removed))
        self.membership = membership
        self.view_timestamp = view_timestamp

    def evict_self(self, reason, view_timestamp):
        self.evicted.append((reason, view_timestamp))

    def suspected_members(self):
        return set()


def suspect_msg(src, view_ts, suspects, seq=1, ts=10):
    return SuspectMessage(
        header=FTMPHeader(MessageType.SUSPECT, source=src, group=1,
                          sequence_number=seq, timestamp=ts, ack_timestamp=0),
        membership_timestamp=view_ts,
        suspects=tuple(suspects),
    )


def membership_msg(src, view_ts, current, vec, new, ts=20):
    return MembershipMessage(
        header=FTMPHeader(MessageType.MEMBERSHIP, source=src, group=1,
                          sequence_number=2, timestamp=ts, ack_timestamp=0),
        membership_timestamp=view_ts,
        current_membership=tuple(current),
        sequence_numbers=dict(vec),
        new_membership=tuple(new),
    )


def test_no_conviction_below_majority():
    g = MockGroup(membership=(1, 2, 3, 4, 5))
    p = PGMP(g)
    p.raise_suspicion(5)  # me (1) accuses
    p.on_source_ordered(suspect_msg(2, 0, (5,)))  # one more accuser
    # 2 votes of 5: not > 2.5
    assert p._convicted() == set()
    assert not p.in_fault_round


def test_conviction_at_strict_majority():
    g = MockGroup(membership=(1, 2, 3, 4, 5))
    p = PGMP(g)
    p.raise_suspicion(5)
    p.on_source_ordered(suspect_msg(2, 0, (5,)))
    p.on_source_ordered(suspect_msg(3, 0, (5,)))
    # 3 of 5 accuse: conviction; a round starts and Membership is sent
    assert p.in_fault_round
    assert g.sent_memberships
    assert g.sent_memberships[0][3] == (1, 2, 3, 4)  # proposal excludes 5


def test_accused_members_do_not_vote():
    g = MockGroup(membership=(1, 2, 3, 4))
    p = PGMP(g)
    # 3 and 4 accuse each other; 1 accuses nobody yet
    p.on_source_ordered(suspect_msg(3, 0, (4,)))
    p.on_source_ordered(suspect_msg(4, 0, (3,)))
    # each has one (unsuspected?) vote — but both are accused, so neither
    # votes: no conviction from their mutual accusations alone
    assert p._convicted() == set()


def test_two_member_exception():
    g = MockGroup(membership=(1, 2))
    p = PGMP(g)
    p.raise_suspicion(2)
    assert p._convicted() == {2}


def test_stale_view_suspicions_ignored():
    g = MockGroup(membership=(1, 2, 3))
    g.view_timestamp = 50
    p = PGMP(g)
    p.on_source_ordered(suspect_msg(2, 49, (3,)))  # old view
    p.on_source_ordered(suspect_msg(3, 51, (2,)))  # future view
    assert p._accusations == {}


def test_withdrawal_clears_accusation_via_full_set_semantics():
    g = MockGroup(membership=(1, 2, 3, 4, 5))
    p = PGMP(g)
    p.on_source_ordered(suspect_msg(2, 0, (5,)))
    p.on_source_ordered(suspect_msg(2, 0, ()))  # 2 withdraws (empty set)
    p.raise_suspicion(5)
    p.on_source_ordered(suspect_msg(3, 0, (5,)))
    # only 1 and 3 accuse now: 2 of 5 — no conviction
    assert p._convicted() == set()


def test_round_completes_after_vectors_and_sync():
    g = MockGroup(pid=1, membership=(1, 2, 3))
    p = PGMP(g)
    g.rmp.tops = {2: 5, 3: 7}
    p.raise_suspicion(3)
    p.on_source_ordered(suspect_msg(2, 0, (3,)))
    assert p.in_fault_round  # 2 of 3 accuse: conviction
    # our own Membership loops back through the network (self-delivery)
    own_ts, own_cur, own_vec, own_new = g.sent_memberships[0]
    p.on_source_ordered(membership_msg(1, own_ts, own_cur, own_vec, own_new))
    # survivor 2's Membership arrives with a vector we already satisfy
    p.on_source_ordered(membership_msg(2, 0, (1, 2, 3), {1: 0, 2: 5, 3: 7},
                                       (1, 2)))
    assert g.installed
    membership, view_ts, removed = g.installed[0]
    assert membership == (1, 2)
    assert removed == (3,)
    assert not p.in_fault_round


def test_round_syncs_missing_messages_first():
    g = MockGroup(pid=1, membership=(1, 2, 3))
    p = PGMP(g)
    g.rmp.tops = {2: 5, 3: 2}
    p.raise_suspicion(3)
    p.on_source_ordered(suspect_msg(2, 0, (3,)))
    own_ts, own_cur, own_vec, own_new = g.sent_memberships[0]
    p.on_source_ordered(membership_msg(1, own_ts, own_cur, own_vec, own_new))
    # survivor 2 has seen more of 3's messages than we have
    p.on_source_ordered(membership_msg(2, 0, (1, 2, 3), {1: 0, 2: 5, 3: 6},
                                       (1, 2)))
    assert g.nacks == [(3, 3, 6)]  # fetch the missing block first
    assert not g.installed
    # the retransmissions arrive; the pending sync step re-runs
    g.rmp.tops[3] = 6
    p._sync_step()
    assert g.installed


def test_exclusion_triggers_self_eviction():
    g = MockGroup(pid=3, membership=(1, 2, 3))
    p = PGMP(g)
    p.on_source_ordered(membership_msg(1, 0, (1, 2, 3), {1: 1, 2: 1, 3: 1},
                                       (1, 2)))
    assert g.evicted and g.evicted[0][0] == "evicted"


def test_membership_sent_once_per_proposal():
    g = MockGroup(pid=1, membership=(1, 2, 3, 4, 5))
    p = PGMP(g)
    p.raise_suspicion(5)
    p.on_source_ordered(suspect_msg(2, 0, (5,)))
    p.on_source_ordered(suspect_msg(3, 0, (5,)))
    count_after_first = len(g.sent_memberships)
    # repeated conviction checks must not re-send for the same proposal
    p.on_source_ordered(suspect_msg(4, 0, (5,)))
    assert len(g.sent_memberships) == count_after_first == 1
