"""Property-based *protocol* tests: randomized schedules through the full
stack must preserve the paper's guarantees (agreement, validity, FIFO)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import make_cluster
from repro.core import FTMPConfig
from repro.simnet import lossy_lan

LENIENT = FTMPConfig(suspect_timeout=30.0)


@st.composite
def schedules(draw):
    """A randomized multi-sender send schedule."""
    n_nodes = draw(st.integers(2, 5))
    sends = draw(
        st.lists(
            st.tuples(
                st.integers(1, n_nodes),  # sender
                st.floats(0.0, 0.05, allow_nan=False),  # send time
            ),
            min_size=1,
            max_size=40,
        )
    )
    loss = draw(st.sampled_from([0.0, 0.0, 0.05, 0.15]))
    seed = draw(st.integers(0, 2**16))
    return n_nodes, sends, loss, seed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedules())
def test_agreement_validity_integrity(schedule):
    n_nodes, sends, loss, seed = schedule
    pids = tuple(range(1, n_nodes + 1))
    c = make_cluster(pids, topology=lossy_lan(loss), config=LENIENT, seed=seed)
    expected = {pid: [] for pid in pids}
    # FIFO expectation follows actual send order: time, then insertion
    for i, (sender, t) in sorted(enumerate(sends), key=lambda e: (e[1][1], e[0])):
        expected[sender].append(f"{sender}:{i}".encode())
    for i, (sender, t) in enumerate(sends):
        payload = f"{sender}:{i}".encode()
        c.net.scheduler.at(t, c.stacks[sender].multicast, 1, payload)
    c.run_for(3.0 if loss else 0.8)

    orders = c.orders(1)
    payloads = c.payload_sets(1)
    reference = orders[pids[0]]
    for pid in pids:
        # agreement: identical total order everywhere
        assert orders[pid] == reference
        # validity + integrity: exactly the multiset of sent messages
        assert sorted(payloads[pid]) == sorted(
            p for sender in pids for p in expected[sender]
        )
        # per-source FIFO
        for sender in pids:
            own = [p for p in payloads[pid] if p.startswith(f"{sender}:".encode())]
            assert own == expected[sender]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_nodes=st.integers(3, 5),
    crash_time=st.floats(0.005, 0.04),
    seed=st.integers(0, 2**16),
)
def test_survivor_agreement_under_crash(n_nodes, crash_time, seed):
    pids = tuple(range(1, n_nodes + 1))
    c = make_cluster(pids, seed=seed)
    victim = pids[-1]
    for i in range(20):
        for pid in pids:
            c.net.scheduler.at(0.0017 * i, c.stacks[pid].multicast, 1,
                               f"{pid}:{i}".encode())
    c.net.scheduler.at(crash_time, c.net.crash, victim)
    c.run_for(3.0)
    survivors = [p for p in pids if p != victim]
    orders = c.orders(1)
    reference = orders[survivors[0]]
    for pid in survivors[1:]:
        assert orders[pid] == reference
    # survivors agree on the final membership
    for pid in survivors:
        assert c.listeners[pid].current_membership(1) == tuple(survivors)
