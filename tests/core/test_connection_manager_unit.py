"""ConnectionManager internals."""

from repro.core import ConnectionId, FTMPConfig, FTMPStack, RecordingListener
from repro.simnet import Network, lan

CID = ConnectionId(3, 200, 7, 100)
CID2 = ConnectionId(3, 201, 7, 100)


def build():
    net = Network(lan(), seed=0)
    stacks = {}
    for pid in (1, 2, 8):
        stacks[pid] = FTMPStack(net.endpoint(pid), FTMPConfig(),
                                RecordingListener())
    for pid in (1, 2):
        stacks[pid].serve(domain=7, object_group=100, server_pids=(1, 2))
    return net, stacks


def establish(net, stacks, cid=CID):
    stacks[8].request_connection(cid, client_pids=(8,))
    net.run_for(0.3)


def test_drop_unknown_connection_is_noop():
    net, stacks = build()
    assert stacks[8].connections.drop(CID) is None


def test_drop_returns_group_when_last_reference():
    net, stacks = build()
    establish(net, stacks)
    binding = stacks[8].connection_binding(CID)
    assert stacks[8].connections.drop(CID) == binding.group_id
    assert stacks[8].connection_binding(CID) is None


def test_drop_keeps_group_while_shared():
    net, stacks = build()
    establish(net, stacks, CID)
    establish(net, stacks, CID2)
    b1 = stacks[8].connection_binding(CID)
    b2 = stacks[8].connection_binding(CID2)
    assert b1.group_id == b2.group_id
    assert stacks[8].connections.drop(CID) is None  # still shared
    assert stacks[8].connections.drop(CID2) == b2.group_id


def test_release_connection_local_removes_orphan_group():
    net, stacks = build()
    establish(net, stacks)
    gid = stacks[8].connection_binding(CID).group_id
    stacks[8].release_connection_local(CID)
    assert stacks[8].group(gid) is None


def test_request_is_idempotent():
    net, stacks = build()
    stacks[8].request_connection(CID, client_pids=(8,))
    stacks[8].request_connection(CID, client_pids=(8,))  # no double pending
    net.run_for(0.3)
    assert stacks[8].connection_binding(CID).established


def test_connect_request_for_foreign_group_ignored():
    net, stacks = build()
    foreign = ConnectionId(3, 200, 9, 999)  # domain we do not serve
    stacks[8].request_connection(foreign, client_pids=(8,))
    net.run_for(0.3)
    assert stacks[8].connection_binding(foreign) is None
