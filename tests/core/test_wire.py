"""Codec tests: every FTMP message type round-trips, both byte orders."""

import dataclasses

import pytest

from repro.core import (
    HEADER_SIZE,
    AddProcessorMessage,
    BatchMessage,
    CodecError,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    HeartbeatMessage,
    MembershipMessage,
    MessageType,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
    decode,
    encode,
    mark_retransmission,
    peek_header,
)


def header(mtype: MessageType, little: bool = True) -> FTMPHeader:
    return FTMPHeader(
        message_type=mtype,
        source=7,
        group=42,
        sequence_number=1234,
        timestamp=99,
        ack_timestamp=55,
        little_endian=little,
    )


CID = ConnectionId(1, 2, 3, 4)


def sample_messages(little: bool):
    return [
        RegularMessage(header(MessageType.REGULAR, little), CID, 17, b"payload!"),
        RetransmitRequestMessage(header(MessageType.RETRANSMIT_REQUEST, little), 9, 5, 11),
        HeartbeatMessage(header(MessageType.HEARTBEAT, little)),
        ConnectRequestMessage(header(MessageType.CONNECT_REQUEST, little), CID, (8, 9)),
        ConnectMessage(header(MessageType.CONNECT, little), CID, 1000, 2000, 77, (1, 2, 8, 9)),
        AddProcessorMessage(
            header(MessageType.ADD_PROCESSOR, little), 77, (1, 2, 3), {1: 10, 2: 20, 3: 0}, 4
        ),
        RemoveProcessorMessage(header(MessageType.REMOVE_PROCESSOR, little), 2),
        SuspectMessage(header(MessageType.SUSPECT, little), 77, (3,)),
        MembershipMessage(
            header(MessageType.MEMBERSHIP, little), 77, (1, 2, 3), {1: 10, 2: 20, 3: 5}, (1, 2)
        ),
    ]


@pytest.mark.parametrize("little", [True, False], ids=["little-endian", "big-endian"])
def test_all_types_round_trip(little):
    for msg in sample_messages(little):
        raw = encode(msg)
        out = decode(raw)
        assert type(out) is type(msg)
        assert out.header.message_type == msg.header.message_type
        assert out.header.source == msg.header.source
        assert out.header.group == msg.header.group
        assert out.header.sequence_number == msg.header.sequence_number
        assert out.header.timestamp == msg.header.timestamp
        assert out.header.ack_timestamp == msg.header.ack_timestamp
        assert out.header.little_endian == little
        # body fields
        for f in (fld.name for fld in dataclasses.fields(msg)):
            if f == "header":
                continue
            assert getattr(out, f) == getattr(msg, f), f


def test_message_size_covers_header_and_body():
    msg = RegularMessage(header(MessageType.REGULAR), CID, 1, b"x" * 100)
    raw = encode(msg)
    assert len(raw) == msg.header.message_size
    assert msg.header.message_size > HEADER_SIZE + 100


def test_heartbeat_is_header_only():
    raw = encode(HeartbeatMessage(header(MessageType.HEARTBEAT)))
    assert len(raw) == HEADER_SIZE


def test_peek_header_without_body_decode():
    msg = RegularMessage(header(MessageType.REGULAR), CID, 1, b"data")
    h = peek_header(encode(msg))
    assert h.message_type == MessageType.REGULAR
    assert h.source == 7
    assert h.sequence_number == 1234


def test_retransmission_flag_round_trip():
    h = header(MessageType.REGULAR)
    h.retransmission = True
    raw = encode(RegularMessage(h, CID, 1, b""))
    assert decode(raw).header.retransmission is True


def test_as_retransmission_copies_header():
    h = header(MessageType.REGULAR)
    h2 = h.as_retransmission()
    assert h2.retransmission and not h.retransmission
    assert h2.sequence_number == h.sequence_number


@pytest.mark.parametrize("little", [True, False], ids=["little-endian", "big-endian"])
def test_mark_retransmission_round_trip(little):
    msg = RegularMessage(header(MessageType.REGULAR, little), CID, 17, b"payload!")
    raw = encode(msg)
    marked = mark_retransmission(raw)
    assert marked != raw
    out = decode(marked)
    assert out.header.retransmission is True
    assert out.header.little_endian == little
    assert out.header.sequence_number == msg.header.sequence_number
    assert out.payload == msg.payload
    # the original buffer is untouched and still decodes unflagged
    assert decode(raw).header.retransmission is False


def test_mark_retransmission_is_idempotent():
    raw = encode(HeartbeatMessage(header(MessageType.HEARTBEAT)))
    once = mark_retransmission(raw)
    assert mark_retransmission(once) == once


def test_mark_retransmission_rejects_truncated_input():
    with pytest.raises(CodecError):
        mark_retransmission(b"FTMP\x01")


@pytest.mark.parametrize("little", [True, False], ids=["little-endian", "big-endian"])
def test_batch_round_trip(little):
    parts = tuple(
        encode(RegularMessage(header(MessageType.REGULAR, little), CID, i, b"p%d" % i))
        for i in range(3)
    )
    msg = BatchMessage(header(MessageType.BATCH, little), parts)
    out = decode(encode(msg))
    assert isinstance(out, BatchMessage)
    assert out.parts == parts
    # every part decodes back to its original Regular
    for i, part in enumerate(out.parts):
        inner = decode(part)
        assert isinstance(inner, RegularMessage)
        assert inner.payload == b"p%d" % i


def test_empty_batch_round_trip():
    out = decode(encode(BatchMessage(header(MessageType.BATCH), ())))
    assert isinstance(out, BatchMessage)
    assert out.parts == ()


def test_bad_magic_rejected():
    raw = bytearray(encode(HeartbeatMessage(header(MessageType.HEARTBEAT))))
    raw[0:4] = b"JUNK"
    with pytest.raises(CodecError):
        decode(bytes(raw))


def test_truncated_datagram_rejected():
    raw = encode(RegularMessage(header(MessageType.REGULAR), CID, 1, b"abcdef"))
    with pytest.raises(CodecError):
        decode(raw[: HEADER_SIZE + 2])
    with pytest.raises(CodecError):
        peek_header(raw[:10])


def test_unknown_message_type_rejected():
    raw = bytearray(encode(HeartbeatMessage(header(MessageType.HEARTBEAT))))
    raw[7] = 200
    with pytest.raises(CodecError):
        decode(bytes(raw))


def test_size_mismatch_rejected():
    raw = encode(RegularMessage(header(MessageType.REGULAR), CID, 1, b"abc"))
    with pytest.raises(CodecError):
        decode(raw + b"extra")


def test_empty_collections_round_trip():
    msg = MembershipMessage(header(MessageType.MEMBERSHIP), 0, (), {}, ())
    out = decode(encode(msg))
    assert out.current_membership == ()
    assert out.sequence_numbers == {}
    assert out.new_membership == ()


def test_connection_id_reversed():
    assert CID.reversed() == ConnectionId(3, 4, 1, 2)
    assert CID.reversed().reversed() == CID


def test_large_payload_round_trip():
    payload = bytes(range(256)) * 100
    msg = RegularMessage(header(MessageType.REGULAR), CID, 2**63, payload)
    out = decode(encode(msg))
    assert out.payload == payload
    assert out.request_num == 2**63
