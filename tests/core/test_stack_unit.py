"""FTMPStack unit behaviour: routing, heartbeats, stats, lifecycle."""

import pytest

from repro.analysis import make_cluster
from repro.core import (
    ConnectionId,
    FTMPConfig,
    FTMPStack,
    MessageType,
    RecordingListener,
)
from repro.simnet import Network, lan


def test_heartbeats_suppressed_by_application_traffic():
    # §5: a Heartbeat is sent only "if the processor has not multicast a
    # Regular message ... within a specified period of time"
    c = make_cluster((1, 2), config=FTMPConfig(heartbeat_interval=0.01))
    # node 1 sends Regulars faster than the heartbeat interval
    for i in range(100):
        c.net.scheduler.at(0.004 * i, c.stacks[1].multicast, 1, b"busy")
    c.run_for(0.4)
    g1 = c.stacks[1].group(1)
    g2 = c.stacks[2].group(1)
    assert g1.stats.heartbeats_sent <= 2  # quiet start only
    assert g2.stats.heartbeats_sent >= 30  # the quiet node heartbeats


def test_heartbeat_carries_latest_seq_and_ack():
    c = make_cluster((1, 2))
    c.stacks[1].multicast(1, b"one")
    c.stacks[1].multicast(1, b"two")
    c.run_for(0.2)
    g1 = c.stacks[1].group(1)
    # the header builder reuses the last reliable seq for heartbeats
    h = g1._header(MessageType.HEARTBEAT, reliable=False)
    assert h.sequence_number == 2
    assert h.ack_timestamp == g1.romp.ack_timestamp > 0


def test_unknown_group_datagrams_dropped_and_counted():
    net = Network(lan(), seed=0)
    a = FTMPStack(net.endpoint(1), FTMPConfig())
    b = FTMPStack(net.endpoint(2), FTMPConfig())
    a.create_group(1, 5001, (1, 2))
    # b joins the address at the IP level but has no group state
    net.endpoint(2).join(5001)
    b_receiver_installed = True
    a.multicast(1, b"x")
    net.run_for(0.1)
    assert b.stats.unknown_group_drops > 0


def test_decode_errors_counted_not_fatal():
    net = Network(lan(), seed=0)
    a = FTMPStack(net.endpoint(1), FTMPConfig())
    a.create_group(1, 5001, (1,))
    net.endpoint(2).join(5001)
    net.endpoint(2).set_receiver(lambda d: None)
    # inject garbage onto the group address
    garbage_sender = net.endpoint(3)
    garbage_sender.multicast(5001, b"not ftmp at all")
    net.run_for(0.05)
    assert a.stats.decode_errors == 1
    # the stack still works
    a.multicast(1, b"fine")
    net.run_for(0.1)


def test_stack_in_multiple_groups_simultaneously():
    # §2: "Each processor can be a member of several processor groups at
    # the same time."
    net = Network(lan(), seed=1)
    listeners, stacks = {}, {}
    for pid in (1, 2, 3):
        lst = RecordingListener()
        st = FTMPStack(net.endpoint(pid), FTMPConfig(), lst)
        listeners[pid], stacks[pid] = lst, st
    # group A: {1,2}; group B: {2,3}; group C: {1,2,3}
    for pid in (1, 2):
        stacks[pid].create_group(10, 6010, (1, 2))
    for pid in (2, 3):
        stacks[pid].create_group(20, 6020, (2, 3))
    for pid in (1, 2, 3):
        stacks[pid].create_group(30, 6030, (1, 2, 3))
    stacks[1].multicast(10, b"A")
    stacks[3].multicast(20, b"B")
    # node 2 sends in group C only after delivering in groups A and B, so
    # its (single, per-processor) Lamport clock carries causality across
    # groups
    net.run_for(0.1)
    stacks[2].multicast(30, b"C")
    net.run_for(0.3)
    assert listeners[2].payloads(10) == [b"A"]
    assert listeners[2].payloads(20) == [b"B"]
    assert listeners[2].payloads(30) == [b"C"]
    assert listeners[1].payloads(20) == []  # not a member of B
    assert listeners[3].payloads(10) == []
    # one Lamport clock per processor spans its groups: a send in group C
    # after receiving in group A carries a larger timestamp
    a_ts = listeners[2].deliveries[0].timestamp
    assert any(d.timestamp > a_ts for d in listeners[2].deliveries)


def test_stop_cancels_everything_idempotently():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.stacks[1].stop()
    c.stacks[1].stop()  # idempotent
    before = c.net.scheduler.events_processed
    c.run_for(0.2)
    # nodes 2,3 keep running; node 1 neither sends nor crashes the run
    assert c.stacks[1].group(1) is None
    with pytest.raises(KeyError):
        c.stacks[1].multicast(1, b"x")


def test_multicast_to_unknown_group_raises():
    c = make_cluster((1, 2))
    with pytest.raises(KeyError):
        c.stacks[1].multicast(99, b"x")


def test_create_group_validations():
    c = make_cluster((1, 2))
    with pytest.raises(ValueError):
        c.stacks[1].create_group(1, 5001, (1, 2))  # already exists
    with pytest.raises(ValueError):
        c.stacks[1].create_group(2, 5002, (2, 3))  # not a member
    with pytest.raises(ValueError):
        c.stacks[1].join_as_new_member(1, 5001)  # group already exists


def test_big_endian_stack_interops_with_little_endian():
    # §3.2: the byte-order header flag lets mixed-endian stacks interop
    net = Network(lan(), seed=0)
    lst1, lst2 = RecordingListener(), RecordingListener()
    a = FTMPStack(net.endpoint(1), FTMPConfig(little_endian=False), lst1)
    b = FTMPStack(net.endpoint(2), FTMPConfig(little_endian=True), lst2)
    a.create_group(1, 5001, (1, 2))
    b.create_group(1, 5001, (1, 2))
    a.multicast(1, b"from-big-endian")
    b.multicast(1, b"from-little-endian")
    net.run_for(0.3)
    assert lst1.payloads(1) == lst2.payloads(1)
    assert len(lst1.payloads(1)) == 2


def test_datagram_stats_counted():
    c = make_cluster((1, 2))
    c.stacks[1].multicast(1, b"x")
    c.run_for(0.2)
    assert c.stacks[1].stats.datagrams_sent > 0
    assert c.stacks[2].stats.datagrams_received > 0


def test_custom_allocator_used_for_connections():
    net = Network(lan(), seed=0)
    calls = []

    def allocator(membership):
        calls.append(membership)
        return 777, 8888

    server = FTMPStack(net.endpoint(1), FTMPConfig(), allocator=allocator)
    client = FTMPStack(net.endpoint(8), FTMPConfig())
    server.serve(domain=7, object_group=100, server_pids=(1,))
    cid = ConnectionId(3, 200, 7, 100)
    client.request_connection(cid, client_pids=(8,))
    net.run_for(0.3)
    assert calls == [(1, 8)]
    assert client.connection_binding(cid).group_id == 777
    assert client.connection_binding(cid).address == 8888
