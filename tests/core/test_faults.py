"""PGMP §7.2: suspicion, conviction, fault views, virtual synchrony."""

from repro.core import FTMPConfig
from repro.analysis.harness import make_cluster


def test_crashed_processor_is_detected_and_removed():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.net.crash(3)
    c.run_for(1.0)
    for pid in (1, 2):
        assert c.listeners[pid].current_membership(1) == (1, 2)
        assert c.listeners[pid].faults
        assert c.listeners[pid].faults[-1].convicted == (3,)


def test_ordering_stalls_then_resumes_after_fault_view():
    # §7: "If one or more processors are faulty, the ordering of messages
    # stops until those processors are removed from the membership."
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.net.crash(3)
    c.run_for(0.005)
    c.stacks[1].multicast(1, b"during-fault")
    # shortly after the crash the message cannot be ordered yet
    c.run_for(0.02)
    assert b"during-fault" not in c.listeners[2].payloads(1)
    # after detection + conviction + new view it is delivered
    c.run_for(1.0)
    assert b"during-fault" in c.listeners[2].payloads(1)
    assert b"during-fault" in c.listeners[1].payloads(1)


def test_survivors_agree_on_deliveries_across_crash():
    c = make_cluster((1, 2, 3, 4, 5), seed=77)
    for i in range(40):
        for pid in (1, 2, 3, 4, 5):
            c.net.scheduler.at(0.0013 * i, c.stacks[pid].multicast, 1,
                               f"{pid}:{i}".encode())
    c.net.scheduler.at(0.020, c.net.crash, 4)
    c.run_for(2.0)
    orders = c.orders(1)
    assert orders[1] == orders[2] == orders[3] == orders[5]
    assert len(orders[1]) > 100


def test_crashed_members_final_messages_delivered_to_all_or_none():
    # virtual synchrony: survivors deliver exactly the same set of the
    # crashed member's messages
    c = make_cluster((1, 2, 3), seed=5)
    for i in range(20):
        c.net.scheduler.at(0.001 * i, c.stacks[3].multicast, 1, f"dying{i}".encode())
    c.net.scheduler.at(0.0105, c.net.crash, 3)
    c.run_for(2.0)
    from3_at_1 = [p for p in c.listeners[1].payloads(1) if p.startswith(b"dying")]
    from3_at_2 = [p for p in c.listeners[2].payloads(1) if p.startswith(b"dying")]
    assert from3_at_1 == from3_at_2


def test_multiple_simultaneous_crashes():
    c = make_cluster((1, 2, 3, 4, 5))
    c.run_for(0.05)
    c.net.crash(4)
    c.net.crash(5)
    c.run_for(2.0)
    for pid in (1, 2, 3):
        assert c.listeners[pid].current_membership(1) == (1, 2, 3)
    convicted = set()
    for f in c.listeners[1].faults:
        convicted |= set(f.convicted)
    assert convicted == {4, 5}


def test_cascading_crash_during_round():
    c = make_cluster((1, 2, 3, 4, 5))
    c.run_for(0.05)
    c.net.crash(4)
    # second crash lands mid-detection of the first
    c.net.scheduler.at(c.net.scheduler.now + 0.07, c.net.crash, 5)
    c.run_for(3.0)
    for pid in (1, 2, 3):
        assert c.listeners[pid].current_membership(1) == (1, 2, 3)


def test_transient_silence_is_not_convicted():
    # a partition shorter than the suspect timeout must not evict anyone
    cfg = FTMPConfig(suspect_timeout=0.200)
    c = make_cluster((1, 2, 3), config=cfg)
    c.run_for(0.05)
    c.net.partition({1, 2}, {3})
    c.run_for(0.08)  # silence < suspect_timeout
    c.net.heal()
    c.run_for(0.5)
    for pid in (1, 2, 3):
        assert c.listeners[pid].current_membership(1) in (None, (1, 2, 3))
        assert not c.listeners[pid].faults
    c.stacks[3].multicast(1, b"alive")
    c.run_for(0.3)
    assert b"alive" in c.listeners[1].payloads(1)


def test_single_false_accuser_cannot_convict_in_larger_group():
    # conviction needs a majority of unsuspected members (DESIGN.md §2)
    c = make_cluster((1, 2, 3, 4))
    c.run_for(0.05)
    g1 = c.stacks[1].group(1)
    g1.pgmp.raise_suspicion(3)  # forged local suspicion at node 1 only
    c.run_for(0.5)
    for pid in (1, 2, 4):
        assert not c.listeners[pid].faults
        assert c.listeners[pid].current_membership(1) in (None, (1, 2, 3, 4))


def test_two_member_group_survivor_excludes_dead_peer():
    c = make_cluster((1, 2))
    c.run_for(0.05)
    c.net.crash(2)
    c.run_for(1.0)
    assert c.listeners[1].current_membership(1) == (1,)
    c.stacks[1].multicast(1, b"alone")
    c.run_for(0.2)
    assert b"alone" in c.listeners[1].payloads(1)


def test_fault_view_timestamp_agrees_across_survivors():
    c = make_cluster((1, 2, 3, 4))
    c.run_for(0.05)
    c.net.crash(4)
    c.run_for(1.5)
    stamps = {
        pid: [v for v in c.listeners[pid].views if v.reason == "fault"][-1].view_timestamp
        for pid in (1, 2, 3)
    }
    assert len(set(stamps.values())) == 1


def test_group_functions_after_fault_view():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.net.crash(2)
    c.run_for(1.0)
    c.stacks[1].multicast(1, b"post-fault-1")
    c.stacks[3].multicast(1, b"post-fault-3")
    c.run_for(0.3)
    assert b"post-fault-1" in c.listeners[3].payloads(1)
    assert b"post-fault-3" in c.listeners[1].payloads(1)
    assert c.orders(1)[1][-2:] == c.orders(1)[3][-2:]


def test_suspicion_withdrawn_when_member_heard_again():
    cfg = FTMPConfig(suspect_timeout=0.080)
    c = make_cluster((1, 2, 3), config=cfg)
    c.run_for(0.05)
    # partition node 3 long enough to be suspected but heal before the
    # (majority) conviction can complete at everyone
    c.net.partition({1, 2}, {3})
    c.run_for(0.095)
    c.net.heal()
    c.run_for(1.0)
    # either nobody was evicted, or the view healed back to full strength
    m = c.listeners[1].current_membership(1)
    fd = c.stacks[1].group(1).fault_detector
    assert fd.stats.suspicions_raised >= 1
    if m == (1, 2, 3):
        assert fd.stats.suspicions_withdrawn >= 1
