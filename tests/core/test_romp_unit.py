"""Direct unit tests of the ROMP layer against a mock group context."""

from typing import List

from repro.core import FTMPConfig, LamportClock, MessageType, RetransmissionBuffer
from repro.core.messages import FTMPHeader, HeartbeatMessage, RegularMessage, ConnectionId
from repro.core.romp import ROMP


class MockGroup:
    """Minimal group-context stand-in for exercising ROMP in isolation."""

    def __init__(self, pid=1, membership=(1, 2, 3)):
        self._pid = pid
        self.membership = tuple(membership)
        self.config = FTMPConfig()
        self.clock = LamportClock()
        self.buffer = RetransmissionBuffer()
        self.legacy_keys = set()
        self.delivered: List[RegularMessage] = []
        self.ordered_control: List = []
        self.source_ordered: List = []
        self.alive: List[int] = []
        self.barrier_cleared = 0
        self.stability_advances: List[int] = []

    @property
    def pid(self):
        return self._pid

    def deliver_regular(self, msg):
        self.delivered.append(msg)

    def pgmp_receive_ordered(self, msg):
        self.ordered_control.append(msg)

    def pgmp_receive_source_ordered(self, msg):
        self.source_ordered.append(msg)

    def note_alive(self, src):
        self.alive.append(src)

    def on_send_barrier_cleared(self):
        self.barrier_cleared += 1

    def on_stability_advance(self, stable):
        self.stability_advances.append(stable)


def regular(src, ts, seq=None, ack=0):
    return RegularMessage(
        header=FTMPHeader(MessageType.REGULAR, source=src, group=1,
                          sequence_number=seq if seq is not None else ts,
                          timestamp=ts, ack_timestamp=ack),
        connection_id=ConnectionId.none(),
        request_num=0,
        payload=f"{src}:{ts}".encode(),
    )


def heartbeat(src, ts, seq=0, ack=0):
    return HeartbeatMessage(
        header=FTMPHeader(MessageType.HEARTBEAT, source=src, group=1,
                          sequence_number=seq, timestamp=ts, ack_timestamp=ack)
    )


def test_no_delivery_until_all_members_cover_timestamp():
    g = MockGroup()
    r = ROMP(g)
    r.receive(regular(1, ts=5))
    assert g.delivered == []  # members 2,3 not heard past ts 5
    r.receive_heartbeat(heartbeat(2, ts=6))
    assert g.delivered == []  # member 3 still behind
    r.receive_heartbeat(heartbeat(3, ts=7))
    assert [m.header.source for m in g.delivered] == [1]


def test_delivery_in_timestamp_then_source_order():
    g = MockGroup()
    r = ROMP(g)
    r.receive(regular(3, ts=5))
    r.receive(regular(2, ts=5, seq=5))
    r.receive(regular(1, ts=4))
    r.receive_heartbeat(heartbeat(1, ts=9))
    r.receive_heartbeat(heartbeat(2, ts=9, seq=5))
    r.receive_heartbeat(heartbeat(3, ts=9, seq=5))
    keys = [(m.header.timestamp, m.header.source) for m in g.delivered]
    assert keys == [(4, 1), (5, 2), (5, 3)]


def test_equal_timestamp_coverage_suffices():
    # coverage uses >= : a member whose last timestamp equals the head's
    # cannot produce anything earlier
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    r.receive(regular(1, ts=5))
    r.receive_heartbeat(heartbeat(2, ts=5))
    assert len(g.delivered) == 1


def test_ack_advances_with_deliveries_and_drives_stability():
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    g.buffer.add(1, 1, 5, b"raw")
    r.receive(regular(1, ts=5, ack=0))
    r.receive_heartbeat(heartbeat(2, ts=6, ack=0))
    assert r.ack_timestamp == 5
    # stability is the min over members' acks; peer ack still 0
    assert r.stability_timestamp() == 0
    assert len(g.buffer) == 1
    # peer acks past ts 5 -> stable -> buffer reclaimed
    r.receive_heartbeat(heartbeat(2, ts=7, ack=5))
    assert r.stability_timestamp() == 5
    assert len(g.buffer) == 0


def test_bypass_types_never_enter_the_queue():
    from repro.core.messages import SuspectMessage

    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    s = SuspectMessage(
        header=FTMPHeader(MessageType.SUSPECT, source=2, group=1,
                          sequence_number=1, timestamp=50, ack_timestamp=0),
        membership_timestamp=0,
        suspects=(9,),
    )
    r.receive(s)
    assert g.source_ordered == [s]
    assert r.queued() == 0


def test_staging_holds_non_member_sources_until_flush():
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    r.receive(regular(9, ts=5))  # 9 is not a member
    assert r.queued() == 0
    assert g.delivered == []
    # admit 9 and flush: the staged message enters the queue
    g.membership = (1, 2, 9)
    r.flush_staging(9)
    assert r.queued() == 1
    r.receive_heartbeat(heartbeat(1, ts=9))
    r.receive_heartbeat(heartbeat(2, ts=9))
    r.evaluate()
    assert [m.header.source for m in g.delivered] == [9]


def test_staging_is_capacity_bounded():
    g = MockGroup(membership=(1,))
    r = ROMP(g)
    r._STAGING_CAP = 3
    for ts in range(1, 10):
        r.receive(regular(9, ts=ts, seq=ts))
    assert len(r._staging[9]) == 3


def test_send_barrier_blocks_until_coverage():
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    assert r.can_send_ordered()
    r.set_send_barrier(10)
    assert not r.can_send_ordered()
    r.receive_heartbeat(heartbeat(1, ts=11))
    assert not r.can_send_ordered()  # member 2 not past the barrier
    r.receive_heartbeat(heartbeat(2, ts=12))
    assert r.can_send_ordered()
    assert g.barrier_cleared == 1


def test_purge_queue_after_seq_cutoff():
    g = MockGroup(membership=(1, 2, 3))
    r = ROMP(g)
    r.receive(regular(3, ts=5, seq=1))
    r.receive(regular(3, ts=6, seq=2))
    r.receive(regular(3, ts=7, seq=3))
    assert r.queued() == 3
    dropped = r.purge_queue_after(3, seq_cutoff=1)
    assert dropped == 2
    assert r.queued_from(3) == 1
    assert r.keys_from(3) == [(5, 3)]


def test_legacy_keys_allow_delivery_from_departed_member():
    g = MockGroup(membership=(1, 2, 3))
    r = ROMP(g)
    r.receive(regular(3, ts=5, seq=1))
    # 3 departs; its queued message is grandfathered
    g.membership = (1, 2)
    g.legacy_keys = {(5, 3)}
    r.purge_source(3)
    r.receive_heartbeat(heartbeat(1, ts=9))
    r.receive_heartbeat(heartbeat(2, ts=9))
    assert [m.header.source for m in g.delivered] == [3]


def test_duplicate_keys_not_enqueued_twice():
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    m = regular(1, ts=5)
    r.receive(m)
    r.receive(m)
    assert r.queued() == 1


def test_observe_header_notes_liveness():
    g = MockGroup(membership=(1, 2))
    r = ROMP(g)
    r.observe_header(heartbeat(2, ts=3).header)
    assert g.alive == [2]
    assert g.clock.time >= 3


# ----------------------------------------------------------------------
# §7 quiescence barrier: empty membership must NOT clear it
# ----------------------------------------------------------------------
def test_send_barrier_holds_while_membership_is_empty():
    # A still-joining group has membership (): the all() over members is
    # vacuously true, so without an explicit guard the barrier would clear
    # before any real member has been heard past it.
    g = MockGroup(membership=())
    romp = ROMP(g)
    romp.set_send_barrier(5)
    assert not romp.can_send_ordered()
    romp.evaluate()  # evaluate() re-checks the barrier every time
    assert not romp.can_send_ordered()
    assert g.barrier_cleared == 0


def test_send_barrier_clears_once_members_are_heard_past_it():
    g = MockGroup(membership=())
    romp = ROMP(g)
    romp.set_send_barrier(5)
    # membership arrives (join completes) and every member is heard past
    # the barrier timestamp: now — and only now — the barrier lifts
    g.membership = (1, 2)
    romp.receive_heartbeat(heartbeat(1, 6))
    romp.receive_heartbeat(heartbeat(2, 7))
    assert romp.can_send_ordered()
    assert g.barrier_cleared == 1
