"""Layering guard: the protocol layers stay runtime-agnostic.

``repro.core`` and ``repro.baselines`` are written against the neutral
:mod:`repro.transport` seam only; importing a concrete runtime
(``repro.simnet`` or ``repro.runtime``) from them is the inverted
dependency this guard exists to catch (`make lint` greps for the same
patterns).  The runtimes themselves must not import each other either:
``simnet`` is the semantic truth, ``runtime`` the wall-clock truth, and
nothing forces one to load to use the other.
"""

import pathlib
import re
import sys

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: package -> forbidden sibling packages
RULES = {
    "core": ("simnet", "runtime"),
    "baselines": ("simnet", "runtime"),
    "runtime": ("simnet",),
    "simnet": ("runtime",),
}


def _violations(package: str, forbidden: tuple) -> list:
    alts = "|".join(forbidden)
    pattern = re.compile(
        rf"^\s*(?:from\s+(?:repro\.|\.\.)(?:{alts})|import\s+repro\.(?:{alts}))\b",
        re.MULTILINE,
    )
    found = []
    for path in sorted((SRC / package).rglob("*.py")):
        for m in pattern.finditer(path.read_text()):
            line = m.group(0).strip()
            found.append(f"{path.relative_to(SRC.parent)}: {line}")
    return found


def test_protocol_layers_never_import_a_runtime():
    problems = []
    for package, forbidden in RULES.items():
        problems += _violations(package, forbidden)
    assert not problems, "layering violations:\n" + "\n".join(problems)


def test_transport_module_is_runtime_neutral():
    text = (SRC / "transport.py").read_text()
    assert not re.search(r"\b(simnet|runtime)\b\s*import|import\s+(asyncio|socket)",
                         text), "repro.transport must stay dependency-free"


def test_core_loads_without_either_runtime():
    """Importing the protocol layers must not drag in a runtime package."""
    import subprocess

    code = (
        "import sys\n"
        "import repro.core, repro.baselines\n"
        "bad = [m for m in sys.modules if m.startswith(('repro.simnet', 'repro.runtime'))]\n"
        "assert not bad, bad\n"
    )
    proc = subprocess.run([sys.executable, "-c", code], capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
