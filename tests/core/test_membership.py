"""PGMP §7.1: AddProcessor / RemoveProcessor for non-faulty processors."""

from repro.core import FTMPConfig, FTMPStack, RecordingListener
from repro.analysis.harness import make_cluster


def add_member(cluster, new_pid, group=1, address=5001, initiator=None):
    """Bring a fresh processor into an existing cluster's group."""
    lst = RecordingListener()
    st = FTMPStack(cluster.net.endpoint(new_pid), FTMPConfig(), lst)
    cluster.stacks[new_pid] = st
    cluster.listeners[new_pid] = lst
    st.join_as_new_member(group, address)
    init = initiator if initiator is not None else min(
        p for p in cluster.stacks if p != new_pid
    )
    cluster.stacks[init].add_processor(group, new_pid)
    return st, lst


def test_add_processor_installs_view_everywhere():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    add_member(c, 4)
    c.run_for(0.3)
    for pid in (1, 2, 3, 4):
        assert c.listeners[pid].current_membership(1) == (1, 2, 3, 4)


def test_new_member_participates_in_total_order():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    add_member(c, 4)
    c.run_for(0.3)
    c.stacks[4].multicast(1, b"from-4")
    c.stacks[1].multicast(1, b"from-1")
    c.run_for(0.3)
    orders = c.orders(1)
    assert orders[1] == orders[2] == orders[3]
    for pid in (1, 2, 3):
        assert b"from-4" in c.listeners[pid].payloads(1)
    assert b"from-4" in c.listeners[4].payloads(1)


def test_new_member_delivery_is_suffix_of_old_members():
    c = make_cluster((1, 2, 3))
    for i in range(10):
        c.net.scheduler.at(0.002 * i, c.stacks[1].multicast, 1, f"pre{i}".encode())
    c.net.scheduler.at(0.008, lambda: add_member(c, 4))
    for i in range(10):
        c.net.scheduler.at(0.05 + 0.002 * i, c.stacks[2].multicast, 1, f"post{i}".encode())
    c.run_for(1.0)
    full = c.orders(1)[1]
    suffix = c.orders(1)[4]
    assert len(suffix) > 0
    assert suffix == full[-len(suffix):]
    # everything after the join point was delivered to the new member
    assert all(f"post{i}".encode() in c.listeners[4].payloads(1) for i in range(10))


def test_ordering_continues_during_add():
    # §7.1: ordering "continues unaffected" by non-faulty changes.
    c = make_cluster((1, 2, 3))
    for i in range(30):
        c.net.scheduler.at(0.001 * i, c.stacks[3].multicast, 1, f"m{i}".encode())
    c.net.scheduler.at(0.012, lambda: add_member(c, 4))
    c.run_for(1.0)
    assert [p for p in c.listeners[1].payloads(1)] == [f"m{i}".encode() for i in range(30)]
    orders = c.orders(1)
    assert orders[1] == orders[2] == orders[3]
    # the joiner's history is a suffix of the full order
    assert orders[4] == orders[1][-len(orders[4]):]


def test_remove_processor_shrinks_view_and_evicts():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.stacks[1].remove_processor(1, 3)
    c.run_for(0.3)
    assert c.listeners[1].current_membership(1) == (1, 2)
    assert c.listeners[2].current_membership(1) == (1, 2)
    # the removed processor saw its own eviction and dropped the group
    evicted_views = [v for v in c.listeners[3].views if v.reason == "remove"]
    assert evicted_views and evicted_views[-1].removed == (3,)
    assert c.stacks[3].group(1) is None


def test_removed_processor_messages_after_remove_are_not_delivered():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.stacks[1].remove_processor(1, 3)
    c.run_for(0.3)
    # node 3 is gone; survivors keep exchanging messages consistently
    c.stacks[1].multicast(1, b"after")
    c.run_for(0.2)
    assert c.listeners[1].payloads(1) == [b"after"]
    assert c.listeners[2].payloads(1) == [b"after"]


def test_self_leave_via_remove():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    c.stacks[2].leave_group(1)
    c.run_for(0.3)
    assert c.stacks[2].group(1) is None
    assert c.listeners[1].current_membership(1) == (1, 3)


def test_add_then_remove_round_trip():
    c = make_cluster((1, 2))
    c.run_for(0.05)
    add_member(c, 3)
    c.run_for(0.3)
    assert c.listeners[1].current_membership(1) == (1, 2, 3)
    c.stacks[1].remove_processor(1, 3)
    c.run_for(0.3)
    assert c.listeners[1].current_membership(1) == (1, 2)
    c.stacks[1].multicast(1, b"still-works")
    c.run_for(0.2)
    assert c.listeners[2].payloads(1)[-1] == b"still-works"


def test_add_retransmits_until_new_member_heard():
    # Start the new member's stack *late*: the initiator must keep
    # retransmitting the AddProcessor (§7.1, unreliable to the new member).
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    lst = RecordingListener()
    st = FTMPStack(c.net.endpoint(4), FTMPConfig(), lst)
    c.stacks[4] = st
    c.listeners[4] = lst
    # initiator announces the add before the new member starts listening
    c.stacks[1].add_processor(1, 4)
    c.net.scheduler.at(c.net.scheduler.now + 0.1, st.join_as_new_member, 1, 5001)
    c.run_for(0.5)
    assert lst.current_membership(1) == (1, 2, 3, 4)
    st.multicast(1, b"late-joiner")
    c.run_for(0.2)
    assert b"late-joiner" in c.listeners[1].payloads(1)


def test_duplicate_add_is_rejected():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    import pytest

    with pytest.raises(ValueError):
        c.stacks[1].add_processor(1, 2)  # already a member
    with pytest.raises(ValueError):
        c.stacks[1].remove_processor(1, 99)  # not a member


def test_view_timestamps_agree_across_members():
    c = make_cluster((1, 2, 3))
    c.run_for(0.05)
    add_member(c, 4)
    c.run_for(0.3)
    stamps = {pid: c.listeners[pid].views[-1].view_timestamp for pid in (1, 2, 3, 4)}
    assert len(set(stamps.values())) == 1
