"""Golden wire-format vectors.

Pins the exact byte layout of the FTMP header and representative bodies,
so accidental format changes (field order, widths, endianness handling)
are caught even when encode/decode remain mutually consistent.
"""

from repro.core import (
    ConnectionId,
    FTMPHeader,
    HeartbeatMessage,
    MessageType,
    RegularMessage,
    RetransmitRequestMessage,
    encode,
)


def test_heartbeat_little_endian_golden():
    h = FTMPHeader(
        message_type=MessageType.HEARTBEAT,
        source=0x01020304,
        group=0x0A0B0C0D,
        sequence_number=0x11223344,
        timestamp=0x0102030405060708,
        ack_timestamp=0x1112131415161718,
        little_endian=True,
    )
    raw = encode(HeartbeatMessage(h))
    expected = (
        b"FTMP"                     # magic
        b"\x01\x00"                 # version 1.0
        b"\x01"                     # flags: little endian
        b"\x03"                     # type HEARTBEAT
        b"\x28\x00\x00\x00"         # size = 40
        b"\x04\x03\x02\x01"         # source (LE)
        b"\x0d\x0c\x0b\x0a"         # group (LE)
        b"\x44\x33\x22\x11"         # seq (LE)
        b"\x08\x07\x06\x05\x04\x03\x02\x01"  # timestamp (LE)
        b"\x18\x17\x16\x15\x14\x13\x12\x11"  # ack (LE)
    )
    assert raw == expected


def test_heartbeat_big_endian_golden():
    h = FTMPHeader(
        message_type=MessageType.HEARTBEAT,
        source=0x01020304,
        group=0x0A0B0C0D,
        sequence_number=0x11223344,
        timestamp=0x0102030405060708,
        ack_timestamp=0x1112131415161718,
        little_endian=False,
    )
    raw = encode(HeartbeatMessage(h))
    expected = (
        b"FTMP"
        b"\x01\x00"
        b"\x00"                     # flags: big endian
        b"\x03"
        b"\x00\x00\x00\x28"
        b"\x01\x02\x03\x04"
        b"\x0a\x0b\x0c\x0d"
        b"\x11\x22\x33\x44"
        b"\x01\x02\x03\x04\x05\x06\x07\x08"
        b"\x11\x12\x13\x14\x15\x16\x17\x18"
    )
    assert raw == expected


def test_regular_body_golden():
    h = FTMPHeader(
        message_type=MessageType.REGULAR,
        source=1, group=2, sequence_number=3, timestamp=4, ack_timestamp=5,
        little_endian=True,
    )
    msg = RegularMessage(h, ConnectionId(0x0A, 0x0B, 0x0C, 0x0D), 0x0E, b"HI")
    raw = encode(msg)
    body = raw[40:]
    assert body == (
        b"\x0a\x00\x00\x00"          # client domain
        b"\x0b\x00\x00\x00"          # client group
        b"\x0c\x00\x00\x00"          # server domain
        b"\x0d\x00\x00\x00"          # server group
        b"\x0e\x00\x00\x00\x00\x00\x00\x00"  # request num (u64)
        b"\x02\x00\x00\x00"          # payload length
        b"HI"
    )
    assert len(raw) == 40 + 16 + 8 + 4 + 2


def test_retransmit_request_body_golden():
    h = FTMPHeader(
        message_type=MessageType.RETRANSMIT_REQUEST,
        source=1, group=2, sequence_number=3, timestamp=4, ack_timestamp=5,
        little_endian=True,
    )
    raw = encode(RetransmitRequestMessage(h, processor_id=9, start_seq=10, stop_seq=12))
    assert raw[40:] == (
        b"\x09\x00\x00\x00"
        b"\x0a\x00\x00\x00"
        b"\x0c\x00\x00\x00"
    )


def test_retransmission_flag_bit_position():
    h = FTMPHeader(
        message_type=MessageType.HEARTBEAT, source=1, group=1,
        sequence_number=1, timestamp=1, ack_timestamp=1,
        little_endian=True, retransmission=True,
    )
    raw = encode(HeartbeatMessage(h))
    assert raw[6] == 0x03  # little-endian bit | retransmission bit
