"""PGMP §7 / §4: logical connections between object groups."""

import pytest

from repro.core import (
    ConnectionId,
    DuplicateDetector,
    FTMPConfig,
    FTMPStack,
    RecordingListener,
    RequestNumbering,
)
from repro.simnet import Network, lan, lossy_lan

CID = ConnectionId(client_domain=3, client_group=200, server_domain=7, server_group=100)


def build(pids=(1, 2, 8, 9), topology=None, seed=0, config=None):
    net = Network(topology if topology is not None else lan(), seed=seed)
    cfg = config if config is not None else FTMPConfig()
    stacks, listeners = {}, {}
    for pid in pids:
        lst = RecordingListener()
        stacks[pid] = FTMPStack(net.endpoint(pid), cfg, lst)
        listeners[pid] = lst
    return net, stacks, listeners


def establish(net, stacks, servers=(1, 2), clients=(8, 9), settle=0.3):
    for pid in servers:
        stacks[pid].serve(domain=CID.server_domain, object_group=CID.server_group,
                          server_pids=tuple(servers))
    for pid in clients:
        stacks[pid].request_connection(CID, client_pids=tuple(clients))
    net.run_for(settle)


def test_connect_handshake_establishes_shared_group():
    net, stacks, listeners = build()
    establish(net, stacks)
    bindings = {pid: stacks[pid].connection_binding(CID) for pid in (1, 2, 8, 9)}
    assert all(b is not None and b.established for b in bindings.values())
    gids = {b.group_id for b in bindings.values()}
    assert len(gids) == 1
    assert bindings[1].membership == (1, 2, 8, 9)


def test_messages_on_connection_delivered_to_both_groups():
    # §4: "Each message sent by a client (server) object group ... is
    # delivered to both groups, which enables duplicate detection."
    net, stacks, listeners = build()
    establish(net, stacks)
    stacks[8].send_on_connection(CID, b"REQ", request_num=1)
    net.run_for(0.2)
    for pid in (1, 2, 8, 9):
        assert [d.payload for d in listeners[pid].deliveries] == [b"REQ"]
        assert listeners[pid].deliveries[0].connection_id == CID
        assert listeners[pid].deliveries[0].request_num == 1


def test_handshake_survives_loss():
    net, stacks, listeners = build(topology=lossy_lan(0.3), seed=3,
                                   config=FTMPConfig(suspect_timeout=10.0))
    establish(net, stacks, settle=2.0)
    assert stacks[8].connection_binding(CID).established


def test_duplicate_connect_requests_ignored():
    net, stacks, listeners = build()
    establish(net, stacks)
    binding_before = stacks[1].connection_binding(CID)
    # clients keep re-requesting (crossed retransmissions, §7)
    stacks[8].connections.request(CID, (8, 9))
    net.run_for(0.2)
    binding_after = stacks[1].connection_binding(CID)
    assert binding_after.group_id == binding_before.group_id


def test_connections_with_same_processors_share_group():
    net, stacks, listeners = build()
    establish(net, stacks)
    cid2 = ConnectionId(client_domain=3, client_group=201,
                        server_domain=7, server_group=100)
    for pid in (8, 9):
        stacks[pid].request_connection(cid2, client_pids=(8, 9))
    net.run_for(0.3)
    b1 = stacks[8].connection_binding(CID)
    b2 = stacks[8].connection_binding(cid2)
    assert b2 is not None and b2.established
    assert b1.group_id == b2.group_id  # shared processor group (§7)


def test_total_order_across_client_and_server_sends():
    net, stacks, listeners = build()
    establish(net, stacks)
    stacks[8].send_on_connection(CID, b"req-a", 1)
    stacks[1].send_on_connection(CID, b"rep-a", 1)
    stacks[9].send_on_connection(CID, b"req-b", 2)
    net.run_for(0.3)
    orders = {
        pid: [(d.timestamp, d.source) for d in listeners[pid].deliveries]
        for pid in (1, 2, 8, 9)
    }
    assert orders[1] == orders[2] == orders[8] == orders[9]
    assert len(orders[1]) == 3


def test_send_on_unestablished_connection_raises():
    net, stacks, listeners = build()
    with pytest.raises(RuntimeError):
        stacks[8].send_on_connection(CID, b"x", 1)


def test_migration_moves_group_to_new_address():
    net, stacks, listeners = build()
    establish(net, stacks)
    binding = stacks[1].connection_binding(CID)
    old_addr = binding.address
    new_addr = old_addr + 1
    stacks[1].migrate_connection(CID, new_addr)
    net.run_for(0.5)
    for pid in (1, 2, 8, 9):
        b = stacks[pid].connection_binding(CID)
        assert b.address == new_addr
        g = stacks[pid].group(b.group_id)
        assert g.address == new_addr
    # traffic still flows after migration
    stacks[9].send_on_connection(CID, b"after-migration", 5)
    net.run_for(0.3)
    for pid in (1, 2, 8, 9):
        assert b"after-migration" in [d.payload for d in listeners[pid].deliveries]


def test_migration_quiescence_defers_ordered_sends():
    # §7: after a Connect, no ordered transmissions until every member is
    # heard past its timestamp.
    net, stacks, listeners = build()
    establish(net, stacks)
    binding = stacks[1].connection_binding(CID)
    g = stacks[8].group(binding.group_id)
    stacks[1].migrate_connection(CID, binding.address + 1)
    net.run_for(0.002)  # Connect ordered, barrier not yet cleared everywhere
    if not g.romp.can_send_ordered():
        stacks[8].send_on_connection(CID, b"deferred", 9)
        assert g.stats.ordered_sends_deferred >= 1
    net.run_for(0.5)
    if g.stats.ordered_sends_deferred:
        assert b"deferred" in [d.payload for d in listeners[1].deliveries]


def test_request_numbering_monotonic_and_shared():
    n = RequestNumbering()
    assert [n.next() for _ in range(3)] == [1, 2, 3]
    n.observe(10)
    assert n.next() == 11
    n.observe(5)  # smaller: no effect
    assert n.next() == 12


def test_duplicate_detector_suppresses_repeats():
    d = DuplicateDetector()
    assert d.is_duplicate(CID, 1, "request") is False
    assert d.is_duplicate(CID, 1, "request") is True
    assert d.is_duplicate(CID, 1, "reply") is False  # different kind
    assert d.is_duplicate(CID.reversed(), 1, "request") is False  # different cid
    assert d.duplicates_suppressed == 1


def test_duplicate_detector_out_of_order_watermark():
    d = DuplicateDetector()
    assert not d.is_duplicate(CID, 3, "request")
    assert not d.is_duplicate(CID, 1, "request")
    assert not d.is_duplicate(CID, 2, "request")
    # watermark advanced to 3; all repeats detected
    for n in (1, 2, 3):
        assert d.is_duplicate(CID, n, "request")
    assert d.seen_count(CID, "request") == 3
