"""LLFT leader-follower fast path (PR 7 tentpole).

The leader's reliable FIFO stream is the total order: the leader
delivers its own sends at send time and announces everyone else's via
OrderInfo Regulars; followers replay the stream one hop behind.  These
tests pin the codec, the mode wiring (knob off = legacy), the ordering
semantics under the full oracle battery, leader-crash takeover, and the
congestion-gated announcement coalescing.
"""

from repro.analysis.harness import TimedWorkload, make_cluster
from repro.core import FTMPConfig
from repro.core.llft import decode_order_info, encode_order_info
from repro.replication import ORDER_INFO_CID, current_leader, llft_config
from repro.replication.oracles import run_history_oracles


def _llft_cfg(leader: int = 0, **overrides) -> FTMPConfig:
    base = dict(heartbeat_interval=0.010, suspect_timeout=0.150,
                batch_window=0.001, batch_adaptive=True)
    base.update(overrides)
    return llft_config(FTMPConfig(**base), leader=leader)


# -- OrderInfo codec ---------------------------------------------------

def test_order_info_codec_roundtrip():
    entries = [(2, 1, 1002), (5, 7, 1005), (3, 2, 1010)]
    assert decode_order_info(encode_order_info(entries)) == entries


def test_order_info_codec_empty():
    assert decode_order_info(encode_order_info([])) == []


def test_order_info_cid_is_reserved_sentinel():
    # the sentinel must never collide with a real connection id
    assert all(part == 0xFFFFFFFF for part in (
        ORDER_INFO_CID.client_domain, ORDER_INFO_CID.client_group,
        ORDER_INFO_CID.server_domain, ORDER_INFO_CID.server_group,
    ))


# -- mode wiring -------------------------------------------------------

def test_knob_off_is_legacy():
    cluster = make_cluster((1, 2, 3))
    try:
        for pid in (1, 2, 3):
            assert cluster.stacks[pid].group(1).romp.llft is None
            assert current_leader(cluster.stacks[pid], 1) is None
        cluster.multicast(1, 1, b"legacy")
        cluster.run_for(0.3)
        cluster.assert_agreement()
        # no llft stats subtree is registered in legacy mode
        assert not any(".llft." in k for k in cluster.snapshot(1))
    finally:
        cluster.stop()


def test_llft_mode_elects_deterministic_leader():
    cluster = make_cluster((4, 2, 7), config=_llft_cfg())
    try:
        for pid in (4, 2, 7):
            # llft_leader_pid=0 -> smallest member leads, everywhere
            assert current_leader(cluster.stacks[pid], 1) == 2
        assert any(".llft." in k for k in cluster.snapshot(2))
    finally:
        cluster.stop()


def test_llft_pinned_leader_preferred_while_member():
    cluster = make_cluster((1, 2, 3), config=_llft_cfg(leader=3))
    try:
        for pid in (1, 2, 3):
            assert current_leader(cluster.stacks[pid], 1) == 3
    finally:
        cluster.stop()


# -- ordering semantics ------------------------------------------------

def test_llft_multi_sender_agreement_and_oracles():
    pids = (1, 2, 3)
    cluster = make_cluster(pids, config=_llft_cfg(), seed=11)
    try:
        wl = TimedWorkload(cluster)
        wl.uniform(pids, start=0.02, stop=0.50, interval=0.010)
        cluster.run_for(1.2)
        cluster.assert_agreement()
        # every send reached every member
        assert wl.delivered_fraction(pids) == 1.0
        violations = run_history_oracles(cluster.listeners, cluster.group,
                                         final_members=pids)
        assert violations == []

        snap = cluster.aggregate_snapshot()
        # the leader fast-pathed its own sends and announced the others'
        assert snap["group.1.llft.fast_path_deliveries"] > 0
        assert snap["group.1.llft.announced"] > 0
        # followers adopted the leader's announced order
        assert snap["group.1.llft.adopted_deliveries"] > 0
    finally:
        cluster.stop()


def test_llft_leader_delivers_own_send_before_any_follower():
    cluster = make_cluster((1, 2, 3), config=_llft_cfg(), seed=5)
    try:
        wl = TimedWorkload(cluster)
        wl.send_at(0.05, sender=1)  # pid 1 is the leader
        cluster.run_for(0.5)
        lat = {pid: wl.latencies((pid,)) for pid in (1, 2, 3)}
        assert all(len(v) == 1 for v in lat.values())
        # fast path: the leader's own delivery beats both followers'
        assert lat[1][0] < lat[2][0]
        assert lat[1][0] < lat[3][0]
    finally:
        cluster.stop()


# -- leader failure ----------------------------------------------------

def test_leader_crash_failover_preserves_agreement():
    pids = (1, 2, 3, 4, 5)
    cluster = make_cluster(pids, config=_llft_cfg(leader=2), seed=7)
    try:
        wl = TimedWorkload(cluster)
        survivors = (1, 3, 4, 5)
        # everyone (including the doomed leader) sends before the crash;
        # survivors keep sending across and after the takeover
        wl.uniform(pids, start=0.02, stop=0.28, interval=0.010)
        wl.uniform(survivors, start=0.32, stop=0.70, interval=0.010)
        cluster.net.scheduler.at(0.30, cluster.net.crash, 2)
        cluster.run_for(2.0)

        # survivors converged on the successor leader (smallest survivor)
        for pid in survivors:
            assert current_leader(cluster.stacks[pid], 1) == 1
        history = {p: cluster.listeners[p] for p in survivors}
        orders = [lst.delivery_order(1) for lst in history.values()]
        assert all(o == orders[0] for o in orders[1:])
        assert run_history_oracles(history, cluster.group,
                                   final_members=survivors) == []
        # post-crash traffic flowed under the new leader
        post = [rec for rec in wl.sends if rec.sent_at > 0.32]
        assert post
        delivered = cluster.listeners[3].payloads(1)
        assert all(rec.payload in delivered for rec in post)
    finally:
        cluster.stop()


# -- congestion-gated announcements ------------------------------------

def test_congestion_coalesces_orderinfo_announcements():
    # a tiny credit window keeps the *sending* leader congested through
    # the burst (OrderInfos themselves are credit-exempt control traffic,
    # so congestion only arises from the leader's own Regulars): parked
    # arrivals must flush as few coalesced OrderInfo datagrams, not one
    # per announced message
    cfg = _llft_cfg(flow_control_window=2, flow_queue_limit=512)
    cluster = make_cluster((1, 2, 3), config=cfg, seed=3)
    try:
        wl = TimedWorkload(cluster)
        # the leader bursts past its window in one instant and stays
        # blocked until stability recycles credits...
        for i in range(10):
            wl.send_at(0.050 + i * 1e-6, 1)
        # ...while follower traffic lands inside that blocked interval
        for i in range(12):
            wl.send_at(0.0505 + i * 1e-6, 2)
            wl.send_at(0.0506 + i * 1e-6, 3)
        cluster.run_for(1.5)
        cluster.assert_agreement()
        snap = cluster.aggregate_snapshot()
        announced = snap["group.1.llft.announced"]
        datagrams = snap["group.1.llft.orderinfos_sent"]
        assert announced > 0
        assert datagrams < announced  # coalescing actually happened
        assert run_history_oracles(cluster.listeners, cluster.group,
                                   final_members=(1, 2, 3)) == []
    finally:
        cluster.stop()
