"""Retransmission buffer + ack-timestamp garbage collection tests."""

from repro.core import RetransmissionBuffer


def test_add_and_get():
    b = RetransmissionBuffer()
    b.add(1, 1, 10, b"aaa")
    m = b.get(1, 1)
    assert m is not None and m.data == b"aaa" and m.timestamp == 10
    assert b.get(1, 2) is None
    assert (1, 1) in b and (2, 1) not in b


def test_add_is_idempotent():
    b = RetransmissionBuffer()
    b.add(1, 1, 10, b"aaa")
    b.add(1, 1, 10, b"bbb")  # duplicate (retransmission)
    assert len(b) == 1
    assert b.get(1, 1).data == b"aaa"
    assert b.bytes == 3


def test_collect_reclaims_stable_messages_only():
    b = RetransmissionBuffer()
    b.add(1, 1, 10, b"a")
    b.add(1, 2, 20, b"b")
    b.add(2, 1, 15, b"c")
    reclaimed = b.collect(stable_timestamp=15)
    assert reclaimed == 2
    assert b.get(1, 2) is not None  # ts 20 > 15: kept
    assert b.get(1, 1) is None
    assert b.get(2, 1) is None


def test_collect_disabled_never_reclaims():
    b = RetransmissionBuffer(gc_enabled=False)
    b.add(1, 1, 10, b"a")
    assert b.collect(100) == 0
    assert len(b) == 1


def test_high_water_marks():
    b = RetransmissionBuffer()
    for i in range(10):
        b.add(1, i + 1, i + 1, b"x" * 10)
    b.collect(5)
    assert b.high_water_messages == 10
    assert b.high_water_bytes == 100
    assert len(b) == 5
    assert b.bytes == 50


def test_range_for_yields_only_held():
    b = RetransmissionBuffer()
    b.add(1, 1, 1, b"a")
    b.add(1, 3, 3, b"c")
    got = [m.sequence_number for m in b.range_for(1, 1, 5)]
    assert got == [1, 3]
    assert list(b.range_for(2, 1, 5)) == []


def test_drop_source():
    b = RetransmissionBuffer()
    b.add(1, 1, 1, b"a")
    b.add(2, 1, 1, b"bb")
    assert b.drop_source(1) == 1
    assert len(b) == 1
    assert b.bytes == 2


def test_counters():
    b = RetransmissionBuffer()
    b.add(1, 1, 1, b"a")
    b.add(1, 2, 2, b"b")
    b.collect(2)
    assert b.total_added == 2
    assert b.total_reclaimed == 2


def test_clear():
    b = RetransmissionBuffer()
    b.add(1, 1, 1, b"a")
    b.clear()
    assert len(b) == 0 and b.bytes == 0
