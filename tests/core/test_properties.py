"""Property-based tests (hypothesis) for core data structures and codecs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AddProcessorMessage,
    ConnectionId,
    DuplicateDetector,
    FTMPHeader,
    LamportClock,
    MembershipMessage,
    MessageType,
    RegularMessage,
    RetransmissionBuffer,
    SuspectMessage,
    decode,
    encode,
)

u32 = st.integers(min_value=0, max_value=2**32 - 1)
u64 = st.integers(min_value=0, max_value=2**64 - 1)
pid_list = st.lists(u32, max_size=8, unique=True).map(tuple)
seq_vec = st.dictionaries(u32, u32, max_size=8)


@st.composite
def headers(draw, mtype):
    return FTMPHeader(
        message_type=mtype,
        source=draw(u32),
        group=draw(u32),
        sequence_number=draw(u32),
        timestamp=draw(u64),
        ack_timestamp=draw(u64),
        retransmission=draw(st.booleans()),
        little_endian=draw(st.booleans()),
    )


@st.composite
def connection_ids(draw):
    return ConnectionId(draw(u32), draw(u32), draw(u32), draw(u32))


@given(h=headers(MessageType.REGULAR), cid=connection_ids(),
       num=u64, payload=st.binary(max_size=2048))
def test_regular_round_trip(h, cid, num, payload):
    out = decode(encode(RegularMessage(h, cid, num, payload)))
    assert out.connection_id == cid
    assert out.request_num == num
    assert out.payload == payload
    assert out.header.timestamp == h.timestamp
    assert out.header.retransmission == h.retransmission
    assert out.header.little_endian == h.little_endian


@given(h=headers(MessageType.ADD_PROCESSOR), ts=u64, members=pid_list,
       vec=seq_vec, new=u32)
def test_add_processor_round_trip(h, ts, members, vec, new):
    out = decode(encode(AddProcessorMessage(h, ts, members, vec, new)))
    assert out.membership_timestamp == ts
    assert out.membership == members
    assert out.sequence_numbers == vec
    assert out.new_member == new


@given(h=headers(MessageType.MEMBERSHIP), ts=u64, cur=pid_list,
       vec=seq_vec, new=pid_list)
def test_membership_round_trip(h, ts, cur, vec, new):
    out = decode(encode(MembershipMessage(h, ts, cur, vec, new)))
    assert out.current_membership == cur
    assert out.sequence_numbers == vec
    assert out.new_membership == new


@given(h=headers(MessageType.SUSPECT), ts=u64, suspects=pid_list)
def test_suspect_round_trip(h, ts, suspects):
    out = decode(encode(SuspectMessage(h, ts, suspects)))
    assert out.suspects == suspects


@given(st.lists(st.one_of(st.just("tick"), u64), min_size=1, max_size=200))
def test_lamport_clock_strictly_monotonic_per_send(events):
    clock = LamportClock()
    sent = []
    for ev in events:
        if ev == "tick":
            sent.append(clock.tick())
        else:
            clock.observe(ev)
            # invariant: clock never goes backwards
            assert clock.time >= (sent[-1] if sent else 0)
    assert sent == sorted(sent)
    assert len(set(sent)) == len(sent)


@given(st.lists(st.tuples(st.integers(1, 4), st.integers(1, 50), u64,
                          st.binary(max_size=32)), max_size=100),
       u64)
def test_buffer_never_reclaims_unstable(entries, stable_ts):
    buf = RetransmissionBuffer()
    for src, seq, ts, data in entries:
        buf.add(src, seq, ts, data)
    buf.collect(stable_ts)
    # everything left has timestamp above the stability point
    for src, seq, ts, data in entries:
        kept = buf.get(src, seq)
        if kept is not None:
            assert kept.timestamp > stable_ts
        else:
            # only reclaimed if some entry at that key was stable
            pass
    # byte accounting is exact
    assert buf.bytes == sum(len(m.data) for m in buf._store.values())


@given(st.lists(st.tuples(st.integers(1, 20), st.sampled_from(["request", "reply"])),
                max_size=200))
def test_duplicate_detector_exactly_once(events):
    det = DuplicateDetector()
    cid = ConnectionId(1, 2, 3, 4)
    first_seen = set()
    for num, kind in events:
        dup = det.is_duplicate(cid, num, kind)
        assert dup == ((num, kind) in first_seen)
        first_seen.add((num, kind))


@given(st.lists(st.tuples(u64, u32), min_size=1, max_size=50))
def test_order_key_is_total(keys):
    from repro.core import order_key

    msgs = [
        RegularMessage(
            FTMPHeader(MessageType.REGULAR, source=src, group=1,
                       sequence_number=1, timestamp=ts, ack_timestamp=0),
            ConnectionId.none(), 0, b"",
        )
        for ts, src in keys
    ]
    sorted_keys = sorted(order_key(m) for m in msgs)
    assert sorted_keys == sorted((ts, src) for ts, src in keys)


@given(h=headers(MessageType.CONNECT), cid=connection_ids(), gid=u32,
       addr=u32, ts=u64, members=pid_list)
def test_connect_round_trip(h, cid, gid, addr, ts, members):
    from repro.core import ConnectMessage

    out = decode(encode(ConnectMessage(h, cid, gid, addr, ts, members)))
    assert out.connection_id == cid
    assert out.processor_group_id == gid
    assert out.ip_multicast_address == addr
    assert out.membership_timestamp == ts
    assert out.membership == members


@given(h=headers(MessageType.CONNECT_REQUEST), cid=connection_ids(),
       pids=pid_list)
def test_connect_request_round_trip(h, cid, pids):
    from repro.core import ConnectRequestMessage

    out = decode(encode(ConnectRequestMessage(h, cid, pids)))
    assert out.connection_id == cid
    assert out.processor_ids == pids


@given(h=headers(MessageType.RETRANSMIT_REQUEST), pid=u32,
       start=u32, stop=u32)
def test_retransmit_request_round_trip(h, pid, start, stop):
    from repro.core import RetransmitRequestMessage

    out = decode(encode(RetransmitRequestMessage(h, pid, start, stop)))
    assert (out.processor_id, out.start_seq, out.stop_seq) == (pid, start, stop)


@given(h=headers(MessageType.REMOVE_PROCESSOR), member=u32)
def test_remove_processor_round_trip(h, member):
    from repro.core import RemoveProcessorMessage

    out = decode(encode(RemoveProcessorMessage(h, member)))
    assert out.member_to_remove == member


@given(h=headers(MessageType.HEARTBEAT))
def test_heartbeat_round_trip(h):
    from repro.core import HeartbeatMessage

    out = decode(encode(HeartbeatMessage(h)))
    assert out.header.sequence_number == h.sequence_number
    assert out.header.ack_timestamp == h.ack_timestamp


@given(data=st.binary(min_size=0, max_size=200))
def test_decoder_never_crashes_on_garbage(data):
    """decode() on arbitrary bytes raises CodecError, never anything else."""
    from repro.core import CodecError

    try:
        decode(data)
    except CodecError:
        pass
