"""FTMP adapter edge cases: passthrough, downstream chaining, cache bound."""

from repro.core import (
    FTMPConfig,
    FTMPStack,
    RecordingListener,
)
from repro.giop import GroupRef
from repro.orb import ORB, ClientIdentity, FTMPAdapter
from repro.simnet import Network, lan

REF = GroupRef("T", domain=7, object_group=100, object_key=b"svc")


class Servant:
    def ping(self, i=0):
        return i


def build(downstream=None, mtu=None, seed=0):
    net = Network(lan(), seed=seed)
    hosts = {}
    for pid in (1, 2):
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), FTMPConfig())
        adapter = FTMPAdapter(orb, stack, giop_mtu=mtu)
        orb.poa.activate(b"svc", Servant())
        adapter.export(7, 100, (1, 2))
        hosts[pid] = (orb, stack, adapter)
    corb = ORB(8, net.scheduler)
    cstack = FTMPStack(net.endpoint(8), FTMPConfig())
    cadapter = FTMPAdapter(corb, cstack, downstream=downstream, giop_mtu=mtu)
    cadapter.set_client(ClientIdentity(3, 200, (8,)))
    return net, corb, cstack, cadapter, hosts


def test_non_giop_group_traffic_passes_to_downstream():
    downstream = RecordingListener()
    net, corb, cstack, cadapter, hosts = build(downstream=downstream)
    # a raw (non-connection) group: plain multicast below the ORB
    cstack.create_group(55, 6055, (8,))
    cstack.multicast(55, b"raw application bytes")
    net.run_for(0.2)
    assert downstream.payloads(55) == [b"raw application bytes"]


def test_non_giop_payload_on_connection_passes_to_downstream():
    downstream = RecordingListener()
    net, corb, cstack, cadapter, hosts = build(downstream=downstream)
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping", 1) == 1
    cid = cadapter.connection_id_for(REF)
    cstack.send_on_connection(cid, b"not-giop-at-all", 999)
    net.run_for(0.2)
    assert b"not-giop-at-all" in [d.payload for d in downstream.deliveries]


def test_view_and_fault_events_forwarded_downstream():
    downstream = RecordingListener()
    net, corb, cstack, cadapter, hosts = build(downstream=downstream)
    proxy = corb.proxy(REF)
    corb.call(proxy, "ping", 1)
    net.crash(2)
    net.run_for(1.5)
    assert downstream.views  # connection bootstrap + fault views
    assert downstream.faults
    assert downstream.connections


def test_reply_cache_is_bounded():
    net, corb, cstack, cadapter, hosts = build()
    server_adapter = hosts[1][2]
    server_adapter.reply_cache_size = 5
    proxy = corb.proxy(REF)
    for i in range(12):
        corb.call(proxy, "ping", i)
    net.run_for(0.3)
    assert len(server_adapter._reply_cache) <= 5


def test_fragmented_reply_round_trip():
    net, corb, cstack, cadapter, hosts = build(mtu=256)

    class Bulk:
        def fetch(self, n):
            return b"z" * n

    for pid in (1, 2):
        hosts[pid][0].poa.deactivate(b"svc")
        hosts[pid][0].poa.activate(b"svc", Bulk())
    proxy = corb.proxy(REF)
    out = corb.call(proxy, "fetch", 5000, timeout=10.0)
    assert out == b"z" * 5000


def test_adapter_stats_accumulate():
    net, corb, cstack, cadapter, hosts = build()
    proxy = corb.proxy(REF)
    for i in range(3):
        corb.call(proxy, "ping", i)
    net.run_for(0.3)
    assert hosts[1][2].stats_requests_executed == 3
    assert cadapter.stats_replies_matched == 3
    assert cadapter.stats_duplicates_suppressed >= 3  # second replica's replies
