"""ORB over FTMP: replicated invocations, duplicate suppression (§4)."""

import pytest

from repro.core import FTMPConfig, FTMPStack
from repro.giop import GroupRef, UserException
from repro.orb import ORB, ClientIdentity, FTMPAdapter
from repro.simnet import Network, lan


class Counter:
    def __init__(self):
        self.n = 0
        self.history = []

    def incr(self, by):
        self.n += by
        self.history.append(by)
        return self.n

    def fail(self):
        raise UserException("Nope", "always fails")

    def get_state(self):
        return {"n": self.n, "history": self.history}

    def set_state(self, s):
        self.n = s["n"]
        self.history = list(s["history"])


REF = GroupRef("IDL:Counter:1.0", domain=7, object_group=100, object_key=b"ctr")


def build(server_pids=(1, 2), client_pids=(8,), seed=0):
    net = Network(lan(), seed=seed)
    hosts = {}
    for pid in server_pids:
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), FTMPConfig())
        adapter = FTMPAdapter(orb, stack)
        servant = Counter()
        orb.poa.activate(REF.object_key, servant)
        adapter.export(REF.domain, REF.object_group, tuple(server_pids))
        hosts[pid] = (orb, stack, adapter, servant)
    for pid in client_pids:
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), FTMPConfig())
        adapter = FTMPAdapter(orb, stack)
        adapter.set_client(ClientIdentity(3, 200, tuple(client_pids)))
        hosts[pid] = (orb, stack, adapter, None)
    return net, hosts


def test_invocation_executes_on_all_replicas():
    net, hosts = build()
    orb = hosts[8][0]
    proxy = orb.proxy(REF)
    assert orb.call(proxy, "incr", 5) == 5
    assert orb.call(proxy, "incr", 3) == 8
    net.run_for(0.2)
    assert hosts[1][3].n == 8
    assert hosts[2][3].n == 8
    assert hosts[1][3].history == hosts[2][3].history == [5, 3]


def test_first_invocation_opens_connection_lazily():
    net, hosts = build()
    orb = hosts[8][0]
    stack = hosts[8][1]
    assert stack.connection_binding(orb.proxy(REF).ref and
                                    hosts[8][2].connection_id_for(REF)) is None
    proxy = orb.proxy(REF)
    assert orb.call(proxy, "incr", 1) == 1
    assert stack.connection_binding(hosts[8][2].connection_id_for(REF)).established


def test_duplicate_replies_suppressed_at_client():
    net, hosts = build()
    orb, _stack, adapter, _ = hosts[8]
    proxy = orb.proxy(REF)
    orb.call(proxy, "incr", 1)
    net.run_for(0.2)
    # two server replicas answered; exactly one reply resolved the future
    assert adapter.stats_replies_matched == 1
    assert adapter.stats_duplicates_suppressed >= 1


def test_replicated_clients_issue_request_once_per_server():
    # both client replicas invoke with the same request number; servers
    # execute the request once (§4 duplicate detection)
    net, hosts = build(server_pids=(1, 2), client_pids=(8, 9))
    done = []
    for cpid in (8, 9):
        orb = hosts[cpid][0]
        fut = getattr(orb.proxy(REF), "incr")(10)
        fut.add_done_callback(lambda f: done.append(f.result()))
    net.run_for(0.5)
    assert done == [10, 10]  # both replicas observed the same result
    for spid in (1, 2):
        assert hosts[spid][3].history == [10]  # executed exactly once
        assert hosts[spid][2].stats_duplicates_suppressed >= 1


def test_user_exception_over_ftmp():
    net, hosts = build()
    orb = hosts[8][0]
    with pytest.raises(UserException):
        orb.call(orb.proxy(REF), "fail")


def test_requests_from_one_client_execute_in_order():
    net, hosts = build()
    orb = hosts[8][0]
    proxy = orb.proxy(REF)
    futs = [proxy.incr(i) for i in (1, 2, 3, 4)]
    net.run_for(0.5)
    assert [f.result() for f in futs] == [1, 3, 6, 10]
    assert hosts[1][3].history == [1, 2, 3, 4]


def test_invocations_before_connect_are_buffered_and_flushed():
    net, hosts = build()
    orb = hosts[8][0]
    proxy = orb.proxy(REF)
    futs = [proxy.incr(1), proxy.incr(1), proxy.incr(1)]  # no waiting
    net.run_for(0.5)
    assert all(f.done for f in futs)
    assert hosts[1][3].n == 3


def test_oneway_over_ftmp():
    net, hosts = build()
    orb = hosts[8][0]
    proxy = orb.proxy(REF)
    proxy._oneway("incr", 7)
    net.run_for(0.5)
    assert hosts[1][3].n == 7
    assert hosts[2][3].n == 7
