"""Typed interface (IDL-like contract) tests."""

import pytest

from repro.giop import BadOperation
from repro.orb import ORB, IIOPNetwork
from repro.orb.interfaces import InterfaceDef, OperationDef
from repro.simnet import Scheduler

BANK = InterfaceDef(
    "IDL:Bank:1.0",
    operations={
        "open": OperationDef(params=1),
        "deposit": OperationDef(params=2),
        "audit": OperationDef(params=0, oneway=True),
    },
)


class GoodBank:
    def __init__(self):
        self.audits = 0
        self.accounts = {}

    def open(self, owner):
        self.accounts[owner] = 0
        return True

    def deposit(self, owner, amount):
        self.accounts[owner] += amount
        return self.accounts[owner]

    def audit(self):
        self.audits += 1


class IncompleteBank:
    def open(self, owner):
        return True


class WrongArityBank(GoodBank):
    def deposit(self, owner):  # type: ignore[override]
        return 0


@pytest.fixture
def world():
    sched = Scheduler()
    iiop = IIOPNetwork(sched)
    server = ORB(1, sched)
    client = ORB(2, sched)
    server.attach_iiop(iiop)
    client.attach_iiop(iiop)
    servant = GoodBank()
    ref = server.activate(b"bank", servant, BANK.type_id)
    return sched, server, client, ref, servant


def test_validate_servant_accepts_complete_implementation():
    BANK.validate_servant(GoodBank())  # no raise


def test_validate_servant_rejects_missing_operations():
    with pytest.raises(BadOperation) as e:
        BANK.validate_servant(IncompleteBank())
    assert "deposit" in str(e.value)


def test_validate_servant_rejects_wrong_arity():
    with pytest.raises(BadOperation) as e:
        BANK.validate_servant(WrongArityBank())
    assert "deposit" in str(e.value)


def test_validate_servant_accepts_defaults_and_varargs():
    class Flexible:
        def open(self, owner="x"):
            return True

        def deposit(self, *args):
            return 0

        def audit(self):
            pass

    BANK.validate_servant(Flexible())


def test_typed_proxy_valid_calls(world):
    sched, _server, client, ref, servant = world
    proxy = BANK.bind(client.proxy(ref))
    assert client.wait(proxy.open("alice")) is True
    assert client.wait(proxy.deposit("alice", 100)) == 100


def test_typed_proxy_rejects_unknown_operation(world):
    _sched, _server, client, ref, _servant = world
    proxy = BANK.bind(client.proxy(ref))
    with pytest.raises(BadOperation):
        proxy.transfer("a", "b", 1)


def test_typed_proxy_rejects_wrong_arity_locally(world):
    _sched, _server, client, ref, _servant = world
    proxy = BANK.bind(client.proxy(ref))
    with pytest.raises(BadOperation):
        proxy.deposit("alice")  # one argument short, caught before marshal


def test_typed_proxy_oneway(world):
    sched, _server, client, ref, servant = world
    proxy = BANK.bind(client.proxy(ref))
    assert proxy.audit() is None  # oneway returns nothing
    sched.run(max_events=1000)
    assert servant.audits == 1


def test_typed_proxy_exposes_interface_and_raw(world):
    _sched, _server, client, ref, _servant = world
    raw = client.proxy(ref)
    proxy = BANK.bind(raw)
    assert proxy.interface is BANK
    assert proxy.raw is raw
