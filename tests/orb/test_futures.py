"""InvocationFuture unit tests."""

import pytest

from repro.orb import FutureError, InvocationFuture


def test_result_before_completion_raises():
    fut = InvocationFuture()
    assert not fut.done
    with pytest.raises(FutureError):
        fut.result()


def test_set_result_and_callbacks():
    fut = InvocationFuture()
    got = []
    fut.add_done_callback(lambda f: got.append(f.result()))
    fut.set_result(42)
    assert fut.done and fut.result() == 42
    assert got == [42]


def test_callback_after_completion_fires_immediately():
    fut = InvocationFuture()
    fut.set_result("x")
    got = []
    fut.add_done_callback(lambda f: got.append(f.result()))
    assert got == ["x"]


def test_set_exception_propagates():
    fut = InvocationFuture()
    fut.set_exception(ValueError("boom"))
    assert fut.done
    with pytest.raises(ValueError):
        fut.result()


def test_double_completion_ignored():
    fut = InvocationFuture()
    fut.set_result(1)
    fut.set_result(2)          # late duplicate reply
    fut.set_exception(ValueError())  # late failure
    assert fut.result() == 1


def test_callbacks_fire_once():
    fut = InvocationFuture()
    count = []
    fut.add_done_callback(lambda f: count.append(1))
    fut.set_result(None)
    fut.set_result(None)
    assert count == [1]
