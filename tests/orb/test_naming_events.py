"""Naming Service and Event Channel tests (replicated over FTMP)."""

import pytest

from repro.giop import GroupRef, ObjectRef, UserException
from repro.orb.events import EventChannel
from repro.orb.naming import NAMING_OBJECT_KEY, NamingClient, NamingContext
from repro.replication import ReplicaManager
from repro.simnet import Network, lan


# ---------------------------------------------------------------------------
# servant-level unit tests
# ---------------------------------------------------------------------------
class TestNamingContextUnit:
    def test_bind_resolve_unbind(self):
        ctx = NamingContext()
        ctx.bind("a/b", b"ref-1")
        assert ctx.resolve("a/b") == b"ref-1"
        ctx.unbind("a/b")
        with pytest.raises(UserException):
            ctx.resolve("a/b")

    def test_bind_conflict_and_rebind(self):
        ctx = NamingContext()
        ctx.bind("x", b"1")
        with pytest.raises(UserException):
            ctx.bind("x", b"2")
        ctx.rebind("x", b"2")
        assert ctx.resolve("x") == b"2"

    def test_invalid_names_rejected(self):
        ctx = NamingContext()
        for bad in ("", "/abs", "trail/", "a//b"):
            with pytest.raises(UserException):
                ctx.bind(bad, b"r")

    def test_list_with_prefix(self):
        ctx = NamingContext()
        ctx.bind("acc/alice", b"1")
        ctx.bind("acc/bob", b"2")
        ctx.bind("other", b"3")
        assert ctx.list("acc") == ["acc/alice", "acc/bob"]
        assert ctx.list() == ["acc/alice", "acc/bob", "other"]

    def test_state_round_trip(self):
        ctx = NamingContext()
        ctx.bind("k", b"v")
        clone = NamingContext()
        clone.set_state(ctx.get_state())
        assert clone.resolve("k") == b"v"


class TestEventChannelUnit:
    def test_push_pull(self):
        ch = EventChannel()
        ch.connect_consumer("c1")
        assert ch.push({"n": 1}) == 1
        assert ch.try_pull("c1") == {"n": 1}
        assert ch.try_pull("c1") is None

    def test_fan_out_to_all_consumers(self):
        ch = EventChannel()
        ch.connect_consumer("a")
        ch.connect_consumer("b")
        ch.push("ev")
        assert ch.try_pull("a") == "ev"
        assert ch.try_pull("b") == "ev"

    def test_pull_batch_and_pending(self):
        ch = EventChannel()
        ch.connect_consumer("c")
        for i in range(5):
            ch.push(i)
        assert ch.pending("c") == 5
        assert ch.pull_batch("c", 3) == [0, 1, 2]
        assert ch.pending("c") == 2

    def test_queue_limit_drops_oldest(self):
        ch = EventChannel(queue_limit=3)
        ch.connect_consumer("c")
        for i in range(5):
            ch.push(i)
        assert ch.pull_batch("c", 10) == [2, 3, 4]
        assert ch.dropped("c") == 2

    def test_connect_errors(self):
        ch = EventChannel()
        ch.connect_consumer("c")
        with pytest.raises(UserException):
            ch.connect_consumer("c")
        with pytest.raises(UserException):
            ch.try_pull("ghost")
        with pytest.raises(UserException):
            ch.disconnect_consumer("ghost")

    def test_state_round_trip(self):
        ch = EventChannel(queue_limit=7)
        ch.connect_consumer("c")
        ch.push("x")
        clone = EventChannel()
        clone.set_state(ch.get_state())
        assert clone.try_pull("c") == "x"
        assert clone.pushed == 1


# ---------------------------------------------------------------------------
# replicated end-to-end
# ---------------------------------------------------------------------------
def build_world():
    net = Network(lan(), seed=4)
    mgr = ReplicaManager(net)
    naming_ref = mgr.create_server_group(
        domain=7, object_group=100, object_key=NAMING_OBJECT_KEY,
        factory=NamingContext, pids=(1, 2), type_id="IDL:NamingContext:1.0",
    )
    bank_ref = GroupRef("IDL:Bank:1.0", domain=7, object_group=101,
                        object_key=b"bank")
    client = mgr.create_client(8, client_domain=3, client_group=200)
    return net, mgr, naming_ref, bank_ref, client


def test_replicated_naming_service():
    net, mgr, naming_ref, bank_ref, client = build_world()
    ns = NamingClient(client.orb, mgr.proxy(8, naming_ref))
    ns.bind("services/bank", bank_ref)
    assert ns.resolve("services/bank") == bank_ref
    assert ns.list("services") == ["services/bank"]
    net.run_for(0.3)
    # both naming replicas hold the binding
    for pid in (1, 2):
        servant = mgr.servant(pid, 7, 100)
        assert "services/bank" in servant.list()


def test_naming_survives_replica_crash():
    net, mgr, naming_ref, bank_ref, client = build_world()
    ns = NamingClient(client.orb, mgr.proxy(8, naming_ref))
    ns.bind("services/bank", bank_ref)
    net.crash(2)
    net.run_for(1.5)
    assert ns.resolve("services/bank") == bank_ref
    singleton = ObjectRef("IDL:T:1.0", processor=1, object_key=b"solo")
    ns.rebind("services/bank", singleton)
    assert ns.resolve("services/bank") == singleton


def test_replicated_event_channel():
    net = Network(lan(), seed=5)
    mgr = ReplicaManager(net)
    ref = mgr.create_server_group(domain=7, object_group=110, object_key=b"chan",
                                  factory=EventChannel, pids=(1, 2))
    client = mgr.create_client(8, client_domain=3, client_group=200)
    orb = client.orb
    proxy = mgr.proxy(8, ref)
    orb.call(proxy, "connect_consumer", "c8")
    assert orb.call(proxy, "push", {"tick": 1}) == 1
    orb.call(proxy, "push", {"tick": 2})
    assert orb.call(proxy, "try_pull", "c8") == {"tick": 1}
    assert orb.call(proxy, "pull_batch", "c8", 10) == [{"tick": 2}]
    net.run_for(0.3)
    # the replicas' channel state is identical (queues drained in lockstep)
    states = [mgr.servant(p, 7, 110).get_state() for p in (1, 2)]
    assert states[0] == states[1]
    assert states[0]["pushed"] == 2
