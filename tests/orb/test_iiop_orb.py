"""ORB over the IIOP point-to-point transport (the unreplicated baseline)."""

import pytest

from repro.giop import CommFailure, SystemException, UserException, LocateStatus
from repro.orb import ORB, IIOPNetwork
from repro.simnet import Scheduler


class Bank:
    def __init__(self):
        self.balances = {}

    def open(self, name):
        self.balances[name] = 0
        return True

    def deposit(self, name, amount):
        if name not in self.balances:
            raise UserException("NoSuchAccount", name)
        self.balances[name] += amount
        return self.balances[name]

    def balance(self, name):
        return self.balances.get(name, 0)


@pytest.fixture
def world():
    sched = Scheduler()
    iiop = IIOPNetwork(sched)
    server = ORB(1, sched)
    client = ORB(2, sched)
    server.attach_iiop(iiop)
    client.attach_iiop(iiop)
    ref = server.activate(b"bank", Bank(), "IDL:Bank:1.0")
    return sched, iiop, server, client, ref


def test_request_reply_round_trip(world):
    _s, _i, _server, client, ref = world
    p = client.proxy(ref)
    assert client.call(p, "open", "alice") is True
    assert client.call(p, "deposit", "alice", 100) == 100
    assert client.call(p, "deposit", "alice", 50) == 150
    assert client.call(p, "balance", "alice") == 150


def test_user_exception_propagates(world):
    _s, _i, _server, client, ref = world
    p = client.proxy(ref)
    with pytest.raises(UserException) as e:
        client.call(p, "deposit", "ghost", 1)
    assert e.value.name == "NoSuchAccount"


def test_system_exception_propagates(world):
    _s, _i, _server, client, ref = world
    p = client.proxy(ref)
    with pytest.raises(SystemException):
        client.call(p, "no_such_operation")


def test_concurrent_requests_matched_by_request_id(world):
    sched, _i, _server, client, ref = world
    p = client.proxy(ref)
    client.call(p, "open", "a")
    futs = [p.deposit("a", i) for i in (1, 2, 3)]
    while not all(f.done for f in futs):
        sched.step()
    assert [f.result() for f in futs] == [1, 3, 6]


def test_locate_request(world):
    _s, _i, _server, client, ref = world
    assert client.wait(client.locate(ref)) == LocateStatus.OBJECT_HERE
    from repro.giop import ObjectRef
    missing = ObjectRef("T", 1, b"nothing")
    assert client.wait(client.locate(missing)) == LocateStatus.UNKNOWN_OBJECT


def test_oneway_invocation(world):
    sched, _i, server, client, ref = world
    p = client.proxy(ref)
    client.call(p, "open", "z")
    p._oneway("deposit", "z", 5)
    sched.run(max_events=1000)
    assert server.poa.servant(b"bank").balances["z"] == 5


def test_fifo_per_connection(world):
    sched, _i, server, client, ref = world
    p = client.proxy(ref)
    client.call(p, "open", "f")
    # fire 10 deposits without waiting; server must see them in order
    for i in range(10):
        p.deposit("f", 1)
    sched.run(max_events=10_000)
    assert server.poa.servant(b"bank").balances["f"] == 10


def test_wait_timeout_on_dead_server():
    sched = Scheduler()
    iiop = IIOPNetwork(sched)
    client = ORB(2, sched)
    client.attach_iiop(iiop)
    # server attached but handler removed -> requests vanish
    server = ORB(1, sched)
    server.attach_iiop(iiop)
    ref = server.activate(b"x", Bank())
    iiop.detach(1)
    p = client.proxy(ref)
    with pytest.raises((CommFailure, KeyError)):
        client.call(p, "open", "q", timeout=0.5)


def test_malformed_data_triggers_message_error(world):
    sched, iiop, _server, client, ref = world
    iiop.send(2, 1, b"not giop at all")
    sched.run(max_events=100)  # server answers MessageError; client ignores


def test_iiop_network_stats(world):
    sched, iiop, _server, client, ref = world
    p = client.proxy(ref)
    client.call(p, "open", "s")
    assert iiop.stats.messages >= 2  # request + reply
    assert iiop.stats.bytes > 0
