"""POA unit tests: activation, dispatch, exception mapping, state hooks."""

import pytest

from repro.giop import (
    GIOPHeader,
    GIOPMessageType,
    ReplyStatus,
    RequestMessage,
    UserException,
    decode_values,
    encode_values,
)
from repro.orb import GET_STATE_OP, POA, SET_STATE_OP


class Calculator:
    def __init__(self):
        self.memory = 0.0

    def add(self, a, b):
        return a + b

    def store(self, v):
        self.memory = v
        return None

    def divide(self, a, b):
        if b == 0:
            raise UserException("DivisionByZero", "b was zero")
        return a / b

    def crash(self):
        raise RuntimeError("servant bug")

    def _private(self):  # pragma: no cover - must not be reachable
        return "secret"

    def get_state(self):
        return self.memory

    def set_state(self, s):
        self.memory = s


def request(key=b"calc", op="add", args=(), response=True):
    return RequestMessage(
        header=GIOPHeader(GIOPMessageType.REQUEST),
        request_id=1,
        response_expected=response,
        object_key=key,
        operation=op,
        body=encode_values(list(args)),
    )


@pytest.fixture
def poa():
    p = POA()
    p.activate(b"calc", Calculator(), "IDL:Calc:1.0")
    return p


def unwrap(reply):
    assert reply.reply_status == ReplyStatus.NO_EXCEPTION
    return decode_values(reply.body)[0]


def test_dispatch_returns_result(poa):
    assert unwrap(poa.dispatch(request(op="add", args=(2, 3)))) == 5


def test_dispatch_none_result(poa):
    assert unwrap(poa.dispatch(request(op="store", args=(4.5,)))) is None
    assert poa.servant(b"calc").memory == 4.5


def test_user_exception_mapped(poa):
    reply = poa.dispatch(request(op="divide", args=(1, 0)))
    assert reply.reply_status == ReplyStatus.USER_EXCEPTION
    name, detail = decode_values(reply.body)
    assert name == "DivisionByZero" and "zero" in detail


def test_servant_bug_becomes_system_exception(poa):
    reply = poa.dispatch(request(op="crash"))
    assert reply.reply_status == ReplyStatus.SYSTEM_EXCEPTION
    repo_id, detail = decode_values(reply.body)
    assert "RuntimeError" in detail


def test_unknown_object_key(poa):
    reply = poa.dispatch(request(key=b"nope"))
    assert reply.reply_status == ReplyStatus.SYSTEM_EXCEPTION
    repo_id, _ = decode_values(reply.body)
    assert "OBJECT_NOT_EXIST" in repo_id


def test_unknown_operation(poa):
    reply = poa.dispatch(request(op="subtract"))
    assert reply.reply_status == ReplyStatus.SYSTEM_EXCEPTION
    repo_id, _ = decode_values(reply.body)
    assert "BAD_OPERATION" in repo_id


def test_private_methods_not_invocable(poa):
    reply = poa.dispatch(request(op="_private"))
    assert reply.reply_status == ReplyStatus.SYSTEM_EXCEPTION


def test_oneway_returns_no_reply(poa):
    assert poa.dispatch(request(op="store", args=(1.0,), response=False)) is None
    assert poa.servant(b"calc").memory == 1.0


def test_state_hooks(poa):
    poa.dispatch(request(op="store", args=(9.0,)))
    state = unwrap(poa.dispatch(request(op=GET_STATE_OP)))
    assert state == 9.0
    poa.dispatch(request(op=SET_STATE_OP, args=(3.0,)))
    assert poa.servant(b"calc").memory == 3.0


def test_double_activation_rejected(poa):
    with pytest.raises(ValueError):
        poa.activate(b"calc", Calculator())


def test_deactivate(poa):
    poa.deactivate(b"calc")
    assert poa.servant(b"calc") is None
    reply = poa.dispatch(request())
    assert reply.reply_status == ReplyStatus.SYSTEM_EXCEPTION


def test_counters(poa):
    poa.dispatch(request(op="add", args=(1, 1)))
    poa.dispatch(request(op="crash"))
    assert poa.requests_dispatched == 2
    assert poa.errors_returned == 1
