"""Connection release tests (§7 "releasing a logical connection")."""

import pytest

from repro.core import FTMPConfig, FTMPStack
from repro.giop import CommFailure, GroupRef
from repro.orb import ORB, ClientIdentity, FTMPAdapter
from repro.simnet import Network, lan

REF = GroupRef("T", domain=7, object_group=100, object_key=b"svc")
REF2 = GroupRef("T", domain=7, object_group=101, object_key=b"svc2")


class Servant:
    def ping(self):
        return "pong"


def build(seed=0):
    net = Network(lan(), seed=seed)
    hosts = {}
    for pid in (1, 2):
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), FTMPConfig())
        adapter = FTMPAdapter(orb, stack)
        orb.poa.activate(b"svc", Servant())
        orb.poa.activate(b"svc2", Servant())
        adapter.export(7, 100, (1, 2))
        adapter.export(7, 101, (1, 2))
        hosts[pid] = (orb, stack, adapter)
    corb = ORB(8, net.scheduler)
    cstack = FTMPStack(net.endpoint(8), FTMPConfig())
    cadapter = FTMPAdapter(corb, cstack)
    cadapter.set_client(ClientIdentity(3, 200, (8,)))
    return net, corb, cstack, cadapter, hosts


def test_close_tears_down_everywhere_and_retires_group():
    net, corb, cstack, cadapter, hosts = build()
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping") == "pong"
    cid = cadapter.connection_id_for(REF)
    group_id = cstack.connection_binding(cid).group_id
    cadapter.close_connection(REF)
    net.run_for(0.5)
    # bindings dropped and the group retired on every member
    assert cstack.connection_binding(cid) is None
    assert cstack.group(group_id) is None
    for pid in (1, 2):
        assert hosts[pid][1].connection_binding(cid) is None
        assert hosts[pid][1].group(group_id) is None


def test_shared_group_survives_until_last_connection_released():
    net, corb, cstack, cadapter, hosts = build()
    p1 = corb.proxy(REF)
    p2 = corb.proxy(REF2)
    assert corb.call(p1, "ping") == "pong"
    assert corb.call(p2, "ping") == "pong"
    cid1 = cadapter.connection_id_for(REF)
    cid2 = cadapter.connection_id_for(REF2)
    b1 = cstack.connection_binding(cid1)
    b2 = cstack.connection_binding(cid2)
    assert b1.group_id == b2.group_id  # same processors: shared group (§7)
    cadapter.close_connection(REF)
    net.run_for(0.3)
    assert cstack.connection_binding(cid1) is None
    assert cstack.group(b1.group_id) is not None  # still carrying cid2
    assert corb.call(p2, "ping") == "pong"  # the survivor still works
    cadapter.close_connection(REF2)
    net.run_for(0.3)
    assert cstack.group(b1.group_id) is None


def test_pending_futures_fail_on_close():
    net, corb, cstack, cadapter, hosts = build()
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping") == "pong"
    # deactivate servants so a request will never be answered
    for pid in (1, 2):
        hosts[pid][2]._served.discard((7, 100))
    fut = proxy.ping()
    net.run_for(0.1)
    assert not fut.done
    cadapter.close_connection(REF)
    net.run_for(0.3)
    assert fut.done
    with pytest.raises(CommFailure):
        fut.result()


def test_close_unestablished_raises():
    net, corb, cstack, cadapter, hosts = build()
    with pytest.raises(CommFailure):
        cadapter.close_connection(REF)


def test_reconnect_after_release():
    net, corb, cstack, cadapter, hosts = build()
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping") == "pong"
    cadapter.close_connection(REF)
    net.run_for(0.5)
    # a fresh invocation re-runs the handshake and works again
    assert corb.call(proxy, "ping", timeout=5.0) == "pong"
