"""FT_REQUEST service-context tests (expiration semantics)."""

from repro.core import FTMPConfig, FTMPStack
from repro.giop import GroupRef
from repro.orb import ORB, ClientIdentity, FTMPAdapter
from repro.orb.ftiop import (
    FT_REQUEST_CONTEXT_ID,
    decode_ft_request_context,
    encode_ft_request_context,
)
from repro.simnet import LinkModel, Network, lan

REF = GroupRef("T", domain=7, object_group=100, object_key=b"svc")


class Servant:
    def __init__(self):
        self.calls = 0

    def ping(self):
        self.calls += 1
        return self.calls


def build(expiration=None, server_latency=None, seed=0):
    topo = lan()
    if server_latency is not None:
        topo.set_link(8, 1, LinkModel(latency=server_latency, jitter=0, loss=0),
                      symmetric=False)
    net = Network(topo, seed=seed)
    sorb = ORB(1, net.scheduler)
    sstack = FTMPStack(net.endpoint(1), FTMPConfig())
    sadapter = FTMPAdapter(sorb, sstack)
    servant = Servant()
    sorb.poa.activate(b"svc", servant)
    sadapter.export(7, 100, (1,))
    corb = ORB(8, net.scheduler)
    cstack = FTMPStack(net.endpoint(8), FTMPConfig())
    cadapter = FTMPAdapter(corb, cstack)
    cadapter.set_client(ClientIdentity(3, 200, (8,)))
    cadapter.request_expiration = expiration
    return net, corb, cadapter, sadapter, servant


def test_context_round_trip():
    ctx = encode_ft_request_context(200, 42, 1.5)
    assert ctx.context_id == FT_REQUEST_CONTEXT_ID
    assert decode_ft_request_context(ctx) == (200, 42, 1.5)


def test_unexpired_requests_execute_normally():
    net, corb, cadapter, sadapter, servant = build(expiration=5.0)
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping") == 1
    assert sadapter.stats_requests_expired == 0


def test_no_context_when_expiration_disabled():
    net, corb, cadapter, sadapter, servant = build(expiration=None)
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "ping") == 1
    # server never saw an FT_REQUEST context and nothing expired
    assert sadapter.stats_requests_expired == 0


def test_expired_request_discarded_not_executed():
    # the client->server link is slower than the request's validity
    net, corb, cadapter, sadapter, servant = build(
        expiration=0.010, server_latency=0.050
    )
    proxy = corb.proxy(REF)
    fut = proxy.ping()
    net.run_for(1.0)
    assert sadapter.stats_requests_expired >= 1
    assert servant.calls == 0
    assert not fut.done  # the client gave up; no reply will come


def test_expiration_measured_at_execution_time():
    # generous validity survives the slow link
    net, corb, cadapter, sadapter, servant = build(
        expiration=0.500, server_latency=0.050
    )
    proxy = corb.proxy(REF)
    fut = proxy.ping()
    net.run_for(1.0)
    assert fut.done and fut.result() == 1
    assert sadapter.stats_requests_expired == 0
