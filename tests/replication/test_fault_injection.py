"""Fault injector tests."""

from repro.analysis import make_cluster
from repro.replication import FaultInjector


def test_crash_at_records_injection():
    c = make_cluster((1, 2, 3))
    inj = FaultInjector(c.net)
    inj.crash_at(0.05, 3)
    c.run_for(0.1)
    assert c.net.is_crashed(3)
    assert inj.injected[0].kind == "crash"
    assert "3" in inj.injected[0].detail
    assert abs(inj.injected[0].at - 0.05) < 1e-9


def test_partition_and_heal():
    c = make_cluster((1, 2, 3))
    inj = FaultInjector(c.net)
    inj.partition_at(0.01, {1, 2}, {3})
    inj.heal_at(0.05)
    c.run_for(0.02)
    # during partition node 3 is unreachable
    c.stacks[1].multicast(1, b"split")
    c.run_for(0.01)
    assert b"split" not in c.listeners[3].payloads(1)
    c.run_for(0.5)  # healed; NACK recovery catches node 3 up
    assert b"split" in c.listeners[3].payloads(1)
    kinds = [i.kind for i in inj.injected]
    assert kinds == ["partition", "heal"]


def test_loss_burst_restores_previous_rate():
    c = make_cluster((1, 2))
    inj = FaultInjector(c.net)
    inj.loss_burst(0.01, 0.05, loss=0.5)
    c.run_for(0.02)
    assert c.net.topology.default.loss == 0.5
    c.run_for(0.2)
    assert c.net.topology.default.loss == 0.0
    assert len(inj.injected) == 2
