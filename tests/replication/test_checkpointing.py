"""Checkpointing and log-truncation tests."""

from repro.core import ConnectionId, Delivery
from repro.giop import (
    GIOPHeader,
    GIOPMessageType,
    ReplyMessage,
    RequestMessage,
    encode_giop,
    encode_values,
)
from repro.replication import MessageLog
from repro.replication.checkpointing import (
    Checkpoint,
    CheckpointingLog,
    CheckpointStore,
)

CID = ConnectionId(3, 200, 7, 100)


class Accumulator:
    def __init__(self):
        self.total = 0

    def add(self, n):
        self.total += n
        return self.total

    def get_state(self):
        return self.total

    def set_state(self, s):
        self.total = s


def feed(log: MessageLog, num: int, answered=True):
    req = encode_giop(RequestMessage(
        header=GIOPHeader(GIOPMessageType.REQUEST), request_id=num,
        object_key=b"acc", operation="add", body=encode_values([1]),
    ))
    log.on_deliver(Delivery(group=1, source=8, sequence_number=num,
                            timestamp=num, connection_id=CID,
                            request_num=num, payload=req, delivered_at=float(num)))
    if answered:
        rep = encode_giop(ReplyMessage(
            header=GIOPHeader(GIOPMessageType.REPLY), request_id=num,
            body=encode_values([num]),
        ))
        log.on_deliver(Delivery(group=1, source=1, sequence_number=num,
                                timestamp=num, connection_id=CID,
                                request_num=num, payload=rep,
                                delivered_at=float(num) + 0.5))


def test_checkpoint_encode_decode():
    cp = Checkpoint(state={"a": 1}, watermark={"k": 5}, sequence=2,
                    captured_at=1.5)
    out = Checkpoint.decode(cp.encode())
    assert out.state == {"a": 1}
    assert out.watermark == {"k": 5}
    assert out.sequence == 2
    assert out.covers(CID, 3) is False  # different key
    cp2 = Checkpoint(state=0, watermark={Checkpoint.cid_key(CID): 5},
                     sequence=1, captured_at=0.0)
    assert cp2.covers(CID, 5) and not cp2.covers(CID, 6)


def test_store_keeps_bounded_history():
    store = CheckpointStore(keep=2)
    for i in range(5):
        store.save(Checkpoint(state=i, watermark={}, sequence=i, captured_at=0.0))
    assert len(store) == 2
    assert store.latest().state == 4


def test_interval_triggers_checkpoint_and_truncation():
    servant = Accumulator()
    log = MessageLog()
    ck = CheckpointingLog(servant, log, interval=5)
    for num in range(1, 13):
        servant.add(1)
        feed(log, num)
        ck.note_executed(CID, num)
    # checkpoints at request 5 and 10; log keeps only the tail (11, 12)
    assert len(ck.store) == 2
    assert ck.store.latest().state == 10
    assert sorted(e.request_num for e in log.entries()) == [11, 12]
    assert ck.truncated_total == 10


def test_unanswered_entries_survive_truncation():
    servant = Accumulator()
    log = MessageLog()
    ck = CheckpointingLog(servant, log, interval=3)
    feed(log, 1, answered=True)
    feed(log, 2, answered=False)  # still awaiting a reply
    feed(log, 3, answered=True)
    for num in (1, 2, 3):
        servant.add(1)
        ck.note_executed(CID, num)
    nums = sorted(e.request_num for e in log.entries())
    assert 2 in nums  # the unanswered one must stay replayable


def test_recovery_plan_checkpoint_plus_tail():
    servant = Accumulator()
    log = MessageLog()
    ck = CheckpointingLog(servant, log, interval=4)
    for num in range(1, 11):
        servant.add(1)
        feed(log, num)
        ck.note_executed(CID, num)
    cp, tail = ck.recovery_plan()
    assert cp is not None and cp.state == 8  # checkpoint at request 8
    assert [e.request_num for e in tail] == [9, 10]
    # a fresh replica reaches the live state with bounded work
    fresh = Accumulator()
    fresh.set_state(cp.state)
    for _ in tail:
        fresh.add(1)
    assert fresh.total == servant.total == 10


def test_recovery_plan_without_checkpoint_is_full_log():
    servant = Accumulator()
    log = MessageLog()
    ck = CheckpointingLog(servant, log, interval=100)
    for num in range(1, 4):
        feed(log, num)
        ck.note_executed(CID, num)
    cp, tail = ck.recovery_plan()
    assert cp is None
    assert len(tail) == 3
