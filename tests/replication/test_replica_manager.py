"""Replication infrastructure tests: groups, state transfer, recovery."""

import pytest

from repro.replication import ReplicaManager
from repro.simnet import Network, lan


class Account:
    def __init__(self):
        self.balance = 0
        self.ops = 0

    def deposit(self, n):
        self.balance += n
        self.ops += 1
        return self.balance

    def withdraw(self, n):
        self.balance -= n
        self.ops += 1
        return self.balance

    def get_state(self):
        return {"balance": self.balance, "ops": self.ops}

    def set_state(self, s):
        self.balance = s["balance"]
        self.ops = s["ops"]


def build(server_pids=(1, 2), seed=0, config=None):
    net = Network(lan(), seed=seed)
    mgr = ReplicaManager(net, config=config)
    ref = mgr.create_server_group(
        domain=7, object_group=100, object_key=b"acct",
        factory=Account, pids=server_pids, type_id="IDL:Account:1.0",
    )
    client = mgr.create_client(8, client_domain=3, client_group=200)
    proxy = mgr.proxy(8, ref)
    return net, mgr, ref, client, proxy


def test_replicas_stay_consistent():
    net, mgr, ref, client, proxy = build()
    orb = client.orb
    for i in range(5):
        orb.call(proxy, "deposit", 10)
    net.run_for(0.3)
    states = [mgr.servant(p, 7, 100).get_state() for p in (1, 2)]
    assert states[0] == states[1] == {"balance": 50, "ops": 5}


def test_add_replica_with_state_transfer():
    net, mgr, ref, client, proxy = build()
    orb = client.orb
    orb.call(proxy, "deposit", 100)
    orb.call(proxy, "withdraw", 30)
    mgr.add_replica(7, 100, 3)
    net.run_for(0.5)
    assert mgr.servant(3, 7, 100).get_state() == {"balance": 70, "ops": 2}
    # new replica participates in subsequent operations
    orb.call(proxy, "deposit", 5)
    net.run_for(0.3)
    assert mgr.servant(3, 7, 100).balance == 75
    assert mgr.replicas_of(7, 100) == {1, 2, 3}


def test_state_transfer_concurrent_with_traffic():
    # requests keep flowing while the replica joins; the new replica must
    # converge to exactly the same state
    net, mgr, ref, client, proxy = build()
    orb = client.orb
    orb.call(proxy, "deposit", 1)  # establish connection
    p = proxy
    for i in range(20):
        net.scheduler.at(0.05 + 0.002 * i, lambda i=i: p.deposit(1))
    net.scheduler.at(0.06, mgr.add_replica, 7, 100, 3)
    net.run_for(1.0)
    s1 = mgr.servant(1, 7, 100).get_state()
    s3 = mgr.servant(3, 7, 100).get_state()
    assert s1 == s3
    assert s1["balance"] == 21


def test_crash_produces_fault_report_and_membership_update():
    net, mgr, ref, client, proxy = build(server_pids=(1, 2, 3))
    orb = client.orb
    orb.call(proxy, "deposit", 10)
    net.crash(3)
    net.run_for(1.5)
    assert mgr.replicas_of(7, 100) == {1, 2}
    assert mgr.fault_log
    # service continues with the survivors
    assert orb.call(proxy, "deposit", 5) == 15


def test_auto_recovery_onto_spare():
    net, mgr, ref, client, proxy = build(server_pids=(1, 2))
    mgr.auto_recover = True
    mgr.add_spare(4)
    orb = client.orb
    orb.call(proxy, "deposit", 42)
    net.crash(2)
    net.run_for(2.5)
    assert mgr.replicas_of(7, 100) == {1, 4}
    assert mgr.servant(4, 7, 100).balance == 42
    assert orb.call(proxy, "deposit", 8) == 50
    net.run_for(0.3)
    assert mgr.servant(4, 7, 100).balance == 50


def test_graceful_replica_removal():
    net, mgr, ref, client, proxy = build(server_pids=(1, 2, 3))
    orb = client.orb
    orb.call(proxy, "deposit", 10)
    mgr.remove_replica(7, 100, 3)
    net.run_for(0.5)
    assert mgr.replicas_of(7, 100) == {1, 2}
    assert orb.call(proxy, "deposit", 1) == 11


def test_remove_unknown_replica_rejected():
    net, mgr, ref, client, proxy = build()
    with pytest.raises(ValueError):
        mgr.remove_replica(7, 100, 99)


def test_add_replica_requires_connection():
    net = Network(lan(), seed=0)
    mgr = ReplicaManager(net)
    mgr.create_server_group(domain=7, object_group=100, object_key=b"x",
                            factory=Account, pids=(1, 2))
    with pytest.raises(RuntimeError):
        mgr.add_replica(7, 100, 3)


def test_duplicate_group_registration_rejected():
    net, mgr, ref, client, proxy = build()
    with pytest.raises(ValueError):
        mgr.create_server_group(domain=7, object_group=100, object_key=b"y",
                                factory=Account, pids=(1,))
