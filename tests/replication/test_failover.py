"""Log-based replay / failover tests (paper §4's replay use case)."""

import pytest

from repro.core import FTMPConfig
from repro.replication import LogReplayer, MessageLog, ReplicaManager
from repro.simnet import Network, lan


class Ledger:
    def __init__(self):
        self.entries = []

    def append(self, item):
        self.entries.append(item)
        return len(self.entries)

    def get_state(self):
        return list(self.entries)

    def set_state(self, s):
        self.entries = list(s)


def build(server_pids=(1, 2), client_pids=(8, 9), seed=0, config=None):
    net = Network(lan(), seed=seed)
    mgr = ReplicaManager(
        net,
        config=config if config is not None
        else FTMPConfig(suspect_timeout=0.060),
    )
    ref = mgr.create_server_group(domain=7, object_group=100, object_key=b"led",
                                  factory=Ledger, pids=server_pids)
    logs = {}
    clients = {}
    for pid in client_pids:
        host = mgr.create_client(pid, client_domain=3, client_group=200,
                                 peers=client_pids)
        log = MessageLog()
        # tee every delivery into the log before normal adapter processing
        orig = host.adapter.on_deliver

        def tee(delivery, log=log, orig=orig):
            log.record(delivery)
            orig(delivery)

        host.stack.listener.on_deliver = tee
        logs[pid], clients[pid] = log, host
    return net, mgr, ref, clients, logs


def test_surviving_client_replica_continues_with_same_numbers():
    # both client replicas invoke in lockstep; one crashes; the survivor's
    # later invocations continue the shared request-number sequence and
    # the servers execute each logical request exactly once
    net, mgr, ref, clients, logs = build()
    futs = []
    for pid in (8, 9):
        proxy = mgr.proxy(pid, ref)
        futs.append(getattr(proxy, "append")("a"))
        futs.append(getattr(proxy, "append")("b"))
    net.run_for(0.5)
    assert all(f.done for f in futs)
    net.crash(8)
    net.run_for(1.0)
    proxy9 = mgr.proxy(9, ref)
    fut = getattr(proxy9, "append")("c")
    net.run_for(0.5)
    assert fut.result() == 3
    assert mgr.servant(1, 7, 100).entries == ["a", "b", "c"]


def test_unanswered_requests_identified_after_server_loss():
    net, mgr, ref, clients, logs = build(server_pids=(1,), client_pids=(8,))
    proxy = mgr.proxy(8, ref)
    orb = clients[8].orb
    orb.call(proxy, "append", "x")
    # the only server dies; the next requests go unanswered
    net.crash(1)
    pending = [getattr(proxy, "append")("y"), getattr(proxy, "append")("z")]
    net.run_for(1.0)
    assert not any(f.done for f in pending)
    cid = clients[8].adapter.connection_id_for(ref)
    unanswered = logs[8].unanswered(cid)
    assert [e.request_num for e in unanswered] == [2, 3]


def test_full_log_replay_rebuilds_fresh_server():
    net, mgr, ref, clients, logs = build(server_pids=(1,), client_pids=(8,))
    proxy = mgr.proxy(8, ref)
    orb = clients[8].orb
    orb.call(proxy, "append", "x")
    orb.call(proxy, "append", "y")
    net.crash(1)
    pending = getattr(proxy, "append")("z")  # never answered by server 1
    net.run_for(1.0)
    assert not pending.done
    cid = clients[8].adapter.connection_id_for(ref)
    binding = clients[8].stack.connection_binding(cid)

    # FT infrastructure brings a replacement server processor into the
    # surviving connection group (the client is still a member)
    spare = mgr.add_host(4)
    spare.orb.poa.activate(b"led", Ledger())
    spare.adapter.export(7, 100, (4,))
    spare.stack.join_as_new_member(binding.group_id, binding.address)
    clients[8].stack.add_processor(binding.group_id, 4)
    net.run_for(0.5)

    # rebuild the servant by replaying the complete request log
    replayer = LogReplayer(clients[8], logs[8])
    report = replayer.replay(cid, include_answered=True, await_replies=True)
    assert report.replayed == 3
    net.run_for(0.5)
    assert spare.orb.poa.servant(b"led").entries == ["x", "y", "z"]
    # the formerly unanswered request finally resolves for the client
    assert pending.done and pending.result() == 3


def test_replay_unanswered_only_uses_reply_cache():
    # with two server replicas, a replay of unanswered requests must be
    # answered from the survivors' reply caches without re-execution
    net, mgr, ref, clients, logs = build(server_pids=(1, 2), client_pids=(8,))
    proxy = mgr.proxy(8, ref)
    orb = clients[8].orb
    orb.call(proxy, "append", "x")
    orb.call(proxy, "append", "y")
    net.run_for(0.3)
    cid = clients[8].adapter.connection_id_for(ref)
    # forge: pretend the client never saw reply #2 (lost before a restart)
    entry = [e for e in logs[8].entries() if e.request_num == 2][0]
    entry.reply_payload = None
    before = mgr.servant(1, 7, 100).entries[:]

    replayer = LogReplayer(clients[8], logs[8])
    report = replayer.replay(cid, include_answered=False, await_replies=True)
    assert report.replayed == 1 and report.skipped_answered == 1
    net.run_for(0.5)
    (fut,) = report.futures
    assert fut.done and fut.result() == 2  # the original answer, from cache
    # no re-execution happened at the servers
    assert mgr.servant(1, 7, 100).entries == before
    assert mgr.hosts[1].adapter.stats_replies_served_from_cache >= 1


def _saturation_build():
    # window 1, queue limit 2: a burst replay admits one send, queues two,
    # and the stack's admission control refuses the fourth
    cfg = FTMPConfig(suspect_timeout=0.060, flow_control_window=1,
                     flow_queue_limit=2)
    return build(server_pids=(1,), client_pids=(8,), config=cfg)


def test_replay_reports_backpressure_and_stops_at_saturation():
    """Regression: a replay into an exhausted credit window must stop
    cleanly at the refused entry — counting sent vs queued vs rejected —
    instead of leaking FlowControlSaturated to the caller, and must not
    leave a dangling future registered for the request it never issued."""
    net, mgr, ref, clients, logs = _saturation_build()
    proxy = mgr.proxy(8, ref)
    orb = clients[8].orb
    for tag in "abcde":
        orb.call(proxy, "append", tag)
    cid = clients[8].adapter.connection_id_for(ref)

    replayer = LogReplayer(clients[8], logs[8])
    report = replayer.replay(cid, include_answered=True, await_replies=True)

    assert report.replayed == 3  # one on the wire + two behind backpressure
    assert report.queued == 2
    assert report.rejected == 1
    assert report.saturated
    assert len(report.futures) == 3
    # the refused request's just-created future was unregistered: a reply
    # will never come for a request that was never issued
    assert (cid, 4) not in clients[8].adapter._pending
    # the issued prefix still completes once backpressure drains
    net.run_for(1.0)
    assert all(f.done for f in report.futures)
    assert [f.result() for f in report.futures] == [1, 2, 3]


def test_replay_saturation_preserves_live_invocation_future():
    """A live invocation already awaiting the refused request number must
    keep its registered future across the refused replay attempt."""
    from repro.orb.futures import InvocationFuture

    net, mgr, ref, clients, logs = _saturation_build()
    proxy = mgr.proxy(8, ref)
    orb = clients[8].orb
    for tag in "abcde":
        orb.call(proxy, "append", tag)
    cid = clients[8].adapter.connection_id_for(ref)

    live = InvocationFuture()
    clients[8].adapter._pending[(cid, 4)] = live
    report = LogReplayer(clients[8], logs[8]).replay(
        cid, include_answered=True, await_replies=True
    )
    assert report.rejected == 1 and report.saturated
    # the pre-existing future survives, and was not claimed by the replay
    assert clients[8].adapter._pending[(cid, 4)] is live
    assert live not in report.futures


def test_replay_requires_established_connection():
    net = Network(lan(), seed=0)
    mgr = ReplicaManager(net)
    host = mgr.create_client(8, client_domain=3, client_group=200)
    from repro.core import ConnectionId

    with pytest.raises(RuntimeError):
        LogReplayer(host, MessageLog()).replay(ConnectionId(3, 200, 7, 100))
