"""Unit tests of the protocol-invariant oracles on synthetic histories.

Each oracle gets a clean history it must accept and a minimally-corrupted
history it must flag — proving the chaos campaign's verdicts mean
something (an oracle that never fires checks nothing).
"""

from repro.core.events import Delivery, RecordingListener, ViewChange
from repro.core.messages import ConnectionId
from repro.replication.oracles import (
    check_convergence,
    check_fifo,
    check_membership_agreement,
    check_no_duplicates,
    check_total_order,
    check_virtual_synchrony,
    run_history_oracles,
)

GROUP = 1


def deliver(lst, source, seq, ts, payload=None, cid=None, req=0):
    lst.on_deliver(Delivery(
        group=GROUP, source=source, sequence_number=seq, timestamp=ts,
        connection_id=cid if cid is not None else ConnectionId.none(),
        request_num=req,
        payload=payload if payload is not None else f"{source}:{seq}".encode(),
        delivered_at=float(ts),
    ))


def view(lst, membership, ts, removed=(), added=(), reason="fault"):
    lst.on_view_change(ViewChange(
        group=GROUP, membership=tuple(membership), view_timestamp=ts,
        added=tuple(added), removed=tuple(removed), reason=reason,
        installed_at=float(ts),
    ))


def pair(stream=((1, 1, 10), (2, 1, 11), (1, 2, 12), (2, 2, 13))):
    """Two members that both delivered ``stream`` in the same order."""
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    for lst in listeners.values():
        view(lst, (1, 2), 0, reason="connect")
        for src, seq, ts in stream:
            deliver(lst, src, seq, ts)
    return listeners


def oracles_of(violations):
    return {v.oracle for v in violations}


def test_clean_history_passes_every_oracle():
    listeners = pair()
    assert run_history_oracles(listeners, GROUP, final_members=(1, 2)) == []


def test_total_order_flags_swapped_common_messages():
    listeners = pair()
    d = listeners[2].deliveries
    d[0], d[1] = d[1], d[0]  # member 2 saw (2,1) before (1,1)
    violations = check_total_order(listeners, GROUP)
    assert "total-order" in oracles_of(violations)
    assert any({1, 2} <= set(v.members) for v in violations)


def test_total_order_flags_diverging_content():
    listeners = pair()
    lst3 = RecordingListener()
    view(lst3, (1, 2), 0, reason="connect")
    deliver(lst3, 1, 1, 10, payload=b"DIFFERENT")  # same id, other payload
    listeners[3] = lst3
    violations = check_total_order(listeners, GROUP)
    assert any("diverging" in v.detail for v in violations)


def test_fifo_flags_out_of_order_source_sequence():
    lst = RecordingListener()
    deliver(lst, 1, 2, 10)
    deliver(lst, 1, 1, 11)  # seq went backwards for source 1
    assert oracles_of(check_fifo({1: lst}, GROUP)) == {"fifo"}


def test_no_duplicates_flags_repeated_message_id():
    lst = RecordingListener()
    deliver(lst, 1, 1, 10)
    deliver(lst, 1, 1, 12)
    assert oracles_of(check_no_duplicates({1: lst}, GROUP)) == {"no-duplicates"}


def test_no_duplicates_flags_repeated_giop_request():
    cid = ConnectionId(1, 1, 2, 2)
    lst = RecordingListener()
    # distinct FTMP messages carrying the same GIOP (cid, request) pair
    deliver(lst, 1, 1, 10, cid=cid, req=7)
    deliver(lst, 1, 2, 11, cid=cid, req=7)
    violations = check_no_duplicates({1: lst}, GROUP)
    assert any("GIOP" in v.detail for v in violations)


def test_virtual_synchrony_flags_diverging_cut_between_survivors():
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    for pid, lst in listeners.items():
        view(lst, (1, 2, 3), 0, reason="connect")
        deliver(lst, 1, 1, 10)
        if pid == 1:
            deliver(lst, 3, 1, 12)  # only member 1 got 3's message pre-cut
        view(lst, (1, 2), 100, removed=(3,))
    violations = check_virtual_synchrony(listeners, GROUP)
    assert oracles_of(violations) == {"virtual-synchrony"}


def test_virtual_synchrony_exempts_the_evicted_member():
    listeners = {1: RecordingListener(), 2: RecordingListener(),
                 3: RecordingListener()}
    for pid, lst in listeners.items():
        view(lst, (1, 2, 3), 0, reason="connect")
        deliver(lst, 1, 1, 10)
        if pid != 3:
            deliver(lst, 2, 1, 12)  # the victim missed this one
            view(lst, (1, 2), 100, removed=(3,))
        else:
            view(lst, (), 100, removed=(3,), reason="evicted")
    # a failed processor's set may be a prefix of the survivors': no breach
    assert check_virtual_synchrony(listeners, GROUP) == []


def test_convergence_flags_a_message_one_final_member_never_got():
    listeners = pair()
    del listeners[2].deliveries[-2:]  # member 2 is missing the tail
    listeners[2].events[:] = listeners[2].deliveries
    violations = check_convergence(listeners, GROUP, (1, 2))
    assert oracles_of(violations) == {"convergence"}


def test_convergence_exempts_sources_outside_final_membership():
    # member 3 was convicted: its tail is grandfathered at the old view's
    # members only, so a joiner that never saw it owes nothing
    listeners = pair(stream=((3, 5, 9), (1, 1, 10), (2, 1, 11)))
    late = RecordingListener()
    view(late, (1, 2, 4), 0, reason="connect")
    deliver(late, 1, 1, 10)
    deliver(late, 2, 1, 11)
    listeners[4] = late
    assert check_convergence(listeners, GROUP, (1, 2, 4)) == []


def test_membership_agreement_flags_divergent_views():
    listeners = pair()
    view(listeners[2], (1, 2, 9), 50, added=(9,), reason="add")
    violations = check_membership_agreement(listeners, GROUP, (1, 2),
                                            expected=(1, 2))
    assert oracles_of(violations) == {"membership-agreement"}
