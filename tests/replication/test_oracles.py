"""Unit tests of the protocol-invariant oracles on synthetic histories.

Each oracle gets a clean history it must accept and a minimally-corrupted
history it must flag — proving the chaos campaign's verdicts mean
something (an oracle that never fires checks nothing).
"""

from repro.core.events import Delivery, RecordingListener, ViewChange
from repro.core.messages import ConnectionId
from repro.core.multigroup import (
    MULTI_GROUP_CID,
    MULTI_GROUP_COMMUTATIVE_CID,
    mg_request_num,
)
from repro.replication.oracles import (
    check_convergence,
    check_fifo,
    check_membership_agreement,
    check_multigroup_acyclicity,
    check_no_duplicates,
    check_total_order,
    check_virtual_synchrony,
    run_history_oracles,
)

GROUP = 1


def deliver(lst, source, seq, ts, payload=None, cid=None, req=0, group=GROUP):
    lst.on_deliver(Delivery(
        group=group, source=source, sequence_number=seq, timestamp=ts,
        connection_id=cid if cid is not None else ConnectionId.none(),
        request_num=req,
        payload=payload if payload is not None else f"{source}:{seq}".encode(),
        delivered_at=float(ts),
    ))


def view(lst, membership, ts, removed=(), added=(), reason="fault"):
    lst.on_view_change(ViewChange(
        group=GROUP, membership=tuple(membership), view_timestamp=ts,
        added=tuple(added), removed=tuple(removed), reason=reason,
        installed_at=float(ts),
    ))


def pair(stream=((1, 1, 10), (2, 1, 11), (1, 2, 12), (2, 2, 13))):
    """Two members that both delivered ``stream`` in the same order."""
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    for lst in listeners.values():
        view(lst, (1, 2), 0, reason="connect")
        for src, seq, ts in stream:
            deliver(lst, src, seq, ts)
    return listeners


def oracles_of(violations):
    return {v.oracle for v in violations}


def test_clean_history_passes_every_oracle():
    listeners = pair()
    assert run_history_oracles(listeners, GROUP, final_members=(1, 2)) == []


def test_total_order_flags_swapped_common_messages():
    listeners = pair()
    d = listeners[2].deliveries
    d[0], d[1] = d[1], d[0]  # member 2 saw (2,1) before (1,1)
    violations = check_total_order(listeners, GROUP)
    assert "total-order" in oracles_of(violations)
    assert any({1, 2} <= set(v.members) for v in violations)


def test_total_order_flags_diverging_content():
    listeners = pair()
    lst3 = RecordingListener()
    view(lst3, (1, 2), 0, reason="connect")
    deliver(lst3, 1, 1, 10, payload=b"DIFFERENT")  # same id, other payload
    listeners[3] = lst3
    violations = check_total_order(listeners, GROUP)
    assert any("diverging" in v.detail for v in violations)


def test_fifo_flags_out_of_order_source_sequence():
    lst = RecordingListener()
    deliver(lst, 1, 2, 10)
    deliver(lst, 1, 1, 11)  # seq went backwards for source 1
    assert oracles_of(check_fifo({1: lst}, GROUP)) == {"fifo"}


def test_no_duplicates_flags_repeated_message_id():
    lst = RecordingListener()
    deliver(lst, 1, 1, 10)
    deliver(lst, 1, 1, 12)
    assert oracles_of(check_no_duplicates({1: lst}, GROUP)) == {"no-duplicates"}


def test_no_duplicates_flags_repeated_giop_request():
    cid = ConnectionId(1, 1, 2, 2)
    lst = RecordingListener()
    # distinct FTMP messages carrying the same GIOP (cid, request) pair
    deliver(lst, 1, 1, 10, cid=cid, req=7)
    deliver(lst, 1, 2, 11, cid=cid, req=7)
    violations = check_no_duplicates({1: lst}, GROUP)
    assert any("GIOP" in v.detail for v in violations)


def test_virtual_synchrony_flags_diverging_cut_between_survivors():
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    for pid, lst in listeners.items():
        view(lst, (1, 2, 3), 0, reason="connect")
        deliver(lst, 1, 1, 10)
        if pid == 1:
            deliver(lst, 3, 1, 12)  # only member 1 got 3's message pre-cut
        view(lst, (1, 2), 100, removed=(3,))
    violations = check_virtual_synchrony(listeners, GROUP)
    assert oracles_of(violations) == {"virtual-synchrony"}


def test_virtual_synchrony_exempts_the_evicted_member():
    listeners = {1: RecordingListener(), 2: RecordingListener(),
                 3: RecordingListener()}
    for pid, lst in listeners.items():
        view(lst, (1, 2, 3), 0, reason="connect")
        deliver(lst, 1, 1, 10)
        if pid != 3:
            deliver(lst, 2, 1, 12)  # the victim missed this one
            view(lst, (1, 2), 100, removed=(3,))
        else:
            view(lst, (), 100, removed=(3,), reason="evicted")
    # a failed processor's set may be a prefix of the survivors': no breach
    assert check_virtual_synchrony(listeners, GROUP) == []


def test_convergence_flags_a_message_one_final_member_never_got():
    listeners = pair()
    del listeners[2].deliveries[-2:]  # member 2 is missing the tail
    listeners[2].events[:] = listeners[2].deliveries
    violations = check_convergence(listeners, GROUP, (1, 2))
    assert oracles_of(violations) == {"convergence"}


def test_convergence_exempts_sources_outside_final_membership():
    # member 3 was convicted: its tail is grandfathered at the old view's
    # members only, so a joiner that never saw it owes nothing
    listeners = pair(stream=((3, 5, 9), (1, 1, 10), (2, 1, 11)))
    late = RecordingListener()
    view(late, (1, 2, 4), 0, reason="connect")
    deliver(late, 1, 1, 10)
    deliver(late, 2, 1, 11)
    listeners[4] = late
    assert check_convergence(listeners, GROUP, (1, 2, 4)) == []


def test_membership_agreement_flags_divergent_views():
    listeners = pair()
    view(listeners[2], (1, 2, 9), 50, added=(9,), reason="add")
    violations = check_membership_agreement(listeners, GROUP, (1, 2),
                                            expected=(1, 2))
    assert oracles_of(violations) == {"membership-agreement"}


# ----------------------------------------------------------------------
# cross-group acyclicity (multi-group atomic multicast)
# ----------------------------------------------------------------------
A = mg_request_num(5, 1)  # multicast A = (origin 5, mg_seq 1)
B = mg_request_num(6, 1)  # multicast B = (origin 6, mg_seq 1)


def mg_deliver(lst, group, req, ts, cid=MULTI_GROUP_CID):
    origin, mg_seq = req >> 32, req & 0xFFFFFFFF
    deliver(lst, origin, mg_seq, ts, payload=b"mg", cid=cid, req=req,
            group=group)


def test_acyclicity_flags_a_known_cross_group_cycle():
    # A<B in group 1 (at member 1), B<A in group 2 (at member 2)
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    mg_deliver(listeners[1], 1, A, 10)
    mg_deliver(listeners[1], 1, B, 12)
    mg_deliver(listeners[2], 2, B, 11)
    mg_deliver(listeners[2], 2, A, 13)
    violations = check_multigroup_acyclicity(listeners, {1: (1,), 2: (2,)})
    assert oracles_of(violations) == {"multigroup-acyclicity"}
    (v,) = violations
    # the result carries the offending cycle as a closed (origin, mg_seq) walk
    assert v.cycle[0] == v.cycle[-1]
    assert {(5, 1), (6, 1)} <= set(v.cycle)
    assert set(v.members) == {1, 2}
    assert v.signature == ("multigroup-acyclicity",)
    assert v.as_dict()["cycle"] == [list(m) for m in v.cycle]


def test_acyclicity_accepts_consistent_overlapping_histories():
    # same relative order A<B in both groups, several members per group
    listeners = {p: RecordingListener() for p in (1, 2, 3)}
    for pid in (1, 2):
        mg_deliver(listeners[pid], 1, A, 10)
        mg_deliver(listeners[pid], 1, B, 12)
    for pid in (2, 3):
        mg_deliver(listeners[pid], 2, A, 10)
        mg_deliver(listeners[pid], 2, B, 12)
    assert check_multigroup_acyclicity(
        listeners, {1: (1, 2), 2: (2, 3)}) == []


def test_acyclicity_ignores_commutative_and_ordinary_deliveries():
    # conflicting orders, but only via commutative sentinels and plain
    # GIOP traffic — neither carries a cross-group ordering promise
    listeners = {1: RecordingListener(), 2: RecordingListener()}
    mg_deliver(listeners[1], 1, A, 10, cid=MULTI_GROUP_COMMUTATIVE_CID)
    mg_deliver(listeners[1], 1, B, 12, cid=MULTI_GROUP_COMMUTATIVE_CID)
    mg_deliver(listeners[2], 2, B, 11, cid=MULTI_GROUP_COMMUTATIVE_CID)
    mg_deliver(listeners[2], 2, A, 13, cid=MULTI_GROUP_COMMUTATIVE_CID)
    deliver(listeners[1], 7, 1, 20, group=1)
    deliver(listeners[2], 7, 1, 20, group=2)
    assert check_multigroup_acyclicity(listeners, {1: (1,), 2: (2,)}) == []


def test_acyclicity_flags_a_three_group_rotation():
    # A<B in g1, B<C in g2, C<A in g3: cycle spans three projections
    C = mg_request_num(7, 1)
    listeners = {p: RecordingListener() for p in (1, 2, 3)}
    mg_deliver(listeners[1], 1, A, 10)
    mg_deliver(listeners[1], 1, B, 12)
    mg_deliver(listeners[2], 2, B, 10)
    mg_deliver(listeners[2], 2, C, 12)
    mg_deliver(listeners[3], 3, C, 10)
    mg_deliver(listeners[3], 3, A, 12)
    violations = check_multigroup_acyclicity(
        listeners, {1: (1,), 2: (2,), 3: (3,)})
    (v,) = violations
    assert {(5, 1), (6, 1), (7, 1)} <= set(v.cycle)


def _join_epoch_listeners(joiner_gap_req=None, joiner_gap_ordinary=False):
    """Members 1, 2 incumbent; 9 joins at ts 50; member 3 joins at ts 100.

    In the epoch between the two joins the incumbents deliver multicast A
    and one ordinary message; ``joiner_gap_req``/``joiner_gap_ordinary``
    select which of the two member 9 misses.
    """
    listeners = {p: RecordingListener() for p in (1, 2, 9)}
    for pid in (1, 2):
        view(listeners[pid], (1, 2), 0, reason="connect")
    view(listeners[9], (1, 2, 9), 50, added=(9,), reason="add")
    for pid in (1, 2):
        view(listeners[pid], (1, 2, 9), 50, added=(9,), reason="add")
    for pid, lst in listeners.items():
        if not (pid == 9 and joiner_gap_req is not None):
            mg_deliver(lst, GROUP, A, 60)
        if not (pid == 9 and joiner_gap_ordinary):
            deliver(lst, 1, 5, 70)
    for lst in listeners.values():
        view(lst, (1, 2, 3, 9), 100, added=(3,), reason="add")
    return listeners


def test_virtual_synchrony_exempts_mg_gap_in_a_joiners_first_epoch():
    # the joiner's replay starts at its join barrier: a multicast whose
    # Propose predates the barrier but whose Commit landed after it is
    # delivered by incumbents only — documented window, not a breach
    listeners = _join_epoch_listeners(joiner_gap_req=A)
    assert check_virtual_synchrony(listeners, GROUP) == []


def test_virtual_synchrony_still_flags_ordinary_gap_in_first_epoch():
    # the exemption is mg-sentinel-specific: a joiner missing a plain
    # ordered message in its first epoch is a real breach
    listeners = _join_epoch_listeners(joiner_gap_ordinary=True)
    violations = check_virtual_synchrony(listeners, GROUP)
    assert oracles_of(violations) == {"virtual-synchrony"}
