"""Message log / replay tests (paper §4: matching requests with replies)."""

from repro.core import ConnectionId, Delivery
from repro.giop import (
    GIOPHeader,
    GIOPMessageType,
    ReplyMessage,
    RequestMessage,
    encode_giop,
)
from repro.replication import MessageLog

CID = ConnectionId(3, 200, 7, 100)


def delivery(payload: bytes, num: int, at: float = 1.0) -> Delivery:
    return Delivery(
        group=9, source=1, sequence_number=1, timestamp=1,
        connection_id=CID, request_num=num, payload=payload, delivered_at=at,
    )


def request_bytes(num: int) -> bytes:
    return encode_giop(RequestMessage(
        header=GIOPHeader(GIOPMessageType.REQUEST), request_id=num,
        object_key=b"k", operation="op",
    ))


def reply_bytes(num: int) -> bytes:
    return encode_giop(ReplyMessage(
        header=GIOPHeader(GIOPMessageType.REPLY), request_id=num,
    ))


def test_pairs_requests_with_replies():
    log = MessageLog()
    log.on_deliver(delivery(request_bytes(1), 1, at=1.0))
    log.on_deliver(delivery(reply_bytes(1), 1, at=1.5))
    (entry,) = log.entries()
    assert entry.answered
    assert entry.requested_at == 1.0
    assert entry.replied_at == 1.5


def test_unanswered_requests_are_the_replay_set():
    log = MessageLog()
    log.on_deliver(delivery(request_bytes(1), 1))
    log.on_deliver(delivery(request_bytes(2), 2))
    log.on_deliver(delivery(reply_bytes(1), 1))
    pending = log.unanswered()
    assert [e.request_num for e in pending] == [2]
    assert log.unanswered(CID) == pending
    assert log.unanswered(CID.reversed()) == []


def test_duplicate_requests_and_replies_logged_once():
    log = MessageLog()
    for _ in range(3):
        log.on_deliver(delivery(request_bytes(1), 1))
    for _ in range(2):
        log.on_deliver(delivery(reply_bytes(1), 1, at=2.0))
    assert len(log) == 1
    assert log.entries()[0].replied_at == 2.0


def test_reply_lookup_for_duplicate_short_circuit():
    log = MessageLog()
    log.on_deliver(delivery(request_bytes(5), 5))
    raw_reply = reply_bytes(5)
    log.on_deliver(delivery(raw_reply, 5))
    assert log.reply_for(CID, 5) == raw_reply
    assert log.reply_for(CID, 6) is None


def test_reply_before_request_synthesizes_entry():
    log = MessageLog()
    log.on_deliver(delivery(reply_bytes(9), 9))
    (entry,) = log.entries()
    assert entry.answered and entry.request_payload == b""


def test_non_giop_and_unconnected_payloads_ignored():
    log = MessageLog()
    log.on_deliver(delivery(b"raw app payload", 1))
    log.on_deliver(
        Delivery(group=1, source=1, sequence_number=1, timestamp=1,
                 connection_id=ConnectionId.none(), request_num=0,
                 payload=request_bytes(1), delivered_at=0.0)
    )
    assert len(log) == 0
