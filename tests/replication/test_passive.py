"""Warm-passive replication tests."""

from repro.core import FTMPConfig, FTMPStack
from repro.giop import GroupRef
from repro.orb import ORB, ClientIdentity, FTMPAdapter
from repro.replication.passive import PassiveReplicaController
from repro.simnet import Network, lan

REF = GroupRef("IDL:Counter:1.0", domain=7, object_group=100, object_key=b"ctr")


class Counter:
    def __init__(self):
        self.n = 0
        self.executions = 0

    def incr(self, by):
        self.n += by
        self.executions += 1
        return self.n

    def get_state(self):
        return self.n

    def set_state(self, s):
        self.n = s


class Journal:
    """Order-sensitive servant: the entries list IS the execution order."""

    def __init__(self):
        self.entries = []

    def append(self, tag):
        self.entries.append(tag)
        return len(self.entries)

    def get_state(self):
        return list(self.entries)

    def set_state(self, s):
        self.entries = list(s)


def build(server_pids=(1, 2, 3), seed=0, suspect_timeout=0.060,
          factory=Counter):
    net = Network(lan(), seed=seed)
    cfg = FTMPConfig(suspect_timeout=suspect_timeout)
    servants, controllers, adapters = {}, {}, {}
    for pid in server_pids:
        orb = ORB(pid, net.scheduler)
        stack = FTMPStack(net.endpoint(pid), cfg)
        adapter = FTMPAdapter(orb, stack)
        servant = factory()
        orb.poa.activate(REF.object_key, servant)
        adapter.export(REF.domain, REF.object_group, tuple(server_pids))
        controllers[pid] = PassiveReplicaController(
            adapter, REF.object_key, tuple(server_pids)
        )
        servants[pid], adapters[pid] = servant, adapter
    corb = ORB(8, net.scheduler)
    cstack = FTMPStack(net.endpoint(8), cfg)
    cadapter = FTMPAdapter(corb, cstack)
    cadapter.set_client(ClientIdentity(3, 200, (8,)))
    return net, corb, servants, controllers, adapters


def test_only_primary_executes():
    net, corb, servants, controllers, _ = build()
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "incr", 5) == 5
    assert corb.call(proxy, "incr", 3) == 8
    net.run_for(0.3)
    assert servants[1].executions == 2  # primary executed
    assert servants[2].executions == 0  # backups did not
    assert servants[3].executions == 0


def test_backups_track_state_through_updates():
    net, corb, servants, controllers, _ = build()
    proxy = corb.proxy(REF)
    for i in range(4):
        corb.call(proxy, "incr", 1)
    net.run_for(0.3)
    assert servants[2].n == 4
    assert servants[3].n == 4
    assert controllers[2].stats_updates_applied >= 1
    # buffered requests were discarded once covered by state updates
    assert all(
        b.request_num > 0 for b in controllers[2]._buffered
    )
    assert len(controllers[2]._buffered) == 0


def test_failover_promotes_backup_and_preserves_state():
    net, corb, servants, controllers, _ = build()
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "incr", 10) == 10
    net.run_for(0.2)
    net.crash(1)
    net.run_for(1.5)
    assert controllers[2].is_primary
    # service continues with the promoted backup holding the state
    assert corb.call(proxy, "incr", 5) == 15
    net.run_for(0.3)
    assert servants[2].executions >= 1
    assert servants[3].n == 15  # remaining backup keeps tracking


def test_failover_replays_unconfirmed_suffix():
    # pipeline a burst: the requests get ordered at the backups before the
    # primary's state updates catch up; crash the primary mid-burst.  The
    # promoted backup must re-execute the uncovered suffix from its buffer
    # and answer every still-pending client future.
    net, corb, servants, controllers, _ = build(seed=3)
    proxy = corb.proxy(REF)
    assert corb.call(proxy, "incr", 1) == 1  # connection warm, n == 1
    net.run_for(0.2)
    futs = [proxy.incr(1) for _ in range(5)]  # pipelined, no waiting
    # crash the primary just after the burst reaches it (before all of its
    # state updates are ordered at the backups)
    net.scheduler.schedule(0.0004, net.crash, 1)
    net.run_for(2.5)
    assert all(f.done for f in futs)
    assert sorted(f.result() for f in futs) == [2, 3, 4, 5, 6]
    assert servants[2].n == 6
    # the whole suffix was recovered — via replay-at-promotion for what
    # was already buffered, via primary execution for what was ordered
    # after the view change (which path depends on timing)
    assert (controllers[2].stats_failover_replays
            + controllers[2].stats_executed) >= 5


def test_promotion_replays_buffered_requests_unit():
    """Pin the replay-at-promotion path deterministically: stuff the
    backup's buffer by hand, then deliver the fault view."""
    from repro.core import ConnectionId, ViewChange
    from repro.giop import GIOPHeader, GIOPMessageType, RequestMessage, encode_values
    from repro.replication.passive import _BufferedRequest

    net, corb, servants, controllers, adapters = build()
    proxy = corb.proxy(REF)
    corb.call(proxy, "incr", 1)  # warm up; n == 1 everywhere
    net.run_for(0.3)

    ctl = controllers[2]
    cid = ConnectionId(3, 200, 7, 100)
    binding = adapters[2].stack.connection_binding(cid)
    group = binding.group_id if binding is not None else 1
    for num in (7, 8):
        msg = RequestMessage(
            header=GIOPHeader(GIOPMessageType.REQUEST),
            request_id=num,
            response_expected=False,
            object_key=REF.object_key,
            operation="incr",
            body=encode_values([10]),
        )
        ctl._buffered.append(_BufferedRequest(cid, group, num, msg))

    view = ViewChange(group=group, membership=(2, 3, 8), view_timestamp=99,
                      added=(), removed=(1,), reason="fault", installed_at=0.0)
    ctl._on_view(view)
    assert ctl.is_primary
    assert ctl.stats_failover_replays == 2
    assert servants[2].n == 21  # 1 + 10 + 10 replayed in order
    assert ctl._buffered == []


def test_promotion_replays_two_connections_in_delivery_order():
    """Regression: the promoted backup must replay its buffered suffix in
    *delivery* (total) order.  Request numbers are per-connection, so a
    request_num sort would replay b1, b2, a5 when the agreed order was
    b1, a5, b2 — diverging the new primary's state from every backup that
    already saw the updates.  One state publication must cover the whole
    replayed suffix."""
    from repro.core import ConnectionId, ViewChange
    from repro.giop import (
        GIOPHeader,
        GIOPMessageType,
        RequestMessage,
        encode_values,
    )
    from repro.replication.passive import _BufferedRequest

    net, corb, servants, controllers, adapters = build(factory=Journal)
    proxy = corb.proxy(REF)
    corb.call(proxy, "append", "w")  # warm up the connection group
    net.run_for(0.3)

    ctl = controllers[2]
    cid_a = ConnectionId(3, 200, 7, 100)
    cid_b = ConnectionId(4, 201, 7, 100)
    binding = adapters[2].stack.connection_binding(cid_a)
    group = binding.group_id if binding is not None else 1

    def request(cid, num, tag):
        msg = RequestMessage(
            header=GIOPHeader(GIOPMessageType.REQUEST),
            request_id=num,
            response_expected=False,
            object_key=REF.object_key,
            operation="append",
            body=encode_values([tag]),
        )
        return _BufferedRequest(cid, group, num, msg)

    # buffered (= delivered total) order interleaves the connections and
    # is NOT the request_num order: b#1, a#5, b#2
    ctl._buffered.extend([
        request(cid_b, 1, "b1"),
        request(cid_a, 5, "a5"),
        request(cid_b, 2, "b2"),
    ])
    published_before = ctl.stats_updates_published

    view = ViewChange(group=group, membership=(2, 3, 8), view_timestamp=99,
                      added=(), removed=(1,), reason="fault",
                      installed_at=0.0)
    ctl._on_view(view)

    assert ctl.is_primary
    assert servants[2].entries == ["w", "b1", "a5", "b2"]  # delivery order
    assert ctl.stats_failover_replays == 3
    # the whole suffix converges remaining backups in ONE publication
    assert ctl.stats_updates_published == published_before + 1
    assert ctl._applied["3:200:7:100"] == 5
    assert ctl._applied["4:201:7:100"] == 2
    assert ctl._buffered == []


def test_sequential_failovers_down_to_last_replica():
    net, corb, servants, controllers, _ = build(seed=4)
    proxy = corb.proxy(REF)
    corb.call(proxy, "incr", 1)
    net.crash(1)
    net.run_for(1.5)
    assert corb.call(proxy, "incr", 1) == 2
    net.crash(2)
    net.run_for(1.5)
    assert controllers[3].is_primary
    assert corb.call(proxy, "incr", 1) == 3
    assert servants[3].executions >= 1


def test_execution_savings_vs_active():
    # the headline economics: R replicas, N requests -> active executes
    # R*N times, passive executes N (plus publishes N updates)
    net, corb, servants, controllers, _ = build()
    proxy = corb.proxy(REF)
    for _ in range(10):
        corb.call(proxy, "incr", 1)
    net.run_for(0.3)
    total_executions = sum(s.executions for s in servants.values())
    assert total_executions == 10  # not 30
    assert controllers[1].stats_updates_published == 10
