"""Soak test: everything at once, for a long simulated stretch.

Ten processors, continuous mixed traffic, packet loss, a transient
partition, a graceful leave, a join, and a crash — the full protocol
surface in one run.  The assertions are the global invariants.
"""

from repro.analysis import make_cluster
from repro.core import FTMPConfig, FTMPStack, RecordingListener
from repro.replication import FaultInjector
from repro.simnet import lossy_lan


def test_soak_mixed_faults_and_churn():
    pids = tuple(range(1, 9))
    cfg = FTMPConfig(heartbeat_interval=0.010, suspect_timeout=0.150)
    c = make_cluster(pids, topology=lossy_lan(0.03), config=cfg, seed=99)
    inj = FaultInjector(c.net)

    # continuous traffic from three senders for 3 simulated seconds
    for i in range(300):
        for s in (1, 2, 3):
            c.net.scheduler.at(0.01 * i + 0.001 * s, c.stacks[s].multicast, 1,
                               f"{s}:{i}".encode())

    # transient partition that heals before the suspect timeout
    inj.partition_at(0.50, {1, 2, 3, 4}, {5, 6, 7, 8})
    inj.heal_at(0.58)
    # graceful leave of processor 8
    c.net.scheduler.at(1.0, c.stacks[1].remove_processor, 1, 8)
    # a new processor 9 joins
    def join():
        lst = RecordingListener()
        st = FTMPStack(c.net.endpoint(9), cfg, lst)
        c.stacks[9] = st
        c.listeners[9] = lst
        st.join_as_new_member(1, 5001)
        c.stacks[2].add_processor(1, 9)

    c.net.scheduler.at(1.5, join)
    # crash of processor 7
    inj.crash_at(2.0, 7)

    c.run_for(8.0)

    # final membership agreed by all survivors
    final = (1, 2, 3, 4, 5, 6, 9)
    for pid in final:
        assert c.listeners[pid].current_membership(1) == final, pid

    # all 900 messages delivered, in one agreed order, at every survivor
    # that lived through the whole stream
    orders = c.orders(1)
    for pid in (1, 2, 3, 4, 5, 6):
        assert len(orders[pid]) == 900
        assert orders[pid] == orders[1]
    # the joiner holds a strict suffix
    suffix = orders[9]
    assert suffix and suffix == orders[1][-len(suffix):]
    # per-source FIFO everywhere
    for pid in (1, 2, 3, 4, 5, 6):
        payloads = c.listeners[pid].payloads(1)
        for s in (1, 2, 3):
            own = [p for p in payloads if p.startswith(f"{s}:".encode())]
            assert own == [f"{s}:{i}".encode() for i in range(300)]
    # buffers drained (ack GC kept up) at a steady member
    assert len(c.stacks[1].group(1).buffer) < 50
