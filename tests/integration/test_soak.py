"""Soak test: everything at once, for a long simulated stretch.

Ten processors, continuous mixed traffic, packet loss, a transient
partition, a graceful leave, a join, and a crash — the full protocol
surface in one run.  The global invariants are checked by the shared
oracle battery from :mod:`repro.replication.oracles` (the same ones the
chaos campaign sweeps), plus a few scenario-specific expectations the
generic oracles cannot know (exact message counts, the joiner's suffix).
"""

from repro.analysis import make_cluster
from repro.core import FTMPConfig, FTMPStack, RecordingListener
from repro.replication import FaultInjector
from repro.replication.oracles import check_quiescence, run_history_oracles
from repro.simnet import lossy_lan


def test_soak_mixed_faults_and_churn():
    pids = tuple(range(1, 9))
    cfg = FTMPConfig(heartbeat_interval=0.010, suspect_timeout=0.150)
    c = make_cluster(pids, topology=lossy_lan(0.03), config=cfg, seed=99)
    inj = FaultInjector(c.net)

    # continuous traffic from three senders for 3 simulated seconds
    for i in range(300):
        for s in (1, 2, 3):
            c.net.scheduler.at(0.01 * i + 0.001 * s, c.stacks[s].multicast, 1,
                               f"{s}:{i}".encode())

    # transient partition that heals before the suspect timeout
    inj.partition_at(0.50, {1, 2, 3, 4}, {5, 6, 7, 8})
    inj.heal_at(0.58)
    # graceful leave of processor 8
    c.net.scheduler.at(1.0, c.stacks[1].remove_processor, 1, 8)
    # a new processor 9 joins
    def join():
        lst = RecordingListener()
        st = FTMPStack(c.net.endpoint(9), cfg, lst)
        c.stacks[9] = st
        c.listeners[9] = lst
        st.join_as_new_member(1, 5001)
        c.stacks[2].add_processor(1, 9)

    c.net.scheduler.at(1.5, join)
    # crash of processor 7
    inj.crash_at(2.0, 7)

    c.run_for(8.0)

    # the shared invariant battery: total order, FIFO, no duplicates,
    # virtual synchrony, convergence and membership agreement among the
    # survivors — exactly what the chaos campaign checks
    final = (1, 2, 3, 4, 5, 6, 9)
    survivor_listeners = {p: c.listeners[p] for p in final}
    violations = run_history_oracles(survivor_listeners, 1,
                                     final_members=final)
    violations += check_quiescence(c.stacks, 1, final)
    assert violations == [], "\n".join(
        f"[{v.oracle}] {v.detail}" for v in violations)

    # scenario-specific: all 900 messages reached every full-run survivor
    orders = c.orders(1)
    for pid in (1, 2, 3, 4, 5, 6):
        assert len(orders[pid]) == 900
    # the joiner holds a strict suffix of the agreed order
    suffix = orders[9]
    assert suffix and suffix == orders[1][-len(suffix):]
    # buffers drained (ack GC kept up) at a steady member
    assert len(c.stacks[1].group(1).buffer) < 50
