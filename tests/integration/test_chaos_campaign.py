"""The seeded chaos campaign end to end: plans, oracles, artifacts.

Covers the three acceptance properties of the harness itself:

* plan generation is a pure function of ``(scenario, seed)`` and honours
  the protections that keep runs convergent (anchor untouched, survivor
  floor, faults confined to the fault window);
* a smoke matrix of seeds x scenario classes runs with zero violations;
* a forced transcript corruption (``inject_ordering_bug``) makes the
  oracles fire and produces a self-contained artifact that *replays*.
"""

import json
import os

import pytest

from repro.analysis.chaos import (
    LLFT_LEADER_PID,
    LLFT_SCENARIOS,
    chaos_config_for,
    replay_artifact,
    run_campaign,
    run_chaos_scenario,
)
from repro.replication.chaos import PROTECTED_PID, SCENARIOS, ChaosPlan

SMOKE_SCENARIOS = ("loss", "reorder", "crash", "churn")
LLFT_SMOKE_SCENARIOS = ("loss", "leader_crash")
MULTIGROUP_SMOKE_SCENARIOS = ("loss", "overlap")


def test_plan_generation_is_deterministic():
    for scenario in SCENARIOS:
        a = ChaosPlan.generate(7, scenario)
        b = ChaosPlan.generate(7, scenario)
        assert a.as_dict() == b.as_dict()
    # different seeds diverge (the timeline actually depends on the seed)
    assert (ChaosPlan.generate(7, "combo").as_dict()
            != ChaosPlan.generate(8, "combo").as_dict())


def test_plans_honour_protections():
    for scenario in SCENARIOS:
        for seed in range(5):
            plan = ChaosPlan.generate(seed, scenario)
            permanent_losses = 0
            for ev in plan.events:
                # the anchor is never crashed, partitioned away, or removed
                assert PROTECTED_PID not in ev.pids
                assert 0.0 < ev.at < plan.duration
                if ev.kind in ("crash", "leave"):
                    permanent_losses += 1
            assert len(plan.initial_members) - permanent_losses >= 3


def test_smoke_matrix_runs_clean():
    results = run_campaign(seeds=(0, 1), scenarios=SMOKE_SCENARIOS,
                           verbose=False)
    assert len(results) == len(SMOKE_SCENARIOS) * 2
    for r in results:
        assert r.ok, f"{r.scenario} seed={r.seed}: {r.violations}"
        assert r.deliveries > 0
        assert PROTECTED_PID in r.final_members


def test_same_seed_reruns_identically():
    a = run_chaos_scenario(3, "crash")
    b = run_chaos_scenario(3, "crash")
    assert (a.ok, a.deliveries, a.final_members) == (
        b.ok, b.deliveries, b.final_members)


def test_forced_violation_writes_replayable_artifact(tmp_path):
    result = run_chaos_scenario(0, "loss", artifact_dir=str(tmp_path),
                                inject_ordering_bug=True)
    assert not result.ok
    assert result.artifact_path and os.path.exists(result.artifact_path)
    with open(result.artifact_path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    # self-contained: everything needed to reproduce and to read the breach
    assert artifact["seed"] == 0
    assert artifact["scenario"] == "loss"
    assert artifact["inject_ordering_bug"] is True
    assert artifact["config"]["suspect_timeout"] > 0
    assert artifact["plan"]["events"]
    assert artifact["injections"]
    assert artifact["violations"]
    assert any(v["oracle"] == "total-order" for v in artifact["violations"])
    # the corrupted member's transcript and the anchor's reference one
    involved = {m for v in artifact["violations"] for m in v["members"]}
    for pid in involved | {PROTECTED_PID}:
        assert artifact["transcripts"][str(pid)]
    # and the artifact replays to the same verdict
    replayed = replay_artifact(result.artifact_path)
    assert not replayed.ok
    assert any(v.oracle == "total-order" for v in replayed.violations)


def test_chaos_config_for_selects_mode_and_leader():
    active = chaos_config_for("active", "crash")
    assert not active.llft_mode
    llft = chaos_config_for("llft", "crash")
    assert llft.llft_mode and llft.llft_leader_pid == 0
    # leader_crash pins the leader to a crashable (non-anchor) pid
    lc = chaos_config_for("llft", "leader_crash")
    assert lc.llft_mode and lc.llft_leader_pid == LLFT_LEADER_PID
    assert LLFT_LEADER_PID != PROTECTED_PID
    with pytest.raises(ValueError):
        chaos_config_for("paxos", "crash")
    # combo (join during an active fault round) stays out of the llft mix
    assert "combo" not in LLFT_SCENARIOS
    assert "leader_crash" in LLFT_SCENARIOS


def test_llft_smoke_matrix_runs_clean():
    results = run_campaign(seeds=(0,), scenarios=LLFT_SMOKE_SCENARIOS,
                           mode="llft", verbose=False)
    assert len(results) == len(LLFT_SMOKE_SCENARIOS)
    for r in results:
        assert r.ok, f"llft {r.scenario} seed={r.seed}: {r.violations}"
        assert r.deliveries > 0
        assert PROTECTED_PID in r.final_members


def test_llft_forced_violation_artifact_replays(tmp_path):
    # the artifact must carry the llft config so a replay needs no mode
    result = run_chaos_scenario(0, "leader_crash", mode="llft",
                                artifact_dir=str(tmp_path),
                                inject_ordering_bug=True)
    assert not result.ok
    assert result.artifact_path and os.path.exists(result.artifact_path)
    with open(result.artifact_path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert artifact["config"]["llft_mode"] is True
    assert artifact["config"]["llft_leader_pid"] == LLFT_LEADER_PID
    replayed = replay_artifact(result.artifact_path)
    assert not replayed.ok


def test_multigroup_smoke_matrix_runs_clean():
    results = run_campaign(seeds=(0,), scenarios=MULTIGROUP_SMOKE_SCENARIOS,
                           mode="multigroup", verbose=False)
    assert len(results) == len(MULTIGROUP_SMOKE_SCENARIOS)
    for r in results:
        assert r.ok, f"multigroup {r.scenario} seed={r.seed}: {r.violations}"
        assert r.deliveries > 0
        assert PROTECTED_PID in r.final_members


def test_multigroup_forced_violation_artifact_replays(tmp_path):
    # the targeted cross-group inversion must trip exactly the acyclicity
    # oracle, and the artifact must carry the multigroup config plus the
    # overlapping-group topology so a replay needs no mode
    result = run_chaos_scenario(0, "overlap", mode="multigroup",
                                artifact_dir=str(tmp_path),
                                inject_ordering_bug=True)
    assert not result.ok
    assert [v.oracle for v in result.violations] == ["multigroup-acyclicity"]
    (v,) = result.violations
    assert v.cycle and v.cycle[0] == v.cycle[-1]
    assert result.artifact_path and os.path.exists(result.artifact_path)
    with open(result.artifact_path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert artifact["config"]["multigroup_mode"] is True
    assert artifact["plan"]["groups"]
    replayed = replay_artifact(result.artifact_path)
    assert not replayed.ok
    assert any(v.oracle == "multigroup-acyclicity"
               for v in replayed.violations)


def test_clean_run_writes_no_artifact(tmp_path):
    result = run_chaos_scenario(1, "reorder", artifact_dir=str(tmp_path))
    assert result.ok
    assert result.artifact_path is None
    assert os.listdir(str(tmp_path)) == []
