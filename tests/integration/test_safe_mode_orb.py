"""Replicated invocations with safe-delivery mode end to end."""

from repro.core import FTMPConfig
from repro.replication import ReplicaManager
from repro.simnet import Network, lan


class Counter:
    def __init__(self):
        self.n = 0

    def incr(self, by):
        self.n += by
        return self.n

    def get_state(self):
        return self.n

    def set_state(self, s):
        self.n = s


def test_replicated_service_under_safe_delivery():
    net = Network(lan(), seed=6)
    mgr = ReplicaManager(net, config=FTMPConfig(delivery_mode="safe",
                                                suspect_timeout=0.060))
    ref = mgr.create_server_group(domain=7, object_group=100, object_key=b"c",
                                  factory=Counter, pids=(1, 2, 3))
    client = mgr.create_client(8, client_domain=3, client_group=200)
    proxy = mgr.proxy(8, ref)
    orb = client.orb
    for i in range(1, 6):
        assert orb.call(proxy, "incr", 1, timeout=10.0) == i
    net.run_for(0.3)
    assert all(mgr.servant(p, 7, 100).n == 5 for p in (1, 2, 3))
    # a crash is still masked with safe semantics
    net.crash(2)
    net.run_for(1.5)
    assert orb.call(proxy, "incr", 1, timeout=10.0) == 6
    net.run_for(0.3)
    assert mgr.servant(1, 7, 100).n == mgr.servant(3, 7, 100).n == 6
