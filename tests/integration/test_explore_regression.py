"""Checked-in minimized explore artifacts replay as regression tests.

``tests/data/explore/`` holds minimized violation artifacts produced by
the schedule explorer's shrinker (``make explore`` /
``python -m repro.analysis.explore``).  Each one is a complete
(plan, schedule, config) triple:

* replayed as recorded — with its ``inject_ordering_bug`` self-test
  corruption on — it must still go red with the violation key it was
  minimized against, proving the artifact is alive (the explorer,
  oracles and replay pipeline still fire on it);
* replayed with the injection forced off it must go green against the
  current code, which is the regression guarantee: if a real ordering
  bug ever re-appears on this exact minimized scenario, this test fails.

New artifacts dropped into the directory are picked up automatically.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.analysis.explore import (
    DEFAULT_LLFT_SCENARIOS,
    DEFAULT_MULTIGROUP_SCENARIOS,
    explore,
    replay_explore_artifact,
)
from repro.simnet import Schedule

_DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "data", "explore")
ARTIFACTS = sorted(glob.glob(os.path.join(_DATA_DIR, "*.json")))


def test_at_least_one_minimized_artifact_is_checked_in():
    assert ARTIFACTS, f"no explore artifacts under {_DATA_DIR}"


@pytest.mark.parametrize("path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS])
def test_artifact_is_minimized_and_well_formed(path):
    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert artifact["kind"] == "explore"
    assert artifact["violations"], "artifact with no recorded violations"
    assert all(v.get("key") for v in artifact["violations"])
    shrink = artifact["shrink"]
    assert shrink["replayed"]
    assert shrink["final_decisions"] <= shrink["original_decisions"]
    assert shrink["final_events"] <= shrink["original_events"]
    # the schedule section must round-trip (it is what replay runs)
    schedule = Schedule.from_dict(artifact["schedule"])
    assert schedule.as_dict() == artifact["schedule"]


@pytest.mark.parametrize("path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS])
def test_artifact_replays_red_as_recorded(path):
    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    recorded = {tuple(v["key"]) for v in artifact["violations"]}
    result, decisions = replay_explore_artifact(path)
    replayed = {tuple(v.signature) for v in result.violations}
    assert replayed & recorded, (
        f"{os.path.basename(path)} no longer reproduces its violation "
        f"(recorded {recorded}, replay produced {replayed})"
    )
    # byte-exact replay: the re-recorded contested choices extend the
    # minimized decision log with pure-FIFO (0) tail choices only
    minimized = artifact["schedule"]["decisions"]
    assert decisions[:len(minimized)] == minimized
    assert all(d == 0 for d in decisions[len(minimized):])


@pytest.mark.parametrize("path", ARTIFACTS, ids=[os.path.basename(p) for p in ARTIFACTS])
def test_artifact_replays_green_against_fixed_code(path):
    # the self-test corruption off: the same minimized (plan, schedule)
    # must satisfy the full oracle battery on the current protocol code
    result, _decisions = replay_explore_artifact(path, inject_override=False)
    assert result.ok, [v.as_dict() for v in result.violations]


def test_llft_mode_explore_smoke():
    # the explorer drives the leader-follower stack too: leader-handoff
    # interleavings on the leader_crash class stay clean under a couple
    # of adversarial PCT schedules
    assert "leader_crash" in DEFAULT_LLFT_SCENARIOS
    outcomes = explore(scenarios=("leader_crash",), plan_seeds=(0,),
                       n_schedules=2, mode="llft", verbose=False)
    assert outcomes
    for out in outcomes:
        assert out.ok, [v.as_dict() for v in out.violations]
        assert out.schedules_run == 2
        assert out.deliveries > 0


def test_multigroup_mode_explore_smoke():
    # the explorer drives the multi-group stack on the overlapping-
    # membership class: propose/commit interleavings across three
    # overlapping groups stay clean under adversarial PCT schedules
    assert "overlap" in DEFAULT_MULTIGROUP_SCENARIOS
    outcomes = explore(scenarios=("overlap",), plan_seeds=(0,),
                       n_schedules=2, mode="multigroup", verbose=False)
    assert outcomes
    for out in outcomes:
        assert out.ok, [v.as_dict() for v in out.violations]
        assert out.schedules_run == 2
        assert out.deliveries > 0
