"""Cross-module integration: the full Figure 1 stack under faults."""

from repro.core import FTMPConfig
from repro.giop import UserException
from repro.replication import FaultInjector, MessageLog, ReplicaManager
from repro.simnet import Network, lan, lossy_lan


class Warehouse:
    """A stateful servant with user exceptions (realistic workload)."""

    def __init__(self):
        self.stock = {}

    def receive(self, item, qty):
        self.stock[item] = self.stock.get(item, 0) + qty
        return self.stock[item]

    def ship(self, item, qty):
        have = self.stock.get(item, 0)
        if have < qty:
            raise UserException("OutOfStock", f"{item}: have {have}, want {qty}")
        self.stock[item] = have - qty
        return self.stock[item]

    def get_state(self):
        return dict(self.stock)

    def set_state(self, s):
        self.stock = dict(s)


def build(server_pids=(1, 2, 3), seed=0, topology=None, config=None):
    net = Network(topology if topology is not None else lan(), seed=seed)
    mgr = ReplicaManager(net, config=config)
    ref = mgr.create_server_group(domain=7, object_group=100, object_key=b"wh",
                                  factory=Warehouse, pids=server_pids)
    client = mgr.create_client(8, client_domain=3, client_group=200)
    return net, mgr, ref, client, mgr.proxy(8, ref)


def test_replicated_service_full_lifecycle():
    net, mgr, ref, client, proxy = build()
    orb = client.orb
    assert orb.call(proxy, "receive", "widget", 100) == 100
    assert orb.call(proxy, "ship", "widget", 30) == 70
    try:
        orb.call(proxy, "ship", "widget", 1000)
        raise AssertionError("expected OutOfStock")
    except UserException as e:
        assert e.name == "OutOfStock"
    net.run_for(0.3)
    states = [mgr.servant(p, 7, 100).get_state() for p in (1, 2, 3)]
    assert states[0] == states[1] == states[2] == {"widget": 70}


def test_service_survives_minority_crashes():
    net, mgr, ref, client, proxy = build(server_pids=(1, 2, 3))
    orb = client.orb
    orb.call(proxy, "receive", "a", 10)
    inj = FaultInjector(net)
    inj.crash_at(net.scheduler.now + 0.01, 3)
    net.run_for(1.5)
    assert orb.call(proxy, "receive", "a", 5) == 15
    net.run_for(0.3)
    assert mgr.servant(1, 7, 100).stock == mgr.servant(2, 7, 100).stock == {"a": 15}


def test_sequential_crashes_down_to_one_replica():
    net, mgr, ref, client, proxy = build(server_pids=(1, 2, 3))
    orb = client.orb
    orb.call(proxy, "receive", "x", 1)
    net.crash(3)
    net.run_for(1.5)
    orb.call(proxy, "receive", "x", 1)
    net.crash(2)
    net.run_for(1.5)
    assert orb.call(proxy, "receive", "x", 1) == 3
    assert mgr.replicas_of(7, 100) == {1}


def test_lossy_network_end_to_end():
    net, mgr, ref, client, proxy = build(
        topology=lossy_lan(0.10), seed=5,
        config=FTMPConfig(suspect_timeout=10.0),
    )
    orb = client.orb
    total = 0
    for i in range(10):
        total = orb.call(proxy, "receive", "item", 1, timeout=10.0)
    assert total == 10
    net.run_for(1.0)
    states = [mgr.servant(p, 7, 100).stock for p in (1, 2, 3)]
    assert states[0] == states[1] == states[2] == {"item": 10}


def test_message_log_pairs_all_traffic():
    net, mgr, ref, client, proxy = build()
    log = MessageLog()
    client.adapter.downstream = log
    # route deliveries into the log by chaining: adapter forwards only
    # unmatched traffic; hook the stack listener chain instead
    orig = client.adapter.on_deliver

    def tee(delivery):
        log.record(delivery)
        orig(delivery)

    client.stack.listener.on_deliver = tee
    orb = client.orb
    for i in range(5):
        orb.call(proxy, "receive", "w", 1)
    net.run_for(0.3)
    assert len(log) == 5
    assert log.unanswered() == []


def test_two_independent_object_groups():
    net = Network(lan(), seed=0)
    mgr = ReplicaManager(net)
    ref_a = mgr.create_server_group(domain=7, object_group=100, object_key=b"a",
                                    factory=Warehouse, pids=(1, 2))
    ref_b = mgr.create_server_group(domain=7, object_group=101, object_key=b"b",
                                    factory=Warehouse, pids=(1, 2))
    client = mgr.create_client(8, client_domain=3, client_group=200)
    pa, pb = mgr.proxy(8, ref_a), mgr.proxy(8, ref_b)
    orb = client.orb
    assert orb.call(pa, "receive", "ita", 1) == 1
    assert orb.call(pb, "receive", "itb", 2) == 2
    net.run_for(0.3)
    assert mgr.servant(1, 7, 100).stock == {"ita": 1}
    assert mgr.servant(1, 7, 101).stock == {"itb": 2}
