"""The identical FTMP stack over real UDP sockets (loopback fan-out).

These tests exercise actual socket I/O and wall-clock timers, so they use
generous timeouts and poll for completion instead of fixed sleeps.
"""

import time

import pytest

from repro.core import FTMPConfig, FTMPStack, RecordingListener
from repro.simnet import UdpFabric


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def fabric():
    f = UdpFabric()
    yield f
    f.close()


def test_udp_total_order_three_nodes(fabric):
    listeners, stacks = {}, {}
    cfg = FTMPConfig(heartbeat_interval=0.02, suspect_timeout=5.0)
    for pid in (1, 2, 3):
        lst = RecordingListener()
        st = FTMPStack(fabric.endpoint(pid), cfg, lst)
        st.create_group(1, 5001, (1, 2, 3))
        listeners[pid], stacks[pid] = lst, st
    with fabric.lock:
        for pid in (1, 2, 3):
            stacks[pid].multicast(1, f"hello-{pid}".encode())
    ok = wait_until(lambda: all(len(listeners[p].deliveries) == 3 for p in (1, 2, 3)))
    for pid in (1, 2, 3):
        stacks[pid].stop()
    assert ok, {p: len(listeners[p].deliveries) for p in (1, 2, 3)}
    orders = [listeners[p].delivery_order(1) for p in (1, 2, 3)]
    assert orders[0] == orders[1] == orders[2]


def test_udp_loss_recovery(fabric):
    fabric.loss_rate = 0.2
    listeners, stacks = {}, {}
    cfg = FTMPConfig(heartbeat_interval=0.02, suspect_timeout=30.0)
    for pid in (1, 2):
        lst = RecordingListener()
        st = FTMPStack(fabric.endpoint(pid), cfg, lst)
        st.create_group(1, 5001, (1, 2))
        listeners[pid], stacks[pid] = lst, st
    with fabric.lock:
        for i in range(10):
            stacks[1].multicast(1, f"m{i}".encode())
    ok = wait_until(lambda: len(listeners[2].payloads(1)) == 10, timeout=15.0)
    for pid in (1, 2):
        stacks[pid].stop()
    assert ok, len(listeners[2].payloads(1))
    assert listeners[2].payloads(1) == [f"m{i}".encode() for i in range(10)]


def test_udp_endpoint_close_is_idempotent(fabric):
    ep = fabric.endpoint(9)
    ep.close()
    ep.close()
    ep.multicast(1, b"after close")  # silently dropped
