"""Property-based membership-churn schedules through the full stack.

Randomized sequences of {send, add, remove, crash} must preserve: total
order agreement among processors with overlapping membership epochs, the
joiner-suffix property, and liveness (messages from final members are
delivered to final members).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import make_cluster
from repro.core import FTMPConfig, FTMPStack, RecordingListener


@st.composite
def churn_schedules(draw):
    """A bounded schedule of membership events over a 4-member group."""
    events = draw(
        st.lists(
            st.sampled_from(["add", "remove", "crash"]),
            min_size=1,
            max_size=3,
        )
    )
    seed = draw(st.integers(0, 2**16))
    return events, seed


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn_schedules())
def test_churn_preserves_agreement_and_liveness(schedule):
    events, seed = schedule
    cfg = FTMPConfig(suspect_timeout=0.060)
    c = make_cluster((1, 2, 3, 4), config=cfg, seed=seed)
    alive = {1, 2, 3, 4}
    members = {1, 2, 3, 4}
    next_pid = 5

    # background traffic from processor 1 (never removed) throughout
    for i in range(60):
        c.net.scheduler.at(0.004 * i, c.stacks[1].multicast, 1,
                           f"bg{i}".encode())

    t = 0.05
    for ev in events:
        if ev == "add":
            pid = next_pid
            next_pid += 1

            def do_add(pid=pid):
                lst = RecordingListener()
                st_new = FTMPStack(c.net.endpoint(pid), cfg, lst)
                c.stacks[pid] = st_new
                c.listeners[pid] = lst
                st_new.join_as_new_member(1, 5001)
                c.stacks[1].add_processor(1, pid)

            c.net.scheduler.at(t, do_add)
            alive.add(pid)
            members.add(pid)
        elif ev == "remove" and len(members & {2, 3, 4}) > 1:
            victim = max(members & {2, 3, 4})
            members.discard(victim)
            alive.discard(victim)
            c.net.scheduler.at(t, c.stacks[1].remove_processor, 1, victim)
        elif ev == "crash" and len(members & {2, 3, 4}) > 1:
            victim = min(members & {2, 3, 4})
            members.discard(victim)
            alive.discard(victim)
            c.net.scheduler.at(t, c.net.crash, victim)
        t += 0.15

    c.run_for(t + 2.5)

    # liveness: survivors that were present from the start delivered all
    # background traffic in the same order
    original_survivors = [p for p in (1, 2, 3, 4) if p in alive]
    ref = c.orders(1)[original_survivors[0]]
    bg_count = sum(1 for k in ref if True)
    assert len([d for d in c.listeners[1].payloads(1)
                if d.startswith(b"bg")]) == 60
    for p in original_survivors[1:]:
        assert c.orders(1)[p] == ref
    # joiners hold a suffix of the reference order
    for p in alive - {1, 2, 3, 4}:
        suffix = c.orders(1)[p]
        # an empty history is a valid suffix (joined after traffic ended)
        assert suffix == (ref[-len(suffix):] if suffix else [])
