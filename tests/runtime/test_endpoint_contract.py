"""Endpoint-seam contract: one assertion set, every runtime.

The protocol layers are written against :class:`repro.transport.Endpoint`
alone, so every implementation must agree on the seam's semantics —
loopback of own multicasts, open groups, join/leave gating, one-shot
cancellable timers, silence after close.  The same tests run against the
discrete-event :class:`SimEndpoint` and the asyncio
:class:`AioEndpoint` (each endpoint on its own fabric, so datagrams
really cross sockets); a runtime that drifts from the contract fails
here before it can diverge from the simulator's semantics.
"""

import asyncio
import os
import random
import socket

import pytest

from repro.runtime import ioshard
from repro.runtime.aio import AioFabric, ShardedAioFabric
from repro.runtime.shm import SpscRing
from repro.simnet import Network


class SimHarness:
    """Drives SimEndpoints by advancing the discrete-event scheduler."""

    name = "sim"

    def __init__(self, pids):
        self.net = Network()
        self._pids = pids

    def endpoint(self, pid):
        return self.net.endpoint(pid)

    def run(self, seconds):
        self.net.run_for(seconds)

    def close(self):
        pass


class AioHarness:
    """Drives AioEndpoints on a private event loop, one fabric per
    endpoint so inter-endpoint traffic crosses real UDP sockets."""

    name = "aio"

    def __init__(self, pids):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        ports = {}
        socks = []
        for pid in pids:
            s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
            ports[pid] = s.getsockname()[1]
        for s in socks:
            s.close()
        self._ports = ports
        self._fabrics = []

    def endpoint(self, pid):
        fabric = AioFabric(peers=self._ports, mode="loopback", seed=7)
        self._fabrics.append(fabric)
        return self.loop.run_until_complete(fabric.start(pid))

    def run(self, seconds):
        self.loop.run_until_complete(asyncio.sleep(seconds))

    def close(self):
        for fabric in self._fabrics:
            fabric.stop()
        self.loop.run_until_complete(asyncio.sleep(0))
        self.loop.close()
        asyncio.set_event_loop(None)


class ShardedAioHarness(AioHarness):
    """AioHarness over the sharded datapath: one ShardedAioFabric per
    endpoint, each with an I/O-shard subprocess, peer traffic over the
    shm rings (the cluster's default sharded configuration).  The
    harness plays the supervisor: it pre-creates every ring segment and
    the fabrics attach."""

    name = "sharded"

    def __init__(self, pids):
        super().__init__(pids)
        self._run_id = f"contract{os.getpid()}"
        self._rings = [
            SpscRing.create(name, 1 << 16)
            for name in ioshard.cluster_ring_names(
                self._run_id, sorted(self._ports), io_shards=1,
                peer_rings=True)
        ]

    def endpoint(self, pid):
        fabric = ShardedAioFabric(
            peers=self._ports, mode="loopback", seed=7,
            io_shards=1, ring_run_id=self._run_id, peer_rings=True,
            ring_capacity=1 << 16,
        )
        self._fabrics.append(fabric)
        ep = self.loop.run_until_complete(fabric.start(pid))
        self.loop.run_until_complete(fabric.wait_ready())
        return ep

    def close(self):
        super().close()
        for ring in self._rings:
            ring.close()
            ring.unlink()


@pytest.fixture(params=[SimHarness, AioHarness, ShardedAioHarness],
                ids=["sim", "aio", "sharded"])
def harness(request):
    h = request.param(pids=(1, 2, 3))
    yield h
    h.close()


def run_until(harness, predicate, total=2.0, step=0.02):
    """Advance the runtime until ``predicate`` holds (bounded)."""
    elapsed = 0.0
    while not predicate() and elapsed < total:
        harness.run(step)
        elapsed += step
    return predicate()


def test_identity_and_monotonic_clock(harness):
    ep = harness.endpoint(1)
    assert ep.processor_id == 1
    t0 = ep.now
    harness.run(0.05)
    assert ep.now >= t0
    assert isinstance(ep.random(), random.Random)


def test_multicast_reaches_members_and_loops_back(harness):
    a, b = harness.endpoint(1), harness.endpoint(2)
    got_a, got_b = [], []
    a.set_receiver(got_a.append)
    b.set_receiver(got_b.append)
    a.join(100)
    b.join(100)
    a.multicast(100, b"hello")
    assert run_until(harness, lambda: got_a and got_b)
    assert got_a == [b"hello"]  # sender loopback (IP-multicast semantics)
    assert got_b == [b"hello"]


def test_open_group_send_without_joining(harness):
    """Any processor may send to a group it has not joined (FTMP's
    ConnectRequest relies on this)."""
    a, b = harness.endpoint(1), harness.endpoint(2)
    got_a, got_b = [], []
    a.set_receiver(got_a.append)
    b.set_receiver(got_b.append)
    b.join(200)
    a.multicast(200, b"knock")
    assert run_until(harness, lambda: got_b)
    assert got_b == [b"knock"]
    assert got_a == []  # non-member sender receives nothing


def test_leave_stops_delivery(harness):
    a, b = harness.endpoint(1), harness.endpoint(2)
    got = []
    b.set_receiver(got.append)
    b.join(300)
    a.multicast(300, b"one")
    assert run_until(harness, lambda: got)
    b.leave(300)
    a.multicast(300, b"two")
    harness.run(0.2)
    assert got == [b"one"]


def test_timer_fires_once_and_cancel_prevents(harness):
    ep = harness.endpoint(1)
    hits = []
    ep.schedule(0.03, hits.append, "kept")
    cancelled = ep.schedule(0.03, hits.append, "cancelled")
    cancelled.cancel()
    assert run_until(harness, lambda: hits)
    harness.run(0.1)
    assert hits == ["kept"]


def test_timer_order_respects_delay(harness):
    ep = harness.endpoint(1)
    hits = []
    ep.schedule(0.08, hits.append, "late")
    ep.schedule(0.02, hits.append, "early")
    assert run_until(harness, lambda: len(hits) == 2)
    assert hits == ["early", "late"]


def test_no_callbacks_after_close(harness):
    a, b = harness.endpoint(1), harness.endpoint(2)
    got = []
    b.set_receiver(got.append)
    b.join(400)
    hits = []
    b.schedule(0.05, hits.append, "timer")
    b.close()
    a.multicast(400, b"ghost")
    harness.run(0.2)
    assert got == []
    assert hits == []


def test_close_is_idempotent(harness):
    ep = harness.endpoint(1)
    ep.close()
    ep.close()
    ep.multicast(500, b"dropped")  # silently ignored after close
    harness.run(0.05)
