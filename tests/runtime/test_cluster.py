"""End-to-end cluster smoke: real processes, real sockets, real clock.

A deliberately small run (3 worker processes, a few dozen multicasts
each) of the full supervisor → worker → oracle pipeline.  The
acceptance-scale run (≥10k multicasts) lives in the wall-clock bench
tier and the CI ``cluster-smoke`` job; this test only pins the
machine-independent facts — every process delivers every message, the
cross-process total order verifies, and the spec/result plumbing
round-trips.
"""

import json

from repro.runtime.cluster import ClusterSpec, run_cluster


def test_three_process_cluster_totally_ordered():
    spec = ClusterSpec(
        processes=3,
        messages_per_process=40,
        payload_size=48,
        mode="auto",
        seed=3,
        run_timeout=90.0,
    )
    result = run_cluster(spec)
    assert result.worker_errors == [], result.worker_errors
    assert result.violations == [], result.violations
    expected = spec.messages_per_process * spec.processes
    for pid, delivered in result.delivered.items():
        assert delivered == expected, (pid, delivered, expected)
    assert result.ok

    # the report dict must serialize (CI uploads it as an artifact)
    blob = json.loads(json.dumps(result.as_dict()))
    assert blob["ok"] is True
    assert blob["processes"] == 3


def test_sharded_cluster_totally_ordered_over_rings():
    """Same smoke over the sharded datapath: I/O-shard subprocesses own
    the sockets, peer traffic rides the shm rings — the oracles must
    hold and the ring path must have actually carried frames."""
    spec = ClusterSpec(
        processes=3,
        messages_per_process=40,
        payload_size=48,
        mode="loopback",
        seed=3,
        io_shards=1,
        run_timeout=90.0,
    )
    result = run_cluster(spec)
    assert result.worker_errors == [], result.worker_errors
    assert result.violations == [], result.violations
    assert result.ok
    assert result.io_shards == 1
    assert result.net.get("ring_ingest", 0) > 0, result.net
    assert result.net.get("shard_failovers", 0) == 0, result.net


def test_sharded_cluster_survives_shard_kill():
    """Chaos: SIGKILL one worker's only I/O shard mid-run.  The core
    binds the data port itself (failover) and the run still completes
    with clean oracles.  ``peer_rings=False`` keeps the data traffic on
    the shard sockets so the killed shard actually mattered."""
    spec = ClusterSpec(
        processes=3,
        messages_per_process=40,
        payload_size=48,
        mode="loopback",
        seed=3,
        io_shards=1,
        peer_rings=False,
        chaos_kill_shard_after_s=0.5,
        run_timeout=90.0,
    )
    result = run_cluster(spec)
    assert result.worker_errors == [], result.worker_errors
    assert result.violations == [], result.violations
    assert result.ok
    assert result.net.get("shard_failovers", 0) >= 1, result.net


def test_cluster_result_surfaces_worker_shortfall():
    """A run that cannot finish reports not-ok instead of hanging."""
    spec = ClusterSpec(
        processes=2,
        messages_per_process=10_000,
        mode="loopback",
        run_timeout=0.5,  # far too short: workers must report a shortfall
        warmup_timeout=30.0,
    )
    result = run_cluster(spec)
    assert not result.ok
