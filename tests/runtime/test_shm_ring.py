"""Property tests for the shared-memory SPSC ring (runtime/shm.py).

The ring is the transport of the sharded datapath, so its contract is
held to the same standard as the codec: byte-exact FIFO round-trip
across wraparound, and full-ring backpressure that never loses or
reorders what was accepted.  A subprocess smoke proves the cross-process
attach path (the real deployment shape) behaves like the in-process one.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.shm import DATA_OFFSET, SpscRing, ring_segment_size

CAPACITY = 256  # small on purpose: a few records force a wrap


@pytest.fixture(scope="module")
def ring():
    r = SpscRing.create(f"repro-test-ring-{os.getpid()}", CAPACITY)
    yield r
    r.close()
    r.unlink()


def _reset(r: SpscRing) -> None:
    """Zero the cursors between hypothesis examples (single segment)."""
    r._buf[:DATA_OFFSET] = bytes(DATA_OFFSET)
    r._resync()  # the instance caches its cursors


records = st.lists(
    st.binary(min_size=0, max_size=CAPACITY // 3), min_size=0, max_size=64)


@settings(max_examples=200, deadline=None)
@given(recs=records)
def test_fifo_round_trip_across_wraparound(ring, recs):
    """Push-then-pop one at a time: every record returns byte-exact, in
    order, no matter where the cursors sit in the ring."""
    _reset(ring)
    for rec in recs:
        assert ring.try_push(rec)
        got = ring.try_pop()
        assert got == rec
    assert ring.try_pop() is None
    assert ring.is_empty()


@settings(max_examples=200, deadline=None)
@given(recs=records, batch=st.integers(min_value=1, max_value=8))
def test_backpressure_never_loses_or_reorders(ring, recs, batch):
    """Interleaved pushes and batch-pops against a deque model: rejected
    pushes (ring full) leave the accepted sequence intact."""
    _reset(ring)
    model = []
    popped = []
    accepted = []
    for i, rec in enumerate(recs):
        if ring.try_push(rec):
            model.append(rec)
            accepted.append(rec)
        else:
            # full: the ring genuinely lacked space for the record
            assert len(ring) + len(rec) + 8 + 1 >= ring.capacity
        if i % batch == batch - 1:
            out = ring.pop_batch(batch)
            assert out == model[:len(out)]
            popped.extend(out)
            del model[:len(out)]
    while True:
        rec = ring.try_pop()
        if rec is None:
            break
        popped.append(rec)
    assert popped == accepted
    assert ring.is_empty()


@settings(max_examples=50, deadline=None)
@given(recs=st.lists(st.binary(min_size=0, max_size=CAPACITY // 3),
                     min_size=1, max_size=16))
def test_drain_after_fill(ring, recs):
    """Fill until rejection, then drain fully: FIFO exact."""
    _reset(ring)
    accepted = [r for r in recs if ring.try_push(r)]
    out = []
    while not ring.is_empty():
        out.append(ring.try_pop())
    assert out == accepted


def test_oversized_record_rejected(ring):
    _reset(ring)
    with pytest.raises(ValueError):
        ring.try_push(b"x" * CAPACITY)


def test_segment_size_helper():
    assert ring_segment_size(CAPACITY) == DATA_OFFSET + CAPACITY


def test_cross_process_round_trip():
    """Producer in a child process, consumer here: the deployment shape.

    Also exercises ``attach`` unregistering from the resource tracker —
    the child exits before the parent unlinks, and the segment must
    still be readable (a tracker-driven unlink would break this).
    """
    name = f"repro-test-xproc-{os.getpid()}"
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(__import__("repro").__file__)))
    ring = SpscRing.create(name, 4096)
    try:
        child = subprocess.run(
            [sys.executable, "-c", f"""
import sys
sys.path.insert(0, {src_root!r})
from repro.runtime.shm import SpscRing
ring = SpscRing.attach({name!r})
for i in range(100):
    assert ring.push(bytes([i % 256]) * (i % 50), timeout=5.0)
ring.close()
"""],
            capture_output=True, text=True, timeout=60)
        assert child.returncode == 0, child.stderr
        got = []
        while len(got) < 100:
            rec = ring.pop(timeout=5.0)
            assert rec is not None, "producer records went missing"
            got.append(rec)
        for i, rec in enumerate(got):
            assert rec == bytes([i % 256]) * (i % 50)
        assert ring.is_empty()
    finally:
        ring.close()
        ring.unlink()
