"""Message-ordering clocks (paper §6).

ROMP derives message timestamps from logical Lamport clocks: "A processor
advances its Lamport clock so that it is always greater than the timestamp
of any message that it has received or sent."  The paper adds that "better
performance can be achieved through the use of clock synchronization
software, or synchronized physical clocks (e.g., using GPS)".

Two implementations share the :class:`OrderingClock` interface:

* :class:`LamportClock` — a pure logical counter;
* :class:`SynchronizedClock` — a hybrid logical clock seeded from (skewed)
  physical time.  It still takes the max with every observed timestamp, so
  causality is never violated even under skew; its benefit is that an
  otherwise-quiet processor's heartbeats carry *current* timestamps, letting
  receivers order remote messages after one one-way delay instead of a
  round trip (the wide-area effect experiment E2 measures).

Timestamps are integers.  Both clocks are strictly monotonic per processor
(every ``tick`` returns a strictly larger value), which the total-order
delivery rule relies on.
"""

from __future__ import annotations

import abc
from typing import Callable

__all__ = ["OrderingClock", "LamportClock", "SynchronizedClock", "make_clock"]


class OrderingClock(abc.ABC):
    """Interface shared by both timestamp sources."""

    @abc.abstractmethod
    def tick(self) -> int:
        """Advance and return the timestamp for a message about to be sent."""

    @abc.abstractmethod
    def observe(self, timestamp: int) -> None:
        """Fold in the timestamp of a received message."""

    @property
    @abc.abstractmethod
    def time(self) -> int:
        """Current clock value (timestamp of the last event)."""


class LamportClock(OrderingClock):
    """Classic Lamport logical clock."""

    __slots__ = ("_time",)

    def __init__(self, initial: int = 0):
        self._time = initial

    def tick(self) -> int:
        self._time += 1
        return self._time

    def observe(self, timestamp: int) -> None:
        if timestamp > self._time:
            self._time = timestamp

    @property
    def time(self) -> int:
        return self._time

    def __repr__(self) -> str:  # pragma: no cover
        return f"LamportClock({self._time})"


class SynchronizedClock(OrderingClock):
    """Hybrid clock: physical time (with bounded skew) merged Lamport-style.

    ``now_fn`` returns seconds; ``resolution`` converts to integer ticks.
    ``skew`` models imperfect synchronization between processors.
    """

    __slots__ = ("_time", "_now_fn", "_resolution", "_skew")

    def __init__(
        self,
        now_fn: Callable[[], float],
        resolution: float = 1e-6,
        skew: float = 0.0,
        initial: int = 0,
    ):
        self._now_fn = now_fn
        self._resolution = resolution
        self._skew = skew
        self._time = initial

    def _physical(self) -> int:
        return int((self._now_fn() + self._skew) / self._resolution)

    def tick(self) -> int:
        self._time = max(self._time + 1, self._physical())
        return self._time

    def observe(self, timestamp: int) -> None:
        if timestamp > self._time:
            self._time = timestamp

    @property
    def time(self) -> int:
        return self._time

    def __repr__(self) -> str:  # pragma: no cover
        return f"SynchronizedClock({self._time})"


def make_clock(mode: str, now_fn: Callable[[], float], resolution: float, skew: float) -> OrderingClock:
    """Factory selecting the clock implementation from an FTMPConfig."""
    from .config import ClockMode

    if mode == ClockMode.LAMPORT:
        return LamportClock()
    if mode == ClockMode.SYNCHRONIZED:
        return SynchronizedClock(now_fn, resolution=resolution, skew=skew)
    raise ValueError(f"unknown clock mode {mode!r}")
