"""FTMP message model (paper §3 and §5–§7).

Every FTMP message is a fixed 40-byte header (:class:`FTMPHeader`) followed
by a type-specific body.  The dataclasses here mirror the paper's message
format tables field-for-field; the binary encoding lives in
:mod:`repro.core.wire`.

Timestamps are integers (Lamport-clock ticks, or microsecond ticks in
synchronized mode); sequence numbers are per-(source, destination group)
and start at 1; sequence number 0 means "no reliable message sent yet".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple, Union

from .constants import MAGIC, VERSION_MAJOR, VERSION_MINOR, MessageType

__all__ = [
    "FTMPHeader",
    "ConnectionId",
    "RegularMessage",
    "BatchMessage",
    "RetransmitRequestMessage",
    "HeartbeatMessage",
    "AckSummaryMessage",
    "ConnectRequestMessage",
    "ConnectMessage",
    "AddProcessorMessage",
    "RemoveProcessorMessage",
    "SuspectMessage",
    "MembershipMessage",
    "MultiGroupProposeMessage",
    "MultiGroupCommitMessage",
    "FTMPMessage",
    "order_key",
]


@dataclass(slots=True)
class FTMPHeader:
    """The FTMP message header (paper §3.2).

    ``message_size`` is filled in by the codec at encode time (it covers
    header + payload, as the paper specifies).
    """

    message_type: MessageType
    source: int
    group: int
    sequence_number: int
    timestamp: int
    ack_timestamp: int
    retransmission: bool = False
    little_endian: bool = True
    message_size: int = 0
    magic: bytes = MAGIC
    version: Tuple[int, int] = (VERSION_MAJOR, VERSION_MINOR)

    def as_retransmission(self) -> "FTMPHeader":
        """Copy of this header with the retransmission flag set (§3.2)."""
        return replace(self, retransmission=True)


@dataclass(frozen=True, slots=True)
class ConnectionId:
    """Identifier of a logical connection between two object groups (§4).

    Consists of the fault-tolerance-domain id and object-group id of the
    client object group and of the server object group.
    """

    client_domain: int
    client_group: int
    server_domain: int
    server_group: int

    #: Sentinel used in Regular messages that do not belong to a logical
    #: connection (e.g. raw group multicast below the ORB layer).
    @staticmethod
    def none() -> "ConnectionId":
        return _NO_CONNECTION

    def reversed(self) -> "ConnectionId":
        """The same connection as named from the other side."""
        return ConnectionId(
            self.server_domain, self.server_group, self.client_domain, self.client_group
        )


_NO_CONNECTION = ConnectionId(0, 0, 0, 0)


@dataclass(slots=True)
class RegularMessage:
    """Carries one encapsulated GIOP message (§5).

    ``connection_id`` and ``request_num`` identify the invocation for
    duplicate detection among object replicas (§4); ``payload`` is the
    GIOP message bytes (or arbitrary application bytes below the ORB).
    """

    header: FTMPHeader
    connection_id: ConnectionId
    request_num: int
    payload: bytes


@dataclass(slots=True)
class RetransmitRequestMessage:
    """Negative acknowledgement for a block of missing messages (§5)."""

    header: FTMPHeader
    processor_id: int  #: source whose messages are missing
    start_seq: int
    stop_seq: int


@dataclass(slots=True)
class HeartbeatMessage:
    """Null message carrying current seq / timestamp / ack values (§5)."""

    header: FTMPHeader


@dataclass(slots=True)
class ConnectRequestMessage:
    """Client's request for a new logical connection (§7)."""

    header: FTMPHeader
    connection_id: ConnectionId
    processor_ids: Tuple[int, ...]  #: processors supporting the client group


@dataclass(slots=True)
class ConnectMessage:
    """Server's response establishing (or migrating) a connection (§7)."""

    header: FTMPHeader
    connection_id: ConnectionId
    processor_group_id: int
    ip_multicast_address: int
    membership_timestamp: int
    membership: Tuple[int, ...]


@dataclass(slots=True)
class AddProcessorMessage:
    """Adds a non-faulty processor to a processor group (§7.1)."""

    header: FTMPHeader
    membership_timestamp: int
    membership: Tuple[int, ...]
    #: seq number of the most recent *ordered* message from each member,
    #: letting the new member construct the order for later messages.
    sequence_numbers: Dict[int, int]
    new_member: int


@dataclass(slots=True)
class RemoveProcessorMessage:
    """Removes a non-faulty processor from a processor group (§7.1)."""

    header: FTMPHeader
    member_to_remove: int


@dataclass(slots=True)
class SuspectMessage:
    """Declares processors suspected of being faulty (§7.2)."""

    header: FTMPHeader
    membership_timestamp: int
    suspects: Tuple[int, ...]


@dataclass(slots=True)
class MembershipMessage:
    """Proposes a new membership excluding convicted processors (§7.2).

    ``sequence_numbers[p]`` is the highest seq from ``p`` such that the
    sender has that message *and every smaller-numbered one* — the basis of
    the virtual-synchrony message exchange.
    """

    header: FTMPHeader
    membership_timestamp: int
    current_membership: Tuple[int, ...]
    sequence_numbers: Dict[int, int]
    new_membership: Tuple[int, ...]


@dataclass(slots=True)
class BatchMessage:
    """Several encoded FTMP messages packed into one datagram.

    A pure transport envelope (extension; not in the paper): ``parts``
    are the complete wire encodings — header included — of the packed
    messages, so each part retains its own sequence number, timestamps
    and retransmission identity.  The envelope itself is unreliable and
    carries no ordering information (sequence number and timestamps 0).
    """

    header: FTMPHeader
    parts: Tuple[bytes, ...]


@dataclass(slots=True)
class AckSummaryMessage:
    """Aggregated §6 stability along one overlay tree edge (extension).

    ``kind`` distinguishes the two directions of the aggregation:
    ``KIND_UP`` (child → parent) carries the sender's subtree minima —
    ``cover_ts`` is the subtree-minimum *cover* (everything at/below it
    contiguously received by every subtree member), ``ack_ts`` the
    subtree-minimum delivered/acknowledged timestamp.  ``KIND_DOWN``
    (parent → child) carries the complement: the aggregate over the rest
    of the tree as seen from the sender.  Unreliable, like Heartbeat; the
    header piggybacks the sender's live seq/timestamp/ack values so RMP
    gap exposure and ROMP clock advancement work exactly as for
    heartbeats.

    ``entries`` is a per-source progress vector of ``(pid, seq, ts)``
    triples with the claim: *every message from source ``pid`` with
    timestamp <= ``ts`` has sequence number <= ``seq``, and the sender's
    aggregation scope has contiguously received source ``pid`` through
    ``seq``*.  Both halves are global facts about ``pid``'s stream
    (per-source clocks are monotonic and some member really does hold
    the prefix), so cross-node aggregation takes the maximum ``seq``
    and the maximum ``ts`` per source — the entry with the larger
    ``ts`` already bounds every timestamp at/below it by *its* ``seq``,
    which the merged maximum dominates.  A receiver adopts an entry by
    first NACK-recovering up to ``seq`` if it has a gap, then advancing
    its local order timestamp for ``pid`` to ``ts``.  An entry's
    presence is also transitive liveness evidence for ``pid`` (see
    :mod:`repro.core.overlay`).
    """

    KIND_UP = 1
    KIND_DOWN = 2

    header: FTMPHeader
    kind: int
    cover_ts: int
    ack_ts: int
    #: per-source (pid, seq, ts) progress triples; see class docstring.
    entries: Tuple[Tuple[int, int, int], ...] = ()


@dataclass(slots=True)
class MultiGroupProposeMessage:
    """Phase 1 of multi-group atomic multicast (extension).

    One copy is multicast into each addressed group's totally-ordered
    stream.  The position this message reaches in group ``g``'s total
    order *is* ``g``'s proposed timestamp — identical at every member of
    ``g`` with no extra round.  ``(header.source, mg_seq)`` is the
    message's global identity across all its copies; ``groups`` is the
    full addressed group-set (needed by members spanning several of the
    groups to know when all proposals are in); ``conflict_class`` 0
    means totally ordered, any other value delivers commutatively
    against different classes (Generic Multicast relaxation).
    """

    header: FTMPHeader
    mg_seq: int
    conflict_class: int
    groups: Tuple[int, ...]
    payload: bytes


@dataclass(slots=True)
class MultiGroupCommitMessage:
    """Phase 2 of multi-group atomic multicast (extension).

    Announces ``commit_ts`` = max of the per-group proposals for the
    multicast identified by ``(origin, mg_seq)``.  Totally ordered like
    the Propose: riding the same stream makes the multi-group delivery
    stage a deterministic function of the group's release sequence (the
    key consistency argument), and since the origin's clock ticked
    between stamping the proposals and stamping this commit, the
    commit's own ordered position already proves that nothing with an
    ordering key below ``commit_ts`` can still arrive.
    """

    header: FTMPHeader
    origin: int
    mg_seq: int
    commit_ts: int


FTMPMessage = Union[
    RegularMessage,
    BatchMessage,
    RetransmitRequestMessage,
    HeartbeatMessage,
    AckSummaryMessage,
    ConnectRequestMessage,
    ConnectMessage,
    AddProcessorMessage,
    RemoveProcessorMessage,
    SuspectMessage,
    MembershipMessage,
    MultiGroupProposeMessage,
    MultiGroupCommitMessage,
]


def order_key(msg: FTMPMessage) -> Tuple[int, int]:
    """Total-order sort key: (timestamp, source id), ties by source (§6)."""
    return (msg.header.timestamp, msg.header.source)
