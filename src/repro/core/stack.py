"""The FTMP protocol stack (paper Figure 1).

:class:`FTMPStack` is one processor's instance of the whole protocol:
it owns the ordering clock, the per-group protocol machines
(:class:`ProcessorGroup` = RMP + ROMP + PGMP + fault detector + buffers),
the connection manager, and the datagram routing between them.  It is
written against the abstract :class:`~repro.simnet.transport.Endpoint`,
so the identical stack runs over the discrete-event simulator and over
real UDP sockets.

Typical use (static bootstrap, as the FT infrastructure would do)::

    stack = FTMPStack(net.endpoint(pid), FTMPConfig(), listener)
    stack.create_group(group_id=1, address=5001, membership=(1, 2, 3))
    stack.multicast(1, b"payload")

Dynamic membership::

    stack_a.add_processor(1, new_pid=4)       # on an existing member
    stack_d.join_as_new_member(1, address=5001)  # on the new processor

Connections (paper §4/§7)::

    server.serve(domain=7, object_group=1, server_pids=(1, 2))
    client.request_connection(ConnectionId(0, 9, 7, 1), client_pids=(8, 9))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..simnet.transport import Endpoint
from .buffers import RetransmissionBuffer
from .config import FTMPConfig
from .connection import (
    ConnectionBinding,
    ConnectionManager,
    DuplicateDetector,
    default_allocator,
)
from .constants import RELIABLE_TYPES, MessageType
from .events import ConnectionEvent, Delivery, FaultReport, Listener, ViewChange
from .fault_detector import FaultDetector
from .lamport import make_clock
from .messages import (
    AddProcessorMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    FTMPMessage,
    HeartbeatMessage,
    MembershipMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
)
from .pgmp import PGMP
from .rmp import RMP
from .romp import ROMP
from .tracing import Tracer
from .wire import CodecError, decode, encode, peek_header

__all__ = ["FTMPStack", "ProcessorGroup", "StackStats"]

_RETRANS_FLAG_OFFSET = 6  # header byte holding the flags (see wire.py)
_FLAG_RETRANSMISSION = 0x02


@dataclass
class StackStats:
    datagrams_received: int = 0
    datagrams_sent: int = 0
    decode_errors: int = 0
    unknown_group_drops: int = 0


@dataclass
class GroupStats:
    regulars_sent: int = 0
    heartbeats_sent: int = 0
    ordered_sends_deferred: int = 0


class ProcessorGroup:
    """One processor's protocol state for one processor group.

    Combines the RMP / ROMP / PGMP machines, the retransmission buffer,
    the fault detector, the heartbeat generator and the send paths.  The
    protocol layers call back into this object for timers, sends and
    upward deliveries (it is the "group context").
    """

    def __init__(
        self,
        stack: "FTMPStack",
        group_id: int,
        address: int,
        membership: Tuple[int, ...],
        joining: bool = False,
    ):
        self._stack = stack
        self.group_id = group_id
        self.address = address
        self.membership: Tuple[int, ...] = tuple(sorted(membership))
        self.view_timestamp = 0
        self.joining = joining
        #: (timestamp, source) of the AddProcessor that admitted us; ordered
        #: messages strictly before it belong to views we were not part of.
        self.join_barrier: Optional[Tuple[int, int]] = None
        #: keys of queued ordered messages from members removed by a fault
        #: view — still deliverable (virtual synchrony grandfathering)
        self.legacy_keys: Set[Tuple[int, int]] = set()

        self.buffer = RetransmissionBuffer(gc_enabled=stack.config.buffer_gc_enabled)
        self.rmp = RMP(self)
        self.romp = ROMP(self)
        self.pgmp = PGMP(self)
        self.fault_detector = FaultDetector(self)
        self.stats = GroupStats()

        self.last_sent_seq = 0
        self._last_send_time = -1e9
        self._hb_timer: Optional[object] = None
        self._pending_ordered: List[Tuple[bytes, ConnectionId, int]] = []
        self._heard: Set[int] = set()
        self._incoming_raw: Optional[bytes] = None
        self._stopped = False

        if not joining:
            self._activate()

    # ------------------------------------------------------------------
    # context surface used by the protocol layers
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self._stack.pid

    @property
    def config(self) -> FTMPConfig:
        return self._stack.config

    @property
    def rng(self):
        return self._stack.endpoint.random()

    @property
    def clock(self):
        return self._stack.clock

    def now(self) -> float:
        return self._stack.endpoint.now

    def schedule(self, delay: float, fn: Callable, *args):
        return self._stack.endpoint.schedule(delay, fn, *args)

    def trace(self, kind: str, **detail) -> None:
        tracer = self._stack.tracer
        if tracer is not None:
            tracer.emit(self.now(), self.pid, self.group_id, kind, **detail)

    def note_alive(self, src: int) -> None:
        if src not in self._heard:
            self._heard.add(src)
            # a newly heard processor ends any AddProcessor resend loop
            self.pgmp.cancel_add_resend(src)
        self.fault_detector.note_alive(src)

    def has_heard_from(self, src: int) -> bool:
        return src in self._heard

    def watch_member(self, pid: int, grace: float = 0.0) -> None:
        self.fault_detector.watch(pid, grace)

    def forget_member(self, pid: int) -> None:
        self.fault_detector.forget(pid)
        self.rmp.drop_source(pid)
        self.romp.purge_queue_of(pid)
        self.romp.purge_source(pid)
        self._heard.discard(pid)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        """Join the wire address, start heartbeats and the fault detector."""
        self._stack.endpoint.join(self.address)
        self.fault_detector.start()
        for p in self.membership:
            if p != self.pid:
                self.fault_detector.watch(p, grace=self.config.join_grace)
        self._arm_heartbeat()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._hb_timer is not None:
            self._hb_timer.cancel()
            self._hb_timer = None
        self.fault_detector.stop()
        self.rmp.stop()
        self.pgmp.stop()
        self._stack.endpoint.leave(self.address)

    # ------------------------------------------------------------------
    # datagram input (from the stack router)
    # ------------------------------------------------------------------
    def on_datagram(self, msg: FTMPMessage, raw: bytes) -> None:
        if self._stopped:
            return
        if self.joining:
            # A new member can only act on the AddProcessor that names it;
            # everything else is recovered by NACK after the join (§7.1).
            if isinstance(msg, AddProcessorMessage) and msg.new_member == self.pid:
                self.pgmp.bootstrap_from_add(msg)
                self._incoming_raw = raw
                self.rmp.on_message(msg)
                self._incoming_raw = None
            return
        if self._stack.tracer is not None:
            self.trace("recv", type=msg.header.message_type.name,
                       src=msg.header.source, seq=msg.header.sequence_number)
        # every datagram carries usable clock / ack / liveness information
        # (RetransmitRequests included); ordering advancement stays gated
        # on contiguity inside ROMP
        self.romp.observe_header(msg.header)
        self._incoming_raw = raw
        self.rmp.on_message(msg)
        self._incoming_raw = None

    def retain(self, msg: FTMPMessage) -> None:
        """Keep a reliable message for answering RetransmitRequests (§5)."""
        h = msg.header
        raw = self._incoming_raw if self._incoming_raw is not None else encode(msg)
        self.buffer.add(h.source, h.sequence_number, h.timestamp, raw)

    # ------------------------------------------------------------------
    # upward delivery plumbing (called by RMP / ROMP)
    # ------------------------------------------------------------------
    def romp_receive(self, msg: FTMPMessage) -> None:
        self.romp.receive(msg)

    def romp_heartbeat(self, msg: HeartbeatMessage) -> None:
        self.romp.receive_heartbeat(msg)

    def pgmp_raise_suspicion(self, pid: int) -> None:
        self.pgmp.raise_suspicion(pid)

    def pgmp_withdraw_suspicion(self, pid: int) -> None:
        self.pgmp.withdraw_suspicion(pid)

    def pgmp_receive_unreliable(self, msg: FTMPMessage) -> None:
        if isinstance(msg, ConnectRequestMessage):
            self._stack.connections.on_connect_request(msg)

    def pgmp_receive_source_ordered(self, msg: FTMPMessage) -> None:
        self.pgmp.on_source_ordered(msg)

    def pgmp_receive_ordered(self, msg: FTMPMessage) -> None:
        if self.join_barrier is not None:
            key = (msg.header.timestamp, msg.header.source)
            if key < self.join_barrier:
                return  # predates our admission to the group
        self.pgmp.on_ordered(msg)

    def deliver_regular(self, msg: RegularMessage) -> None:
        h = msg.header
        if self.join_barrier is not None and (h.timestamp, h.source) < self.join_barrier:
            return
        self.legacy_keys.discard((h.timestamp, h.source))
        if self._stack.tracer is not None:
            self.trace("deliver", src=h.source, seq=h.sequence_number,
                       ts=h.timestamp, bytes=len(msg.payload))
        self._stack.listener.on_deliver(
            Delivery(
                group=self.group_id,
                source=h.source,
                sequence_number=h.sequence_number,
                timestamp=h.timestamp,
                connection_id=msg.connection_id,
                request_num=msg.request_num,
                payload=msg.payload,
                delivered_at=self.now(),
            )
        )

    # ------------------------------------------------------------------
    # send paths
    # ------------------------------------------------------------------
    def _header(self, mtype: MessageType, reliable: bool) -> FTMPHeader:
        if reliable:
            self.last_sent_seq += 1
        return FTMPHeader(
            message_type=mtype,
            source=self.pid,
            group=self.group_id,
            sequence_number=self.last_sent_seq,
            timestamp=self.clock.tick(),
            ack_timestamp=self.romp.ack_timestamp,
            little_endian=self.config.little_endian,
        )

    def _transmit(self, msg: FTMPMessage, address: Optional[int] = None) -> bytes:
        raw = encode(msg)
        mtype = msg.header.message_type
        if mtype in RELIABLE_TYPES:
            self.buffer.add(
                msg.header.source, msg.header.sequence_number, msg.header.timestamp, raw
            )
        if mtype in RELIABLE_TYPES or mtype == MessageType.HEARTBEAT:
            # §5: a Heartbeat is due when no *Regular* (ordered-stream)
            # message went out recently; control traffic such as
            # RetransmitRequests must not starve the heartbeat, because
            # receivers need the stream's timestamps to keep ordering.
            self._last_send_time = self.now()
        if self._stack.tracer is not None:
            self.trace("send", type=mtype.name, seq=msg.header.sequence_number,
                       ts=msg.header.timestamp)
        self._stack.transmit(address if address is not None else self.address, raw)
        return raw

    def multicast(self, payload: bytes, connection_id: Optional[ConnectionId] = None,
                  request_num: int = 0) -> None:
        """Multicast an application (GIOP) payload as a Regular message."""
        if self.joining:
            raise RuntimeError("cannot multicast before the join completes")
        cid = connection_id if connection_id is not None else ConnectionId.none()
        if not self.romp.can_send_ordered():
            # §7 quiescence after a Connect: hold ordered application
            # traffic until every member is heard past the barrier.
            self.stats.ordered_sends_deferred += 1
            self._pending_ordered.append((payload, cid, request_num))
            return
        self._send_regular(payload, cid, request_num)

    def _send_regular(self, payload: bytes, cid: ConnectionId, request_num: int) -> None:
        msg = RegularMessage(
            header=self._header(MessageType.REGULAR, reliable=True),
            connection_id=cid,
            request_num=request_num,
            payload=payload,
        )
        self.stats.regulars_sent += 1
        self._transmit(msg)

    def on_send_barrier_cleared(self) -> None:
        pending, self._pending_ordered = self._pending_ordered, []
        for payload, cid, request_num in pending:
            self._send_regular(payload, cid, request_num)

    def send_retransmit_request(self, source: int, start: int, stop: int) -> None:
        if self._stack.tracer is not None:
            self.trace("nack", missing_from=source, start=start, stop=stop)
        msg = RetransmitRequestMessage(
            header=self._header(MessageType.RETRANSMIT_REQUEST, reliable=False),
            processor_id=source,
            start_seq=start,
            stop_seq=stop,
        )
        self._transmit(msg)

    def retransmit_raw(self, raw: bytes, address: Optional[int] = None) -> None:
        """Re-send a retained message unchanged except the retrans flag (§3.2)."""
        if self._stack.tracer is not None:
            self.trace("resend", bytes=len(raw))
        out = bytearray(raw)
        out[_RETRANS_FLAG_OFFSET] |= _FLAG_RETRANSMISSION
        self._stack.transmit(address if address is not None else self.address,
                             bytes(out))

    def send_add_processor(self, membership_timestamp: int, membership: Tuple[int, ...],
                           sequence_numbers: Dict[int, int], new_member: int) -> bytes:
        msg = AddProcessorMessage(
            header=self._header(MessageType.ADD_PROCESSOR, reliable=True),
            membership_timestamp=membership_timestamp,
            membership=membership,
            sequence_numbers=sequence_numbers,
            new_member=new_member,
        )
        return self._transmit(msg)

    def send_remove_processor(self, member: int) -> None:
        msg = RemoveProcessorMessage(
            header=self._header(MessageType.REMOVE_PROCESSOR, reliable=True),
            member_to_remove=member,
        )
        self._transmit(msg)

    def send_suspect(self, membership_timestamp: int, suspects: Tuple[int, ...]) -> None:
        msg = SuspectMessage(
            header=self._header(MessageType.SUSPECT, reliable=True),
            membership_timestamp=membership_timestamp,
            suspects=suspects,
        )
        self._transmit(msg)

    def send_membership(self, membership_timestamp: int, current_membership: Tuple[int, ...],
                        sequence_numbers: Dict[int, int],
                        new_membership: Tuple[int, ...]) -> None:
        msg = MembershipMessage(
            header=self._header(MessageType.MEMBERSHIP, reliable=True),
            membership_timestamp=membership_timestamp,
            current_membership=current_membership,
            sequence_numbers=sequence_numbers,
            new_membership=new_membership,
        )
        self._transmit(msg)

    def send_connect(self, connection_id: ConnectionId, processor_group_id: int,
                     ip_multicast_address: int, membership_timestamp: int,
                     membership: Tuple[int, ...], address: Optional[int] = None) -> bytes:
        msg = ConnectMessage(
            header=self._header(MessageType.CONNECT, reliable=True),
            connection_id=connection_id,
            processor_group_id=processor_group_id,
            ip_multicast_address=ip_multicast_address,
            membership_timestamp=membership_timestamp,
            membership=membership,
        )
        return self._transmit(msg, address=address)

    # ------------------------------------------------------------------
    # heartbeats (paper §5)
    # ------------------------------------------------------------------
    def _arm_heartbeat(self) -> None:
        if self._stopped:
            return
        self._hb_timer = self.schedule(self.config.heartbeat_interval, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        self._hb_timer = None
        if self._stopped:
            return
        idle = self.now() - self._last_send_time
        if idle >= self.config.heartbeat_interval * 0.999:
            msg = HeartbeatMessage(
                header=self._header(MessageType.HEARTBEAT, reliable=False)
            )
            self.stats.heartbeats_sent += 1
            self._transmit(msg)
        self._arm_heartbeat()

    # ------------------------------------------------------------------
    # membership state changes (called by PGMP)
    # ------------------------------------------------------------------
    def install_view(self, membership: Tuple[int, ...], view_timestamp: int,
                     added: Tuple[int, ...], removed: Tuple[int, ...], reason: str) -> None:
        self.membership = tuple(sorted(membership))
        self.view_timestamp = view_timestamp
        self.pgmp.reset_after_view()
        for p in added:
            self.romp.flush_staging(p)
        if self._stack.tracer is not None:
            self.trace("view", reason=reason, membership=self.membership,
                       view_ts=view_timestamp)
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=self.membership,
                view_timestamp=view_timestamp,
                added=tuple(added),
                removed=tuple(removed),
                reason=reason,
                installed_at=self.now(),
            )
        )
        self.romp.evaluate()

    def install_fault_view(self, membership: Tuple[int, ...], view_timestamp: int,
                           removed: Tuple[int, ...],
                           sync_targets: Optional[Dict[int, int]] = None) -> None:
        """Install a view that excludes convicted processors (§7.2)."""
        targets = sync_targets or {}
        for r in removed:
            # Anything from the convicted member beyond the synchronized
            # prefix was not received by every survivor: drop it.  The rest
            # is grandfathered — deliverable after the member's removal
            # (virtual synchrony: identical delivery sets at all survivors).
            self.romp.purge_queue_after(r, targets.get(r, 0))
            for key in self.romp.keys_from(r):
                self.legacy_keys.add(key)
            self.fault_detector.forget(r)
            self.rmp.drop_source(r)
            self.romp.purge_source(r)
            self._heard.discard(r)
        self.install_view(membership, view_timestamp, added=(), removed=removed,
                          reason="fault")
        if self._stack.tracer is not None:
            self.trace("fault", convicted=tuple(removed))
        self._stack.listener.on_fault_report(
            FaultReport(group=self.group_id, convicted=tuple(removed),
                        reported_at=self.now())
        )

    def evict_self(self, reason: str, view_timestamp: int) -> None:
        """We were removed (RemoveProcessor or exclusion by survivors)."""
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=(),
                view_timestamp=view_timestamp,
                added=(),
                removed=(self.pid,),
                reason=reason,
                installed_at=self.now(),
            )
        )
        self._stack.remove_group(self.group_id)

    def complete_join(self, membership: Tuple[int, ...], view_timestamp: int,
                      join_barrier: Tuple[int, int]) -> None:
        """Finish the new-member bootstrap from a received AddProcessor."""
        if not self.joining:
            return
        self.joining = False
        self.join_barrier = join_barrier
        self.membership = tuple(sorted(membership))
        self.view_timestamp = view_timestamp
        self._activate()
        # Announce ourselves at once so the initiator stops retransmitting
        # the AddProcessor and the others' ordering includes us promptly.
        msg = HeartbeatMessage(header=self._header(MessageType.HEARTBEAT, reliable=False))
        self._transmit(msg)
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=self.membership,
                view_timestamp=view_timestamp,
                added=(self.pid,),
                removed=(),
                reason="add",
                installed_at=self.now(),
            )
        )

    # ------------------------------------------------------------------
    # connection migration (ordered Connect, §7)
    # ------------------------------------------------------------------
    def apply_connect_migration(self, msg: ConnectMessage) -> None:
        # a Connect may bind a *new* logical connection onto this existing
        # group (shared processor group, §7) rather than migrate it
        self._stack.connections.on_ordered_connect(msg)
        new_addr = msg.ip_multicast_address
        migrated = new_addr != self.address
        if migrated:
            self._stack.endpoint.leave(self.address)
            self.address = new_addr
            self._stack.endpoint.join(new_addr)
        self.view_timestamp = max(self.view_timestamp, msg.header.timestamp)
        # §7 quiescence: no ordered transmissions until every member is
        # heard past the Connect's timestamp (their heartbeats get us there).
        self.romp.set_send_barrier(msg.header.timestamp)
        self._stack.connections.apply_migration(msg.connection_id, new_addr)
        binding = self._stack.connections.binding(msg.connection_id)
        if binding is not None and migrated:
            self._stack.notify_connection(binding, migrated=True)


class FTMPStack:
    """One processor's FTMP protocol stack (Figure 1)."""

    def __init__(
        self,
        endpoint: Endpoint,
        config: Optional[FTMPConfig] = None,
        listener: Optional[Listener] = None,
        allocator: Callable[[Tuple[int, ...]], Tuple[int, int]] = default_allocator,
    ):
        self.endpoint = endpoint
        self.config = config if config is not None else FTMPConfig()
        self.listener = listener if listener is not None else Listener()
        self.clock = make_clock(
            self.config.clock_mode,
            lambda: self.endpoint.now,
            self.config.sync_clock_resolution,
            self.config.sync_clock_skew,
        )
        self.connections = ConnectionManager(self)
        self.duplicates = DuplicateDetector()
        self.stats = StackStats()
        #: optional protocol-event tracer (see repro.core.tracing)
        self.tracer: Optional[Tracer] = None
        self._allocator = allocator
        self._groups: Dict[int, ProcessorGroup] = {}
        self._stopped = False
        endpoint.set_receiver(self._on_datagram)

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.endpoint.processor_id

    def group(self, group_id: int) -> Optional[ProcessorGroup]:
        return self._groups.get(group_id)

    def groups(self) -> Dict[int, ProcessorGroup]:
        return dict(self._groups)

    def schedule(self, delay: float, fn: Callable, *args):
        return self.endpoint.schedule(delay, fn, *args)

    def join_address(self, address: int) -> None:
        self.endpoint.join(address)

    # ------------------------------------------------------------------
    # public protocol API
    # ------------------------------------------------------------------
    def create_group(self, group_id: int, address: int,
                     membership: Tuple[int, ...]) -> ProcessorGroup:
        """Statically bootstrap a processor group (FT-infrastructure role).

        Every initial member must call this with the same membership.
        """
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        if self.pid not in membership:
            raise ValueError("this processor must be part of the membership")
        g = ProcessorGroup(self, group_id, address, membership)
        self._groups[group_id] = g
        self.listener.on_view_change(
            ViewChange(
                group=group_id,
                membership=g.membership,
                view_timestamp=0,
                added=g.membership,
                removed=(),
                reason="bootstrap",
                installed_at=self.endpoint.now,
            )
        )
        return g

    def join_as_new_member(self, group_id: int, address: int) -> ProcessorGroup:
        """Join an existing group; completes when an AddProcessor names us.

        An existing member must call :meth:`add_processor` for this pid.
        """
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        g = ProcessorGroup(self, group_id, address, membership=(), joining=True)
        self._groups[group_id] = g
        self.endpoint.join(address)
        return g

    def multicast(self, group_id: int, payload: bytes,
                  connection_id: Optional[ConnectionId] = None,
                  request_num: int = 0) -> None:
        """Reliably, totally-ordered multicast of an application payload."""
        self._require_group(group_id).multicast(payload, connection_id, request_num)

    def add_processor(self, group_id: int, new_pid: int) -> None:
        """Add a non-faulty processor to a group (§7.1)."""
        self._require_group(group_id).pgmp.initiate_add(new_pid)

    def remove_processor(self, group_id: int, pid: int) -> None:
        """Remove a non-faulty processor from a group (§7.1)."""
        self._require_group(group_id).pgmp.initiate_remove(pid)

    # -- connections ----------------------------------------------------
    def serve(self, domain: int, object_group: int, server_pids: Tuple[int, ...]) -> None:
        """Register this processor as supporting a server object group."""
        self.connections.register_server(domain, object_group, server_pids)

    def request_connection(self, cid: ConnectionId, client_pids: Tuple[int, ...]) -> None:
        """Client side: open a logical connection to a server object group."""
        self.connections.request(cid, client_pids)

    def connection_binding(self, cid: ConnectionId) -> Optional[ConnectionBinding]:
        return self.connections.binding(cid)

    def send_on_connection(self, cid: ConnectionId, payload: bytes, request_num: int) -> None:
        """Multicast a GIOP payload over an established logical connection."""
        binding = self.connections.binding(cid)
        if binding is None or not binding.established:
            raise RuntimeError(f"connection {cid} is not established")
        self._require_group(binding.group_id).multicast(payload, cid, request_num)

    def release_connection_local(self, cid: ConnectionId) -> None:
        """Tear down local state for a released connection (§7).

        Called at the point in the total order where the release was
        delivered; retires the processor group if no other logical
        connection shares it.
        """
        orphaned_group = self.connections.drop(cid)
        if orphaned_group is not None:
            self.remove_group(orphaned_group)

    def migrate_connection(self, cid: ConnectionId, new_address: int) -> None:
        """Move a connection to a new multicast address via an ordered
        Connect (§7); every member switches at the same point in the order."""
        binding = self.connections.binding(cid)
        if binding is None:
            raise RuntimeError(f"connection {cid} is not established")
        g = self._require_group(binding.group_id)
        g.send_connect(
            connection_id=cid,
            processor_group_id=binding.group_id,
            ip_multicast_address=new_address,
            membership_timestamp=g.view_timestamp,
            membership=g.membership,
        )

    # ------------------------------------------------------------------
    # services used by the connection manager
    # ------------------------------------------------------------------
    def allocate_connection_group(self, membership: Tuple[int, ...]) -> Tuple[int, int]:
        return self._allocator(membership)

    def bootstrap_connection_group(self, group_id: int, address: int,
                                   membership: Tuple[int, ...],
                                   barrier_timestamp: Optional[int] = None) -> None:
        if group_id in self._groups:
            return
        g = ProcessorGroup(self, group_id, address, membership)
        self._groups[group_id] = g
        if barrier_timestamp is not None:
            g.view_timestamp = barrier_timestamp
            g.romp.set_send_barrier(barrier_timestamp)

    def send_connect_request(self, domain_address: int, connection_id: ConnectionId,
                             processor_ids: Tuple[int, ...]) -> None:
        # §7: destination group id, sequence number and timestamp are all 0.
        msg = ConnectRequestMessage(
            header=FTMPHeader(
                message_type=MessageType.CONNECT_REQUEST,
                source=self.pid,
                group=0,
                sequence_number=0,
                timestamp=0,
                ack_timestamp=0,
                little_endian=self.config.little_endian,
            ),
            connection_id=connection_id,
            processor_ids=processor_ids,
        )
        self.transmit(domain_address, encode(msg))

    def send_connect_announcement(self, domain_address: int, connection_id: ConnectionId,
                                  group_id: int, address: int,
                                  membership: Tuple[int, ...]) -> bytes:
        g = self._require_group(group_id)
        raw = g.send_connect(
            connection_id=connection_id,
            processor_group_id=group_id,
            ip_multicast_address=address,
            membership_timestamp=g.view_timestamp,
            membership=membership,
            address=domain_address,
        )
        # The responder adopts the Connect's timestamp as its view
        # timestamp immediately (the other members adopt it on receipt),
        # so Suspect/Membership view matching works during the handshake
        # window — even if the Connect can never be ordered because a
        # listed member is already dead.  Idempotent with the ordered
        # Connect delivery, which takes max().
        connect_ts = peek_header(raw).timestamp
        if connect_ts > g.view_timestamp:
            g.view_timestamp = connect_ts
        g.romp.set_send_barrier(connect_ts)
        return raw

    def notify_connection(self, binding: ConnectionBinding, migrated: bool) -> None:
        self.listener.on_connection(
            ConnectionEvent(
                connection_id=binding.connection_id,
                processor_group=binding.group_id,
                multicast_address=binding.address,
                established_at=self.endpoint.now,
                migrated=migrated,
            )
        )

    # ------------------------------------------------------------------
    # datagram routing
    # ------------------------------------------------------------------
    def transmit(self, address: int, raw: bytes) -> None:
        self.stats.datagrams_sent += 1
        self.endpoint.multicast(address, raw)

    def _on_datagram(self, raw: bytes) -> None:
        if self._stopped:
            return
        self.stats.datagrams_received += 1
        try:
            msg = decode(raw)
        except CodecError:
            self.stats.decode_errors += 1
            return
        mtype = msg.header.message_type
        if mtype == MessageType.CONNECT_REQUEST:
            self.connections.on_connect_request(msg)  # type: ignore[arg-type]
            return
        group = self._groups.get(msg.header.group)
        if mtype == MessageType.CONNECT and (group is None or group.joining):
            # bootstrap Connect for a connection group we are not yet in
            self.connections.on_connect(msg)  # type: ignore[arg-type]
            group = self._groups.get(msg.header.group)
            if group is not None and not group.joining:
                group.on_datagram(msg, raw)  # feed RMP so seq accounting holds
            return
        if group is None:
            self.stats.unknown_group_drops += 1
            return
        group.on_datagram(msg, raw)

    # ------------------------------------------------------------------
    def remove_group(self, group_id: int) -> None:
        g = self._groups.pop(group_id, None)
        if g is not None:
            g.stop()

    def leave_group(self, group_id: int) -> None:
        """Voluntarily leave: ask the group to remove us, via total order."""
        self.remove_processor(group_id, self.pid)

    def stop(self) -> None:
        """Shut the stack down (cancels every timer; endpoint detached)."""
        if self._stopped:
            return
        self._stopped = True
        for g in list(self._groups.values()):
            g.stop()
        self._groups.clear()
        self.connections.stop()
        self.endpoint.close()

    def summary(self) -> Dict[str, object]:
        """Operational snapshot: per-group protocol counters and state.

        Intended for dashboards/debugging; everything here is also
        reachable through the individual layer objects.
        """
        groups = {}
        for gid, g in self._groups.items():
            groups[gid] = {
                "membership": g.membership,
                "view_timestamp": g.view_timestamp,
                "joining": g.joining,
                "last_sent_seq": g.last_sent_seq,
                "regulars_sent": g.stats.regulars_sent,
                "heartbeats_sent": g.stats.heartbeats_sent,
                "ordered_deliveries": g.romp.stats.ordered_deliveries,
                "queue_depth": g.romp.queued(),
                "ack_timestamp": g.romp.ack_timestamp,
                "stability_timestamp": g.romp.stability_timestamp(),
                "buffer_messages": len(g.buffer),
                "buffer_bytes": g.buffer.bytes,
                "nacks_sent": g.rmp.stats.nacks_sent,
                "retransmissions_sent": g.rmp.stats.retransmissions_sent,
                "suspected": sorted(g.fault_detector.suspected),
                "in_fault_round": g.pgmp.in_fault_round,
            }
        return {
            "processor": self.pid,
            "datagrams_received": self.stats.datagrams_received,
            "datagrams_sent": self.stats.datagrams_sent,
            "decode_errors": self.stats.decode_errors,
            "clock": self.clock.time,
            "groups": groups,
        }

    def _require_group(self, group_id: int) -> ProcessorGroup:
        g = self._groups.get(group_id)
        if g is None:
            raise KeyError(f"not a member of group {group_id}")
        return g
