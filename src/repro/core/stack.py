"""The FTMP protocol stack (paper Figure 1).

:class:`FTMPStack` is one processor's instance of the whole protocol: it
owns the ordering clock, the per-group datapaths
(:class:`~repro.core.datapath.ProcessorGroup` = RMP + ROMP + PGMP + fault
detector composed over a :class:`~repro.core.datapath.SendPath` /
:class:`~repro.core.datapath.ReceivePath` pair), the connection manager,
the unified :class:`~repro.core.stats.StatsRegistry`, and the datagram
routing between them.  It is written against the abstract
:class:`~repro.transport.Endpoint`, so the identical stack runs over the
discrete-event simulator, real UDP sockets, and the asyncio cluster
runtime alike.

Typical use (static bootstrap, as the FT infrastructure would do)::

    stack = FTMPStack(net.endpoint(pid), FTMPConfig(), listener)
    stack.create_group(group_id=1, address=5001, membership=(1, 2, 3))
    stack.multicast(1, b"payload")

Dynamic membership::

    stack_a.add_processor(1, new_pid=4)       # on an existing member
    stack_d.join_as_new_member(1, address=5001)  # on the new processor

Connections (paper §4/§7)::

    server.serve(domain=7, object_group=1, server_pids=(1, 2))
    client.request_connection(ConnectionId(0, 9, 7, 1), client_pids=(8, 9))
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..transport import Endpoint
from .config import FTMPConfig
from .connection import (
    ConnectionBinding,
    ConnectionManager,
    DuplicateDetector,
    default_allocator,
)
from .constants import MessageType
from .datapath import ProcessorGroup
from .events import ConnectionEvent, Listener, ViewChange
from .lamport import make_clock
from .messages import ConnectionId, ConnectRequestMessage, FTMPHeader
from .stats import StackStats, StatsRegistry
from .tracing import Tracer
from .wire import CodecError, decode, decode_view, encode, peek_header

__all__ = ["FTMPStack", "ProcessorGroup", "StackStats"]


class FTMPStack:
    """One processor's FTMP protocol stack (Figure 1)."""

    def __init__(
        self,
        endpoint: Endpoint,
        config: Optional[FTMPConfig] = None,
        listener: Optional[Listener] = None,
        allocator: Callable[[Tuple[int, ...]], Tuple[int, int]] = default_allocator,
    ):
        self.endpoint = endpoint
        self.config = config if config is not None else FTMPConfig()
        self.listener = listener if listener is not None else Listener()
        self.clock = make_clock(
            self.config.clock_mode,
            lambda: self.endpoint.now,
            self.config.sync_clock_resolution,
            self.config.sync_clock_skew,
        )
        self.registry = StatsRegistry()
        self.stats = StackStats()
        self.registry.register("stack", self.stats)
        self.connections = ConnectionManager(self)
        self.duplicates = DuplicateDetector()
        self.registry.register(
            "connections",
            lambda: {"duplicates_suppressed": self.duplicates.duplicates_suppressed},
        )
        #: optional protocol-event tracer (see repro.core.tracing)
        self.tracer: Optional[Tracer] = None
        self._allocator = allocator
        self._groups: Dict[int, ProcessorGroup] = {}
        self._mg_seq = 0  #: multi-group multicast sequence, per origin stack
        self._stopped = False
        endpoint.set_receiver(self._on_datagram)

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self.endpoint.processor_id

    def group(self, group_id: int) -> Optional[ProcessorGroup]:
        return self._groups.get(group_id)

    def groups(self) -> Dict[int, ProcessorGroup]:
        return dict(self._groups)

    def schedule(self, delay: float, fn: Callable, *args):
        return self.endpoint.schedule(delay, fn, *args)

    def join_address(self, address: int) -> None:
        self.endpoint.join(address)

    # ------------------------------------------------------------------
    # public protocol API
    # ------------------------------------------------------------------
    def create_group(self, group_id: int, address: int,
                     membership: Tuple[int, ...]) -> ProcessorGroup:
        """Statically bootstrap a processor group (FT-infrastructure role).

        Every initial member must call this with the same membership.
        """
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        if self.pid not in membership:
            raise ValueError("this processor must be part of the membership")
        g = ProcessorGroup(self, group_id, address, membership)
        self._groups[group_id] = g
        self.listener.on_view_change(
            ViewChange(
                group=group_id,
                membership=g.membership,
                view_timestamp=0,
                added=g.membership,
                removed=(),
                reason="bootstrap",
                installed_at=self.endpoint.now,
            )
        )
        return g

    def join_as_new_member(self, group_id: int, address: int) -> ProcessorGroup:
        """Join an existing group; completes when an AddProcessor names us.

        An existing member must call :meth:`add_processor` for this pid.
        """
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        g = ProcessorGroup(self, group_id, address, membership=(), joining=True)
        self._groups[group_id] = g
        self.endpoint.join(address)
        return g

    def multicast(self, group_id: int, payload: bytes,
                  connection_id: Optional[ConnectionId] = None,
                  request_num: int = 0) -> bool:
        """Reliably, totally-ordered multicast of an application payload.

        Returns True when the send went out immediately, False when it
        was accepted but queued at the sender (flow-control credits or a
        §7 quiescence barrier).  Raises ``FlowControlSaturated`` when
        ``flow_queue_limit`` sends are already queued.
        """
        return self._require_group(group_id).multicast(payload, connection_id,
                                                       request_num)

    def multicast_groups(self, group_ids: Tuple[int, ...], payload: bytes,
                         conflict_class: int = 0) -> int:
        """Genuine multi-group atomic multicast (``multigroup_mode``).

        Delivers ``payload`` in every group of ``group_ids`` such that any
        two multi-group multicasts are delivered in the same relative
        order in every group where both are delivered; only the addressed
        groups exchange messages (genuineness).  This processor must be a
        member of every addressed group (White-Box AM's initiator rule) —
        one propose copy rides each group's totally-ordered stream, and
        since one Lamport clock stamps all the copies, the commit (the
        max of the proposals) is known at send time and follows at once.

        ``conflict_class != 0`` declares the message commutative: it is
        delivered at its per-group propose position with no commit wait
        (Generic Multicast), totally ordered within each group but not
        across groups.  Returns the multicast's ``mg_seq`` —
        ``(pid, mg_seq)`` identifies it across all its groups.
        """
        if not self.config.multigroup_mode:
            raise RuntimeError("multicast_groups requires multigroup_mode")
        gids = tuple(sorted(set(group_ids)))
        if not gids:
            raise ValueError("empty group set")
        groups = []
        for gid in gids:
            g = self._require_group(gid)
            if g.joining:
                raise RuntimeError(f"cannot multicast before joining group {gid}")
            groups.append(g)
        self._mg_seq += 1
        mg_seq = self._mg_seq
        # Stamp+send all proposals first: every commit header is then
        # stamped later on the same clock, so its timestamp exceeds the
        # committed maximum — the property that lets the delivery stage
        # treat the commit's own ordered position as the stability proof.
        commit_ts = 0
        for g in groups:
            ts = g.send_multigroup_propose(mg_seq, conflict_class, gids, payload)
            if ts > commit_ts:
                commit_ts = ts
        if conflict_class == 0:
            for g in groups:
                g.send_multigroup_commit(self.pid, mg_seq, commit_ts)
        return mg_seq

    def add_processor(self, group_id: int, new_pid: int) -> None:
        """Add a non-faulty processor to a group (§7.1)."""
        self._require_group(group_id).pgmp.initiate_add(new_pid)

    def remove_processor(self, group_id: int, pid: int) -> None:
        """Remove a non-faulty processor from a group (§7.1)."""
        self._require_group(group_id).pgmp.initiate_remove(pid)

    # -- connections ----------------------------------------------------
    def serve(self, domain: int, object_group: int, server_pids: Tuple[int, ...]) -> None:
        """Register this processor as supporting a server object group."""
        self.connections.register_server(domain, object_group, server_pids)

    def request_connection(self, cid: ConnectionId, client_pids: Tuple[int, ...]) -> None:
        """Client side: open a logical connection to a server object group."""
        self.connections.request(cid, client_pids)

    def connection_binding(self, cid: ConnectionId) -> Optional[ConnectionBinding]:
        return self.connections.binding(cid)

    def send_on_connection(self, cid: ConnectionId, payload: bytes, request_num: int) -> bool:
        """Multicast a GIOP payload over an established logical connection.

        Returns the same admission signal as :meth:`multicast`.
        """
        binding = self.connections.binding(cid)
        if binding is None or not binding.established:
            raise RuntimeError(f"connection {cid} is not established")
        return self._require_group(binding.group_id).multicast(payload, cid,
                                                               request_num)

    def release_connection_local(self, cid: ConnectionId) -> None:
        """Tear down local state for a released connection (§7).

        Called at the point in the total order where the release was
        delivered; retires the processor group if no other logical
        connection shares it.
        """
        orphaned_group = self.connections.drop(cid)
        if orphaned_group is not None:
            self.remove_group(orphaned_group)

    def migrate_connection(self, cid: ConnectionId, new_address: int) -> None:
        """Move a connection to a new multicast address via an ordered
        Connect (§7); every member switches at the same point in the order."""
        binding = self.connections.binding(cid)
        if binding is None:
            raise RuntimeError(f"connection {cid} is not established")
        g = self._require_group(binding.group_id)
        g.send_connect(
            connection_id=cid,
            processor_group_id=binding.group_id,
            ip_multicast_address=new_address,
            membership_timestamp=g.view_timestamp,
            membership=g.membership,
        )

    # ------------------------------------------------------------------
    # services used by the connection manager
    # ------------------------------------------------------------------
    def allocate_connection_group(self, membership: Tuple[int, ...]) -> Tuple[int, int]:
        return self._allocator(membership)

    def bootstrap_connection_group(self, group_id: int, address: int,
                                   membership: Tuple[int, ...],
                                   barrier_timestamp: Optional[int] = None) -> None:
        if group_id in self._groups:
            return
        g = ProcessorGroup(self, group_id, address, membership)
        self._groups[group_id] = g
        if barrier_timestamp is not None:
            g.view_timestamp = barrier_timestamp
            g.romp.set_send_barrier(barrier_timestamp)

    def send_connect_request(self, domain_address: int, connection_id: ConnectionId,
                             processor_ids: Tuple[int, ...]) -> None:
        # §7: destination group id, sequence number and timestamp are all 0.
        msg = ConnectRequestMessage(
            header=FTMPHeader(
                message_type=MessageType.CONNECT_REQUEST,
                source=self.pid,
                group=0,
                sequence_number=0,
                timestamp=0,
                ack_timestamp=0,
                little_endian=self.config.little_endian,
            ),
            connection_id=connection_id,
            processor_ids=processor_ids,
        )
        self.transmit(domain_address, encode(msg))

    def send_connect_announcement(self, domain_address: int, connection_id: ConnectionId,
                                  group_id: int, address: int,
                                  membership: Tuple[int, ...]) -> bytes:
        g = self._require_group(group_id)
        raw = g.send_connect(
            connection_id=connection_id,
            processor_group_id=group_id,
            ip_multicast_address=address,
            membership_timestamp=g.view_timestamp,
            membership=membership,
            address=domain_address,
        )
        # The responder adopts the Connect's timestamp as its view
        # timestamp immediately (the other members adopt it on receipt),
        # so Suspect/Membership view matching works during the handshake
        # window — even if the Connect can never be ordered because a
        # listed member is already dead.  Idempotent with the ordered
        # Connect delivery, which takes max().
        connect_ts = peek_header(raw).timestamp
        if connect_ts > g.view_timestamp:
            g.view_timestamp = connect_ts
        g.romp.set_send_barrier(connect_ts)
        return raw

    def notify_connection(self, binding: ConnectionBinding, migrated: bool) -> None:
        self.listener.on_connection(
            ConnectionEvent(
                connection_id=binding.connection_id,
                processor_group=binding.group_id,
                multicast_address=binding.address,
                established_at=self.endpoint.now,
                migrated=migrated,
            )
        )

    # ------------------------------------------------------------------
    # datagram routing
    # ------------------------------------------------------------------
    def transmit(self, address: int, raw: bytes) -> None:
        self.stats.datagrams_sent += 1
        self.endpoint.multicast(address, raw)

    def _on_datagram(self, raw: bytes) -> None:
        if self._stopped:
            return
        self.stats.datagrams_received += 1
        try:
            # ring-ingest path hands a memoryview over an immutable popped
            # record: decode zero-copy; plain bytes (socket path) copy as
            # before, so the default runtime is byte-identical
            msg = decode_view(raw) if type(raw) is memoryview else decode(raw)
        except CodecError:
            self.stats.decode_errors += 1
            return
        mtype = msg.header.message_type
        if mtype == MessageType.CONNECT_REQUEST:
            self.connections.on_connect_request(msg)  # type: ignore[arg-type]
            return
        group = self._groups.get(msg.header.group)
        if mtype == MessageType.CONNECT and (group is None or group.joining):
            # bootstrap Connect for a connection group we are not yet in
            self.connections.on_connect(msg)  # type: ignore[arg-type]
            group = self._groups.get(msg.header.group)
            if group is not None and not group.joining:
                group.on_datagram(msg, raw)  # feed RMP so seq accounting holds
            return
        if group is None:
            self.stats.unknown_group_drops += 1
            return
        group.on_datagram(msg, raw)

    # ------------------------------------------------------------------
    def remove_group(self, group_id: int) -> None:
        g = self._groups.pop(group_id, None)
        if g is not None:
            g.stop()

    def leave_group(self, group_id: int) -> None:
        """Voluntarily leave: ask the group to remove us, via total order."""
        self.remove_processor(group_id, self.pid)

    def stop(self) -> None:
        """Shut the stack down (cancels every timer; endpoint detached)."""
        if self._stopped:
            return
        self._stopped = True
        for g in list(self._groups.values()):
            g.stop()
        self._groups.clear()
        self.connections.stop()
        self.endpoint.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat dotted-name counter snapshot from the stats registry.

        Single source of truth for the analysis harness and benchmarks:
        ``stack.*``, ``connections.*`` and ``group.<gid>.<layer>.*`` keys,
        e.g. ``group.1.rmp.nacks_sent`` or ``group.1.batch.batches_sent``.
        """
        return self.registry.snapshot()

    def summary(self) -> Dict[str, object]:
        """Operational snapshot: per-group protocol counters and state.

        Intended for dashboards/debugging; everything here is also
        reachable through the individual layer objects (or, flattened,
        through :meth:`snapshot`).
        """
        groups = {}
        for gid, g in self._groups.items():
            groups[gid] = {
                "membership": g.membership,
                "view_timestamp": g.view_timestamp,
                "joining": g.joining,
                "last_sent_seq": g.last_sent_seq,
                "regulars_sent": g.stats.regulars_sent,
                "heartbeats_sent": g.stats.heartbeats_sent,
                "ordered_deliveries": g.romp.stats.ordered_deliveries,
                "queue_depth": g.romp.queued(),
                "ack_timestamp": g.romp.ack_timestamp,
                "stability_timestamp": g.romp.stability_timestamp(),
                "buffer_messages": len(g.buffer),
                "buffer_bytes": g.buffer.bytes,
                "nacks_sent": g.rmp.stats.nacks_sent,
                "retransmissions_sent": g.rmp.stats.retransmissions_sent,
                "suspected": sorted(g.fault_detector.suspected),
                "in_fault_round": g.pgmp.in_fault_round,
            }
        return {
            "processor": self.pid,
            "datagrams_received": self.stats.datagrams_received,
            "datagrams_sent": self.stats.datagrams_sent,
            "decode_errors": self.stats.decode_errors,
            "clock": self.clock.time,
            "groups": groups,
        }

    def _require_group(self, group_id: int) -> ProcessorGroup:
        g = self._groups.get(group_id)
        if g is None:
            raise KeyError(f"not a member of group {group_id}")
        return g
