"""Retransmission buffer with ack-timestamp garbage collection (paper §6).

Every reliable message a processor sends *or receives* is retained so that
"any processor that has the message" can answer a RetransmitRequest (§5).
ROMP "determines when the processor no longer needs to retain a message in
its buffer, because all of the processor group members have received the
message" — concretely, a buffered message with timestamp ``ts`` is
reclaimable once every member's advertised ack timestamp is >= ``ts``
(then nobody can ever NACK it).

The buffer also tracks occupancy statistics for experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["BufferedMessage", "RetransmissionBuffer"]


@dataclass(frozen=True)
class BufferedMessage:
    """One retained wire message."""

    source: int
    sequence_number: int
    timestamp: int
    data: bytes


class RetransmissionBuffer:
    """Per-group store of reliable messages keyed by (source, seq)."""

    def __init__(self, gc_enabled: bool = True):
        self._store: Dict[Tuple[int, int], BufferedMessage] = {}
        self.gc_enabled = gc_enabled
        self.high_water_messages = 0
        self.high_water_bytes = 0
        self._bytes = 0
        self.total_added = 0
        self.total_reclaimed = 0

    # ------------------------------------------------------------------
    def add(self, source: int, seq: int, timestamp: int, data: bytes) -> None:
        """Retain a reliable message (idempotent per (source, seq))."""
        key = (source, seq)
        if key in self._store:
            return
        self._store[key] = BufferedMessage(source, seq, timestamp, data)
        self._bytes += len(data)
        self.total_added += 1
        if len(self._store) > self.high_water_messages:
            self.high_water_messages = len(self._store)
        if self._bytes > self.high_water_bytes:
            self.high_water_bytes = self._bytes

    def get(self, source: int, seq: int) -> Optional[BufferedMessage]:
        """Look up a retained message for retransmission."""
        return self._store.get((source, seq))

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def bytes(self) -> int:
        """Current occupancy in payload bytes."""
        return self._bytes

    def range_for(self, source: int, start: int, stop: int) -> Iterator[BufferedMessage]:
        """All retained messages of ``source`` with start <= seq <= stop."""
        for seq in range(start, stop + 1):
            m = self._store.get((source, seq))
            if m is not None:
                yield m

    # ------------------------------------------------------------------
    def collect(self, stable_timestamp: int) -> int:
        """Drop every message with timestamp <= ``stable_timestamp``.

        ``stable_timestamp`` must be min over group members of their
        advertised ack timestamps.  Returns the number reclaimed.  A
        disabled buffer (E4's ablation) never reclaims.
        """
        if not self.gc_enabled:
            return 0
        dead = [k for k, m in self._store.items() if m.timestamp <= stable_timestamp]
        for k in dead:
            self._bytes -= len(self._store[k].data)
            del self._store[k]
        self.total_reclaimed += len(dead)
        return len(dead)

    def drop_source(self, source: int) -> int:
        """Discard all messages from one source (after it leaves the group)."""
        dead = [k for k in self._store if k[0] == source]
        for k in dead:
            self._bytes -= len(self._store[k].data)
            del self._store[k]
        return len(dead)

    def clear(self) -> None:
        self._store.clear()
        self._bytes = 0
