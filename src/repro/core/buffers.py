"""Retransmission buffer with ack-timestamp garbage collection (paper §6).

Every reliable message a processor sends *or receives* is retained so that
"any processor that has the message" can answer a RetransmitRequest (§5).
ROMP "determines when the processor no longer needs to retain a message in
its buffer, because all of the processor group members have received the
message" — concretely, a buffered message with timestamp ``ts`` is
reclaimable once every member's advertised ack timestamp is >= ``ts``
(then nobody can ever NACK it).

The buffer also tracks occupancy statistics for experiment E4.

Hot-path engineering: :meth:`RetransmissionBuffer.collect` runs on every
ack advance (per received datagram under load), so it must not rescan the
store.  A lazy min-heap of ``(timestamp, key)`` entries makes it O(1) when
nothing is reclaimable — the common case — and O(log n) per actually
reclaimed message: entries whose key has already been removed by another
path (``drop_source``, ``clear``) are simply popped on sight.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["BufferedMessage", "RetransmissionBuffer"]


@dataclass(frozen=True)
class BufferedMessage:
    """One retained wire message."""

    source: int
    sequence_number: int
    timestamp: int
    data: bytes


class RetransmissionBuffer:
    """Per-group store of reliable messages keyed by (source, seq)."""

    def __init__(self, gc_enabled: bool = True):
        self._store: Dict[Tuple[int, int], BufferedMessage] = {}
        # lazy reclaim index: (timestamp, source, seq) pushed on add;
        # entries for keys already removed elsewhere are skipped on pop
        self._ts_heap: List[Tuple[int, int, int]] = []
        self.gc_enabled = gc_enabled
        self.high_water_messages = 0
        self.high_water_bytes = 0
        self._bytes = 0
        self.total_added = 0
        self.total_reclaimed = 0

    # ------------------------------------------------------------------
    def add(self, source: int, seq: int, timestamp: int, data: bytes) -> None:
        """Retain a reliable message (idempotent per (source, seq))."""
        key = (source, seq)
        if key in self._store:
            return
        self._store[key] = BufferedMessage(source, seq, timestamp, data)
        heapq.heappush(self._ts_heap, (timestamp, source, seq))
        self._bytes += len(data)
        self.total_added += 1
        if len(self._store) > self.high_water_messages:
            self.high_water_messages = len(self._store)
        if self._bytes > self.high_water_bytes:
            self.high_water_bytes = self._bytes

    def get(self, source: int, seq: int) -> Optional[BufferedMessage]:
        """Look up a retained message for retransmission."""
        return self._store.get((source, seq))

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def bytes(self) -> int:
        """Current occupancy in payload bytes."""
        return self._bytes

    def range_for(self, source: int, start: int, stop: int) -> Iterator[BufferedMessage]:
        """All retained messages of ``source`` with start <= seq <= stop."""
        for seq in range(start, stop + 1):
            m = self._store.get((source, seq))
            if m is not None:
                yield m

    # ------------------------------------------------------------------
    def collect(self, stable_timestamp: int) -> int:
        """Drop every message with timestamp <= ``stable_timestamp``.

        ``stable_timestamp`` must be min over group members of their
        advertised ack timestamps.  Returns the number reclaimed.  A
        disabled buffer (E4's ablation) never reclaims.
        """
        if not self.gc_enabled:
            return 0
        heap = self._ts_heap
        store = self._store
        reclaimed = 0
        while heap and heap[0][0] <= stable_timestamp:
            _, source, seq = heapq.heappop(heap)
            m = store.pop((source, seq), None)
            if m is None:
                continue  # already gone via drop_source/clear
            self._bytes -= len(m.data)
            reclaimed += 1
        self.total_reclaimed += reclaimed
        return reclaimed

    def drop_source(self, source: int) -> int:
        """Discard all messages from one source (after it leaves the group)."""
        dead = [k for k in self._store if k[0] == source]
        for k in dead:
            self._bytes -= len(self._store[k].data)
            del self._store[k]
        return len(dead)

    def clear(self) -> None:
        self._store.clear()
        self._ts_heap.clear()
        self._bytes = 0
