"""RMP — the Reliable Multicast Protocol layer (paper §5).

RMP provides reliable *source-ordered* delivery to the ROMP/PGMP layers:

* per-(source, group) sequence numbers detect missing messages;
* a receiver multicasts a ``RetransmitRequest`` (negative ack) for each gap
  and re-sends it periodically until the gap fills;
* *any* processor holding a requested message may retransmit it; we add a
  randomized backoff with suppression so one copy usually answers a NACK
  (the paper says only "may retransmit");
* Heartbeats and ConnectRequests are passed through unreliably as they
  arrive (Figure 3); a heartbeat's sequence number also reveals gaps,
  because it repeats the sender's latest reliable sequence number.

RMP is deliberately membership-agnostic: per-source state is created on
demand for any source heard on the group address, and the group purges it
when a processor leaves the membership.  This closes the race where a
freshly added member's first messages arrive before the ``AddProcessor``
has been ordered locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set

from .constants import RELIABLE_TYPES, MessageType
from .messages import (
    AckSummaryMessage,
    FTMPMessage,
    HeartbeatMessage,
    RetransmitRequestMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import GroupContext

__all__ = ["RMP", "RMPStats", "SourceState"]


@dataclass
class RMPStats:
    """Counters surfaced to experiments (E3 reads these)."""

    delivered: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    gaps_detected: int = 0
    nacks_sent: int = 0
    retransmissions_sent: int = 0
    retransmissions_suppressed: int = 0
    retransmit_requests_received: int = 0
    retransmissions_paced: int = 0  #: deferred by the pacing token bucket
    duplicate_requests_suppressed: int = 0  #: NACK repeats inside the dedupe window


@dataclass
class SourceState:
    """Receive-side state for one message source within one group."""

    next_seq: int = 1  #: next expected sequence number
    pending: Dict[int, FTMPMessage] = field(default_factory=dict)
    highest_heard: int = 0  #: highest seq advertised (messages or heartbeats)
    nack_timer: Optional[object] = None
    nack_retries: int = 0  #: consecutive NACK retries without progress
    nack_progress: int = 0  #: ``next_seq`` when the last NACK was sent
    #: a Heartbeat (or overlay AckSummary — same seq/timestamp contract)
    #: that arrived ahead of a gap, replayed once the gap fills
    deferred_heartbeat: Optional[FTMPMessage] = None

    @property
    def contiguous_top(self) -> int:
        """Highest seq such that every message 1..top has been received."""
        return self.next_seq - 1


class RMP:
    """One RMP instance per (processor, group) pair."""

    #: bound on the NACK-escalation count map; oldest keys are evicted
    #: individually so in-flight escalations keep their counts
    _NACK_COUNT_CAP = 4096

    #: bound on the duplicate-request answer-time map; purged lazily
    _ANSWERED_CAP = 4096

    def __init__(self, group: "GroupContext"):
        self._g = group
        self._sources: Dict[int, SourceState] = {}
        #: (source, seq) -> timer for our pending answer to someone's NACK
        self._retransmit_jobs: Dict[tuple, object] = {}
        #: (source, seq) -> how many RetransmitRequests we have seen for it
        self._nack_counts: Dict[tuple, int] = {}
        #: (source, seq) -> when we last committed to answering it
        #: (duplicate-request suppression, ``nack_dedupe_window``)
        self._answered: Dict[tuple, float] = {}
        #: pacing token bucket, kept as the earliest next emission time
        self._pace_next = -1e9
        #: keys in ``_retransmit_jobs`` whose pending answer must NOT be
        #: cancelled by an arriving copy (escalated / ablation answers)
        self._unsuppressible: Set[tuple] = set()
        self.stats = RMPStats()

    # ------------------------------------------------------------------
    # datagram entry point (called by the stack after decode + group filter)
    # ------------------------------------------------------------------
    def on_message(self, msg: FTMPMessage) -> None:
        """Route one received FTMP message for this group."""
        mtype = msg.header.message_type
        if mtype == MessageType.HEARTBEAT:
            self._on_heartbeat(msg)  # type: ignore[arg-type]
        elif mtype == MessageType.RETRANSMIT_REQUEST:
            self._on_retransmit_request(msg)  # type: ignore[arg-type]
        elif mtype == MessageType.ACK_SUMMARY:
            self._on_ack_summary(msg)  # type: ignore[arg-type]
        elif mtype == MessageType.CONNECT_REQUEST:
            # unreliable, straight to PGMP (Figure 3)
            self._g.pgmp_receive_unreliable(msg)
        elif mtype in RELIABLE_TYPES:
            self._on_reliable(msg)
        # unknown types were already rejected by the codec

    # ------------------------------------------------------------------
    # reliable source-ordered path
    # ------------------------------------------------------------------
    def _on_reliable(self, msg: FTMPMessage) -> None:
        h = msg.header
        src = h.source
        # A retransmitted copy we were about to send ourselves: suppress.
        if h.retransmission:
            self._suppress_retransmission(src, h.sequence_number)

        st = self._state(src)
        seq = h.sequence_number
        if seq > st.highest_heard:
            st.highest_heard = seq

        if seq < st.next_seq or seq in st.pending:
            self.stats.duplicates += 1
            return

        # Retain for answering future NACKs ("any processor that has
        # received [the] message ... may retransmit", §5).
        self._g.retain(msg)

        if seq == st.next_seq:
            self._advance(src, st, first=msg)
        else:
            st.pending[seq] = msg
            self.stats.out_of_order += 1
            self._note_gap(src, st)

    def _advance(self, src: int, st: SourceState, first: Optional[FTMPMessage]) -> None:
        """Deliver ``first`` plus any now-contiguous pending messages upward."""
        if first is not None:
            st.next_seq += 1
            self.stats.delivered += 1
            self._g.romp_receive(first)
        while st.next_seq in st.pending:
            msg = st.pending.pop(st.next_seq)
            st.next_seq += 1
            self.stats.delivered += 1
            self._g.romp_receive(msg)
        if not self._missing_range(st):
            self._cancel_nack(st)
        # A heartbeat that arrived ahead of a gap becomes usable once the
        # gap fills (its seq now refers to messages we hold contiguously).
        hb = st.deferred_heartbeat
        if hb is not None and hb.header.sequence_number <= st.contiguous_top:
            st.deferred_heartbeat = None
            self._g.romp_heartbeat(hb)

    # ------------------------------------------------------------------
    # heartbeats (unreliable, but they expose gaps)
    # ------------------------------------------------------------------
    def _on_heartbeat(self, msg: HeartbeatMessage) -> None:
        src = msg.header.source
        st = self._state(src)
        seq = msg.header.sequence_number
        if seq > st.highest_heard:
            st.highest_heard = seq
        if seq > st.contiguous_top:
            # The sender has reliable messages we lack: NACK them, and only
            # hand the heartbeat to ROMP once we are contiguous (otherwise
            # its timestamp would let ROMP order past a hole).
            st.deferred_heartbeat = msg
            self._note_gap(src, st)
        else:
            self._g.romp_heartbeat(msg)

    def _on_ack_summary(self, msg: AckSummaryMessage) -> None:
        """An overlay stability summary: heartbeat semantics + aggregation.

        The header carries the sender's live seq/timestamp/ack exactly
        like a Heartbeat, so the same gap-exposure and deferral rules
        apply; the aggregation payload is handed to the overlay engine
        unconditionally — its per-source entries are global facts, valid
        whether or not the sender's own stream is currently contiguous
        here.
        """
        src = msg.header.source
        st = self._state(src)
        seq = msg.header.sequence_number
        if seq > st.highest_heard:
            st.highest_heard = seq
        if seq > st.contiguous_top:
            st.deferred_heartbeat = msg
            self._note_gap(src, st)
        else:
            self._g.romp_heartbeat(msg)  # type: ignore[arg-type]
        overlay = self._g.romp.overlay
        if overlay is not None:
            overlay.on_summary(msg)

    def disclose(self, src: int, seq: int) -> None:
        """Expose that reliable messages from ``src`` through ``seq``
        exist (overlay progress entries): raise ``highest_heard`` and arm
        NACK recovery for the gap, exactly as a heartbeat would."""
        st = self._state(src)
        if seq > st.highest_heard:
            st.highest_heard = seq
        if seq > st.contiguous_top:
            self._note_gap(src, st)

    # ------------------------------------------------------------------
    # gap detection -> negative acknowledgements
    # ------------------------------------------------------------------
    def _missing_range(self, st: SourceState) -> Optional[tuple]:
        """The first contiguous block of missing seqs, or None."""
        if st.highest_heard <= st.contiguous_top:
            return None
        start = st.next_seq
        stop = start
        # walk to the end of the first hole
        while stop + 1 <= st.highest_heard and (stop + 1) not in st.pending:
            stop += 1
        # ensure the start itself is actually missing
        if start in st.pending:
            return None
        return (start, min(stop, st.highest_heard))

    def _note_gap(self, src: int, st: SourceState) -> None:
        if st.nack_timer is not None:
            return
        self.stats.gaps_detected += 1
        self._g.trace("gap", missing_from=src, expected=st.next_seq,
                      highest_heard=st.highest_heard)
        st.nack_timer = self._g.schedule(
            self._g.config.nack_delay, self._send_nack, src
        )

    def _send_nack(self, src: int) -> None:
        st = self._sources.get(src)
        if st is None:
            return
        st.nack_timer = None
        rng_missing = self._missing_range(st)
        if rng_missing is None:
            st.nack_retries = 0
            return
        start, stop = rng_missing
        if st.next_seq > st.nack_progress:
            st.nack_retries = 0  # partial repair arrived: back off resets
        st.nack_progress = st.next_seq
        self.stats.nacks_sent += 1
        self._g.send_retransmit_request(src, start, stop)
        cfg = self._g.config
        interval = cfg.nack_retry_interval
        if cfg.nack_backoff_factor > 1.0 and st.nack_retries:
            interval = min(interval * cfg.nack_backoff_factor ** st.nack_retries,
                           cfg.nack_retry_max)
        st.nack_retries += 1
        st.nack_timer = self._g.schedule(interval, self._send_nack, src)

    def _cancel_nack(self, st: SourceState) -> None:
        if st.nack_timer is not None:
            st.nack_timer.cancel()
            st.nack_timer = None
        st.nack_retries = 0

    # ------------------------------------------------------------------
    # answering other processors' NACKs
    # ------------------------------------------------------------------
    def _on_retransmit_request(self, msg: RetransmitRequestMessage) -> None:
        self.stats.retransmit_requests_received += 1
        wanted_src = msg.processor_id
        if not self._g.config.retransmit_any_holder and wanted_src != self._g.pid:
            return  # ablation A2: only the source answers
        for buffered in self._g.buffer.range_for(wanted_src, msg.start_seq, msg.stop_seq):
            key = (buffered.source, buffered.sequence_number)
            if key in self._retransmit_jobs:
                continue
            if self._is_duplicate_request(key):
                continue
            if not self._g.config.retransmit_suppression:
                # ablation A1: no backoff, no suppression (pacing still
                # applies — the bucket is orthogonal to the ablation)
                self._note_answered(key)
                self._emit_unsuppressible(key, buffered.data)
                continue
            # pop + reinsert keeps the dict in recency order; the cap below
            # evicts single keys — stalest first, never the key just
            # touched, and never a key that is already escalating
            # (count >= 2) while a colder victim exists
            count = self._nack_counts[key] = self._nack_counts.pop(key, 0) + 1
            while len(self._nack_counts) > self._NACK_COUNT_CAP:
                victim = next(
                    (k for k, c in self._nack_counts.items()
                     if c < 2 and k != key), None
                )
                if victim is None:
                    victim = next(k for k in self._nack_counts if k != key)
                del self._nack_counts[victim]
            if count >= 3 and wanted_src != self._g.pid:
                # The requester keeps asking: whatever copy it has been
                # offered is not reaching it (e.g. the source's link to it
                # is down).  Answer unsuppressibly so a different network
                # path carries the message.
                self._note_answered(key)
                self._emit_unsuppressible(key, buffered.data)
                continue
            if wanted_src == self._g.pid:
                # The original source answers immediately.
                delay = 0.0
            else:
                # Other holders back off randomly and suppress if a copy
                # shows up first — avoids a retransmission implosion.
                delay = self._g.rng.random() * self._g.config.retransmit_backoff
            self._note_answered(key)
            self._retransmit_jobs[key] = self._g.schedule(
                delay, self._do_retransmit, key, buffered.data
            )

    def _do_retransmit(self, key: tuple, raw: bytes, paced: bool = False) -> None:
        if self._retransmit_jobs.pop(key, None) is None:
            return
        self._unsuppressible.discard(key)
        if not paced:
            delay = self._pace_delay()
            if delay > 0.0:
                # the bucket is dry: keep the answer pending (still
                # suppressible by another holder's copy) until its slot
                self.stats.retransmissions_paced += 1
                self._retransmit_jobs[key] = self._g.schedule(
                    delay, self._do_retransmit, key, raw, True
                )
                return
        self.stats.retransmissions_sent += 1
        self._g.retransmit_raw(raw)

    # ------------------------------------------------------------------
    # retransmission pacing & duplicate-request suppression (extension)
    # ------------------------------------------------------------------
    def _pace_delay(self) -> float:
        """Reserve the next token-bucket slot; 0 when tokens are available.

        Each call reserves exactly one emission: recovery traffic beyond
        ``retransmit_rate_limit`` per second (with ``retransmit_burst``
        of slack) is deferred, never dropped, so a loss burst's repair
        cannot monopolize the sender's egress against fresh sends.
        """
        rate = self._g.config.retransmit_rate_limit
        if rate <= 0.0:
            return 0.0
        now = self._g.now()
        interval = 1.0 / rate
        # a full bucket admits exactly ``retransmit_burst`` back-to-back
        earliest = max(self._pace_next,
                       now - (self._g.config.retransmit_burst - 1) * interval)
        self._pace_next = earliest + interval
        delay = earliest - now
        # float residue from repeated interval sums must not read as a
        # positive delay (it would needlessly defer an in-burst emission)
        return delay if delay > 1e-9 else 0.0

    def _emit_unsuppressible(self, key: tuple, raw: bytes) -> None:
        """Send a retransmission that must not be cancelled by suppression,
        deferring through the pacing bucket when it is dry.

        A deferred answer stays under its real ``(source, seq)`` key so
        a repeated RetransmitRequest for the same message hits the
        pending-job check and cannot enqueue a second paced copy (even
        with ``nack_dedupe_window`` disabled); the key is marked
        unsuppressible so an arriving copy does not cancel it either.
        """
        delay = self._pace_delay()
        if delay <= 0.0:
            self.stats.retransmissions_sent += 1
            self._g.retransmit_raw(raw)
            return
        self.stats.retransmissions_paced += 1
        self._unsuppressible.add(key)
        self._retransmit_jobs[key] = self._g.schedule(
            delay, self._do_retransmit, key, raw, True
        )

    def _is_duplicate_request(self, key: tuple) -> bool:
        """True when we committed to answering ``key`` inside the window."""
        window = self._g.config.nack_dedupe_window
        if window <= 0.0:
            return False
        last = self._answered.get(key)
        if last is not None and self._g.now() - last < window:
            self.stats.duplicate_requests_suppressed += 1
            return True
        return False

    def _note_answered(self, key: tuple) -> None:
        window = self._g.config.nack_dedupe_window
        if window <= 0.0:
            return
        now = self._g.now()
        self._answered[key] = now
        if len(self._answered) > self._ANSWERED_CAP:
            cutoff = now - window
            self._answered = {
                k: t for k, t in self._answered.items() if t >= cutoff
            }

    def _suppress_retransmission(self, src: int, seq: int) -> None:
        key = (src, seq)
        if key in self._unsuppressible:
            return  # an escalated answer: a copy elsewhere must not cancel it
        job = self._retransmit_jobs.pop(key, None)
        if job is not None:
            job.cancel()
            self.stats.retransmissions_suppressed += 1

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _state(self, src: int) -> SourceState:
        st = self._sources.get(src)
        if st is None:
            st = self._sources[src] = SourceState()
        return st

    def contiguous_top(self, src: int) -> int:
        """Highest seq received gap-free from ``src`` (0 if nothing yet)."""
        st = self._sources.get(src)
        return st.contiguous_top if st is not None else 0

    def set_baseline(self, src: int, seq: int) -> None:
        """Start expecting ``src`` from ``seq + 1`` (new-member join, §7.1)."""
        st = self._state(src)
        if st.next_seq <= seq:
            st.next_seq = seq + 1
            st.pending = {s: m for s, m in st.pending.items() if s > seq}
            if seq > st.highest_heard:
                st.highest_heard = seq
        # the source restarts its numbering at seq: escalation counts keyed
        # to the old incarnation's sequence numbers are meaningless now
        self._purge_nack_counts(src)

    def drop_source(self, src: int) -> None:
        """Forget a source entirely (it left the membership)."""
        st = self._sources.pop(src, None)
        if st is not None:
            self._cancel_nack(st)
        for key in [k for k in self._retransmit_jobs if k[0] == src]:
            self._retransmit_jobs.pop(key).cancel()
            self._unsuppressible.discard(key)
        # Without this, a processor that leaves and rejoins with reset
        # sequence numbers inherits stale >= 3 counts and every first NACK
        # for a reused (src, seq) triggers an unsuppressed retransmit storm.
        self._purge_nack_counts(src)

    def _purge_nack_counts(self, src: int) -> None:
        for key in [k for k in self._nack_counts if k[0] == src]:
            del self._nack_counts[key]
        # the dedupe window must not suppress the first NACK for a reused
        # (src, seq) from the source's next incarnation
        for key in [k for k in self._answered if k[0] == src]:
            del self._answered[key]

    def sources(self) -> Dict[int, SourceState]:
        """Read-only view of per-source state (used by PGMP seq vectors)."""
        return self._sources

    def has_gaps(self) -> bool:
        """True if any source currently has outstanding missing messages."""
        return any(self._missing_range(st) is not None for st in self._sources.values())

    def stop(self) -> None:
        """Cancel all timers (stack shutdown)."""
        for st in self._sources.values():
            self._cancel_nack(st)
        for job in self._retransmit_jobs.values():
            job.cancel()
        self._retransmit_jobs.clear()
        self._unsuppressible.clear()
