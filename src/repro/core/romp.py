"""ROMP — the Reliable Ordered Multicast Protocol layer (paper §6).

ROMP receives source-ordered reliable messages from RMP and delivers
Regular / Connect / AddProcessor / RemoveProcessor messages in causal and
total order (Figure 3).  The ordering construction is the classical
Lamport total order the paper cites:

* every message carries a timestamp from the sender's ordering clock,
  strictly increasing per source;
* a receiver may deliver the buffered message with the smallest
  ``(timestamp, source)`` key once it has heard, from *every* member of the
  group, some message (heartbeats included) with timestamp >= that key's
  timestamp — nothing earlier can still arrive, because RMP guarantees
  per-source contiguity and clocks are per-source monotonic.

Suspect and Membership messages are reliable but *not* totally ordered
(Figure 3): they bypass the ordering queue and go straight to PGMP — they
must keep flowing precisely when ordering is stalled by a faulty member.

ROMP also owns the positive-acknowledgement machinery: the ack timestamp
stamped on every outgoing message is the timestamp of this processor's
latest totally-ordered delivery (by the delivery rule, everything at or
below it has been received from all members), and the minimum ack heard
across members drives retransmission-buffer garbage collection (§6).

Hot-path engineering: the delivery gate and the stability rule are both
"min over the membership of a per-member monotonic counter".  Instead of
rescanning the membership on every received message, ROMP keeps two lazy
min-heaps (:attr:`_cover_heap` over ``_order_ts``, :attr:`_ack_heap` over
the advertised acks).  Because the tracked values only ever increase, an
update pushes the new value and the query pops entries that no longer
match the live dict — amortized O(log n) per message instead of O(n)
scans at the queue head.  The heaps are rebuilt wholesale whenever the
membership tuple changes (views are rare; the rebuild is one O(n) pass),
which the query detects by tuple identity.  The ordering queue keeps a
per-source index (``_by_src``) so per-source queries and purges no longer
scan the whole queue.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, FrozenSet, List, Optional, Tuple

from .constants import TOTALLY_ORDERED_TYPES, MessageType
from .llft import LeaderOrdering
from .messages import FTMPHeader, FTMPMessage, HeartbeatMessage
from .multigroup import MultiGroupEngine
from .overlay import OverlayDissemination

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import GroupContext

__all__ = ["ROMP", "ROMPStats"]


@dataclass
class ROMPStats:
    """Ordering-layer counters (read by E1/E2/E4)."""

    ordered_deliveries: int = 0
    bypass_deliveries: int = 0  #: Suspect/Membership handed straight to PGMP
    max_queue_depth: int = 0
    gc_runs: int = 0
    messages_reclaimed: int = 0


class ROMP:
    """One ROMP instance per (processor, group) pair."""

    def __init__(self, group: "GroupContext"):
        self._g = group
        #: max timestamp of the contiguous message stream per source
        self._order_ts: Dict[int, int] = {}
        #: latest ack timestamp advertised by each source
        self._peer_ack: Dict[int, int] = {}
        #: ordering queue: (timestamp, source, insertion seq, message)
        self._queue: List[Tuple[int, int, int, FTMPMessage]] = []
        self._queue_keys: set = set()  #: (ts, src) pairs currently queued
        #: per-source queue index: src -> {timestamp: sequence number}
        self._by_src: Dict[int, Dict[int, int]] = {}
        self._insertion = 0
        #: my positive acknowledgment: ts of the latest ordered delivery
        self._ack = 0
        #: quiescence barrier after a Connect (§7): no ordered sends until
        #: every member has been heard past this timestamp
        self._send_barrier: Optional[int] = None
        #: ordered messages from sources not (yet) in the membership,
        #: flushed into the queue when an AddProcessor admits the source
        self._staging: Dict[int, List[FTMPMessage]] = {}
        self._STAGING_CAP = 4096
        #: safe-delivery hold queue: ordered Regulars awaiting stability
        self._unsafe: Deque[FTMPMessage] = deque()
        #: highest stability timestamp already reported upward (the
        #: flow-control credit window recycles on this signal)
        self._stable_notified = 0
        #: fault-view drain (§7.2): (survivor set, cut timestamp) while a
        #: synced fault view waits to be installed
        self._transition: Optional[Tuple[FrozenSet[int], int]] = None
        #: membership tuple the incremental min trackers were built for;
        #: compared by identity (membership tuples are replaced, never
        #: mutated), so the steady-state staleness check is one ``is``
        self._gate_members: Optional[Tuple[int, ...]] = None
        self._gate_set: FrozenSet[int] = frozenset()
        #: lazy min-heap of (order_ts, pid) entries over the membership
        self._cover_heap: List[Tuple[int, int]] = []
        #: lazy min-heap of (ack, pid) entries over the membership
        self._ack_heap: List[Tuple[int, int]] = []
        self.stats = ROMPStats()
        #: LLFT leader-follower ordering engine; replaces the symmetric
        #: delivery rule when ``llft_mode`` is on.  None = legacy (the
        #: engine is never even constructed, so the knob-off path is
        #: bit-identical).
        self.llft: Optional[LeaderOrdering] = (
            LeaderOrdering(group) if group.config.llft_mode else None  # type: ignore[arg-type]
        )
        #: overlay dissemination engine; adds tree routing and the
        #: aggregated stability floor when ``overlay_mode`` is on.  None
        #: = legacy flat dissemination (never constructed, bit-identical).
        self.overlay: Optional[OverlayDissemination] = (
            OverlayDissemination(group) if group.config.overlay_mode else None  # type: ignore[arg-type]
        )
        #: multi-group atomic-multicast delivery stage; interposes on the
        #: ordered dispatch when ``multigroup_mode`` is on.  None = legacy
        #: (never constructed, bit-identical).
        self.multigroup: Optional[MultiGroupEngine] = (
            MultiGroupEngine(group) if group.config.multigroup_mode else None  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # incremental gate/stability min tracking
    # ------------------------------------------------------------------
    def _sync_gate(self) -> None:
        """Rebuild the min trackers if the membership tuple was replaced."""
        m = self._g.membership
        if m is self._gate_members:
            return
        self._gate_members = m
        self._gate_set = frozenset(m)
        cover = [(self._order_ts.get(p, 0), p) for p in m]
        heapq.heapify(cover)
        self._cover_heap = cover
        pid = self._g.pid
        acks = [
            (self._ack if p == pid else self._peer_ack.get(p, 0), p) for p in m
        ]
        heapq.heapify(acks)
        self._ack_heap = acks

    def _cover_ts(self) -> Optional[int]:
        """Min of ``_order_ts`` over the membership; None when it is empty.

        Amortized O(1): stale heap entries (superseded by a later advance)
        are popped on sight; every member always has its current value on
        the heap, so the first live entry is the true minimum.
        """
        self._sync_gate()
        if not self._gate_set:
            return None
        heap = self._cover_heap
        order = self._order_ts
        while heap:
            ts, p = heap[0]
            if order.get(p, 0) == ts:
                return ts
            heapq.heappop(heap)
        return 0  # unreachable in practice: every member keeps a live entry

    # ------------------------------------------------------------------
    # observation of every datagram (clock, acks, liveness)
    # ------------------------------------------------------------------
    def observe_header(self, h: FTMPHeader) -> None:
        """Fold in clock/ack/liveness information from any received header."""
        self._g.clock.observe(h.timestamp)
        src = h.source
        ack = h.ack_timestamp
        if ack > self._peer_ack.get(src, 0):
            self._peer_ack[src] = ack
            if src in self._gate_set:
                heapq.heappush(self._ack_heap, (ack, src))
            self._maybe_collect()
        self._g.note_alive(src)

    # ------------------------------------------------------------------
    # inputs from RMP
    # ------------------------------------------------------------------
    def receive(self, msg: FTMPMessage) -> None:
        """A reliable message, delivered by RMP in source order."""
        h = msg.header
        self.observe_header(h)
        self._advance_order_ts(h.source, h.timestamp)
        self._sync_gate()
        if self.llft is not None:
            # LLFT mode: ordered messages go to the leader-follower
            # engine (announce / park / replay); the clock, cover and ack
            # bookkeeping above is shared with the legacy path, so
            # stability keeps advancing asynchronously underneath.
            if h.message_type in TOTALLY_ORDERED_TYPES:
                self.llft.on_reliable(msg)
            else:
                if h.source not in self._gate_set:
                    return  # stale control traffic from an evicted processor
                self.stats.bypass_deliveries += 1
                self._g.pgmp_receive_source_ordered(msg)
            self.evaluate()
            return
        if h.message_type in TOTALLY_ORDERED_TYPES:
            if h.source not in self._gate_set:
                # A source that is not (yet) a member: stage its ordered
                # messages until an AddProcessor admits it — never let a
                # non-member block the head of the ordering queue.
                stage = self._staging.setdefault(h.source, [])
                if len(stage) < self._STAGING_CAP:
                    stage.append(msg)
                return
            self._enqueue(msg)
        else:
            # Suspect / Membership: reliable, source-ordered, NOT total order
            if h.source not in self._gate_set:
                return  # stale control traffic from an evicted processor
            self.stats.bypass_deliveries += 1
            self._g.pgmp_receive_source_ordered(msg)
        self.evaluate()

    def _enqueue(self, msg: FTMPMessage) -> None:
        h = msg.header
        key = (h.timestamp, h.source)
        if key in self._queue_keys:
            return
        self._queue_keys.add(key)
        self._by_src.setdefault(h.source, {})[h.timestamp] = h.sequence_number
        heapq.heappush(self._queue, (h.timestamp, h.source, self._insertion, msg))
        self._insertion += 1
        if len(self._queue) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(self._queue)

    def receive_heartbeat(self, msg: HeartbeatMessage) -> None:
        """A heartbeat whose seq is contiguous with its source's stream."""
        h = msg.header
        self.observe_header(h)
        self._advance_order_ts(h.source, h.timestamp)
        self.evaluate()

    def _advance_order_ts(self, src: int, ts: int) -> None:
        if ts > self._order_ts.get(src, 0):
            self._order_ts[src] = ts
            if src in self._gate_set:
                heapq.heappush(self._cover_heap, (ts, src))

    # ------------------------------------------------------------------
    # the total-order delivery rule
    # ------------------------------------------------------------------
    def evaluate(self) -> None:
        """Deliver every queue message whose timestamp is covered by all members."""
        if self.llft is not None:
            # LLFT mode: delivery is the engine's replay of the leader's
            # stream.  The positive acknowledgement is the *cover*
            # timestamp — the stream heard contiguously from every member
            # — which is exactly the legacy ack's meaning ("everything at
            # or below was received from all members") without coupling
            # it to deliveries, so stability/GC/flow-credits advance in
            # the background while the engine delivers ahead of them.
            self.llft.process()
            cover = self._cover_ts()
            if cover is not None and cover > self._ack:
                self._ack = cover
                if self._g.pid in self._gate_set:
                    heapq.heappush(self._ack_heap, (cover, self._g.pid))
            self._maybe_collect()
            self._check_send_barrier()
            return
        self._release_safe()  # membership/ack changes may unblock safe holds
        delivered_any = False
        while self._queue:
            ts, src, _ins, msg = self._queue[0]
            self._sync_gate()
            if self._transition is not None:
                # Fault-view drain (§7.2): the old view's messages are
                # delivered gated only on the survivors — the convicted
                # member's stream is synced and can no longer grow — and
                # nothing of the *new* view is delivered until the view
                # is installed, so every survivor cuts its delivery
                # history at exactly the same timestamp.
                survivors, cut = self._transition
                if ts > cut:
                    break
                if src not in self._gate_set and (ts, src) not in self._g.legacy_keys:
                    break
                order = self._order_ts
                if not all(order.get(p, 0) >= ts for p in survivors):
                    break
            else:
                if src not in self._gate_set and (ts, src) not in self._g.legacy_keys:
                    # A not-yet-added member's message: it always follows the
                    # AddProcessor (smaller timestamp) in the queue; if the
                    # source will never join, the view change purges it.
                    # (Messages grandfathered by a fault view are delivered.)
                    break
                cover = self._cover_ts()
                if cover is not None and cover < ts:
                    break
            heapq.heappop(self._queue)
            self._queue_keys.discard((ts, src))
            index = self._by_src.get(src)
            if index is not None:
                index.pop(ts, None)
                if not index:
                    del self._by_src[src]
            if ts > self._ack:
                self._ack = ts
                if self._g.pid in self._gate_set:
                    heapq.heappush(self._ack_heap, (ts, self._g.pid))
            self.stats.ordered_deliveries += 1
            delivered_any = True
            self._dispatch(msg)
        if delivered_any:
            self._maybe_collect()
        else:
            self._notify_stability()
        self._check_send_barrier()

    def _dispatch(self, msg: FTMPMessage) -> None:
        if self.multigroup is not None:
            # Multi-group mode: every released message enters the
            # extended-key delivery stage (uncommitted multi-group
            # proposals hold back larger keys until their commit).  The
            # config layer forbids combining this with safe delivery.
            self.multigroup.on_ordered(msg)
            return
        t = msg.header.message_type
        if t == MessageType.REGULAR:
            if self._g.config.delivery_mode == "safe":
                # hold until the ack timestamps prove every member has it
                self._unsafe.append(msg)
                self._release_safe()
                return
            self._g.deliver_regular(msg)  # type: ignore[arg-type]
        else:
            # Connect / AddProcessor / RemoveProcessor reach PGMP at their
            # position in the total order, so every member applies the
            # membership change at the same point in the message stream.
            self._g.pgmp_receive_ordered(msg)

    # ------------------------------------------------------------------
    # acknowledgements & buffer management
    # ------------------------------------------------------------------
    @property
    def ack_timestamp(self) -> int:
        """Value stamped into the ack field of every outgoing message."""
        return self._ack

    def stability_timestamp(self) -> int:
        """Everything at/below this timestamp is stable (§6).

        The legacy signal is the min over members of their directly heard
        acks; in overlay mode the tree-aggregated floor — a sound lower
        bound over the same membership — is folded in, so stability keeps
        advancing even though most members never hear each other's acks
        directly.
        """
        legacy = self._legacy_stability()
        ov = self.overlay
        if ov is None:
            return legacy
        floor = ov.stability_floor()
        return floor if floor > legacy else legacy

    def _legacy_stability(self) -> int:
        """min over members of their acks, amortized O(1) via the lazy
        ack min-heap (acks only increase)."""
        self._sync_gate()
        if not self._gate_set:
            return 0
        heap = self._ack_heap
        pid = self._g.pid
        peer = self._peer_ack
        while heap:
            ack, p = heap[0]
            if (self._ack if p == pid else peer.get(p, 0)) == ack:
                return ack
            heapq.heappop(heap)
        return 0  # unreachable in practice: every member keeps a live entry

    def cover_timestamp(self) -> int:
        """Public cover accessor: the stream heard contiguously from every
        member (the overlay aggregation's per-member input)."""
        cover = self._cover_ts()
        return 0 if cover is None else cover

    def adopt_order_progress(self, src: int, ts: int) -> None:
        """Overlay §6 aggregation: advance ``src``'s contiguous-stream
        timestamp from a progress entry.

        Sound only after the caller verified local contiguity through the
        entry's sequence number: the entry claims every message from
        ``src`` with timestamp <= ``ts`` has seq <= that number, so
        nothing below ``ts`` can still arrive from ``src``.
        """
        self._advance_order_ts(src, ts)

    def overlay_stability_pulse(self) -> None:
        """The aggregated floor may have advanced without new deliveries:
        re-run GC / safe-release / credit notification."""
        self._maybe_collect()

    def _maybe_collect(self) -> None:
        # stability_timestamp() walks the lazy ack heap (and the overlay
        # floor); compute it once and thread the value through the three
        # consumers — this runs on every ack advance under load
        stable = self.stability_timestamp()
        self._release_safe(stable)
        self._notify_stability(stable)
        if not self._g.config.buffer_gc_enabled:
            return
        if stable > 0:
            reclaimed = self._g.buffer.collect(stable)
            if reclaimed:
                self.stats.gc_runs += 1
                self.stats.messages_reclaimed += reclaimed

    def _notify_stability(self, stable: Optional[int] = None) -> None:
        """Report stability advances upward (flow-control credit releases).

        Stability can also jump without new traffic — e.g. a fault view
        removing the slowest member — so :meth:`evaluate` calls this too,
        not just the ack-advance path.
        """
        if stable is None:
            stable = self.stability_timestamp()
        if stable > self._stable_notified:
            self._stable_notified = stable
            self._g.on_stability_advance(stable)

    def _release_safe(self, stable: Optional[int] = None) -> None:
        if not self._unsafe:
            return
        if stable is None:
            stable = self.stability_timestamp()
        while self._unsafe and self._unsafe[0].header.timestamp <= stable:
            msg = self._unsafe.popleft()
            self._g.deliver_regular(msg)  # type: ignore[arg-type]

    def unsafe_held(self) -> int:
        """Messages totally ordered but awaiting stability (safe mode)."""
        return len(self._unsafe)

    # ------------------------------------------------------------------
    # quiescence barrier after Connect (§7)
    # ------------------------------------------------------------------
    def set_send_barrier(self, timestamp: int) -> None:
        """Block ordered sends until all members are heard past ``timestamp``."""
        if self._send_barrier is None or timestamp > self._send_barrier:
            self._send_barrier = timestamp
        self._check_send_barrier()

    def can_send_ordered(self) -> bool:
        """True when no Connect barrier is pending (§7 quiescence rule)."""
        return self._send_barrier is None

    def _check_send_barrier(self) -> None:
        if self._send_barrier is None:
            return
        barrier = self._send_barrier
        cover = self._cover_ts()
        if cover is None:
            # an empty membership (e.g. a still-joining group) must NOT
            # clear the §7 quiescence barrier — it holds until real
            # members have actually been heard past it
            return
        if cover > barrier:
            self._send_barrier = None
            self._g.on_send_barrier_cleared()

    # ------------------------------------------------------------------
    # fault-view transition drain (§7.2)
    # ------------------------------------------------------------------
    def begin_transition(
        self,
        survivors: FrozenSet[int],
        cut_ts: int,
        targets: Optional[Dict[int, int]] = None,
    ) -> None:
        """Start draining the old view's messages before a fault view.

        Until :meth:`end_transition`, queued messages with timestamp <=
        ``cut_ts`` are delivered gated only on ``survivors`` (the convicted
        member's synced stream cannot grow, so waiting on it would stall
        forever), and messages of the new view (timestamp > ``cut_ts``)
        are held back.  All survivors agree on ``cut_ts``, so their
        delivery histories cut at exactly the same point — the virtual
        synchrony guarantee the oracles check.

        ``targets`` is the synchronized per-source sequence vector of the
        round; LLFT mode needs it (the leader's stream cut is a sequence
        number, not a timestamp) and the legacy rule ignores it.
        """
        self._transition = (frozenset(survivors), cut_ts)
        if self.llft is not None:
            self.llft.begin_transition(frozenset(survivors), cut_ts, targets)
        self.evaluate()

    def end_transition(self) -> None:
        self._transition = None
        if self.llft is not None:
            self.llft.end_transition()

    def transition_drained(self, cut_ts: int) -> bool:
        """True when every old-view message has been delivered — i.e. the
        head of the queue (if any) already belongs to the new view."""
        if self.llft is not None:
            return self.llft.transition_drained()
        return not self._queue or self._queue[0][0] > cut_ts

    # ------------------------------------------------------------------
    # membership-change support
    # ------------------------------------------------------------------
    def purge_source(self, src: int, clean: bool = False) -> None:
        """Forget a departed member (keep its already-queued messages only
        if it was removed by RemoveProcessor/Membership *after* syncing —
        the caller decides by calling purge_queue too).

        ``clean`` marks a graceful (§7.1 ordered) departure.  Only then is
        the member's final clock handed to the overlay for re-emission: a
        laggard that has not ordered the RemoveProcessor yet still gates
        its cover on that clock, and delivering the removal here required
        our cover — hence this order timestamp — to reach the removal's
        timestamp, so the snapshot is exactly the evidence the laggard is
        missing.  A *convicted* (crashed) member's clock must NOT be
        re-emitted: the entries would keep refreshing the dead member's
        liveness at laggards, suppressing the very suspicion that lets
        them join the §7.2 fault round — their only path to the new view.
        """
        if clean and self.overlay is not None:
            self.overlay.note_departure(src, self._order_ts.get(src, 0))
        self._order_ts.pop(src, None)
        self._peer_ack.pop(src, None)
        self._staging.pop(src, None)
        # the min trackers may hold entries for the purged source whose
        # live value just vanished; force a rebuild at the next query
        self._gate_members = None

    def flush_staging(self, src: int) -> None:
        """Move a freshly admitted member's staged messages into the queue.

        Deliberately does NOT evaluate: the caller (view installation)
        evaluates after the view-change listener has fired, so state
        captured "at the view change" really precedes the first delivery
        of the new view.
        """
        for msg in self._staging.pop(src, ()):  # preserves arrival (seq) order
            self._enqueue(msg)

    def _drop_keys(self, src: int, timestamps) -> int:
        """Remove the given (timestamp, ``src``) keys from the queue."""
        doomed = set(timestamps)
        if not doomed:
            return 0
        self._queue = [
            e for e in self._queue if not (e[1] == src and e[0] in doomed)
        ]
        heapq.heapify(self._queue)
        for ts in doomed:
            self._queue_keys.discard((ts, src))
        index = self._by_src.get(src)
        if index is not None:
            for ts in doomed:
                index.pop(ts, None)
            if not index:
                del self._by_src[src]
        return len(doomed)

    def purge_queue_after(self, src: int, seq_cutoff: int) -> int:
        """Drop queued messages from ``src`` with seq > ``seq_cutoff``.

        Used at fault-view installation: messages beyond the synchronized
        prefix were not received by every survivor and must not be
        delivered anywhere (virtual synchrony)."""
        dropped = 0
        if self.llft is not None:
            dropped += self.llft.drop_after(src, seq_cutoff)
        index = self._by_src.get(src)
        if not index:
            return dropped
        return dropped + self._drop_keys(
            src, [ts for ts, seq in index.items() if seq > seq_cutoff]
        )

    def purge_queue_of(self, src: int) -> int:
        """Drop queued (undeliverable) messages from a departed source."""
        dropped = 0
        if self.llft is not None:
            dropped += self.llft.drop_all(src)
        index = self._by_src.get(src)
        if not index:
            return dropped
        return dropped + self._drop_keys(src, list(index))

    def order_ts(self, src: int) -> int:
        """Timestamp up to which ``src``'s stream has been heard contiguously."""
        return self._order_ts.get(src, 0)

    def queued(self) -> int:
        """Current ordering-queue depth (LLFT: the parked backlog)."""
        depth = len(self._queue)
        if self.llft is not None:
            depth += self.llft.backlog()
        if self.multigroup is not None:
            depth += self.multigroup.backlog()
        return depth

    def queued_from(self, src: int) -> int:
        """Queued messages originated by ``src`` (O(1) via the index)."""
        return len(self._by_src.get(src, ()))

    def keys_from(self, src: int) -> List[Tuple[int, int]]:
        """(timestamp, source) keys of queued messages from ``src``."""
        return [(ts, src) for ts in sorted(self._by_src.get(src, ()))]
