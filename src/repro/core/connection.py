"""Logical connections between object groups (paper §4 and §7).

Just as IIOP maintains a TCP connection between a client object and a
server object, FTMP maintains a *logical connection* between a client
object group and a server object group.  The connection is served by one
processor group — the processors supporting the client replicas together
with those supporting the server replicas — sharing one multicast address
("these mechanisms allow several logical connections to share the same
physical connection, the same processor group and the same IP Multicast
address", §7).

Establishment (§7):

* every server processor listens on the multicast address of its
  fault-tolerance *domain*;
* a client processor multicasts ``ConnectRequest`` (unreliable) to the
  server domain's address, and retries periodically;
* the *responder* — the lowest-numbered processor supporting the server
  object group — allocates a processor group id + multicast address,
  bootstraps the group, and multicasts ``Connect`` on the domain address,
  retransmitting it until it sees traffic over the new connection;
* every processor listed in the Connect's membership joins the group and
  observes the §7 quiescence rule (no ordered transmissions until every
  member has been heard past the Connect's timestamp).
* a server that receives a ``ConnectRequest`` for a connection it has
  already established ignores it (crossed retransmissions, §7).

This module also provides the `(connection id, request number)` duplicate
detection of §4 and the request-number source shared by object replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from .messages import ConnectionId, ConnectMessage, ConnectRequestMessage

if TYPE_CHECKING:  # pragma: no cover
    from .stack import FTMPStack

__all__ = [
    "domain_multicast_address",
    "ConnectionManager",
    "ConnectionBinding",
    "RequestNumbering",
    "DuplicateDetector",
    "default_allocator",
]

#: Multicast addresses are plain integers in this reproduction; fault
#: tolerance domain ``d`` listens on ``DOMAIN_ADDRESS_BASE + d``.
DOMAIN_ADDRESS_BASE = 0xE000_0000


def domain_multicast_address(domain: int) -> int:
    """The IP-multicast address of a fault tolerance domain."""
    return DOMAIN_ADDRESS_BASE + domain


def default_allocator(membership: Tuple[int, ...]) -> Tuple[int, int]:
    """Allocate a (processor group id, multicast address) for a connection.

    Deterministic in the *membership*, so any responder — the primary or a
    ranked standby stepping in for a dead one — computes the identical
    group id and address; concurrent Connect announcements for the same
    connection are then byte-equal and the race is benign.
    """
    import hashlib
    import struct

    digest = hashlib.blake2s(
        b"".join(struct.pack("<I", p) for p in sorted(membership)),
        digest_size=4,
    ).digest()
    slot = int.from_bytes(digest, "little") & 0x00FF_FFFF
    return 0x4000_0000 + slot, 0xE800_0000 + slot


@dataclass
class ConnectionBinding:
    """A locally known logical connection and its serving processor group."""

    connection_id: ConnectionId
    group_id: int
    address: int
    membership: Tuple[int, ...]
    established: bool = False
    #: True on the processor that allocated the group and answers requests
    responder: bool = False
    #: client processors named in the ConnectRequest (responder side);
    #: the Connect is retransmitted until every one of them is heard from
    client_pids: Tuple[int, ...] = ()
    #: wire bytes of the original Connect (responder side, for resends)
    connect_raw: Optional[bytes] = None


@dataclass
class _ServerRegistration:
    """A server object group this processor supports."""

    domain: int
    object_group: int
    server_pids: Tuple[int, ...]


@dataclass
class _PendingRequest:
    """Client-side state while the ConnectRequest/Connect handshake runs."""

    connection_id: ConnectionId
    client_pids: Tuple[int, ...]
    timer: Optional[object] = None


class ConnectionManager:
    """Stack-level handler for ConnectRequest / Connect traffic."""

    def __init__(self, stack: "FTMPStack"):
        self._stack = stack
        self._servers: Dict[Tuple[int, int], _ServerRegistration] = {}
        self._pending: Dict[ConnectionId, _PendingRequest] = {}
        self._bindings: Dict[ConnectionId, ConnectionBinding] = {}
        self._resend_timers: Dict[ConnectionId, object] = {}
        self._alloc_counter = 0
        #: processor groups created for connections, keyed by membership so
        #: connections between the same processor sets share a group (§7)
        self._groups_by_membership: Dict[Tuple[int, ...], Tuple[int, int]] = {}

    # ==================================================================
    # server side
    # ==================================================================
    def register_server(self, domain: int, object_group: int, server_pids: Tuple[int, ...]) -> None:
        """Declare that this processor supports a server object group."""
        self._servers[(domain, object_group)] = _ServerRegistration(
            domain, object_group, tuple(sorted(server_pids))
        )
        self._stack.join_address(domain_multicast_address(domain))

    def on_connect_request(self, msg: ConnectRequestMessage) -> None:
        cid = msg.connection_id
        reg = self._servers.get((cid.server_domain, cid.server_group))
        if reg is None:
            return  # not our server group
        if self._stack.pid != reg.server_pids[0]:
            # Ranked responder failover: normally only the lowest server
            # pid answers, but if it is dead the client would starve.  The
            # k-th ranked server defers k retry rounds before stepping in;
            # a completed handshake (binding present, via the primary's
            # Connect) cancels the standby.
            rank = reg.server_pids.index(self._stack.pid)
            key = (cid, "standby")
            if key in self._resend_timers or cid in self._bindings:
                return
            self._resend_timers[key] = self._stack.schedule(
                rank * 3 * self._stack.config.connect_retry_interval,
                self._standby_respond, cid, msg,
            )
            return
        binding = self._bindings.get(cid)
        if binding is not None:
            # Crossed retransmissions (§7): the client is still asking, so
            # it has not seen our Connect yet — answer again unless every
            # requested client processor has already been heard from.
            if not self._clients_heard(binding) and cid not in self._resend_timers:
                self._send_connect(binding)
            return
        self._answer_request(cid, reg, msg)

    def _answer_request(self, cid: ConnectionId, reg: _ServerRegistration,
                        msg: ConnectRequestMessage) -> None:
        membership = tuple(sorted(set(reg.server_pids) | set(msg.processor_ids)))
        shared = self._groups_by_membership.get(membership)
        if shared is not None:
            group_id, address = shared
        else:
            group_id, address = self._stack.allocate_connection_group(membership)
            self._groups_by_membership[membership] = (group_id, address)
        binding = ConnectionBinding(
            connection_id=cid,
            group_id=group_id,
            address=address,
            membership=membership,
            established=True,
            responder=True,
            client_pids=tuple(msg.processor_ids),
        )
        self._bindings[cid] = binding
        # Bootstrap the group locally (idempotent if shared), then announce.
        self._stack.bootstrap_connection_group(group_id, address, membership)
        self._send_connect(binding)
        self._stack.notify_connection(binding, migrated=False)

    def _cancel_standby(self, cid: ConnectionId) -> None:
        timer = self._resend_timers.pop((cid, "standby"), None)
        if timer is not None:
            timer.cancel()

    def _standby_respond(self, cid: ConnectionId, msg: ConnectRequestMessage) -> None:
        """A backup responder steps in if the handshake is still open."""
        self._resend_timers.pop((cid, "standby"), None)
        if cid in self._bindings:
            return  # the primary responder (or a lower standby) answered
        reg = self._servers.get((cid.server_domain, cid.server_group))
        if reg is None:
            return
        self._answer_request(cid, reg, msg)

    def _send_connect(self, binding: ConnectionBinding) -> None:
        cid = binding.connection_id
        domain_addr = domain_multicast_address(cid.server_domain)
        if binding.connect_raw is None:
            binding.connect_raw = self._stack.send_connect_announcement(
                domain_address=domain_addr,
                connection_id=cid,
                group_id=binding.group_id,
                address=binding.address,
                membership=binding.membership,
            )
        else:
            # §3.2: a retransmission is the identical message with the
            # retransmission flag set — not a new ordered Connect
            group = self._stack.group(binding.group_id)
            if group is not None:
                group.retransmit_raw(binding.connect_raw, address=domain_addr)
        self._resend_timers[cid] = self._stack.schedule(
            self._stack.config.connect_resend_interval, self._resend_connect, cid
        )

    def _resend_connect(self, cid: ConnectionId) -> None:
        self._resend_timers.pop(cid, None)
        binding = self._bindings.get(cid)
        if binding is None:
            return
        # §7: retransmit "until it receives messages over the new
        # connection" — i.e. until the client processors are heard from.
        if self._clients_heard(binding):
            return
        self._send_connect(binding)

    def _clients_heard(self, binding: ConnectionBinding) -> bool:
        """True once every group member is heard over the new connection.

        §7: the Connect is retransmitted "until it receives messages over
        the new connection" — every listed processor (client replicas and
        fellow server replicas alike) only starts transmitting on the new
        group after it has seen the Connect.
        """
        group = self._stack.group(binding.group_id)
        if group is None:
            return False
        return all(
            group.has_heard_from(p)
            for p in binding.membership
            if p != self._stack.pid
        )

    # ==================================================================
    # client side
    # ==================================================================
    def request(self, cid: ConnectionId, client_pids: Tuple[int, ...]) -> None:
        """Start the ConnectRequest retry loop for a new connection."""
        if cid in self._bindings or cid in self._pending:
            return
        self._stack.join_address(domain_multicast_address(cid.server_domain))
        pending = _PendingRequest(cid, tuple(sorted(client_pids)))
        self._pending[cid] = pending
        self._send_request(pending)

    def _send_request(self, pending: _PendingRequest) -> None:
        if pending.connection_id in self._bindings:
            return
        self._stack.send_connect_request(
            domain_address=domain_multicast_address(pending.connection_id.server_domain),
            connection_id=pending.connection_id,
            processor_ids=pending.client_pids,
        )
        pending.timer = self._stack.schedule(
            self._stack.config.connect_retry_interval, self._send_request, pending
        )

    # ==================================================================
    # Connect arrival (both sides, via the domain address)
    # ==================================================================
    def on_connect(self, msg: ConnectMessage) -> None:
        cid = msg.connection_id
        if self._stack.pid not in msg.membership:
            return
        pending = self._pending.pop(cid, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()
        self._cancel_standby(cid)
        if cid in self._bindings:
            return  # duplicate Connect
        binding = ConnectionBinding(
            connection_id=cid,
            group_id=msg.processor_group_id,
            address=msg.ip_multicast_address,
            membership=tuple(msg.membership),
            established=True,
        )
        self._bindings[cid] = binding
        self._stack.bootstrap_connection_group(
            msg.processor_group_id,
            msg.ip_multicast_address,
            tuple(msg.membership),
            barrier_timestamp=msg.header.timestamp,
        )
        self._stack.notify_connection(binding, migrated=False)

    def on_ordered_connect(self, msg: ConnectMessage) -> bool:
        """A Connect delivered through an existing group's total order.

        Covers two §7 cases: a *new* logical connection reusing an already
        established processor group, and the address migration of an
        existing connection.  Returns True if a new binding was created.
        """
        cid = msg.connection_id
        pending = self._pending.pop(cid, None)
        if pending is not None and pending.timer is not None:
            pending.timer.cancel()
        self._cancel_standby(cid)
        if cid in self._bindings:
            return False
        if self._stack.pid not in msg.membership:
            return False
        self._bindings[cid] = ConnectionBinding(
            connection_id=cid,
            group_id=msg.processor_group_id,
            address=msg.ip_multicast_address,
            membership=tuple(msg.membership),
            established=True,
        )
        self._stack.notify_connection(self._bindings[cid], migrated=False)
        return True

    def drop(self, cid: ConnectionId) -> Optional[int]:
        """Forget a released connection (§7 "releasing").

        Returns the connection's group id if no other logical connection
        still shares that processor group (so the caller may retire it),
        else None.
        """
        binding = self._bindings.pop(cid, None)
        if binding is None:
            return None
        timer = self._resend_timers.pop(cid, None)
        if timer is not None:
            timer.cancel()
        self._cancel_standby(cid)
        still_used = any(
            b.group_id == binding.group_id for b in self._bindings.values()
        )
        if not still_used:
            self._groups_by_membership.pop(binding.membership, None)
        return None if still_used else binding.group_id

    # ==================================================================
    def binding(self, cid: ConnectionId) -> Optional[ConnectionBinding]:
        return self._bindings.get(cid)

    def apply_migration(self, cid: ConnectionId, new_address: int) -> None:
        """Record a migrated address after an ordered Connect (§7)."""
        binding = self._bindings.get(cid)
        if binding is not None:
            binding.address = new_address

    def stop(self) -> None:
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        for timer in self._resend_timers.values():
            timer.cancel()
        self._pending.clear()
        self._resend_timers.clear()


class RequestNumbering:
    """Monotonic request numbers for one client↔server group pair (§4).

    "All of the client replicas use the same request number for a given
    request" — replicas achieve that by drawing from this counter in the
    same deterministic order (they process invocations in total order).
    """

    def __init__(self, start: int = 1):
        self._next = start

    def next(self) -> int:
        n = self._next
        self._next += 1
        return n

    def observe(self, request_num: int) -> None:
        """Fast-forward past a number seen from a peer replica."""
        if request_num >= self._next:
            self._next = request_num + 1


class DuplicateDetector:
    """Duplicate detection on (connection id, request number, kind) (§4).

    ``kind`` distinguishes requests from replies (both directions of a
    connection use the same numbers).  Uses a contiguous watermark plus a
    sparse overflow set, so memory stays bounded for in-order traffic.
    """

    def __init__(self) -> None:
        self._watermark: Dict[Tuple[ConnectionId, str], int] = {}
        self._sparse: Dict[Tuple[ConnectionId, str], Set[int]] = {}
        self.duplicates_suppressed = 0

    def is_duplicate(self, cid: ConnectionId, request_num: int, kind: str) -> bool:
        """Record (cid, num, kind); True if it was already seen."""
        key = (cid, kind)
        mark = self._watermark.get(key, 0)
        if request_num <= mark:
            self.duplicates_suppressed += 1
            return True
        sparse = self._sparse.setdefault(key, set())
        if request_num in sparse:
            self.duplicates_suppressed += 1
            return True
        sparse.add(request_num)
        # advance the contiguous watermark
        while mark + 1 in sparse:
            mark += 1
            sparse.discard(mark)
        self._watermark[key] = mark
        return False

    def seen_count(self, cid: ConnectionId, kind: str) -> int:
        key = (cid, kind)
        return self._watermark.get(key, 0) + len(self._sparse.get(key, ()))
