"""Unified stats registry for the FTMP stack.

Every layer keeps its counters in a plain dataclass (``RMPStats``,
``ROMPStats``, ``PGMPStats``, ...).  Historically each consumer (the
analysis harness, the baseline wrapper, the benchmarks) reached into the
layer objects ad hoc; the :class:`StatsRegistry` replaces that plumbing
with one tree of dotted names:

    stack.datagrams_sent
    group.1.send.regulars_sent
    group.1.rmp.nacks_sent
    group.1.batch.messages_batched
    connections.duplicates_suppressed

A source is either a dataclass instance (every numeric field becomes a
counter) or a zero-argument callable returning a ``{field: value}`` dict
(for gauges computed on demand).  ``snapshot()`` flattens the registered
sources into a single ``{dotted_name: value}`` dict; layers register at
construction and unregister when their group is retired, so the snapshot
always reflects the live stack.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Callable, Dict, Iterable, List, Tuple, Union

__all__ = ["StatsRegistry", "StackStats", "GroupStats"]

StatsSource = Union[object, Callable[[], Dict[str, float]]]


@dataclass
class StackStats:
    """Datagram-level counters of one :class:`~repro.core.stack.FTMPStack`."""

    datagrams_received: int = 0
    datagrams_sent: int = 0
    decode_errors: int = 0
    unknown_group_drops: int = 0


@dataclass
class GroupStats:
    """Send-side counters of one processor group."""

    regulars_sent: int = 0
    heartbeats_sent: int = 0
    ordered_sends_deferred: int = 0


class StatsRegistry:
    """Registry of per-layer counter sources under dotted names."""

    def __init__(self) -> None:
        self._sources: Dict[str, StatsSource] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, source: StatsSource) -> StatsSource:
        """Register ``source`` under ``name``; returns the source.

        ``source`` is a dataclass of numeric counters, or a callable
        returning a ``{field: value}`` dict.  Re-registering a name
        replaces the previous source (a recreated group reuses its slot).
        """
        self._sources[name] = source
        return source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    def unregister_prefix(self, prefix: str) -> None:
        """Drop every source whose name is ``prefix`` or under it."""
        doomed = [
            n for n in self._sources if n == prefix or n.startswith(prefix + ".")
        ]
        for n in doomed:
            del self._sources[n]

    def names(self) -> List[str]:
        """Registered source names, in registration order."""
        return list(self._sources)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flatten every registered source into ``{dotted_name: value}``."""
        out: Dict[str, float] = {}
        for name, source in self._sources.items():
            for key, value in self._items(source):
                if isinstance(value, bool):
                    value = int(value)
                if isinstance(value, (int, float)):
                    out[f"{name}.{key}"] = value
        return out

    def get(self, dotted: str, default: float = 0.0) -> float:
        """One counter by its full dotted name (``0.0`` if absent)."""
        return self.snapshot().get(dotted, default)

    def total(self, suffix: str) -> float:
        """Sum of every counter whose dotted name ends with ``.suffix``.

        ``total("nacks_sent")`` aggregates the counter across groups.
        """
        tail = "." + suffix
        return sum(v for k, v in self.snapshot().items() if k.endswith(tail))

    @staticmethod
    def _items(source: StatsSource) -> Iterable[Tuple[str, object]]:
        if callable(source):
            return source().items()
        if is_dataclass(source):
            return ((f.name, getattr(source, f.name)) for f in fields(source))
        raise TypeError(
            f"stats source must be a dataclass or callable, got {type(source)!r}"
        )
