"""PGMP — the Processor Group Membership Protocol layer (paper §7).

Three mechanisms, exactly as the paper structures them:

**Non-faulty changes (§7.1)** — ``AddProcessor`` / ``RemoveProcessor`` are
totally ordered, so every member applies the change at the same point in
the message stream and "the ordering of messages ... continues unaffected".
The initiator of an AddProcessor periodically retransmits it to the new
member (which cannot NACK what it has never seen) until the new member is
heard from.

**Faulty changes (§7.2)** — the fault detector raises local suspicions;
suspicions are shared via ``Suspect`` messages (reliable, source-ordered,
*not* totally ordered — they must flow while ordering is stalled); a
processor is *convicted* once a majority of the unsuspected members
accuse it; each survivor then multicasts one ``Membership`` message per
proposal carrying its received-sequence-number vector, survivors fetch
whatever messages any of them is missing (virtual synchrony: "all of the
processors ... that survived ... have received exactly the same messages"),
and finally install the new view and issue a fault report.

**Connections (§7)** — handled by :mod:`repro.core.connection`; this module
implements the ordered ``Connect`` delivery used for migrating an existing
connection to a new multicast address, including the §7 quiescence rule
(no ordered transmissions until every member is heard past the Connect's
timestamp).

Under-specified points and our concrete choices are listed in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Tuple

from .messages import (
    AddProcessorMessage,
    ConnectMessage,
    FTMPMessage,
    MembershipMessage,
    RemoveProcessorMessage,
    SuspectMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import GroupContext

__all__ = ["PGMP", "PGMPStats"]


@dataclass
class PGMPStats:
    suspects_sent: int = 0
    membership_msgs_sent: int = 0
    convictions: int = 0
    views_installed: int = 0
    sync_nacks: int = 0


@dataclass
class _Round:
    """State of one fault-membership agreement round."""

    proposal: FrozenSet[int]
    #: accepted Membership message per proposal member
    vectors: Dict[int, Dict[int, int]] = field(default_factory=dict)
    max_ts: int = 0
    syncing: bool = False
    targets: Dict[int, int] = field(default_factory=dict)
    #: the new view's timestamp — and the delivery cut of the old view
    view_ts: int = 0
    sync_timer: Optional[object] = None


class PGMP:
    """One PGMP instance per (processor, group) pair."""

    def __init__(self, group: "GroupContext"):
        self._g = group
        #: latest accusation set announced by each accuser in this view
        self._accusations: Dict[int, FrozenSet[int]] = {}
        #: my own current suspicions (mirrors the fault detector)
        self._my_suspects: Set[int] = set()
        #: proposals for which I already multicast my Membership message
        self._sent_proposals: Set[FrozenSet[int]] = set()
        self._round: Optional[_Round] = None
        #: new-member pid -> (raw AddProcessor bytes, resend timer)
        self._add_resends: Dict[int, Tuple[bytes, object]] = {}
        self.stats = PGMPStats()

    # ==================================================================
    # §7.1 non-faulty membership changes
    # ==================================================================
    def initiate_add(self, new_member: int) -> None:
        """Multicast an AddProcessor and keep retransmitting it to the
        (unreliable) new member until the new member is heard from."""
        if new_member in self._g.membership:
            raise ValueError(f"processor {new_member} is already a member")
        seq_vector = {
            p: self._g.rmp.contiguous_top(p)
            for p in self._g.membership
            if p != self._g.pid
        }
        seq_vector[self._g.pid] = self._g.last_sent_seq
        raw = self._g.send_add_processor(
            membership_timestamp=self._g.view_timestamp,
            membership=tuple(sorted(self._g.membership)),
            sequence_numbers=seq_vector,
            new_member=new_member,
        )
        timer = self._g.schedule(
            self._g.config.add_resend_interval, self._resend_add, new_member
        )
        self._add_resends[new_member] = (raw, timer)

    def _resend_add(self, new_member: int) -> None:
        entry = self._add_resends.get(new_member)
        if entry is None:
            return
        raw, _old = entry
        if self._g.has_heard_from(new_member):
            del self._add_resends[new_member]
            return
        self._g.retransmit_raw(raw)
        timer = self._g.schedule(
            self._g.config.add_resend_interval, self._resend_add, new_member
        )
        self._add_resends[new_member] = (raw, timer)

    def initiate_remove(self, member: int) -> None:
        """Multicast a RemoveProcessor (takes effect when ordered)."""
        if member not in self._g.membership:
            raise ValueError(f"processor {member} is not a member")
        self._g.send_remove_processor(member)

    # ------------------------------------------------------------------
    # ordered deliveries from ROMP
    # ------------------------------------------------------------------
    def on_ordered(self, msg: FTMPMessage) -> None:
        if isinstance(msg, AddProcessorMessage):
            self._ordered_add(msg)
        elif isinstance(msg, RemoveProcessorMessage):
            self._ordered_remove(msg)
        elif isinstance(msg, ConnectMessage):
            self._ordered_connect(msg)

    def _ordered_add(self, msg: AddProcessorMessage) -> None:
        new = msg.new_member
        if new == self._g.pid:
            if self._g.joining:
                # Our own AddProcessor reached its position in the total
                # order: complete the join here — the same point at which
                # every existing member installs the new view (§7.1).  A
                # superseded (stale) AddProcessor never gets here: its key
                # is below the re-seeded join barrier.
                self._g.complete_join(
                    membership=tuple(sorted(set(msg.membership) | {new})),
                    view_timestamp=msg.header.timestamp,
                    join_barrier=(msg.header.timestamp, msg.header.source),
                )
            return
        if new in self._g.membership:
            return  # idempotent (duplicate AddProcessor)
        if set(msg.membership) - set(self._g.membership) - {new}:
            # The snapshot names a processor we have since removed: a fault
            # view (or removal) was ordered between this AddProcessor's
            # conception and its position in the total order.  Installing
            # it would fork the group: the joiner seeded its state from
            # the stale snapshot and cannot order past the dead member.
            # Drop it and have one deterministic repairer re-issue a fresh
            # AddProcessor; its higher timestamp supersedes the joiner's
            # stale barrier.
            repairer = (msg.header.source
                        if msg.header.source in self._g.membership
                        else min(self._g.membership))
            if repairer == self._g.pid:
                self.cancel_add_resend(new)
                self.initiate_add(new)
            return
        self._g.install_view(
            membership=tuple(sorted(set(self._g.membership) | {new})),
            view_timestamp=msg.header.timestamp,
            added=(new,),
            removed=(),
            reason="add",
        )
        # the new member's reliable stream starts at sequence number 1
        self._g.rmp.set_baseline(new, 0)
        self._g.watch_member(new, grace=self._g.config.join_grace)

    def _ordered_remove(self, msg: RemoveProcessorMessage) -> None:
        gone = msg.member_to_remove
        if gone == self._g.pid:
            self._g.evict_self(reason="remove", view_timestamp=msg.header.timestamp)
            return
        if gone not in self._g.membership:
            return
        self._g.install_view(
            membership=tuple(sorted(set(self._g.membership) - {gone})),
            view_timestamp=msg.header.timestamp,
            added=(),
            removed=(gone,),
            reason="remove",
        )
        self._g.forget_member(gone)

    def _ordered_connect(self, msg: ConnectMessage) -> None:
        # Connection migration: switch the group to its new multicast
        # address at this point in the total order, then observe the §7
        # quiescence rule before sending any further ordered message.
        self._g.apply_connect_migration(msg)

    # ------------------------------------------------------------------
    # new-member bootstrap (invoked by the group while in joining state)
    # ------------------------------------------------------------------
    def prepare_join(self, msg: AddProcessorMessage) -> None:
        """Seed provisional new-member state from an AddProcessor naming us.

        The join does *not* complete here: the AddProcessor must first
        reach its position in the total order (see :meth:`_ordered_add`),
        so the joiner installs its first view at exactly the same point in
        the message stream as every existing member.  Until then the
        provisional baselines/membership let RMP recover the stream and
        ROMP order it.  A re-issued AddProcessor — the predecessor's
        membership snapshot went stale under an intervening fault view —
        re-seeds with its higher timestamp.
        """
        g = self._g
        key = (msg.header.timestamp, msg.header.source)
        if g.join_barrier is not None and key <= g.join_barrier:
            return  # duplicate (resend) of the AddProcessor we already hold
        for pid, seq in msg.sequence_numbers.items():
            g.rmp.set_baseline(pid, seq)
        g.seed_provisional_join(
            membership=tuple(sorted(set(msg.membership) | {msg.new_member})),
            view_timestamp=msg.header.timestamp,
            join_barrier=key,
        )

    # ==================================================================
    # §7.2 faulty membership changes
    # ==================================================================
    def raise_suspicion(self, pid: int) -> None:
        """Fault detector noticed silence from ``pid``."""
        if pid not in self._g.membership or pid in self._my_suspects:
            return
        self._my_suspects.add(pid)
        self._g.trace("suspect", suspect=pid, action="raised")
        self._broadcast_suspects()

    def withdraw_suspicion(self, pid: int) -> None:
        """Fault detector heard from a suspect again before conviction."""
        if pid not in self._my_suspects:
            return
        self._my_suspects.discard(pid)
        self._g.trace("suspect", suspect=pid, action="withdrawn")
        self._broadcast_suspects()

    def _broadcast_suspects(self) -> None:
        self.stats.suspects_sent += 1
        self._g.send_suspect(
            membership_timestamp=self._g.view_timestamp,
            suspects=tuple(sorted(self._my_suspects)),
        )
        # record my own accusation locally (my Suspect loops back too, but
        # conviction must not depend on self-delivery timing)
        self._accusations[self._g.pid] = frozenset(self._my_suspects)
        self._check_conviction()

    # ------------------------------------------------------------------
    # source-ordered deliveries from ROMP (Suspect / Membership)
    # ------------------------------------------------------------------
    def on_source_ordered(self, msg: FTMPMessage) -> None:
        if isinstance(msg, SuspectMessage):
            self._on_suspect(msg)
        elif isinstance(msg, MembershipMessage):
            self._on_membership(msg)

    def _on_suspect(self, msg: SuspectMessage) -> None:
        if msg.membership_timestamp != self._g.view_timestamp:
            return  # stale view
        self._accusations[msg.header.source] = frozenset(msg.suspects)
        self._check_conviction()

    def _convicted(self) -> Set[int]:
        """Primary-component conviction rule (DESIGN.md §2).

        A processor is convicted when *more than half of the full current
        membership* (counting only unsuspected voters) accuses it.  A
        network partition therefore lets at most one component — the one
        holding a strict majority — form a new view; minority components
        stall until healed, so the total order can never split-brain.
        Two-member groups cannot muster a strict majority against a dead
        peer, so the single survivor's accusation suffices there (the
        classic 2-node exception; crash vs partition is indistinguishable
        either way).
        """
        membership = self._g.membership
        accused = set()
        for s in self._accusations.values():
            accused |= s
        accused &= set(membership)
        if not accused:
            return set()
        voters = [q for q in membership if q not in accused]
        convicted = set()
        for p in accused:
            votes = sum(1 for q in voters if p in self._accusations.get(q, ()))
            if votes > len(membership) / 2 or (len(membership) == 2 and votes == 1):
                convicted.add(p)
        return convicted

    def _check_conviction(self) -> None:
        convicted = self._convicted()
        if not convicted:
            return
        proposal = frozenset(self._g.membership) - convicted
        if self._g.pid not in proposal:
            # I have been convicted by the others; wait for their
            # Membership messages to evict me (or recover by being heard).
            return
        self._start_round(proposal, convicted)

    def _start_round(self, proposal: FrozenSet[int], convicted: Set[int]) -> None:
        if self._round is not None and self._round.proposal == proposal:
            return
        self.stats.convictions += len(convicted)
        if self._round is not None and self._round.sync_timer is not None:
            self._round.sync_timer.cancel()
        self._g.romp.end_transition()  # a superseded round may be mid-drain
        self._round = _Round(proposal=proposal)
        if proposal not in self._sent_proposals:
            # one Membership message per proposal: RMP's reliability makes
            # a single transmission recoverable by every survivor.
            self._sent_proposals.add(proposal)
            vector = self._seq_vector()
            self.stats.membership_msgs_sent += 1
            self._g.send_membership(
                membership_timestamp=self._g.view_timestamp,
                current_membership=tuple(sorted(self._g.membership)),
                sequence_numbers=vector,
                new_membership=tuple(sorted(proposal)),
            )
        self._check_round()

    def _seq_vector(self) -> Dict[int, int]:
        vec = {
            p: self._g.rmp.contiguous_top(p)
            for p in self._g.membership
            if p != self._g.pid
        }
        vec[self._g.pid] = self._g.last_sent_seq
        return vec

    def _on_membership(self, msg: MembershipMessage) -> None:
        if msg.membership_timestamp != self._g.view_timestamp:
            return
        if self._g.pid not in msg.new_membership:
            # the survivors have excluded me: leave the group
            self._g.evict_self(reason="evicted", view_timestamp=msg.header.timestamp)
            return
        proposal = frozenset(msg.new_membership)
        # Seeing a proposal implies its senders convicted the complement;
        # adopt it if it is at least as aggressive as ours.
        if self._round is None or (
            self._round.proposal != proposal and proposal < self._round.proposal
        ):
            convicted = set(self._g.membership) - proposal
            self._start_round(proposal, convicted)
        if self._round is None or self._round.proposal != proposal:
            # A *larger* proposal than ours (we convicted more): ignore;
            # the sender will converge to ours when its detector fires or
            # when it sees our Membership message.
            return
        rnd = self._round
        if msg.header.source not in rnd.vectors:
            rnd.vectors[msg.header.source] = dict(msg.sequence_numbers)
            if msg.header.timestamp > rnd.max_ts:
                rnd.max_ts = msg.header.timestamp
        self._check_round()

    def _check_round(self) -> None:
        rnd = self._round
        if rnd is None or rnd.syncing:
            return
        if not all(p in rnd.vectors for p in rnd.proposal):
            return
        # All survivors reported: compute the union of received messages
        # and fetch what we are missing (virtual synchrony, §7.2).
        targets: Dict[int, int] = {}
        for vec in rnd.vectors.values():
            for pid, seq in vec.items():
                if seq > targets.get(pid, 0):
                    targets[pid] = seq
        rnd.targets = targets
        rnd.syncing = True
        self._sync_step()

    def _sync_step(self) -> None:
        rnd = self._round
        if rnd is None or not rnd.syncing:
            return
        missing = False
        for pid, target in rnd.targets.items():
            if pid == self._g.pid or pid not in self._g.membership:
                # a source dropped by a concurrent view change must not be
                # resurrected by sync NACKs (its RMP state is gone)
                continue
            top = self._g.rmp.contiguous_top(pid)
            if top < target:
                missing = True
                self.stats.sync_nacks += 1
                self._g.send_retransmit_request(pid, top + 1, target)
        if missing:
            rnd.sync_timer = self._g.schedule(
                self._g.config.nack_retry_interval, self._sync_step
            )
            return
        # Synced: every survivor holds the same message set.  Before the
        # view is installed, drain the *old view's* deliveries to a cut
        # all survivors agree on — the new view's timestamp — so their
        # delivery histories diverge nowhere (virtual synchrony, §7.2).
        rnd.view_ts = max(rnd.max_ts, self._g.view_timestamp + 1)
        self._g.romp.begin_transition(rnd.proposal, rnd.view_ts,
                                      targets=rnd.targets)
        self._drain_step()

    def _drain_step(self) -> None:
        rnd = self._round
        if rnd is None or not rnd.syncing:
            return
        # every old-view message has timestamp <= view_ts (each synced
        # message was held by some survivor before it sent its Membership
        # message), so hearing every survivor past the cut proves the old
        # view's stream is complete and orderable
        self._g.romp.evaluate()
        ready = all(
            self._g.romp.order_ts(p) >= rnd.view_ts
            for p in rnd.proposal
            if p != self._g.pid
        ) and self._g.romp.transition_drained(rnd.view_ts)
        if not ready:
            rnd.sync_timer = self._g.schedule(
                self._g.config.nack_retry_interval, self._drain_step
            )
            return
        self._g.romp.end_transition()
        self._install_fault_view()

    def _install_fault_view(self) -> None:
        rnd = self._round
        assert rnd is not None
        removed = tuple(sorted(set(self._g.membership) - rnd.proposal))
        new_membership = tuple(sorted(rnd.proposal))
        # Deterministic view timestamp: every survivor records the same
        # single Membership message per proposal member, so the max of
        # their header timestamps agrees everywhere.
        view_ts = rnd.view_ts
        targets = dict(rnd.targets)
        self._round = None
        self._accusations.clear()
        self._my_suspects.clear()
        self._sent_proposals.clear()
        self.stats.views_installed += 1
        self._g.install_fault_view(
            membership=new_membership,
            view_timestamp=view_ts,
            removed=removed,
            sync_targets=targets,
        )

    # ------------------------------------------------------------------
    def reset_after_view(self) -> None:
        """Clear suspicion state after any view installation.

        Accusations are relative to a view, so they cannot survive it —
        but the *facts* behind them can: an AddProcessor ordered while a
        fault round is draining installs a view and lands here, and the
        faulty member is still dead.  Re-raise whatever the fault
        detector still holds against members of the new view, so the
        round re-forms instead of silently never convicting.
        """
        self._accusations.clear()
        self._my_suspects.clear()
        self._sent_proposals.clear()
        if self._round is not None and self._round.sync_timer is not None:
            self._round.sync_timer.cancel()
        self._round = None
        self._g.romp.end_transition()
        still = set(self._g.suspected_members()) & set(self._g.membership)
        if still:
            self._my_suspects |= still
            self._broadcast_suspects()

    def cancel_add_resend(self, new_member: int) -> None:
        entry = self._add_resends.pop(new_member, None)
        if entry is not None:
            entry[1].cancel()

    def stop(self) -> None:
        for _raw, timer in self._add_resends.values():
            timer.cancel()
        self._add_resends.clear()
        if self._round is not None and self._round.sync_timer is not None:
            self._round.sync_timer.cancel()

    @property
    def in_fault_round(self) -> bool:
        """True while a fault-membership round is unresolved."""
        return self._round is not None
