"""Upcall events emitted by the FTMP stack to the application layer.

The fault-tolerance infrastructure above FTMP (``repro.replication``)
consumes these; tests and experiments record them.  ``Listener`` is the
callback interface; :class:`RecordingListener` is a ready-made collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .messages import ConnectionId

__all__ = [
    "Delivery",
    "ViewChange",
    "FaultReport",
    "ConnectionEvent",
    "Listener",
    "RecordingListener",
]


@dataclass(frozen=True)
class Delivery:
    """One totally-ordered application message delivery (a Regular message)."""

    group: int
    source: int
    sequence_number: int
    timestamp: int
    connection_id: ConnectionId
    request_num: int
    payload: bytes
    delivered_at: float  #: local clock time of delivery


@dataclass(frozen=True)
class ViewChange:
    """A processor-group membership change became effective."""

    group: int
    membership: Tuple[int, ...]
    view_timestamp: int
    added: Tuple[int, ...]
    removed: Tuple[int, ...]
    reason: str  #: "add" | "remove" | "fault" | "connect" | "bootstrap" | "evicted"
    installed_at: float


@dataclass(frozen=True)
class FaultReport:
    """Conveyed to the FT infrastructure when processors are convicted (§7.2)."""

    group: int
    convicted: Tuple[int, ...]
    reported_at: float


@dataclass(frozen=True)
class ConnectionEvent:
    """A logical connection was established or migrated (§7)."""

    connection_id: ConnectionId
    processor_group: int
    multicast_address: int
    established_at: float
    migrated: bool = False


class Listener:
    """Application callback interface; all methods default to no-ops."""

    def on_deliver(self, delivery: Delivery) -> None:  # noqa: D102
        pass

    def on_view_change(self, view: ViewChange) -> None:  # noqa: D102
        pass

    def on_fault_report(self, report: FaultReport) -> None:  # noqa: D102
        pass

    def on_connection(self, event: ConnectionEvent) -> None:  # noqa: D102
        pass


@dataclass
class RecordingListener(Listener):
    """Collects every upcall; the workhorse of the test suite."""

    deliveries: List[Delivery] = field(default_factory=list)
    views: List[ViewChange] = field(default_factory=list)
    faults: List[FaultReport] = field(default_factory=list)
    connections: List[ConnectionEvent] = field(default_factory=list)
    #: unified upcall log, in upcall order — deliveries and view changes
    #: interleaved exactly as the application observed them (the
    #: virtual-synchrony oracle segments deliveries by view with this)
    events: List[object] = field(default_factory=list)

    def on_deliver(self, delivery: Delivery) -> None:
        self.deliveries.append(delivery)
        self.events.append(delivery)

    def on_view_change(self, view: ViewChange) -> None:
        self.views.append(view)
        self.events.append(view)

    def on_fault_report(self, report: FaultReport) -> None:
        self.faults.append(report)

    def on_connection(self, event: ConnectionEvent) -> None:
        self.connections.append(event)

    # -- convenience accessors used throughout tests --------------------
    def payloads(self, group: Optional[int] = None) -> List[bytes]:
        """Delivered payloads, optionally filtered to one group."""
        return [
            d.payload for d in self.deliveries if group is None or d.group == group
        ]

    def delivery_order(self, group: Optional[int] = None) -> List[Tuple[int, int]]:
        """The (timestamp, source) sequence of deliveries — the total order."""
        return [
            (d.timestamp, d.source)
            for d in self.deliveries
            if group is None or d.group == group
        ]

    def current_membership(self, group: int) -> Optional[Tuple[int, ...]]:
        """Membership from the most recent view change for ``group``."""
        for v in reversed(self.views):
            if v.group == group:
                return v.membership
        return None
