"""Genuine multi-group atomic multicast (extension; cf. arXiv 1904.07171).

A multicast addressed to a *set* of processor groups must be delivered in
a consistent total order in every addressed group — any two such
multicasts delivered in two common groups appear in the same relative
order in both — while groups that are not addressed exchange no messages
at all (*genuineness*, the property that keeps per-group sharding intact).

The construction is Skeen's classical timestamp-collection algorithm
mapped onto the FTMP stack's existing machinery:

1. **Propose** — the origin (which must be a member of every addressed
   group) multicasts one :class:`MultiGroupProposeMessage` into each
   addressed group's totally-ordered stream.  The copy's own header
   timestamp *is* that group's proposal: it is stamped by the shared
   per-stack Lamport clock, so it exceeds everything the origin has
   observed, and the standard Lamport-order argument makes it a valid
   not-yet-passed position in that group's total order.
2. **Commit** — because one clock stamps all the copies, the origin knows
   every group's proposal the moment it has stamped them; it immediately
   multicasts a :class:`MultiGroupCommitMessage` carrying ``commit_ts =
   max`` of the proposals into each addressed group.  The degenerate
   collection (no round trip) is exactly what the shared clock buys: in
   classical Skeen the groups' clocks are independent and the maximum
   must be gathered remotely.
3. **Deliver** — each group delivers the multicast at ``commit_ts``,
   i.e. at the extended ordering key ``(commit_ts, origin, mg_seq)``.
   Two multicasts delivered in two common groups compare by the same key
   in both, hence the same relative order everywhere (acyclicity of the
   union of the per-group delivery orders — the property the
   cross-group oracle checks).

**Why this is safe with no extra stability wait.**  Both message types
are totally ordered, and the origin's clock ticks between stamping the
proposals and stamping the commits, so every commit's *header* timestamp
exceeds the announced ``commit_ts``.  ROMP releases messages in strict
``(timestamp, source)`` key order; by the time the commit itself is
released, everything with an ordering key below the commit's header key
— in particular everything below ``commit_ts`` — has already been
released.  A committed entry is therefore deliverable the moment its key
is minimal among the stage's backlog, with no additional cover check.

**The delivery stage.**  The engine interposes on ROMP's dispatch: every
released totally-ordered message enters a FIFO ``held`` stage (ordinary
Regulars and the ordered membership messages) or the ``pending`` table
(multi-group proposals awaiting their commit).  The stage drains in
extended-key order — ordinary messages at ``(ts, src, -1)``, pending
entries at ``(commit_ts, origin, mg_seq)`` once committed, and an
uncommitted entry holds everything behind its lower bound ``(propose_ts,
origin, mg_seq)`` (its final key can only be larger, never smaller).
Because the engine consumes the group's release sequence — identical at
every member — and takes no input from local timing, the whole stage is
a deterministic state machine: every member delivers the same messages
in the same order interleaved identically with the ordered membership
changes.  Fault views ride on §7.2 unchanged: the sync round equalises
the release prefix across survivors, so "still uncommitted at view
install" is the same fact everywhere and the install aborts those
entries consistently (the origin is gone; its commit can never arrive).

**Conflict relation (Generic Multicast, arXiv 2410.01901).**  A
multicast declaring a non-zero ``conflict_class`` commutes with
everything: it skips the commit phase entirely and is delivered at its
per-group propose position (still totally ordered *within* each group,
but its cross-group relative order is unconstrained).  Class ``0``
messages pairwise conflict and get the full protocol.

**Failure semantics.**  Commits are ordinary reliable stream traffic, so
an origin crash leaves each addressed group's survivors in agreement:
either the commit made it into the §7.2-synced prefix (everyone
delivers) or it did not (everyone aborts the entry at the fault view).
Cross-group all-or-nothing for a *crashed* origin is deliberately not
guaranteed — that is the uniformity gap White-Box Atomic Multicast
closes with a Paxos per group — but an aborted entry imposes no
ordering, so cross-group acyclicity holds unconditionally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple

from .constants import MessageType
from .messages import (
    ConnectionId,
    FTMPHeader,
    FTMPMessage,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    RegularMessage,
    RemoveProcessorMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import GroupContext

__all__ = [
    "MultiGroupEngine",
    "MultiGroupStats",
    "MULTI_GROUP_CID",
    "MULTI_GROUP_COMMUTATIVE_CID",
    "mg_request_num",
    "is_multigroup_delivery",
    "is_total_multigroup_delivery",
]

_MG_MARK = 0xFFFFFFFF

#: Sentinel connection id stamped on delivered total-order multi-group
#: messages, so listeners and oracles can recognise the same multicast
#: across groups (paired with :func:`mg_request_num`).
MULTI_GROUP_CID = ConnectionId(_MG_MARK, _MG_MARK, _MG_MARK, 0)

#: Sentinel for commutative (non-zero conflict class) deliveries — these
#: are excluded from the cross-group acyclicity check by construction.
MULTI_GROUP_COMMUTATIVE_CID = ConnectionId(_MG_MARK, _MG_MARK, _MG_MARK, 1)

#: Ordinary (single-group) messages sort below any multi-group entry that
#: could share their (timestamp, source) prefix — which cannot happen
#: anyway, since one stack clock stamps all of a source's sends.
_ORDINARY = -1


def mg_request_num(origin: int, mg_seq: int) -> int:
    """The request number identifying one multicast across all its groups."""
    return (origin << 32) | (mg_seq & 0xFFFFFFFF)


def is_multigroup_delivery(cid: ConnectionId) -> bool:
    """True when a delivery's connection id is a multi-group sentinel."""
    return (
        cid.client_domain == _MG_MARK
        and cid.client_group == _MG_MARK
        and cid.server_domain == _MG_MARK
    )


def is_total_multigroup_delivery(cid: ConnectionId) -> bool:
    """True for conflict-class-0 (totally ordered) multi-group deliveries."""
    return is_multigroup_delivery(cid) and cid.server_group == 0


@dataclass
class MultiGroupStats:
    """Per-group counters of the multi-group delivery stage."""

    proposes_sent: int = 0
    commits_sent: int = 0
    proposes_ordered: int = 0
    commits_applied: int = 0
    orphan_commits: int = 0  #: commit with no pending entry (aborted / pre-join)
    delivered_total: int = 0
    delivered_commutative: int = 0
    aborted: int = 0  #: uncommitted entries dropped at the origin's eviction
    max_held: int = 0
    max_pending: int = 0


@dataclass
class _Pending:
    """A totally-ordered multi-group proposal awaiting its commit."""

    origin: int
    mg_seq: int
    propose: MultiGroupProposeMessage
    propose_ts: int  #: the copy's header timestamp — this group's proposal
    commit_ts: Optional[int] = None

    def key(self) -> Tuple[int, int, int]:
        """Current extended ordering key (a lower bound until committed:
        the commit is the max over groups of proposals, one of which is
        ``propose_ts`` itself, so it can only be >=)."""
        ts = self.commit_ts if self.commit_ts is not None else self.propose_ts
        return (ts, self.origin, self.mg_seq)


class MultiGroupEngine:
    """Per-group delivery stage for multi-group atomic multicast.

    Constructed by ROMP only when ``multigroup_mode`` is on; the knob-off
    path never instantiates it and stays bit-identical to the legacy
    dispatch.  Fed exclusively by :meth:`on_ordered` with the group's
    release sequence, which makes it deterministic across members.
    """

    def __init__(self, group: "GroupContext"):
        self._g = group
        #: released messages awaiting dispatch, FIFO in extended-key order
        self._held: Deque[Tuple[Tuple[int, int, int], FTMPMessage]] = deque()
        #: (origin, mg_seq) -> proposal awaiting its commit
        self._pending: Dict[Tuple[int, int], _Pending] = {}
        self._draining = False
        self.stats = MultiGroupStats()

    # ------------------------------------------------------------------
    # input: the group's totally-ordered release sequence
    # ------------------------------------------------------------------
    def on_ordered(self, msg: FTMPMessage) -> None:
        """One message released by ROMP's total-order rule."""
        if isinstance(msg, MultiGroupCommitMessage):
            # Commits carry no delivery of their own: apply immediately at
            # this (deterministic) position in the release sequence.
            entry = self._pending.get((msg.origin, msg.mg_seq))
            if entry is None:
                self.stats.orphan_commits += 1
            else:
                entry.commit_ts = msg.commit_ts
                self.stats.commits_applied += 1
            self.drain()
            return
        h = msg.header
        if isinstance(msg, MultiGroupProposeMessage):
            self.stats.proposes_ordered += 1
            if msg.conflict_class != 0:
                # Commutative: delivered at the propose position itself,
                # no commit wait (it conflicts with nothing).
                self._held.append(((h.timestamp, h.source, msg.mg_seq), msg))
            else:
                self._pending[(h.source, msg.mg_seq)] = _Pending(
                    origin=h.source,
                    mg_seq=msg.mg_seq,
                    propose=msg,
                    propose_ts=h.timestamp,
                )
                if len(self._pending) > self.stats.max_pending:
                    self.stats.max_pending = len(self._pending)
        else:
            self._held.append(((h.timestamp, h.source, _ORDINARY), msg))
        if len(self._held) > self.stats.max_held:
            self.stats.max_held = len(self._held)
        self.drain()

    # ------------------------------------------------------------------
    # the extended-key drain
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Dispatch everything whose extended key is proven minimal.

        The held queue is FIFO in key order (ROMP releases in key order
        and commutative proposes keep their release position), so only
        its head competes with the pending table's minimum bound.  An
        uncommitted entry's bound holds back everything behind it: its
        final key can only grow, never shrink.
        """
        if self._draining:
            # Re-entered from a dispatch side effect (e.g. an ordered
            # RemoveProcessor installing a view, whose evaluate() releases
            # more messages into the stage): the outermost loop picks the
            # new arrivals up in key order, so the nested call must not
            # interleave a second cursor over the same queues.
            return
        self._draining = True
        try:
            self._drain_loop()
        finally:
            self._draining = False

    def _drain_loop(self) -> None:
        held = self._held
        pending = self._pending
        while True:
            bound: Optional[Tuple[int, int, int]] = None
            head_entry: Optional[_Pending] = None
            for entry in pending.values():
                k = entry.key()
                if bound is None or k < bound:
                    bound, head_entry = k, entry
            if held and (bound is None or held[0][0] < bound):
                _, msg = held.popleft()
                self._dispatch(msg)
                continue
            if head_entry is not None and head_entry.commit_ts is not None:
                # Minimal and committed: the commit's own release already
                # proved nothing below commit_ts can still arrive (its
                # header timestamp exceeds commit_ts and ROMP releases in
                # key order), so this delivers with no further wait.
                del pending[(head_entry.origin, head_entry.mg_seq)]
                self._deliver(head_entry.propose, head_entry.commit_ts,
                              commutative=False)
                continue
            return

    def _dispatch(self, msg: FTMPMessage) -> None:
        """Legacy dispatch of a drained held-stage message."""
        if isinstance(msg, MultiGroupProposeMessage):
            self._deliver(msg, msg.header.timestamp, commutative=True)
            return
        if msg.header.message_type == MessageType.REGULAR:
            self._g.deliver_regular(msg)  # type: ignore[arg-type]
            return
        if isinstance(msg, RemoveProcessorMessage):
            # The removed member's commit, if not yet released here, is
            # released after this position at *every* member (release
            # sequences are identical), where the legacy purge drops it:
            # abort its uncommitted entries at this same position so the
            # decision is deterministic too.
            self.abort_origin(msg.member_to_remove)
        self._g.pgmp_receive_ordered(msg)

    def _deliver(self, propose: MultiGroupProposeMessage, ts: int,
                 commutative: bool) -> None:
        h = propose.header
        synth = RegularMessage(
            header=FTMPHeader(
                message_type=MessageType.REGULAR,
                source=h.source,
                group=h.group,
                sequence_number=h.sequence_number,
                timestamp=ts,
                ack_timestamp=h.ack_timestamp,
                little_endian=h.little_endian,
            ),
            connection_id=(
                MULTI_GROUP_COMMUTATIVE_CID if commutative else MULTI_GROUP_CID
            ),
            request_num=mg_request_num(h.source, propose.mg_seq),
            payload=propose.payload,
        )
        if commutative:
            self.stats.delivered_commutative += 1
        else:
            self.stats.delivered_total += 1
        self._g.deliver_regular(synth)

    # ------------------------------------------------------------------
    # membership interplay
    # ------------------------------------------------------------------
    def abort_origin(self, origin: int) -> None:
        """Drop uncommitted entries from an evicted origin.

        Graceful path: called when the ordered RemoveProcessor drains —
        a deterministic position in the stage.  Fault path: called at
        fault-view install, after the §7.2 sync equalised the release
        prefix across survivors, so committed-vs-not is the same fact at
        every survivor.  Either way the origin is gone and the missing
        commit can never arrive; a commit that still trickles through is
        counted as an orphan and ignored.
        """
        doomed = [k for k, e in self._pending.items() if e.origin == origin
                  and e.commit_ts is None]
        for k in doomed:
            del self._pending[k]
        self.stats.aborted += len(doomed)
        if doomed:
            self.drain()

    def backlog(self) -> int:
        """Messages staged but not yet dispatched (quiescence gauge)."""
        return len(self._held) + len(self._pending)
