"""FTMP — the Fault-Tolerant Multicast Protocol (the paper's contribution).

The stack (Figure 1): RMP provides reliable source-ordered multicast over
(simulated) IP Multicast; ROMP adds causal/total order via Lamport
timestamps; PGMP provides connections and processor-group membership.

Entry point: :class:`FTMPStack`.
"""

from .buffers import BufferedMessage, RetransmissionBuffer
from .config import ClockMode, FTMPConfig
from .connection import (
    ConnectionBinding,
    DuplicateDetector,
    RequestNumbering,
    domain_multicast_address,
)
from .constants import (
    HEADER_SIZE,
    MAGIC,
    RELIABLE_TYPES,
    TOTALLY_ORDERED_TYPES,
    MessageType,
)
from .datapath import (
    BatchStats,
    FlowControlSaturated,
    FlowControlStats,
    GroupContext,
    ReceivePath,
    SendPath,
)
from .events import (
    ConnectionEvent,
    Delivery,
    FaultReport,
    Listener,
    RecordingListener,
    ViewChange,
)
from .lamport import LamportClock, OrderingClock, SynchronizedClock
from .llft import ORDER_INFO_CID, LeaderOrdering, LLFTStats
from .messages import (
    AckSummaryMessage,
    AddProcessorMessage,
    BatchMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    FTMPMessage,
    HeartbeatMessage,
    MembershipMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    SuspectMessage,
    order_key,
)
from .multigroup import (
    MULTI_GROUP_CID,
    MULTI_GROUP_COMMUTATIVE_CID,
    MultiGroupEngine,
    MultiGroupStats,
    is_multigroup_delivery,
    is_total_multigroup_delivery,
    mg_request_num,
)
from .overlay import OverlayDissemination, OverlayStats, unicast_address
from .stack import FTMPStack, ProcessorGroup
from .stats import GroupStats, StackStats, StatsRegistry
from .tracing import TraceEvent, Tracer
from .wire import CodecError, decode, encode, mark_retransmission, peek_header

__all__ = [
    "FTMPStack",
    "ProcessorGroup",
    "GroupContext",
    "SendPath",
    "ReceivePath",
    "BatchStats",
    "FlowControlStats",
    "FlowControlSaturated",
    "StatsRegistry",
    "StackStats",
    "GroupStats",
    "Tracer",
    "TraceEvent",
    "FTMPConfig",
    "ClockMode",
    "MessageType",
    "MAGIC",
    "HEADER_SIZE",
    "RELIABLE_TYPES",
    "TOTALLY_ORDERED_TYPES",
    "ConnectionId",
    "FTMPHeader",
    "FTMPMessage",
    "RegularMessage",
    "BatchMessage",
    "RetransmitRequestMessage",
    "HeartbeatMessage",
    "AckSummaryMessage",
    "ConnectRequestMessage",
    "ConnectMessage",
    "AddProcessorMessage",
    "RemoveProcessorMessage",
    "SuspectMessage",
    "MembershipMessage",
    "MultiGroupProposeMessage",
    "MultiGroupCommitMessage",
    "MultiGroupEngine",
    "MultiGroupStats",
    "MULTI_GROUP_CID",
    "MULTI_GROUP_COMMUTATIVE_CID",
    "mg_request_num",
    "is_multigroup_delivery",
    "is_total_multigroup_delivery",
    "order_key",
    "encode",
    "decode",
    "peek_header",
    "mark_retransmission",
    "CodecError",
    "Listener",
    "RecordingListener",
    "Delivery",
    "ViewChange",
    "FaultReport",
    "ConnectionEvent",
    "LamportClock",
    "SynchronizedClock",
    "OrderingClock",
    "ORDER_INFO_CID",
    "LeaderOrdering",
    "LLFTStats",
    "OverlayDissemination",
    "OverlayStats",
    "unicast_address",
    "RetransmissionBuffer",
    "BufferedMessage",
    "RequestNumbering",
    "DuplicateDetector",
    "ConnectionBinding",
    "domain_multicast_address",
]
