"""The layered FTMP datapath (paper Figure 1, made explicit).

This module is the seam between the protocol machines and the wire:

* :class:`GroupContext` — the narrow protocol the RMP / ROMP / PGMP /
  fault-detector machines are written against.  The machines never import
  a concrete group class; they receive "some GroupContext" and use only
  this surface (timers, tracing, retention, upward delivery, the send
  services and clock access).
* :class:`SendPath` — the downward pipeline: header stamping (sequence
  number, clock tick, piggybacked ack timestamp), retransmission
  retention, the heartbeat generator, and the optional coalescing window
  that packs small Regular messages into one Batch datagram.
* :class:`ReceivePath` — the upward pipeline: Batch unpacking, new-member
  join gating, raw-byte retention bookkeeping, then RMP.  Everything
  above the receive path is batch-oblivious.
* :class:`ProcessorGroup` — the composition root wiring one group's
  machines through the two pipelines; it implements ``GroupContext`` and
  keeps the membership/view state that *is* the group.

Batching (``FTMPConfig.batch_window``) is off by default, in which case
the send path is bit-identical to the historical unbatched stack: every
message goes out the moment it is stamped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
)

from ..transport import NamedTimerSet
from .buffers import RetransmissionBuffer
from .config import FTMPConfig
from .constants import RELIABLE_TYPES, MessageType
from .events import Delivery, FaultReport, ViewChange
from .fault_detector import FaultDetector
from .messages import (
    AddProcessorMessage,
    BatchMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    FTMPMessage,
    HeartbeatMessage,
    MembershipMessage,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
)
from .pgmp import PGMP
from .rmp import RMP
from .romp import ROMP
from .stats import GroupStats
from .wire import CodecError, decode, encode, mark_retransmission

if TYPE_CHECKING:  # pragma: no cover
    from random import Random

    from .lamport import OrderingClock
    from .stack import FTMPStack

__all__ = [
    "GroupContext",
    "SendPath",
    "ReceivePath",
    "BatchStats",
    "FlowControlStats",
    "FlowController",
    "FlowControlSaturated",
    "ProcessorGroup",
]


class FlowControlSaturated(RuntimeError):
    """A multicast exceeded ``flow_queue_limit`` backpressured sends.

    Raised instead of queueing so the application gets a synchronous
    load-shedding signal; the send was *not* accepted and will not be
    transmitted later.
    """


class GroupContext(Protocol):
    """The group surface the protocol machines need — and nothing more.

    RMP / ROMP / PGMP / :class:`~repro.core.fault_detector.FaultDetector`
    are typed against this protocol instead of any concrete group class,
    so they can be driven by the real :class:`ProcessorGroup` or by a test
    double without touching the stack.
    """

    group_id: int
    membership: Tuple[int, ...]
    view_timestamp: int
    joining: bool
    #: (timestamp, source) of the AddProcessor admitting this processor
    join_barrier: Optional[Tuple[int, int]]
    #: (timestamp, source) keys grandfathered by a fault view — queued
    #: ordered messages from removed members that remain deliverable
    legacy_keys: Set[Tuple[int, int]]
    buffer: RetransmissionBuffer
    rmp: RMP
    romp: ROMP

    # -- identity / environment ----------------------------------------
    @property
    def pid(self) -> int: ...

    @property
    def config(self) -> FTMPConfig: ...

    @property
    def rng(self) -> "Random": ...

    @property
    def clock(self) -> "OrderingClock": ...

    @property
    def last_sent_seq(self) -> int: ...

    def now(self) -> float: ...

    def schedule(self, delay: float, fn: Callable, *args): ...

    def trace(self, kind: str, **detail) -> None: ...

    # -- liveness bookkeeping ------------------------------------------
    def note_alive(self, src: int) -> None: ...

    def has_heard_from(self, src: int) -> bool: ...

    def watch_member(self, pid: int, grace: float = 0.0) -> None: ...

    def forget_member(self, pid: int) -> None: ...

    def suspected_members(self) -> Set[int]: ...

    # -- retention & upward delivery -----------------------------------
    def retain(self, msg: FTMPMessage) -> None: ...

    def romp_receive(self, msg: FTMPMessage) -> None: ...

    def romp_heartbeat(self, msg: HeartbeatMessage) -> None: ...

    def pgmp_raise_suspicion(self, pid: int) -> None: ...

    def pgmp_withdraw_suspicion(self, pid: int) -> None: ...

    def pgmp_receive_unreliable(self, msg: FTMPMessage) -> None: ...

    def pgmp_receive_source_ordered(self, msg: FTMPMessage) -> None: ...

    def pgmp_receive_ordered(self, msg: FTMPMessage) -> None: ...

    def deliver_regular(self, msg: RegularMessage) -> None: ...

    # -- send services --------------------------------------------------
    def send_retransmit_request(self, source: int, start: int, stop: int) -> None: ...

    def retransmit_raw(self, raw: bytes, address: Optional[int] = None) -> None: ...

    def send_add_processor(self, membership_timestamp: int,
                           membership: Tuple[int, ...],
                           sequence_numbers: Dict[int, int],
                           new_member: int) -> bytes: ...

    def send_remove_processor(self, member: int) -> None: ...

    def send_suspect(self, membership_timestamp: int,
                     suspects: Tuple[int, ...]) -> None: ...

    def send_membership(self, membership_timestamp: int,
                        current_membership: Tuple[int, ...],
                        sequence_numbers: Dict[int, int],
                        new_membership: Tuple[int, ...]) -> None: ...

    # -- membership transitions -----------------------------------------
    def install_view(self, membership: Tuple[int, ...], view_timestamp: int,
                     added: Tuple[int, ...], removed: Tuple[int, ...],
                     reason: str) -> None: ...

    def install_fault_view(self, membership: Tuple[int, ...], view_timestamp: int,
                           removed: Tuple[int, ...],
                           sync_targets: Optional[Dict[int, int]] = None) -> None: ...

    def evict_self(self, reason: str, view_timestamp: int) -> None: ...

    def seed_provisional_join(self, membership: Tuple[int, ...], view_timestamp: int,
                              join_barrier: Tuple[int, int]) -> None: ...

    def complete_join(self, membership: Tuple[int, ...], view_timestamp: int,
                      join_barrier: Tuple[int, int]) -> None: ...

    def apply_connect_migration(self, msg: ConnectMessage) -> None: ...

    def on_send_barrier_cleared(self) -> None: ...

    # -- flow control (stability-driven credit window) -------------------
    def on_stability_advance(self, stable: int) -> None: ...

    def credit_blocked(self) -> bool: ...


@dataclass
class BatchStats:
    """Batching-efficiency counters of one group's send/receive paths."""

    batches_sent: int = 0
    messages_batched: int = 0
    batches_received: int = 0
    messages_unbatched: int = 0
    flushes_on_timer: int = 0
    flushes_on_size: int = 0
    flushes_on_order: int = 0  #: a non-batchable send forced the flush
    heartbeats_suppressed: int = 0
    batch_decode_errors: int = 0
    #: adaptive window: sends that skipped the window because the recent
    #: rate would not fill it (low-load latency restored to unbatched)
    adaptive_bypasses: int = 0


@dataclass
class FlowControlStats:
    """Credit-window counters of one group's sender (flow control)."""

    sends_admitted: int = 0  #: Regulars that consumed a credit and went out
    sends_queued: int = 0  #: application sends held back (no credits)
    sends_released: int = 0  #: queued sends later admitted by stability
    sends_rejected: int = 0  #: multicasts refused at ``flow_queue_limit``
    credit_stalls: int = 0  #: transitions into the fully blocked state
    max_queue_depth: int = 0


class FlowController:
    """Per-sender credit window driven by the §6 stability signal.

    The ROMP layer already computes, from the piggybacked positive
    acknowledgement timestamps, the *stability timestamp* — the highest
    ordering timestamp every member has acknowledged (the same signal
    that bounds the retransmission buffers, §5/§6).  The flow controller
    feeds it back to the sender: at most ``flow_control_window`` of this
    processor's own Regular messages may be in flight (sent but not yet
    stable) at once.  Application sends beyond the window queue here —
    backpressure — and drain as stability advances, so a sender can never
    run further ahead of the group than the window, no matter the offered
    load.  Control traffic (membership, NACKs, heartbeats) is never
    subject to credits: it is exactly what makes stability advance.
    """

    def __init__(self, group: "ProcessorGroup", stats: FlowControlStats):
        self._g = group
        self.stats = stats
        #: ordering timestamps of our own in-flight (unstable) Regulars;
        #: timestamps are per-source monotonic, so this deque is sorted
        self._inflight: Deque[int] = deque()
        self._queue: Deque[Tuple[bytes, ConnectionId, int]] = deque()

    @property
    def enabled(self) -> bool:
        return self._g.config.flow_control_window > 0

    @property
    def inflight(self) -> int:
        """Own Regulars sent but not yet covered by the stability timestamp."""
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def credits(self) -> int:
        """Sends the window still allows before backpressure engages."""
        if not self.enabled:
            return 0
        return max(0, self._g.config.flow_control_window - len(self._inflight))

    @property
    def blocked(self) -> bool:
        """True while application sends are queued on exhausted credits."""
        return bool(self._queue)

    def submit(self, payload: bytes, cid: ConnectionId, request_num: int,
               enforce_limit: bool = True) -> bool:
        """Admit a send now (True) or queue it on backpressure (False).

        With ``flow_queue_limit`` set, a send beyond the cap raises
        :class:`FlowControlSaturated` instead of queueing.  Internal
        re-submissions of already-accepted sends (the §7 barrier drain)
        pass ``enforce_limit=False`` — they must never be dropped.
        """
        if not self.enabled:
            return True
        if not self._queue and len(self._inflight) < self._g.config.flow_control_window:
            return True
        limit = self._g.config.flow_queue_limit
        if enforce_limit and limit > 0 and len(self._queue) >= limit:
            self.stats.sends_rejected += 1
            raise FlowControlSaturated(
                f"flow-control queue full ({limit} sends already backpressured)"
            )
        if not self._queue:
            self.stats.credit_stalls += 1
        self._queue.append((payload, cid, request_num))
        self.stats.sends_queued += 1
        if len(self._queue) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(self._queue)
        return False

    def note_sent(self, timestamp: int) -> None:
        """Record an admitted Regular's ordering timestamp (one credit)."""
        if self.enabled:
            self._inflight.append(timestamp)
            self.stats.sends_admitted += 1

    def on_stability(self, stable: int) -> None:
        """Stability advanced: recycle credits, drain queued sends."""
        inflight = self._inflight
        while inflight and inflight[0] <= stable:
            inflight.popleft()
        self.drain()

    def drain(self) -> None:
        """Release queued sends while credits last — never past a barrier.

        A stability advance can arrive while a §7 Connect quiescence
        barrier is pending (heartbeats keep flowing precisely so a
        blocked sender's credits refill); releasing ordered Regulars
        then would violate the join-quiescence invariant, so the queue
        holds until :meth:`ProcessorGroup.on_send_barrier_cleared` kicks
        this drain again.
        """
        if not self._queue or not self._g.romp.can_send_ordered():
            return
        window = self._g.config.flow_control_window
        while self._queue and len(self._inflight) < window:
            payload, cid, request_num = self._queue.popleft()
            self.stats.sends_released += 1
            # _send_regular calls note_sent, growing _inflight again
            self._g._send_regular(payload, cid, request_num)


class SendPath:
    """Downward pipeline of one processor group.

    Owns the reliable sequence counter, header stamping (clock tick plus
    the piggybacked ack timestamp), retention of reliable messages for
    NACK answering, the §5 heartbeat generator, and the batching window.
    Protocol machines never build headers or touch the wire; the group
    stamps and transmits everything here.
    """

    def __init__(
        self,
        ctx: "ProcessorGroup",
        transmit: Callable[[int, bytes], None],
        ack_supplier: Callable[[], int],
        address_supplier: Callable[[], int],
        stats: GroupStats,
        batch_stats: BatchStats,
    ):
        self._ctx = ctx
        self._transmit = transmit
        self._ack = ack_supplier
        self._address = address_supplier
        self._stats = stats
        self._batch = batch_stats
        self._timers = NamedTimerSet(ctx.schedule)
        self._seq = 0
        self._last_send_time = -1e9
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._stopped = False
        # adaptive batching: EWMA of the gap between batchable sends —
        # the load signal deciding window vs. immediate transmission
        self._gap_ewma = float("inf")
        self._last_batchable = -1e9

    # ------------------------------------------------------------------
    # header stamping
    # ------------------------------------------------------------------
    @property
    def last_sent_seq(self) -> int:
        return self._seq

    def next_header(self, mtype: MessageType, reliable: bool) -> FTMPHeader:
        if reliable:
            self._seq += 1
        return FTMPHeader(
            message_type=mtype,
            source=self._ctx.pid,
            group=self._ctx.group_id,
            sequence_number=self._seq,
            timestamp=self._ctx.clock.tick(),
            ack_timestamp=self._ack(),
            little_endian=self._ctx.config.little_endian,
        )

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def send(self, msg: FTMPMessage, address: Optional[int] = None) -> bytes:
        """Stamp-independent egress: retain, trace, then wire (or window)."""
        raw = encode(msg)
        h = msg.header
        mtype = h.message_type
        if mtype in RELIABLE_TYPES:
            self._ctx.buffer.add(h.source, h.sequence_number, h.timestamp, raw)
        if mtype in RELIABLE_TYPES or mtype == MessageType.HEARTBEAT:
            # §5: a Heartbeat is due when no *Regular* (ordered-stream)
            # message went out recently; control traffic such as
            # RetransmitRequests must not starve the heartbeat, because
            # receivers need the stream's timestamps to keep ordering.
            self._last_send_time = self._ctx.now()
        if self._ctx.traced:
            self._ctx.trace("send", type=mtype.name, seq=h.sequence_number,
                            ts=h.timestamp)
        if address is None and self._batchable(mtype, raw):
            if self._adaptive_bypass():
                self._batch.adaptive_bypasses += 1
                self._transmit(self._address(), raw)
            else:
                self._append(raw)
        else:
            self._flush_pending_first()
            self._transmit(self._address() if address is None else address, raw)
        return raw

    def send_raw(self, raw: bytes, address: Optional[int] = None) -> None:
        """Re-send retained wire bytes with the retransmission flag (§3.2).

        Deliberately does not touch ``last_send_time``: retransmissions
        are not new ordered-stream traffic and must not defer heartbeats.
        """
        self._flush_pending_first()
        self._transmit(self._address() if address is None else address,
                       mark_retransmission(raw))

    def _flush_pending_first(self) -> None:
        """Keep per-source FIFO: drain the window before unbatched sends."""
        if self._pending:
            self._batch.flushes_on_order += 1
            self.flush()

    # ------------------------------------------------------------------
    # batching window
    # ------------------------------------------------------------------
    def _batchable(self, mtype: MessageType, raw: bytes) -> bool:
        cfg = self._ctx.config
        return (
            cfg.batch_window > 0.0
            and mtype == MessageType.REGULAR
            and len(raw) <= cfg.batch_max_bytes
        )

    def _adaptive_bypass(self) -> bool:
        """Decide window vs. immediate send for an eligible Regular.

        The fixed window taxes every low-load send ~``batch_window`` of
        latency for nothing: the window closes with one message in it.
        With ``batch_adaptive`` on, an EWMA of the gap between eligible
        sends estimates how many messages the *next* window would
        coalesce; below ``batch_min_fill`` the send bypasses the window
        (latency returns to unbatched), above it the window engages and
        saturation goodput keeps the full coalescing win.  A send never
        bypasses a non-empty window — that would reorder the sender's
        reliable stream on the wire.
        """
        cfg = self._ctx.config
        if not cfg.batch_adaptive:
            return False
        now = self._ctx.now()
        gap = now - self._last_batchable
        self._last_batchable = now
        if gap >= cfg.batch_window * cfg.batch_min_fill:
            # idle long enough that no plausible rate fills a window:
            # hard-reset the estimate so one stale burst cannot tax the
            # first messages of a quiet period.  Clamped at the engage
            # threshold — an unbounded idle gap would otherwise take ~100
            # EWMA steps to decay, taxing the front of the next burst.
            self._gap_ewma = cfg.batch_window * cfg.batch_min_fill
        else:
            ewma = self._gap_ewma
            self._gap_ewma = gap if ewma == float("inf") else 0.75 * ewma + 0.25 * gap
        if self._pending:
            return False
        return self._gap_ewma * cfg.batch_min_fill > cfg.batch_window

    def _append(self, raw: bytes) -> None:
        self._pending.append(raw)
        self._pending_bytes += len(raw)
        if self._pending_bytes >= self._ctx.config.batch_max_bytes:
            self._batch.flushes_on_size += 1
            self.flush()
        elif not self._timers.is_armed("batch-flush"):
            self._timers.arm("batch-flush", self._ctx.config.batch_window,
                             self._timer_flush)

    def _timer_flush(self) -> None:
        self._batch.flushes_on_timer += 1
        self.flush()

    @property
    def pending_batch(self) -> int:
        """Messages currently held in the coalescing window."""
        return len(self._pending)

    def flush(self) -> None:
        """Transmit the coalesced window now (no-op when empty)."""
        self._timers.cancel("batch-flush")
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._pending_bytes = 0
        if len(pending) == 1:
            self._transmit(self._address(), pending[0])
            return
        envelope = BatchMessage(
            header=FTMPHeader(
                message_type=MessageType.BATCH,
                source=self._ctx.pid,
                group=self._ctx.group_id,
                sequence_number=0,
                timestamp=0,
                ack_timestamp=0,
                little_endian=self._ctx.config.little_endian,
            ),
            parts=tuple(pending),
        )
        self._batch.batches_sent += 1
        self._batch.messages_batched += len(pending)
        self._transmit(self._address(), encode(envelope))

    # ------------------------------------------------------------------
    # heartbeats (paper §5)
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        self._arm_heartbeat()

    def _arm_heartbeat(self) -> None:
        if self._stopped:
            return
        self._timers.arm("heartbeat", self._ctx.config.heartbeat_interval,
                         self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        if self._stopped:
            return
        if self._ctx.config.overlay_mode and not self._ctx.joining:
            # Overlay mode: the periodic per-edge AckSummaries are the
            # keepalive (their headers carry the same live seq/ts/ack a
            # Heartbeat would), so all-member heartbeat fan-out stops.
            # A *joining* member keeps heartbeating: it is not in the
            # tree yet, and only its own loopbacked heartbeats advance
            # its stream in the ordering gate so the AddProcessor can
            # reach its position (§7.1).
            return  # deliberately without re-arming: the loop ends here
        if self._pending and not self._ctx.credit_blocked():
            # Piggyback suppression: the window flushes within
            # batch_window anyway, carrying fresher timestamps and a
            # fresher ack than a Heartbeat would.  Never while the sender
            # is blocked on credits: a fully backpressured sender cannot
            # produce the Regular traffic this suppression counts on, yet
            # its heartbeats are exactly what advances the peers' view of
            # its clock/ack — and with it the stability timestamp that
            # will refill its credits (liveness).
            self._batch.heartbeats_suppressed += 1
        else:
            idle = self._ctx.now() - self._last_send_time
            if idle >= self._ctx.config.heartbeat_interval * 0.999:
                msg = HeartbeatMessage(
                    header=self.next_header(MessageType.HEARTBEAT, reliable=False)
                )
                self._stats.heartbeats_sent += 1
                self.send(msg)
        self._arm_heartbeat()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.flush()
        self._timers.cancel_all()


class ReceivePath:
    """Upward pipeline of one processor group.

    Unpacks Batch envelopes, gates the new-member joining state, keeps
    the raw wire bytes of the in-flight message for retention, and feeds
    RMP.  The protocol machines above never see a Batch.
    """

    def __init__(self, group: "ProcessorGroup", batch_stats: BatchStats):
        self._g = group
        self._batch = batch_stats
        self._current_raw: Optional[bytes] = None

    @property
    def current_raw(self) -> Optional[bytes]:
        """Wire bytes of the message currently being processed, if any."""
        return self._current_raw

    def on_datagram(self, msg: FTMPMessage, raw: bytes) -> None:
        g = self._g
        if g.stopped:
            return
        if isinstance(msg, BatchMessage):
            self._batch.batches_received += 1
            for part in msg.parts:
                try:
                    inner = decode(part)
                except CodecError:
                    self._batch.batch_decode_errors += 1
                    continue
                self._batch.messages_unbatched += 1
                self.on_datagram(inner, part)
            return
        if g.joining:
            # A new member seeds provisional state from the AddProcessor
            # that names it; the message then flows through RMP/ROMP like
            # any other, and the join completes only when it reaches its
            # position in the total order (§7.1).  Before that seed there
            # is nothing to anchor recovery on, so everything else waits
            # for the initiator's periodic retransmission.
            if isinstance(msg, AddProcessorMessage) and msg.new_member == g.pid:
                g.pgmp.prepare_join(msg)
            if g.join_barrier is None:
                return
            g.romp.observe_header(msg.header)
            self._feed_rmp(msg, raw)
            return
        if g.traced:
            g.trace("recv", type=msg.header.message_type.name,
                    src=msg.header.source, seq=msg.header.sequence_number)
        # every datagram carries usable clock / ack / liveness information
        # (RetransmitRequests included); ordering advancement stays gated
        # on contiguity inside ROMP
        g.romp.observe_header(msg.header)
        self._feed_rmp(msg, raw)

    def _feed_rmp(self, msg: FTMPMessage, raw: bytes) -> None:
        self._current_raw = raw
        try:
            self._g.rmp.on_message(msg)
        finally:
            self._current_raw = None


class ProcessorGroup:
    """One processor's protocol state for one processor group.

    A thin composition root: wires the RMP / ROMP / PGMP machines and the
    fault detector through :class:`SendPath` / :class:`ReceivePath`, and
    implements the :class:`GroupContext` surface they are typed against.
    The membership/view bookkeeping lives here because it *is* the group.
    """

    def __init__(
        self,
        stack: "FTMPStack",
        group_id: int,
        address: int,
        membership: Tuple[int, ...],
        joining: bool = False,
    ):
        self._stack = stack
        self.group_id = group_id
        self.address = address
        self.membership: Tuple[int, ...] = tuple(sorted(membership))
        self.view_timestamp = 0
        self.joining = joining
        #: (timestamp, source) of the AddProcessor that admitted us; ordered
        #: messages strictly before it belong to views we were not part of.
        self.join_barrier: Optional[Tuple[int, int]] = None
        #: keys of queued ordered messages from members removed by a fault
        #: view — still deliverable (virtual synchrony grandfathering)
        self.legacy_keys: Set[Tuple[int, int]] = set()

        self.buffer = RetransmissionBuffer(gc_enabled=stack.config.buffer_gc_enabled)
        self.stats = GroupStats()
        self.batch_stats = BatchStats()
        self.flow = FlowController(self, FlowControlStats())
        self.rmp = RMP(self)
        self.romp = ROMP(self)
        self.pgmp = PGMP(self)
        self.fault_detector = FaultDetector(self)
        self.send_path = SendPath(
            self,
            transmit=self._transmit_routed,
            ack_supplier=lambda: self.romp.ack_timestamp,
            address_supplier=lambda: self.address,
            stats=self.stats,
            batch_stats=self.batch_stats,
        )
        self.receive_path = ReceivePath(self, self.batch_stats)

        self._pending_ordered: List[Tuple[bytes, ConnectionId, int]] = []
        self._heard: Set[int] = set()
        self._stopped = False
        self._register_stats()

        if not joining:
            self._activate()

    def _register_stats(self) -> None:
        reg = self._stack.registry
        prefix = f"group.{self.group_id}"
        reg.register(f"{prefix}.send", self.stats)
        reg.register(f"{prefix}.batch", self.batch_stats)
        reg.register(f"{prefix}.flow", self.flow.stats)
        reg.register(f"{prefix}.rmp", self.rmp.stats)
        reg.register(f"{prefix}.romp", self.romp.stats)
        reg.register(f"{prefix}.pgmp", self.pgmp.stats)
        reg.register(f"{prefix}.fault_detector", self.fault_detector.stats)
        if self.romp.llft is not None:
            reg.register(f"{prefix}.llft", self.romp.llft.stats)
        if self.romp.overlay is not None:
            reg.register(f"{prefix}.overlay", self.romp.overlay.stats)
        if self.romp.multigroup is not None:
            reg.register(f"{prefix}.multigroup", self.romp.multigroup.stats)
        reg.register(
            f"{prefix}.gauges",
            lambda: {
                "queue_depth": self.romp.queued(),
                "ack_timestamp": self.romp.ack_timestamp,
                "stability_timestamp": self.romp.stability_timestamp(),
                "buffer_messages": len(self.buffer),
                "buffer_bytes": self.buffer.bytes,
                "last_sent_seq": self.last_sent_seq,
                "pending_batch": self.send_path.pending_batch,
                "fc_credits": self.flow.credits,
                "fc_inflight": self.flow.inflight,
                "fc_queue_depth": self.flow.queue_depth,
            },
        )

    # ------------------------------------------------------------------
    # context surface used by the protocol layers (GroupContext)
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        return self._stack.pid

    @property
    def config(self) -> FTMPConfig:
        return self._stack.config

    @property
    def rng(self):
        return self._stack.endpoint.random()

    @property
    def clock(self):
        return self._stack.clock

    @property
    def last_sent_seq(self) -> int:
        return self.send_path.last_sent_seq

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def traced(self) -> bool:
        return self._stack.tracer is not None

    def now(self) -> float:
        return self._stack.endpoint.now

    def schedule(self, delay: float, fn: Callable, *args):
        return self._stack.endpoint.schedule(delay, fn, *args)

    def trace(self, kind: str, **detail) -> None:
        tracer = self._stack.tracer
        if tracer is not None:
            tracer.emit(self.now(), self.pid, self.group_id, kind, **detail)

    def note_alive(self, src: int) -> None:
        if src not in self._heard:
            self._heard.add(src)
            # a newly heard processor ends any AddProcessor resend loop
            self.pgmp.cancel_add_resend(src)
        self.fault_detector.note_alive(src)

    def has_heard_from(self, src: int) -> bool:
        return src in self._heard

    def watch_member(self, pid: int, grace: float = 0.0) -> None:
        self.fault_detector.watch(pid, grace)

    def forget_member(self, pid: int) -> None:
        # only graceful (ordered) departures route through here — the
        # fault-view path below purges convicted members inline
        self.fault_detector.forget(pid)
        self.rmp.drop_source(pid)
        self.romp.purge_queue_of(pid)
        self.romp.purge_source(pid, clean=True)
        self._heard.discard(pid)

    def suspected_members(self) -> Set[int]:
        return self.fault_detector.suspected

    # ------------------------------------------------------------------
    # wire egress (overlay tree routing sits in front of the stack)
    # ------------------------------------------------------------------
    def _transmit_routed(self, address: int, raw: bytes) -> None:
        """SendPath egress: group-addressed first transmissions may be
        tree-routed by the overlay engine; everything else — unicasts,
        retransmissions, control traffic — goes out flat."""
        overlay = self.romp.overlay
        if (overlay is not None and address == self.address
                and overlay.route_egress(raw)):
            return
        self._stack.transmit(address, raw)

    def transmit_raw(self, address: int, raw: bytes) -> None:
        """Raw stack egress for the overlay engine (relay forwarding)."""
        self._stack.transmit(address, raw)

    def join_wire_address(self, address: int) -> None:
        self._stack.endpoint.join(address)

    def leave_wire_address(self, address: int) -> None:
        self._stack.endpoint.leave(address)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _activate(self) -> None:
        """Join the wire address, start heartbeats and the fault detector."""
        self._stack.endpoint.join(self.address)
        self.fault_detector.start()
        for p in self.membership:
            if p != self.pid:
                self.fault_detector.watch(p, grace=self.config.join_grace)
        self.send_path.start_heartbeats()
        if self.romp.overlay is not None:
            self.romp.overlay.activate()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.send_path.stop()
        if self.romp.overlay is not None:
            self.romp.overlay.stop()
        self.fault_detector.stop()
        self.rmp.stop()
        self.pgmp.stop()
        self._stack.registry.unregister_prefix(f"group.{self.group_id}")
        self._stack.endpoint.leave(self.address)

    # ------------------------------------------------------------------
    # datagram input (from the stack router)
    # ------------------------------------------------------------------
    def on_datagram(self, msg: FTMPMessage, raw: bytes) -> None:
        if self.romp.overlay is not None:
            # relay hook sees the *outer* datagram only (a Batch relays
            # whole; its parts recurse inside ReceivePath untouched)
            self.romp.overlay.on_datagram(msg, raw)
        self.receive_path.on_datagram(msg, raw)

    def retain(self, msg: FTMPMessage) -> None:
        """Keep a reliable message for answering RetransmitRequests (§5)."""
        h = msg.header
        raw = self.receive_path.current_raw
        if raw is None:
            raw = encode(msg)
        self.buffer.add(h.source, h.sequence_number, h.timestamp, raw)

    # ------------------------------------------------------------------
    # upward delivery plumbing (called by RMP / ROMP)
    # ------------------------------------------------------------------
    def romp_receive(self, msg: FTMPMessage) -> None:
        self.romp.receive(msg)

    def romp_heartbeat(self, msg: HeartbeatMessage) -> None:
        self.romp.receive_heartbeat(msg)

    def pgmp_raise_suspicion(self, pid: int) -> None:
        self.pgmp.raise_suspicion(pid)
        if self.romp.overlay is not None:
            self.romp.overlay.on_suspicion_changed()

    def pgmp_withdraw_suspicion(self, pid: int) -> None:
        self.pgmp.withdraw_suspicion(pid)
        if self.romp.overlay is not None:
            self.romp.overlay.on_suspicion_changed()

    def pgmp_receive_unreliable(self, msg: FTMPMessage) -> None:
        if isinstance(msg, ConnectRequestMessage):
            self._stack.connections.on_connect_request(msg)

    def pgmp_receive_source_ordered(self, msg: FTMPMessage) -> None:
        self.pgmp.on_source_ordered(msg)

    def pgmp_receive_ordered(self, msg: FTMPMessage) -> None:
        if self.join_barrier is not None:
            key = (msg.header.timestamp, msg.header.source)
            if key < self.join_barrier:
                return  # predates our admission to the group
        self.pgmp.on_ordered(msg)

    def deliver_regular(self, msg: RegularMessage) -> None:
        h = msg.header
        if self.join_barrier is not None and (h.timestamp, h.source) < self.join_barrier:
            return
        self.legacy_keys.discard((h.timestamp, h.source))
        if self.traced:
            self.trace("deliver", src=h.source, seq=h.sequence_number,
                       ts=h.timestamp, bytes=len(msg.payload))
        self._stack.listener.on_deliver(
            Delivery(
                group=self.group_id,
                source=h.source,
                sequence_number=h.sequence_number,
                timestamp=h.timestamp,
                connection_id=msg.connection_id,
                request_num=msg.request_num,
                payload=msg.payload,
                delivered_at=self.now(),
            )
        )

    # ------------------------------------------------------------------
    # send paths (stamping delegated to SendPath)
    # ------------------------------------------------------------------
    def _header(self, mtype: MessageType, reliable: bool) -> FTMPHeader:
        return self.send_path.next_header(mtype, reliable)

    def multicast(self, payload: bytes, connection_id: Optional[ConnectionId] = None,
                  request_num: int = 0) -> bool:
        """Multicast an application (GIOP) payload as a Regular message.

        Returns True when the send went to the wire immediately, False
        when it was accepted but queued (§7 quiescence barrier or
        exhausted flow-control credits) for later release.  With
        ``flow_queue_limit`` set, a send beyond the cap raises
        :class:`FlowControlSaturated` instead of queueing.
        """
        if self.joining:
            raise RuntimeError("cannot multicast before the join completes")
        cid = connection_id if connection_id is not None else ConnectionId.none()
        if not self.romp.can_send_ordered():
            # §7 quiescence after a Connect: hold ordered application
            # traffic until every member is heard past the barrier.
            limit = self.config.flow_queue_limit
            if limit > 0 and len(self._pending_ordered) + self.flow.queue_depth >= limit:
                self.flow.stats.sends_rejected += 1
                raise FlowControlSaturated(
                    f"send queue full ({limit} sends held at the barrier)"
                )
            self.stats.ordered_sends_deferred += 1
            self._pending_ordered.append((payload, cid, request_num))
            return False
        if not self.flow.submit(payload, cid, request_num):
            return False  # backpressured; a stability advance releases it
        self._send_regular(payload, cid, request_num)
        return True

    def _send_regular(self, payload: bytes, cid: ConnectionId, request_num: int) -> None:
        msg = RegularMessage(
            header=self._header(MessageType.REGULAR, reliable=True),
            connection_id=cid,
            request_num=request_num,
            payload=payload,
        )
        self.stats.regulars_sent += 1
        self.flow.note_sent(msg.header.timestamp)
        self.send_path.send(msg)
        self._note_own_ordered(msg)

    def _note_own_ordered(self, msg: FTMPMessage) -> None:
        """LLFT hook: one of our totally-ordered messages just hit the wire.

        The engine delivers it on the spot (the leader fast path) or parks
        it until the leader's stream orders it; our RMP loopback copy is
        discarded on arrival.  No-op in legacy mode.
        """
        if self.romp.llft is not None:
            self.romp.llft.on_own_send(msg)

    def on_send_barrier_cleared(self) -> None:
        # Sends credit-queued before the Connect predate anything the
        # barrier deferred (once a barrier is up, multicast queues there,
        # not in the flow controller): drain them first to keep FIFO.
        # This is also what releases a flow queue held by drain() while
        # the barrier was pending — without it the queue would deadlock
        # if stability never advances again.
        self.flow.drain()
        pending, self._pending_ordered = self._pending_ordered, []
        for payload, cid, request_num in pending:
            if self.flow.submit(payload, cid, request_num, enforce_limit=False):
                self._send_regular(payload, cid, request_num)

    def on_stability_advance(self, stable: int) -> None:
        self.flow.on_stability(stable)

    def credit_blocked(self) -> bool:
        return self.flow.blocked

    def send_retransmit_request(self, source: int, start: int, stop: int) -> None:
        if self.traced:
            self.trace("nack", missing_from=source, start=start, stop=stop)
        msg = RetransmitRequestMessage(
            header=self._header(MessageType.RETRANSMIT_REQUEST, reliable=False),
            processor_id=source,
            start_seq=start,
            stop_seq=stop,
        )
        self.send_path.send(msg)

    def retransmit_raw(self, raw: bytes, address: Optional[int] = None) -> None:
        """Re-send a retained message unchanged except the retrans flag (§3.2)."""
        if self.traced:
            self.trace("resend", bytes=len(raw))
        self.send_path.send_raw(raw, address)

    def send_add_processor(self, membership_timestamp: int, membership: Tuple[int, ...],
                           sequence_numbers: Dict[int, int], new_member: int) -> bytes:
        msg = AddProcessorMessage(
            header=self._header(MessageType.ADD_PROCESSOR, reliable=True),
            membership_timestamp=membership_timestamp,
            membership=membership,
            sequence_numbers=sequence_numbers,
            new_member=new_member,
        )
        raw = self.send_path.send(msg)
        self._note_own_ordered(msg)
        return raw

    def send_remove_processor(self, member: int) -> None:
        msg = RemoveProcessorMessage(
            header=self._header(MessageType.REMOVE_PROCESSOR, reliable=True),
            member_to_remove=member,
        )
        self.send_path.send(msg)
        self._note_own_ordered(msg)

    def send_multigroup_propose(self, mg_seq: int, conflict_class: int,
                                group_ids: Tuple[int, ...], payload: bytes) -> int:
        """Multicast one multi-group proposal copy into this group's
        totally-ordered stream; returns the copy's header timestamp —
        this group's proposal in the timestamp-collection protocol."""
        msg = MultiGroupProposeMessage(
            header=self._header(MessageType.MULTI_GROUP_PROPOSE, reliable=True),
            mg_seq=mg_seq,
            conflict_class=conflict_class,
            groups=group_ids,
            payload=payload,
        )
        mg = self.romp.multigroup
        if mg is not None:
            mg.stats.proposes_sent += 1
        self.send_path.send(msg)
        return msg.header.timestamp

    def send_multigroup_commit(self, origin: int, mg_seq: int, commit_ts: int) -> None:
        """Announce the committed (max) timestamp into this group's stream."""
        msg = MultiGroupCommitMessage(
            header=self._header(MessageType.MULTI_GROUP_COMMIT, reliable=True),
            origin=origin,
            mg_seq=mg_seq,
            commit_ts=commit_ts,
        )
        mg = self.romp.multigroup
        if mg is not None:
            mg.stats.commits_sent += 1
        self.send_path.send(msg)

    def send_suspect(self, membership_timestamp: int, suspects: Tuple[int, ...]) -> None:
        msg = SuspectMessage(
            header=self._header(MessageType.SUSPECT, reliable=True),
            membership_timestamp=membership_timestamp,
            suspects=suspects,
        )
        self.send_path.send(msg)

    def send_membership(self, membership_timestamp: int, current_membership: Tuple[int, ...],
                        sequence_numbers: Dict[int, int],
                        new_membership: Tuple[int, ...]) -> None:
        msg = MembershipMessage(
            header=self._header(MessageType.MEMBERSHIP, reliable=True),
            membership_timestamp=membership_timestamp,
            current_membership=current_membership,
            sequence_numbers=sequence_numbers,
            new_membership=new_membership,
        )
        self.send_path.send(msg)

    def send_connect(self, connection_id: ConnectionId, processor_group_id: int,
                     ip_multicast_address: int, membership_timestamp: int,
                     membership: Tuple[int, ...], address: Optional[int] = None) -> bytes:
        msg = ConnectMessage(
            header=self._header(MessageType.CONNECT, reliable=True),
            connection_id=connection_id,
            processor_group_id=processor_group_id,
            ip_multicast_address=ip_multicast_address,
            membership_timestamp=membership_timestamp,
            membership=membership,
        )
        raw = self.send_path.send(msg, address=address)
        self._note_own_ordered(msg)
        return raw

    # ------------------------------------------------------------------
    # membership state changes (called by PGMP)
    # ------------------------------------------------------------------
    def install_view(self, membership: Tuple[int, ...], view_timestamp: int,
                     added: Tuple[int, ...], removed: Tuple[int, ...], reason: str) -> None:
        prev_membership = self.membership
        llft = self.romp.llft
        if llft is not None:
            # hold the fast path until on_view_installed below has flushed
            # the parked backlog — a send from the view-change listener
            # must not overtake the takeover batch in the delivery order
            llft.begin_install()
        self.membership = tuple(sorted(membership))
        self.view_timestamp = view_timestamp
        self.pgmp.reset_after_view()
        if self.romp.overlay is not None:
            self.romp.overlay.on_view_installed()
        for p in added:
            self.romp.flush_staging(p)
        if self.traced:
            self.trace("view", reason=reason, membership=self.membership,
                       view_ts=view_timestamp)
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=self.membership,
                view_timestamp=view_timestamp,
                added=tuple(added),
                removed=tuple(removed),
                reason=reason,
                installed_at=self.now(),
            )
        )
        if llft is not None:
            llft.on_view_installed(prev_membership, reason)
        self.romp.evaluate()

    def install_fault_view(self, membership: Tuple[int, ...], view_timestamp: int,
                           removed: Tuple[int, ...],
                           sync_targets: Optional[Dict[int, int]] = None) -> None:
        """Install a view that excludes convicted processors (§7.2)."""
        targets = sync_targets or {}
        for r in removed:
            # Anything from the convicted member beyond the synchronized
            # prefix was not received by every survivor: drop it.  The rest
            # is grandfathered — deliverable after the member's removal
            # (virtual synchrony: identical delivery sets at all survivors).
            self.romp.purge_queue_after(r, targets.get(r, 0))
            for key in self.romp.keys_from(r):
                self.legacy_keys.add(key)
            self.fault_detector.forget(r)
            self.rmp.drop_source(r)
            self.romp.purge_source(r)
            self._heard.discard(r)
        if self.romp.multigroup is not None:
            # The §7.2 sync equalised the release prefix across survivors,
            # so "still uncommitted" is the same fact everywhere: abort the
            # convicted origins' dangling proposals consistently (their
            # commits, if ever sent, did not reach any survivor).
            for r in removed:
                self.romp.multigroup.abort_origin(r)
        self.install_view(membership, view_timestamp, added=(), removed=removed,
                          reason="fault")
        if self.traced:
            self.trace("fault", convicted=tuple(removed))
        self._stack.listener.on_fault_report(
            FaultReport(group=self.group_id, convicted=tuple(removed),
                        reported_at=self.now())
        )

    def evict_self(self, reason: str, view_timestamp: int) -> None:
        """We were removed (RemoveProcessor or exclusion by survivors)."""
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=(),
                view_timestamp=view_timestamp,
                added=(),
                removed=(self.pid,),
                reason=reason,
                installed_at=self.now(),
            )
        )
        self._stack.remove_group(self.group_id)

    def seed_provisional_join(self, membership: Tuple[int, ...], view_timestamp: int,
                              join_barrier: Tuple[int, int]) -> None:
        """Adopt an AddProcessor's snapshot while still joining.

        Provisional: :meth:`complete_join` installs the definitive view
        when the AddProcessor is *ordered*.  Heartbeats start here — the
        ordering gate covers our own pid, and only our loopbacked sends
        advance it — but the fault detector and the view upcall wait for
        completion.  A re-seed (fresh AddProcessor after the first one's
        snapshot went stale) drops sources the new snapshot no longer
        lists, so their unfillable gaps stop generating NACKs.
        """
        starting = self.join_barrier is None
        dropped = set(self.membership) - set(membership)
        self.membership = tuple(sorted(membership))
        self.view_timestamp = view_timestamp
        self.join_barrier = join_barrier
        for gone in dropped:
            self.forget_member(gone)
        if starting:
            self.send_path.start_heartbeats()
        if self.romp.overlay is not None:
            # established members tree-route toward us the moment they
            # install the add view — bind our unicast address *now* or
            # their Regulars (and the AddProcessor's ordering traffic)
            # never reach us and the join deadlocks
            self.romp.overlay.prepare_join()
        self.romp.evaluate()

    def complete_join(self, membership: Tuple[int, ...], view_timestamp: int,
                      join_barrier: Tuple[int, int]) -> None:
        """Finish the new-member bootstrap once our AddProcessor is ordered."""
        if not self.joining:
            return
        self.joining = False
        self.join_barrier = join_barrier
        self.membership = tuple(sorted(membership))
        self.view_timestamp = view_timestamp
        self._activate()
        # Announce ourselves at once so the initiator stops retransmitting
        # the AddProcessor and the others' ordering includes us promptly.
        msg = HeartbeatMessage(header=self._header(MessageType.HEARTBEAT, reliable=False))
        self.send_path.send(msg)
        self._stack.listener.on_view_change(
            ViewChange(
                group=self.group_id,
                membership=self.membership,
                view_timestamp=view_timestamp,
                added=(self.pid,),
                removed=(),
                reason="add",
                installed_at=self.now(),
            )
        )
        if self.romp.llft is not None:
            self.romp.llft.on_join_completed()

    # ------------------------------------------------------------------
    # connection migration (ordered Connect, §7)
    # ------------------------------------------------------------------
    def apply_connect_migration(self, msg: ConnectMessage) -> None:
        # a Connect may bind a *new* logical connection onto this existing
        # group (shared processor group, §7) rather than migrate it
        self._stack.connections.on_ordered_connect(msg)
        new_addr = msg.ip_multicast_address
        migrated = new_addr != self.address
        if migrated:
            # the window is bound to the old address: drain it first
            self.send_path.flush()
            self._stack.endpoint.leave(self.address)
            self.address = new_addr
            self._stack.endpoint.join(new_addr)
            if self.romp.overlay is not None:
                self.romp.overlay.on_address_changed()
        self.view_timestamp = max(self.view_timestamp, msg.header.timestamp)
        # §7 quiescence: no ordered transmissions until every member is
        # heard past the Connect's timestamp (their heartbeats get us there).
        self.romp.set_send_barrier(msg.header.timestamp)
        self._stack.connections.apply_migration(msg.connection_id, new_addr)
        binding = self._stack.connections.binding(msg.connection_id)
        if binding is not None and migrated:
            self._stack.notify_connection(binding, migrated=True)
