"""Overlay dissemination and aggregated stability (extension).

The paper assumes one LAN with IP multicast: every Regular fans out to
all members, and §6 stability waits for an ack timestamp from *every*
member, so both datagram cost and the stability path grow linearly with
group size.  Overlay-based atomic multicast (cf. FlexCast, arXiv
2309.14074) keeps dissemination genuine while routing through a tree;
``FTMPConfig.overlay_mode`` enables that discipline here:

* **tree derivation.**  The members are arranged into a deterministic
  k-ary tree over the *sorted* current membership: the member at sorted
  index ``i`` has parent ``(i-1)//k`` and children ``k*i+1 .. k*i+k``.
  Every member derives the identical tree from the identical view, and
  the tree is recomputed at every view install — PGMP membership stays
  the single source of truth.  Between views, a member that *suspects* a
  processor provisionally recomputes its tree without the suspect, so a
  crashed interior relay is routed around long before the §7.2 round
  evicts it.

* **dissemination.**  A member's own first-transmission Regular / Batch
  datagrams go to its tree neighbours (and itself) as unicasts instead
  of the flat group fan-out; an interior relay forwards each datagram
  once to every neighbour except the one it arrived from.  The flat
  group address stays joined and everything else — NACKs,
  retransmissions, Suspect/Membership/Add/Remove, the §7.2 drain —
  stays flat multicast, so recovery and reconfiguration are exactly the
  paper's machinery.

* **aggregated stability.**  Instead of every member observing every
  other member's acks, each member periodically sends one compact
  :class:`~.messages.AckSummaryMessage` per tree edge.  The summary to
  neighbour ``n`` carries the minimum ack/cover timestamp over *this*
  side of the ``(self, n)`` edge — own values folded with the latest
  summaries from every other neighbour — so each member learns the
  group-wide stability floor in O(depth) hops and O(k) messages per
  interval.  A floor over an incomplete scope is never guessed: until
  every other neighbour has reported (and whenever the local tree
  excludes a suspect), the edge reports ``0`` ("unknown") and
  :meth:`stability_floor` falls back to the legacy §6 minimum — an
  underestimate is always sound for GC and flow-control credits.

* **progress + liveness entries.**  Each summary also carries per-source
  ``(pid, seq, ts)`` progress entries for the members on the sender's
  side of the edge (see :class:`~.messages.AckSummaryMessage`).  They
  serve double duty: a receiver *adopts* progress (NACK-recover to
  ``seq``, then advance the source's order timestamp to ``ts``, keeping
  the §6 cover gate moving without all-pair heartbeats), and an entry's
  mere presence is transitive liveness evidence — heartbeats are
  suppressed in overlay mode, so a member refreshes its fault-detector
  deadline for distant members from the entries that keep flowing
  toward it.  Evidence is only forwarded while fresh (half the suspect
  timeout), and only *away* from its subject over the tree, so a dead
  member's listings drain hop-by-hop and every member's detector still
  times out — PGMP's majority-conviction rule keeps working.
  Transitively heard members get an extra grace of one suspect timeout
  on top (evidence crosses up to ``depth`` hops of summary intervals).

Everything here is instantiated only when ``overlay_mode`` is on; with
the knob off the engine does not exist and the stack is bit-identical
legacy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Optional, Set, Tuple

from .constants import MessageType
from .messages import AckSummaryMessage, FTMPMessage
from .wire import decode, encode

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import ProcessorGroup

__all__ = ["OVERLAY_UNICAST_BASE", "OverlayStats", "OverlayDissemination",
           "unicast_address", "tree_links"]

#: Base of the per-member unicast address space: member ``p`` of the group
#: at flat address ``a`` listens on ``BASE + a * 65536 + p``.  Computed
#: from the *current* group address at send time, so a §7 Connect
#: migration moves the whole unicast family with the group.
OVERLAY_UNICAST_BASE = 0x40000000

# wire-format facts used to classify raw datagrams without decoding
# (offsets fixed by the §3.2 header layout in repro.core.wire)
_TYPE_OFFSET = 7
_FLAGS_OFFSET = 6
_FLAG_RETRANSMISSION = 0x02
_REGULAR = int(MessageType.REGULAR)
_BATCH = int(MessageType.BATCH)

#: relay dedupe LRU depth (suppresses duplicate forwards and transient
#: routing ping-pong while trees are momentarily inconsistent)
_RELAY_SEEN_CAP = 4096


def unicast_address(group_address: int, pid: int) -> int:
    """The overlay unicast address of ``pid`` in the group at ``group_address``."""
    return OVERLAY_UNICAST_BASE + group_address * 65536 + pid


def tree_links(members: Tuple[int, ...], fanout: int, pid: int
               ) -> Tuple[Optional[int], Tuple[int, ...], Dict[int, int]]:
    """Derive ``pid``'s (parent, children, toward) in the k-ary tree.

    ``members`` must be sorted; index ``i`` has parent ``(i-1)//k`` and
    children ``k*i+1 .. k*i+k``.  ``toward`` maps every other member to
    the tree neighbour on the path to it (the routing table for relay
    scoping and directional liveness).
    """
    k = max(1, fanout)
    index = {p: j for j, p in enumerate(members)}
    i = index.get(pid)
    if i is None or len(members) < 2:
        return None, (), {}
    n = len(members)
    parent = members[(i - 1) // k] if i > 0 else None
    first = k * i + 1
    children = tuple(members[j] for j in range(first, min(first + k, n)))
    toward: Dict[int, int] = {}
    for j, p in enumerate(members):
        if j == i:
            continue
        a, prev = j, j
        while a != i and a != 0:
            prev, a = a, (a - 1) // k
        if a == i:
            toward[p] = members[prev]  # p is in our subtree, via that child
        else:
            # climbed to the root without meeting us: p is beyond the parent
            toward[p] = parent  # type: ignore[assignment]  # i > 0 here
    return parent, children, toward


@dataclass
class OverlayStats:
    """Overlay dissemination counters (read by E21 and the oracles)."""

    tree_rebuilds: int = 0  #: view installs + provisional suspect reroutes
    regulars_tree_routed: int = 0  #: own first-transmission unicast copies
    relayed_copies: int = 0  #: datagram copies forwarded as a relay
    relay_skips_unrouted: int = 0  #: arrivals from sources not in our tree
    summaries_sent: int = 0
    summaries_received: int = 0
    entries_received: int = 0  #: progress entries folded in
    progress_adoptions: int = 0  #: order-timestamp advances from entries
    gap_disclosures: int = 0  #: NACK recoveries triggered by entries
    liveness_refreshes: int = 0  #: fault-detector refreshes from entries
    floor_advances: int = 0  #: aggregated stability floor advances


class OverlayDissemination:
    """Per-group overlay engine: tree routing + aggregated stability.

    Constructed by :class:`~.romp.ROMP` (mirroring the LLFT engine) only
    when ``overlay_mode`` is on; holds the tree, the per-edge aggregation
    scope state, the per-source progress vector and the transitive
    liveness evidence clock.
    """

    def __init__(self, group: "ProcessorGroup"):
        self._g = group
        self.stats = OverlayStats()
        self._active = False
        self._joined_addr: Optional[int] = None
        #: sorted tree membership (current view minus local suspects)
        self._members: Tuple[int, ...] = ()
        self._member_set: Set[int] = set()
        self._parent: Optional[int] = None
        self._children: Tuple[int, ...] = ()
        #: member pid -> tree neighbour on the path toward it
        self._toward: Dict[int, int] = {}
        #: best known per-source progress, max-merged: pid -> (seq, ts)
        self._best: Dict[int, Tuple[int, int]] = {}
        #: local time we last saw liveness evidence for a member
        self._alive_at: Dict[int, float] = {}
        #: latest scoped ack/cover reported by each current tree neighbour
        self._nbr_ack: Dict[int, int] = {}
        self._nbr_cover: Dict[int, int] = {}
        #: highest aggregated floor returned this view (monotone clamp)
        self._floor_best = 0
        #: relay dedupe LRU over (source, datagram-hash)
        self._relay_seen: Set[Tuple[int, int]] = set()
        self._relay_order: Deque[Tuple[int, int]] = deque()
        self._timer = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare_join(self) -> None:
        """Bind the unicast address before the §7.1 join completes.

        Once the established members install the add view they tree-route
        their Regulars, and the joiner's copies arrive on its *unicast*
        address — which must therefore be joined while the joiner is still
        waiting for the AddProcessor to be ordered, or its cover never
        advances and the join deadlocks.  The engine itself (tree,
        summaries) still starts in :meth:`activate`.
        """
        g = self._g
        if self._joined_addr is None:
            self._joined_addr = unicast_address(g.address, g.pid)
            g.join_wire_address(self._joined_addr)

    def activate(self) -> None:
        """Join our unicast address, build the tree, start summaries."""
        self._active = True
        self.prepare_join()
        self._recompute_tree()
        self._arm()

    def stop(self) -> None:
        self._active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._joined_addr is not None:
            self._g.leave_wire_address(self._joined_addr)
            self._joined_addr = None

    def on_view_installed(self) -> None:
        """A new view: rebuild the tree and reset the aggregation scope."""
        if not self._active:
            return  # a joining member's engine starts in activate()
        # the floor clamp must not survive a membership change: new
        # members start at ack 0, exactly like the legacy §6 minimum
        self._floor_best = 0
        self._recompute_tree()

    def on_suspicion_changed(self) -> None:
        """Provisionally route around (or back through) a suspect."""
        if self._active:
            self._recompute_tree()

    def on_address_changed(self) -> None:
        """§7 Connect migration moved the group address: rebind unicast."""
        if not self._active:
            return
        g = self._g
        if self._joined_addr is not None:
            g.leave_wire_address(self._joined_addr)
        self._joined_addr = unicast_address(g.address, g.pid)
        g.join_wire_address(self._joined_addr)

    def _recompute_tree(self) -> None:
        g = self._g
        suspects = g.suspected_members()
        members = tuple(p for p in g.membership
                        if p == g.pid or p not in suspects)
        self._members = members
        self._member_set = set(members)
        self._parent, self._children, self._toward = tree_links(
            members, g.config.overlay_fanout, g.pid
        )
        # scope state binds to the edge set; a new edge set means every
        # neighbour report must be re-earned before the floor is trusted
        self._nbr_ack.clear()
        self._nbr_cover.clear()
        # keep a recently-departed member's progress evidence: after a
        # §7.1 remove is ordered *here*, laggards still gate their cover
        # on the departed clock, and with heartbeats suppressed our
        # entries are their only way to learn its final timestamps and
        # order the Remove themselves.  Evidence past the liveness
        # horizon stops being emitted anyway; this purge is hygiene.
        current = set(g.membership)
        now = g.now()
        keep = g.config.suspect_timeout
        for p in [p for p in self._best
                  if p not in current
                  and now - self._alive_at.get(p, -1.0e18) > keep]:
            del self._best[p]
        for p in [p for p in self._alive_at
                  if p not in current and p not in self._best]:
            del self._alive_at[p]
        self.stats.tree_rebuilds += 1
        g.trace("overlay_tree", parent=self._parent, children=self._children,
                members=len(members))

    def note_departure(self, pid: int, final_ts: int) -> None:
        """Snapshot a departing member's final order timestamp (called by
        ROMP just before it forgets the source at view installation).

        The removal's delivery required our cover — and hence this
        timestamp — to reach the removal's own timestamp, so re-emitting
        it as a progress entry is exactly what a laggard that has not
        ordered the removal yet needs to advance its gate.  Refreshing
        the evidence clock here keeps the entry inside the emission
        freshness horizon for a full window after the view change."""
        b = self._best.get(pid)
        if b is None:
            self._best[pid] = (0, final_ts)
        elif final_ts > b[1]:
            self._best[pid] = (b[0], final_ts)
        self._alive_at[pid] = self._g.now()

    def _neighbours(self) -> Tuple[int, ...]:
        if self._parent is None:
            return self._children
        return (self._parent,) + self._children

    # ------------------------------------------------------------------
    # egress: route own first-transmission Regulars over the tree
    # ------------------------------------------------------------------
    def route_egress(self, raw: bytes) -> bool:
        """Tree-route one group-addressed egress datagram.

        Returns True when handled (unicast to self + every tree
        neighbour); False tells the caller to fall back to the flat
        group multicast (control traffic, retransmissions, or this
        member currently outside its own tree).
        """
        if not self._active or self._g.pid not in self._member_set:
            return False
        if raw[_TYPE_OFFSET] not in (_REGULAR, _BATCH):
            return False
        if raw[_FLAGS_OFFSET] & _FLAG_RETRANSMISSION:
            return False
        g = self._g
        addr = g.address
        transmit = g.transmit_raw
        # the self-copy preserves the flat path's loopback delivery but
        # never touches the NIC (see _loopback)
        self._loopback(raw)
        copies = 0
        if self._parent is not None:
            transmit(unicast_address(addr, self._parent), raw)
            copies += 1
        for c in self._children:
            transmit(unicast_address(addr, c), raw)
            copies += 1
        self.stats.regulars_tree_routed += copies
        return True

    def _loopback(self, raw: bytes) -> None:
        """Deliver one of our own datagrams through the local receive path.

        The flat path's self-copy rides the single group serialization
        for free (IP-multicast loopback); a real unicast deployment hands
        its own copy to the receive path in memory and never serializes
        it through the NIC.  Charging the simulated egress a full
        serialization per self-copy would overstate overlay cost, so the
        self-copy skips the wire — deferred one scheduler turn to keep
        the loopback's event boundary (no re-entrant delivery inside the
        send call).
        """
        g = self._g
        g.schedule(0.0, lambda: g.on_datagram(decode(raw), raw))

    # ------------------------------------------------------------------
    # ingress: relay + direct liveness evidence
    # ------------------------------------------------------------------
    def on_datagram(self, msg: FTMPMessage, raw: bytes) -> None:
        """Observe one arriving datagram; relay Regulars down the tree."""
        h = msg.header
        src = h.source
        g = self._g
        if src != g.pid and not h.retransmission:
            self._alive_at[src] = g.now()
        if not self._active or src == g.pid or h.retransmission:
            return
        t = h.message_type
        if t is not MessageType.REGULAR and t is not MessageType.BATCH:
            return
        arrival = self._toward.get(src)
        if arrival is None:
            self.stats.relay_skips_unrouted += 1
            return
        key = (src, hash(raw))
        if key in self._relay_seen:
            return  # duplicate arrival (or transient routing echo)
        self._relay_seen.add(key)
        self._relay_order.append(key)
        if len(self._relay_order) > _RELAY_SEEN_CAP:
            self._relay_seen.discard(self._relay_order.popleft())
        addr = g.address
        transmit = g.transmit_raw
        relayed = 0
        if self._parent is not None and self._parent != arrival:
            transmit(unicast_address(addr, self._parent), raw)
            relayed += 1
        for c in self._children:
            if c != arrival:
                transmit(unicast_address(addr, c), raw)
                relayed += 1
        self.stats.relayed_copies += relayed

    # ------------------------------------------------------------------
    # periodic per-edge summaries
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        self._timer = self._g.schedule(
            self._g.config.overlay_summary_interval, self._tick
        )

    def _tick(self) -> None:
        if not self._active:
            return
        try:
            self._emit_summaries()
        finally:
            self._arm()

    def _emit_summaries(self) -> None:
        g = self._g
        me = g.pid
        addr = g.address
        romp = g.romp
        rmp = g.rmp
        # refresh our own observation of every member's stream into the
        # progress vector (max-merge keeps each entry's claim a fact).
        # Recently-departed members are refreshed too: our cover had to
        # reach the RemoveProcessor's timestamp before we could order it,
        # so order_ts holds the departed member's *final* clock — the
        # exact evidence a laggard still gating on that clock needs.
        membership = set(g.membership)
        departed = tuple(p for p in self._best if p not in membership)
        for p in tuple(g.membership) + departed:
            seq = rmp.contiguous_top(p)
            ts = romp.order_ts(p)
            b = self._best.get(p)
            if b is None:
                self._best[p] = (seq, ts)
            elif seq > b[0] or ts > b[1]:
                self._best[p] = (max(seq, b[0]), max(ts, b[1]))
        # the self-summary replaces the heartbeat loopback: it advances
        # our own stream's order timestamp in our own cover gate.  Pure
        # local bookkeeping, so it never touches the NIC.
        keepalive = AckSummaryMessage(
            header=g.send_path.next_header(MessageType.ACK_SUMMARY,
                                           reliable=False),
            kind=AckSummaryMessage.KIND_DOWN, cover_ts=0, ack_ts=0,
        )
        self._loopback(encode(keepalive))
        if me not in self._member_set:
            return
        now = g.now()
        horizon = g.config.suspect_timeout * 0.5
        # a tree that excludes a suspect no longer covers the membership:
        # report "unknown" so nobody builds a floor on a partial scope
        full_scope = len(self._members) == len(g.membership)
        own_ack = romp.ack_timestamp
        own_cover = romp.cover_timestamp()
        neighbours = self._neighbours()
        # recently-departed members (ordered out of our view, evidence
        # still fresh) go to *every* neighbour: a laggard that has not
        # ordered the RemoveProcessor yet still gates its cover on the
        # departed clock, and our entries are its only channel
        for nbr in neighbours:
            ack_out = cover_out = 0
            if full_scope:
                others = [m for m in neighbours if m != nbr]
                if all(m in self._nbr_ack for m in others):
                    ack_out = min([own_ack] + [self._nbr_ack[m] for m in others])
                    cover_out = min(
                        [own_cover] + [self._nbr_cover.get(m, 0) for m in others]
                    )
            entries = []
            for p in self._members + departed:
                if p != me and self._toward.get(p) == nbr:
                    continue  # p lies beyond nbr: evidence must not echo back
                if p == me or now - self._alive_at.get(p, -1.0e18) <= horizon:
                    s, t = self._best.get(p, (0, 0))
                    entries.append((p, s, t))
            kind = (AckSummaryMessage.KIND_UP if nbr == self._parent
                    else AckSummaryMessage.KIND_DOWN)
            self._send_summary(unicast_address(addr, nbr), kind,
                               cover_out, ack_out, tuple(entries))

    def _send_summary(self, address: int, kind: int, cover: int, ack: int,
                      entries: Tuple[Tuple[int, int, int], ...]) -> None:
        g = self._g
        msg = AckSummaryMessage(
            header=g.send_path.next_header(MessageType.ACK_SUMMARY,
                                           reliable=False),
            kind=kind,
            cover_ts=cover,
            ack_ts=ack,
            entries=entries,
        )
        self.stats.summaries_sent += 1
        g.send_path.send(msg, address=address)

    # ------------------------------------------------------------------
    # summary ingestion (called by RMP after its heartbeat-style checks)
    # ------------------------------------------------------------------
    def on_summary(self, msg: AckSummaryMessage) -> None:
        g = self._g
        src = msg.header.source
        if src == g.pid:
            return  # our own loopback keepalive
        self.stats.summaries_received += 1
        if self._active and (src == self._parent or src in self._children):
            # scoped floor reports bind to the edge; 0 means "unknown"
            # (incomplete scope at the sender) and clears the report
            if msg.ack_ts > 0:
                self._nbr_ack[src] = max(msg.ack_ts, self._nbr_ack.get(src, 0))
            else:
                self._nbr_ack.pop(src, None)
            if msg.cover_ts > 0:
                self._nbr_cover[src] = max(msg.cover_ts,
                                           self._nbr_cover.get(src, 0))
            else:
                self._nbr_cover.pop(src, None)
        # entries are adopted even while the engine is inactive (joining):
        # with established members' heartbeats suppressed, the entries are
        # the only way a joiner's cover gate learns distant members'
        # progress — without them the AddProcessor is never ordered
        # locally and the join deadlocks
        membership = self._g.membership
        rmp = g.rmp
        romp = g.romp
        now = g.now()
        grace = g.config.suspect_timeout
        adopted = False
        for pid, seq, ts in msg.entries:
            if pid == g.pid or pid not in membership:
                continue
            self.stats.entries_received += 1
            # transitive liveness: the entry's presence proves somebody
            # heard pid recently; grant transit slack of one timeout
            self._alive_at[pid] = now
            g.note_alive(pid)
            g.watch_member(pid, grace=grace)
            self.stats.liveness_refreshes += 1
            b = self._best.get(pid)
            if b is None:
                self._best[pid] = (seq, ts)
            elif seq > b[0] or ts > b[1]:
                self._best[pid] = (max(seq, b[0]), max(ts, b[1]))
            if seq > rmp.contiguous_top(pid):
                # the scope holds pid's stream through seq: expose the
                # gap so plain §5 NACK recovery fetches it
                rmp.disclose(pid, seq)
                self.stats.gap_disclosures += 1
            elif ts > romp.order_ts(pid):
                # contiguous through seq already: every message from pid
                # with timestamp <= ts is in hand, so the cover gate may
                # advance past ts for this source
                romp.adopt_order_progress(pid, ts)
                self.stats.progress_adoptions += 1
                adopted = True
        if adopted:
            romp.evaluate()
        else:
            romp.overlay_stability_pulse()

    # ------------------------------------------------------------------
    # aggregated stability floor (read by ROMP.stability_timestamp)
    # ------------------------------------------------------------------
    def stability_floor(self) -> int:
        """Group-wide stability lower bound from the edge aggregation.

        0 while the scope is incomplete (a neighbour has not reported,
        or the local tree excludes a suspect) — the caller then falls
        back to the legacy §6 minimum.  Monotone within a view; reset at
        view install like the legacy minimum (new members ack from 0).
        """
        g = self._g
        floor = 0
        if (self._active
                and g.pid in self._member_set
                and len(self._members) == len(g.membership)):
            neighbours = self._neighbours()
            if all(n in self._nbr_ack for n in neighbours):
                floor = min([g.romp.ack_timestamp]
                            + [self._nbr_ack[n] for n in neighbours])
        if floor > self._floor_best:
            self._floor_best = floor
            self.stats.floor_advances += 1
        return self._floor_best
