"""Heartbeat-based processor fault detection (paper §2, §5, §7.2).

"The Heartbeat messages also monitor the liveness of the processors and
serve as a processor fault detector."  Every received datagram from a
member refreshes its liveness; a member silent for ``suspect_timeout``
becomes locally suspected, and PGMP is told so it can multicast a Suspect
message.  Suspicion is withdrawn automatically if the member is heard from
again before conviction (the "heuristic algorithms to increase the accuracy
of the processor fault detectors" the paper alludes to).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import GroupContext

__all__ = ["FaultDetector", "FaultDetectorStats"]


@dataclass
class FaultDetectorStats:
    suspicions_raised: int = 0
    suspicions_withdrawn: int = 0


class FaultDetector:
    """Per-group liveness monitor driving PGMP suspicion."""

    def __init__(self, group: "GroupContext"):
        self._g = group
        self._last_heard: Dict[int, float] = {}
        self._suspected: Set[int] = set()
        self._timer: Optional[object] = None
        self.stats = FaultDetectorStats()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic liveness scans."""
        if self._timer is None:
            self._arm()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self) -> None:
        period = max(self._g.config.suspect_timeout / 4.0, 1e-4)
        self._timer = self._g.schedule(period, self._scan)

    # ------------------------------------------------------------------
    def note_alive(self, pid: int) -> None:
        """Record that a datagram was received from ``pid``."""
        self._last_heard[pid] = self._g.now()
        if pid in self._suspected:
            # heard from a suspect again: withdraw the suspicion
            self._suspected.discard(pid)
            self.stats.suspicions_withdrawn += 1
            self._g.pgmp_withdraw_suspicion(pid)

    def watch(self, pid: int, grace: float = 0.0) -> None:
        """Start monitoring a (possibly new) member, with a grace period."""
        self._last_heard[pid] = self._g.now() + grace

    def forget(self, pid: int) -> None:
        """Stop monitoring a departed member."""
        self._last_heard.pop(pid, None)
        self._suspected.discard(pid)

    @property
    def suspected(self) -> Set[int]:
        """Members currently under local suspicion."""
        return set(self._suspected)

    # ------------------------------------------------------------------
    def _scan(self) -> None:
        self._timer = None
        now = self._g.now()
        timeout = self._g.config.suspect_timeout
        membership = self._g.membership
        # note_alive records *every* datagram source (any processor may
        # send to the group address), so liveness entries accumulate for
        # non-members; purge them here or the map grows without bound
        # under connection/churn traffic.
        for pid in [p for p in self._last_heard if p not in membership]:
            del self._last_heard[pid]
            self._suspected.discard(pid)
        for pid in membership:
            if pid == self._g.pid or pid in self._suspected:
                continue
            last = self._last_heard.get(pid)
            if last is None:
                # never heard: start the clock from now
                self._last_heard[pid] = now
                continue
            if now - last > timeout:
                self._suspected.add(pid)
                self.stats.suspicions_raised += 1
                self._g.pgmp_raise_suspicion(pid)
        self._arm()
