"""Protocol constants for FTMP (paper §3.2).

The paper fixes ``magic = "FTMP"`` and ``version = 1.0``, and defines nine
message types (Figure 3).  Numeric values for the types are not given in
the paper; we assign them in the order of Figure 3.
"""

from __future__ import annotations

import enum

__all__ = ["MAGIC", "VERSION_MAJOR", "VERSION_MINOR", "HEADER_SIZE", "MessageType"]

MAGIC = b"FTMP"
VERSION_MAJOR = 1
VERSION_MINOR = 0

#: Fixed FTMP header length in bytes (see :mod:`repro.core.wire`).
HEADER_SIZE = 40


class MessageType(enum.IntEnum):
    """The nine FTMP message types of Figure 3, plus the Batch envelope.

    ``BATCH`` is an extension of this reproduction: a transport-level
    envelope packing several small encoded messages into one datagram.
    The receive path unpacks it before RMP ever sees the contents, so the
    protocol layers stay batch-oblivious.

    ``ACK_SUMMARY`` is the overlay-dissemination extension's aggregated
    stability control message: a relay folds its subtree's minimum
    cover/ack timestamps into one compact unreliable message per tree
    edge, replacing the flat O(n) all-member ack observation (§6) with
    an O(depth) aggregation.  Like Heartbeat it is unreliable and its
    header piggybacks the sender's live seq/timestamp/ack values.
    """

    REGULAR = 1
    RETRANSMIT_REQUEST = 2
    HEARTBEAT = 3
    CONNECT_REQUEST = 4
    CONNECT = 5
    ADD_PROCESSOR = 6
    REMOVE_PROCESSOR = 7
    SUSPECT = 8
    MEMBERSHIP = 9
    BATCH = 10
    ACK_SUMMARY = 11
    #: Multi-group atomic multicast (extension): a Propose rides each
    #: addressed group's totally-ordered stream to pick up that group's
    #: Lamport position; a Commit announces the max over all groups.
    #: Both are totally ordered: the commit's own release position (its
    #: header timestamp exceeds the announced commit timestamp, since
    #: the origin's clock ticked between the sends) is the proof that
    #: nothing with a smaller ordering key can still arrive, so the
    #: delivery stage needs no extra stability wait.
    MULTI_GROUP_PROPOSE = 12
    MULTI_GROUP_COMMIT = 13


#: Message types that RMP delivers reliably and in source order (Figure 3).
#: Heartbeat / RetransmitRequest / ConnectRequest are excluded: they are
#: delivered (or consumed) unreliably as they arrive.
RELIABLE_TYPES = frozenset(
    {
        MessageType.REGULAR,
        MessageType.CONNECT,
        MessageType.ADD_PROCESSOR,
        MessageType.REMOVE_PROCESSOR,
        MessageType.SUSPECT,
        MessageType.MEMBERSHIP,
        MessageType.MULTI_GROUP_PROPOSE,
        MessageType.MULTI_GROUP_COMMIT,
    }
)

#: Message types that ROMP additionally delivers in causal + total order
#: (Figure 3).  Suspect and Membership stay source-ordered only — they must
#: keep flowing while total ordering is stalled by a faulty processor.
TOTALLY_ORDERED_TYPES = frozenset(
    {
        MessageType.REGULAR,
        MessageType.CONNECT,
        MessageType.ADD_PROCESSOR,
        MessageType.REMOVE_PROCESSOR,
        MessageType.MULTI_GROUP_PROPOSE,
        MessageType.MULTI_GROUP_COMMIT,
    }
)
