"""Structured protocol event tracing.

Attach a :class:`Tracer` to an :class:`~repro.core.stack.FTMPStack` to
record what the protocol machinery does — transmissions, deliveries,
gap detections, retransmissions, suspicions, view changes — as structured
:class:`TraceEvent` records.  Zero overhead when no tracer is attached
(one ``is None`` test per hook site).

>>> tracer = Tracer()
>>> stack = FTMPStack(endpoint, config, listener)
>>> stack.tracer = tracer
... # run the protocol ...
>>> tracer.count("nack")
3
>>> for ev in tracer.of_kind("view"):
...     print(ev)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event."""

    time: float
    processor: int
    group: int
    kind: str
    detail: Dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (f"[{self.time:.6f}] p{self.processor} g{self.group} "
                f"{self.kind:<12} {fields}")


class Tracer:
    """Collects protocol events, optionally bounded.

    Event kinds emitted by the stack:

    ========  =====================================================
    send      any transmission (type, seq, ts)
    recv      any decoded datagram accepted by a group
    deliver   totally-ordered application delivery
    gap       RMP detected missing sequence numbers
    nack      RetransmitRequest sent
    resend    a buffered message retransmitted
    suspect   local suspicion raised / withdrawn
    view      a membership view installed
    fault     a fault report issued
    ========  =====================================================
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, time: float, processor: int, group: int, kind: str,
             **detail: Any) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, processor, group, kind, detail))

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def between(self, start: float, stop: float) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time < stop]

    def timeline(self) -> str:
        """The whole trace as text, one event per line."""
        return "\n".join(str(e) for e in self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
