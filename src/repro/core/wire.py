"""Binary codec for FTMP messages (paper §3, Figure 2).

Layout: a fixed 40-byte header, then a type-specific body.  The first
8 header bytes (magic, version, flags, type) are endianness-independent so
a receiver can read the byte-order flag before decoding the rest — the
same trick GIOP uses.

Header layout (offsets in bytes)::

    0   magic            4s   b"FTMP"
    4   version major    u8
    5   version minor    u8
    6   flags            u8   bit0 = little endian, bit1 = retransmission
    7   message type     u8
    8   message size     u32  (header + body, filled in at encode time)
    12  source processor u32
    16  destination grp  u32
    20  sequence number  u32
    24  message timestamp u64
    32  ack timestamp    u64

Body encodings use length-prefixed collections: ``u16 count`` for
processor lists and sequence-number vectors, ``u32 length`` for payloads.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from .constants import HEADER_SIZE, MAGIC, MessageType
from .messages import (
    AddProcessorMessage,
    BatchMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    FTMPMessage,
    HeartbeatMessage,
    MembershipMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
)

__all__ = [
    "encode",
    "decode",
    "CodecError",
    "header_of",
    "peek_header",
    "mark_retransmission",
]

_FLAG_LITTLE_ENDIAN = 0x01
_FLAG_RETRANSMISSION = 0x02

#: Byte offset of the flags field within the endianness-independent prefix
#: (magic ``4s`` + version ``BB`` precede it).  Kept next to the codec so a
#: header-layout change updates the raw-byte helpers in the same place.
_FLAGS_OFFSET = 6

_PREFIX = struct.Struct("4sBBBB")  # magic, ver_major, ver_minor, flags, type


class CodecError(Exception):
    """Raised on malformed FTMP datagrams."""


class _Writer:
    """Endianness-aware append-only byte writer."""

    __slots__ = ("_parts", "_e")

    def __init__(self, little_endian: bool):
        self._parts: list[bytes] = []
        self._e = "<" if little_endian else ">"

    def u8(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "B", v))

    def u16(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "H", v))

    def u32(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "I", v))

    def u64(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "Q", v))

    def raw(self, b: bytes) -> None:
        self._parts.append(b)

    def blob(self, b: bytes) -> None:
        self.u32(len(b))
        self.raw(b)

    def pid_list(self, pids: Tuple[int, ...]) -> None:
        self.u16(len(pids))
        for p in pids:
            self.u32(p)

    def seq_vector(self, vec: Dict[int, int]) -> None:
        self.u16(len(vec))
        for pid in sorted(vec):
            self.u32(pid)
            self.u32(vec[pid])

    def connection_id(self, cid: ConnectionId) -> None:
        self.u32(cid.client_domain)
        self.u32(cid.client_group)
        self.u32(cid.server_domain)
        self.u32(cid.server_group)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Endianness-aware sequential byte reader with bounds checking."""

    __slots__ = ("_data", "_pos", "_e")

    def __init__(self, data: bytes, pos: int, little_endian: bool):
        self._data = data
        self._pos = pos
        self._e = "<" if little_endian else ">"

    def _take(self, fmt: str):
        s = struct.Struct(self._e + fmt)
        end = self._pos + s.size
        if end > len(self._data):
            raise CodecError("truncated FTMP message body")
        (v,) = s.unpack_from(self._data, self._pos)
        self._pos = end
        return v

    def u8(self) -> int:
        return self._take("B")

    def u16(self) -> int:
        return self._take("H")

    def u32(self) -> int:
        return self._take("I")

    def u64(self) -> int:
        return self._take("Q")

    def blob(self) -> bytes:
        n = self.u32()
        end = self._pos + n
        if end > len(self._data):
            raise CodecError("truncated payload")
        b = self._data[self._pos : end]
        self._pos = end
        return b

    def pid_list(self) -> Tuple[int, ...]:
        n = self.u16()
        return tuple(self.u32() for _ in range(n))

    def seq_vector(self) -> Dict[int, int]:
        n = self.u16()
        return {self.u32(): self.u32() for _ in range(n)}

    def connection_id(self) -> ConnectionId:
        return ConnectionId(self.u32(), self.u32(), self.u32(), self.u32())

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode(msg: FTMPMessage) -> bytes:
    """Serialize an FTMP message; also back-fills ``header.message_size``."""
    h = msg.header
    w = _Writer(h.little_endian)
    _encode_body(msg, w)
    body = w.getvalue()

    size = HEADER_SIZE + len(body)
    h.message_size = size

    flags = 0
    if h.little_endian:
        flags |= _FLAG_LITTLE_ENDIAN
    if h.retransmission:
        flags |= _FLAG_RETRANSMISSION
    prefix = _PREFIX.pack(h.magic, h.version[0], h.version[1], flags, int(h.message_type))
    e = "<" if h.little_endian else ">"
    rest = struct.pack(
        e + "IIIIQQ",
        size,
        h.source,
        h.group,
        h.sequence_number,
        h.timestamp,
        h.ack_timestamp,
    )
    return prefix + rest + body


def _encode_body(msg: FTMPMessage, w: _Writer) -> None:
    if isinstance(msg, RegularMessage):
        w.connection_id(msg.connection_id)
        w.u64(msg.request_num)
        w.blob(msg.payload)
    elif isinstance(msg, RetransmitRequestMessage):
        w.u32(msg.processor_id)
        w.u32(msg.start_seq)
        w.u32(msg.stop_seq)
    elif isinstance(msg, HeartbeatMessage):
        pass
    elif isinstance(msg, ConnectRequestMessage):
        w.connection_id(msg.connection_id)
        w.pid_list(msg.processor_ids)
    elif isinstance(msg, ConnectMessage):
        w.connection_id(msg.connection_id)
        w.u32(msg.processor_group_id)
        w.u32(msg.ip_multicast_address)
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.membership)
    elif isinstance(msg, AddProcessorMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.membership)
        w.seq_vector(msg.sequence_numbers)
        w.u32(msg.new_member)
    elif isinstance(msg, RemoveProcessorMessage):
        w.u32(msg.member_to_remove)
    elif isinstance(msg, SuspectMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.suspects)
    elif isinstance(msg, MembershipMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.current_membership)
        w.seq_vector(msg.sequence_numbers)
        w.pid_list(msg.new_membership)
    elif isinstance(msg, BatchMessage):
        w.u16(len(msg.parts))
        for part in msg.parts:
            w.blob(part)
    else:  # pragma: no cover - exhaustive over FTMPMessage
        raise CodecError(f"unknown message class {type(msg).__name__}")


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def peek_header(data: bytes) -> FTMPHeader:
    """Decode only the 40-byte header (used by traces and filters)."""
    if len(data) < HEADER_SIZE:
        raise CodecError(f"datagram shorter than header: {len(data)} bytes")
    magic, vmaj, vmin, flags, mtype = _PREFIX.unpack_from(data, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    little = bool(flags & _FLAG_LITTLE_ENDIAN)
    e = "<" if little else ">"
    size, source, group, seq, ts, ack = struct.unpack_from(e + "IIIIQQ", data, 8)
    try:
        message_type = MessageType(mtype)
    except ValueError as exc:
        raise CodecError(f"unknown message type {mtype}") from exc
    return FTMPHeader(
        message_type=message_type,
        source=source,
        group=group,
        sequence_number=seq,
        timestamp=ts,
        ack_timestamp=ack,
        retransmission=bool(flags & _FLAG_RETRANSMISSION),
        little_endian=little,
        message_size=size,
        magic=magic,
        version=(vmaj, vmin),
    )


def decode(data: bytes) -> FTMPMessage:
    """Deserialize a full FTMP message (header + body)."""
    h = peek_header(data)
    if h.message_size != len(data):
        raise CodecError(
            f"size field {h.message_size} != datagram length {len(data)}"
        )
    r = _Reader(data, HEADER_SIZE, h.little_endian)
    t = h.message_type
    if t == MessageType.REGULAR:
        return RegularMessage(h, r.connection_id(), r.u64(), r.blob())
    if t == MessageType.RETRANSMIT_REQUEST:
        return RetransmitRequestMessage(h, r.u32(), r.u32(), r.u32())
    if t == MessageType.HEARTBEAT:
        return HeartbeatMessage(h)
    if t == MessageType.CONNECT_REQUEST:
        return ConnectRequestMessage(h, r.connection_id(), r.pid_list())
    if t == MessageType.CONNECT:
        return ConnectMessage(h, r.connection_id(), r.u32(), r.u32(), r.u64(), r.pid_list())
    if t == MessageType.ADD_PROCESSOR:
        return AddProcessorMessage(h, r.u64(), r.pid_list(), r.seq_vector(), r.u32())
    if t == MessageType.REMOVE_PROCESSOR:
        return RemoveProcessorMessage(h, r.u32())
    if t == MessageType.SUSPECT:
        return SuspectMessage(h, r.u64(), r.pid_list())
    if t == MessageType.MEMBERSHIP:
        return MembershipMessage(h, r.u64(), r.pid_list(), r.seq_vector(), r.pid_list())
    if t == MessageType.BATCH:
        n = r.u16()
        return BatchMessage(h, tuple(r.blob() for _ in range(n)))
    raise CodecError(f"unhandled message type {t}")  # pragma: no cover


def header_of(data: bytes) -> FTMPHeader:
    """Alias of :func:`peek_header` for readability at call sites."""
    return peek_header(data)


def mark_retransmission(raw: bytes) -> bytes:
    """Copy of an encoded message with the retransmission flag set (§3.2).

    A retransmission is byte-identical to the original message except for
    this one flag, so holders can re-send retained wire bytes without
    re-encoding (and without touching the sender's clock or counters).
    """
    if len(raw) <= _FLAGS_OFFSET:
        raise CodecError(f"datagram shorter than the flags field: {len(raw)} bytes")
    out = bytearray(raw)
    out[_FLAGS_OFFSET] |= _FLAG_RETRANSMISSION
    return bytes(out)
