"""Binary codec for FTMP messages (paper §3, Figure 2).

Layout: a fixed 40-byte header, then a type-specific body.  The first
8 header bytes (magic, version, flags, type) are endianness-independent so
a receiver can read the byte-order flag before decoding the rest — the
same trick GIOP uses.

Header layout (offsets in bytes)::

    0   magic            4s   b"FTMP"
    4   version major    u8
    5   version minor    u8
    6   flags            u8   bit0 = little endian, bit1 = retransmission
    7   message type     u8
    8   message size     u32  (header + body, filled in at encode time)
    12  source processor u32
    16  destination grp  u32
    20  sequence number  u32
    24  message timestamp u64
    32  ack timestamp    u64

Body encodings use length-prefixed collections: ``u16 count`` for
processor lists and sequence-number vectors, ``u32 length`` for payloads.

Hot-path engineering: the fixed-layout message types (Heartbeat, Regular,
RetransmitRequest, RemoveProcessor) encode in a single precompiled
:class:`struct.Struct` ``pack`` call per message and decode with
``unpack_from`` at fixed offsets — no intermediate slices, no per-field
``struct.pack`` allocations.  The field-at-a-time :class:`_Writer` /
:class:`_Reader` pair survives for the variable-layout membership/control
messages and as the :func:`encode_reference` regression oracle, which must
stay byte-identical to the fast path for every message type.

BATCH framing (compact part records): all parts of a Batch share the
sender's source/group/magic/version with the envelope, so the envelope
body stores one compact record per part instead of each part's full
40-byte header::

    u16  part count
    then per part (compact record, envelope endianness):
        u8   part flags        (bit7 clear)
        u8   part type
        u32  part seq number
        u64  part timestamp
        u64  part ack timestamp
        u16  body length
        ...  body bytes (verbatim)
    or (verbatim record, for parts that do not share the envelope's
    source/group/endianness or exceed the u16 body bound):
        u8   0x80
        u32  part length
        ...  full part encoding

The receiver reconstructs each part's full wire encoding byte-for-byte
(the elided fields come from the envelope header), so retention and
retransmission identity are untouched: a reconstructed part is
indistinguishable from the sender's original encoding.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple, Union

from .constants import HEADER_SIZE, MAGIC, VERSION_MAJOR, VERSION_MINOR, MessageType
from .messages import (
    AckSummaryMessage,
    AddProcessorMessage,
    BatchMessage,
    ConnectionId,
    ConnectMessage,
    ConnectRequestMessage,
    FTMPHeader,
    FTMPMessage,
    HeartbeatMessage,
    MembershipMessage,
    MultiGroupCommitMessage,
    MultiGroupProposeMessage,
    RegularMessage,
    RemoveProcessorMessage,
    RetransmitRequestMessage,
    SuspectMessage,
)

__all__ = [
    "encode",
    "encode_reference",
    "decode",
    "decode_view",
    "CodecError",
    "header_of",
    "peek_header",
    "mark_retransmission",
]

_FLAG_LITTLE_ENDIAN = 0x01
_FLAG_RETRANSMISSION = 0x02
#: Record marker inside a BATCH body: the part is stored verbatim (full
#: encoding) instead of as a compact record.  Lives in the high bit of the
#: record's first byte, which is a flags byte (bits 0-1 used) for compact
#: records — 0x80 can never be a legal part flags value.
_REC_VERBATIM = 0x80

#: Byte offset of the flags field within the endianness-independent prefix
#: (magic ``4s`` + version ``BB`` precede it).  Kept next to the codec so a
#: header-layout change updates the raw-byte helpers in the same place.
_FLAGS_OFFSET = 6

_PREFIX = struct.Struct("4sBBBB")  # magic, ver_major, ver_minor, flags, type

# ----------------------------------------------------------------------
# precompiled fixed layouts, both endiannesses ("<" and ">" suppress
# padding, so these match the historical field-at-a-time encodings)
# ----------------------------------------------------------------------
#: whole header in one call: prefix + size/source/group/seq/ts/ack
_HDR = {
    True: struct.Struct("<4sBBBBIIIIQQ"),
    False: struct.Struct(">4sBBBBIIIIQQ"),
}
#: header + Regular body prefix (connection id ×4, request num, payload len)
_HDR_REGULAR = {
    True: struct.Struct("<4sBBBBIIIIQQIIIIQI"),
    False: struct.Struct(">4sBBBBIIIIQQIIIIQI"),
}
#: header + RetransmitRequest body (processor, start, stop)
_HDR_RETRANSMIT = {
    True: struct.Struct("<4sBBBBIIIIQQIII"),
    False: struct.Struct(">4sBBBBIIIIQQIII"),
}
#: header + RemoveProcessor body (member)
_HDR_REMOVE = {
    True: struct.Struct("<4sBBBBIIIIQQI"),
    False: struct.Struct(">4sBBBBIIIIQQI"),
}
#: header + fixed AckSummary body prefix (kind, cover ts, ack ts, entry count)
_HDR_ACK_SUMMARY = {
    True: struct.Struct("<4sBBBBIIIIQQBQQH"),
    False: struct.Struct(">4sBBBBIIIIQQBQQH"),
}
#: Regular body alone (decode side)
_REGULAR_BODY = {
    True: struct.Struct("<IIIIQI"),
    False: struct.Struct(">IIIIQI"),
}
_RETRANSMIT_BODY = {
    True: struct.Struct("<III"),
    False: struct.Struct(">III"),
}
_REMOVE_BODY = {
    True: struct.Struct("<I"),
    False: struct.Struct(">I"),
}
#: AckSummary fixed body prefix alone (decode side)
_ACK_SUMMARY_BODY = {
    True: struct.Struct("<BQQH"),
    False: struct.Struct(">BQQH"),
}
#: one AckSummary per-source progress entry (pid, seq, ts)
_ACK_SUMMARY_ENTRY = {
    True: struct.Struct("<IIQ"),
    False: struct.Struct(">IIQ"),
}
#: compact BATCH part record: flags, type, seq, timestamp, ack, body len
_BATCH_REC = {
    True: struct.Struct("<BBIQQH"),
    False: struct.Struct(">BBIQQH"),
}
#: verbatim BATCH part record: 0x80 marker, full part length
_BATCH_VERBATIM = {
    True: struct.Struct("<BI"),
    False: struct.Struct(">BI"),
}
_U16 = {True: struct.Struct("<H"), False: struct.Struct(">H")}
_U32 = {True: struct.Struct("<I"), False: struct.Struct(">I")}
#: source + group pair as laid out at header bytes 12:20 (batch fast path)
_SRC_GRP = {True: struct.Struct("<II"), False: struct.Struct(">II")}
#: header bytes 0:6 — magic + version, endianness-independent
_MAGIC_VER = MAGIC + bytes((VERSION_MAJOR, VERSION_MINOR))
#: wire value -> MessageType member (``MessageType(x)`` is far slower)
_TYPE_BY_VALUE = {int(t): t for t in MessageType}
_BATCH_REC_SIZE = _BATCH_REC[True].size
_BATCH_VERBATIM_SIZE = _BATCH_VERBATIM[True].size

_Buffer = Union[bytes, bytearray, memoryview]


class CodecError(Exception):
    """Raised on malformed FTMP datagrams."""


def _flags_of(h: FTMPHeader) -> int:
    flags = 0
    if h.little_endian:
        flags |= _FLAG_LITTLE_ENDIAN
    if h.retransmission:
        flags |= _FLAG_RETRANSMISSION
    return flags


class _Writer:
    """Endianness-aware append-only byte writer (reference/slow path)."""

    __slots__ = ("_parts", "_e")

    def __init__(self, little_endian: bool):
        self._parts: list = []
        self._e = "<" if little_endian else ">"

    def u8(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "B", v))

    def u16(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "H", v))

    def u32(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "I", v))

    def u64(self, v: int) -> None:
        self._parts.append(struct.pack(self._e + "Q", v))

    def raw(self, b: _Buffer) -> None:
        self._parts.append(b)

    def blob(self, b: bytes) -> None:
        self.u32(len(b))
        self.raw(b)

    def pid_list(self, pids: Tuple[int, ...]) -> None:
        self.u16(len(pids))
        for p in pids:
            self.u32(p)

    def seq_vector(self, vec: Dict[int, int]) -> None:
        self.u16(len(vec))
        for pid in sorted(vec):
            self.u32(pid)
            self.u32(vec[pid])

    def connection_id(self, cid: ConnectionId) -> None:
        self.u32(cid.client_domain)
        self.u32(cid.client_group)
        self.u32(cid.server_domain)
        self.u32(cid.server_group)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    """Endianness-aware sequential byte reader with bounds checking."""

    __slots__ = ("_data", "_pos", "_e")

    def __init__(self, data: _Buffer, pos: int, little_endian: bool):
        self._data = data
        self._pos = pos
        self._e = "<" if little_endian else ">"

    def _take(self, fmt: str):
        s = struct.Struct(self._e + fmt)
        end = self._pos + s.size
        if end > len(self._data):
            raise CodecError("truncated FTMP message body")
        (v,) = s.unpack_from(self._data, self._pos)
        self._pos = end
        return v

    def u8(self) -> int:
        return self._take("B")

    def u16(self) -> int:
        return self._take("H")

    def u32(self) -> int:
        return self._take("I")

    def u64(self) -> int:
        return self._take("Q")

    def blob(self) -> bytes:
        n = self.u32()
        end = self._pos + n
        if end > len(self._data):
            raise CodecError("truncated payload")
        b = bytes(self._data[self._pos : end])
        self._pos = end
        return b

    def pid_list(self) -> Tuple[int, ...]:
        n = self.u16()
        return tuple(self.u32() for _ in range(n))

    def seq_vector(self) -> Dict[int, int]:
        n = self.u16()
        return {self.u32(): self.u32() for _ in range(n)}

    def connection_id(self) -> ConnectionId:
        return ConnectionId(self.u32(), self.u32(), self.u32(), self.u32())

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


# ----------------------------------------------------------------------
# BATCH part records (shared by the fast and reference encoders)
# ----------------------------------------------------------------------
def _part_record(part: _Buffer, envelope: FTMPHeader,
                 little: bool) -> Optional[Tuple[int, int, int, int, int]]:
    """(flags, type, seq, ts, ack) when ``part`` can be stored compactly.

    A part is compactable when its magic/version/source/group/endianness
    match the envelope (always true for parts the send path coalesces) and
    its body fits the u16 length field; anything else falls back to a
    verbatim record so arbitrary hand-built Batches still round-trip.
    """
    if len(part) < HEADER_SIZE or len(part) - HEADER_SIZE > 0xFFFF:
        return None
    # single unpack: the prefix fields (magic/version/flags/type) are all
    # byte-width and therefore endianness-independent, so the flags check
    # below guards the multi-byte fields before they are trusted
    magic, vmaj, vmin, pflags, ptype, psize, psrc, pgrp, pseq, pts, pack_ts = \
        _HDR[little].unpack_from(part, 0)
    if (
        magic != MAGIC
        or (vmaj, vmin) != (VERSION_MAJOR, VERSION_MINOR)
        or bool(pflags & _FLAG_LITTLE_ENDIAN) != little
        or psize != len(part)
        or psrc != envelope.source
        or pgrp != envelope.group
    ):
        return None
    return (pflags, ptype, pseq, pts, pack_ts)


def _encode_batch_body(msg: BatchMessage, little: bool) -> List[bytes]:
    """Encoded-body chunks of a Batch (count + one record per part)."""
    chunks: List[bytes] = [_U16[little].pack(len(msg.parts))]
    rec = _BATCH_REC[little]
    verbatim = _BATCH_VERBATIM[little]
    h = msg.header
    for part in msg.parts:
        fields = _part_record(part, h, little)
        if fields is not None:
            chunks.append(rec.pack(*fields, len(part) - HEADER_SIZE))
            chunks.append(bytes(part[HEADER_SIZE:]))
        else:
            chunks.append(verbatim.pack(_REC_VERBATIM, len(part)))
            chunks.append(bytes(part))
    return chunks


# ----------------------------------------------------------------------
# encoding — precompiled fast path
# ----------------------------------------------------------------------
def encode(msg: FTMPMessage) -> bytes:
    """Serialize an FTMP message; also back-fills ``header.message_size``."""
    h = msg.header
    little = h.little_endian
    flags = _flags_of(h)
    cls = msg.__class__
    if cls is RegularMessage:
        size = HEADER_SIZE + 28 + len(msg.payload)
        h.message_size = size
        cid = msg.connection_id
        return _HDR_REGULAR[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            size, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp,
            cid.client_domain, cid.client_group, cid.server_domain,
            cid.server_group, msg.request_num, len(msg.payload),
        ) + msg.payload
    if cls is HeartbeatMessage:
        h.message_size = HEADER_SIZE
        return _HDR[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            HEADER_SIZE, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp,
        )
    if cls is RetransmitRequestMessage:
        size = HEADER_SIZE + 12
        h.message_size = size
        return _HDR_RETRANSMIT[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            size, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp, msg.processor_id, msg.start_seq, msg.stop_seq,
        )
    if cls is RemoveProcessorMessage:
        size = HEADER_SIZE + 4
        h.message_size = size
        return _HDR_REMOVE[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            size, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp, msg.member_to_remove,
        )
    if cls is AckSummaryMessage:
        entries = msg.entries
        entry_struct = _ACK_SUMMARY_ENTRY[little]
        size = HEADER_SIZE + 19 + entry_struct.size * len(entries)
        h.message_size = size
        prefix = _HDR_ACK_SUMMARY[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            size, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp, msg.kind, msg.cover_ts, msg.ack_ts, len(entries),
        )
        if not entries:
            return prefix
        pack = entry_struct.pack
        return prefix + b"".join(pack(pid, seq, ts) for pid, seq, ts in entries)
    if cls is BatchMessage:
        # Records emitted as raw header slices, assembled by one join.  A
        # compact record's fields (flags, type, seq, ts, ack) are laid out
        # byte-for-byte inside the part's own header — flags+type at bytes
        # 6:8, seq+ts+ack contiguously at 20:40 — and validation
        # guarantees the part's endianness matches the envelope's, so the
        # record is two slice copies instead of an 11-field unpack +
        # 6-field repack per part.  (A pack_into-into-bytearray variant
        # measured ~2x slower than this slice/join form: bytearray slice
        # assignment costs more than small-slice appends + one C-level
        # join.)  The eligibility test below is exactly equivalent to
        # ``_part_record(part, h, little) is not None`` (the reference
        # encoder's decision), which the codec property tests hold the
        # two encoders to.
        parts = msg.parts
        u16 = _U16[little]
        u32 = _U32[little]
        srcgrp = _SRC_GRP[little].pack(h.source, h.group)
        endian_bit = _FLAG_LITTLE_ENDIAN if little else 0
        verbatim = _BATCH_VERBATIM[little]
        chunks = [b"", b""]  # back-filled below: header, part count
        append = chunks.append
        size = HEADER_SIZE + 2
        for part in parts:
            plen = len(part)
            if (
                HEADER_SIZE <= plen <= HEADER_SIZE + 0xFFFF
                and part[0:6] == _MAGIC_VER
                and (part[6] & _FLAG_LITTLE_ENDIAN) == endian_bit
                and part[12:20] == srcgrp
                and u32.unpack_from(part, 8)[0] == plen
            ):
                append(part[6:8])                     # flags, type
                append(part[20:40])                   # seq, ts, ack
                append(u16.pack(plen - HEADER_SIZE))
                append(part[HEADER_SIZE:])
                size += _BATCH_REC_SIZE - HEADER_SIZE + plen
            else:
                append(verbatim.pack(_REC_VERBATIM, plen))
                append(part if type(part) is bytes else bytes(part))
                size += _BATCH_VERBATIM_SIZE + plen
        h.message_size = size
        chunks[0] = _HDR[little].pack(
            h.magic, h.version[0], h.version[1], flags, int(h.message_type),
            size, h.source, h.group, h.sequence_number, h.timestamp,
            h.ack_timestamp,
        )
        chunks[1] = u16.pack(len(parts))
        return b"".join(chunks)
    # variable-layout membership/control messages: writer path
    w = _Writer(little)
    _encode_body(msg, w)
    body = w.getvalue()
    size = HEADER_SIZE + len(body)
    h.message_size = size
    return _HDR[little].pack(
        h.magic, h.version[0], h.version[1], flags, int(h.message_type),
        size, h.source, h.group, h.sequence_number, h.timestamp,
        h.ack_timestamp,
    ) + body


def encode_reference(msg: FTMPMessage) -> bytes:
    """Field-at-a-time reference encoder (regression oracle).

    Byte-identical to :func:`encode` for every message type; kept so the
    codec property tests can prove the precompiled fast path never drifts
    from the straightforward per-field encoding.
    """
    h = msg.header
    w = _Writer(h.little_endian)
    _encode_body(msg, w)
    body = w.getvalue()

    size = HEADER_SIZE + len(body)
    h.message_size = size

    prefix = _PREFIX.pack(h.magic, h.version[0], h.version[1], _flags_of(h),
                          int(h.message_type))
    e = "<" if h.little_endian else ">"
    rest = struct.pack(
        e + "IIIIQQ",
        size,
        h.source,
        h.group,
        h.sequence_number,
        h.timestamp,
        h.ack_timestamp,
    )
    return prefix + rest + body


def _encode_body(msg: FTMPMessage, w: _Writer) -> None:
    if isinstance(msg, RegularMessage):
        w.connection_id(msg.connection_id)
        w.u64(msg.request_num)
        w.blob(msg.payload)
    elif isinstance(msg, RetransmitRequestMessage):
        w.u32(msg.processor_id)
        w.u32(msg.start_seq)
        w.u32(msg.stop_seq)
    elif isinstance(msg, HeartbeatMessage):
        pass
    elif isinstance(msg, AckSummaryMessage):
        w.u8(msg.kind)
        w.u64(msg.cover_ts)
        w.u64(msg.ack_ts)
        w.u16(len(msg.entries))
        for pid, seq, ts in msg.entries:
            w.u32(pid)
            w.u32(seq)
            w.u64(ts)
    elif isinstance(msg, ConnectRequestMessage):
        w.connection_id(msg.connection_id)
        w.pid_list(msg.processor_ids)
    elif isinstance(msg, ConnectMessage):
        w.connection_id(msg.connection_id)
        w.u32(msg.processor_group_id)
        w.u32(msg.ip_multicast_address)
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.membership)
    elif isinstance(msg, AddProcessorMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.membership)
        w.seq_vector(msg.sequence_numbers)
        w.u32(msg.new_member)
    elif isinstance(msg, RemoveProcessorMessage):
        w.u32(msg.member_to_remove)
    elif isinstance(msg, SuspectMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.suspects)
    elif isinstance(msg, MembershipMessage):
        w.u64(msg.membership_timestamp)
        w.pid_list(msg.current_membership)
        w.seq_vector(msg.sequence_numbers)
        w.pid_list(msg.new_membership)
    elif isinstance(msg, MultiGroupProposeMessage):
        w.u64(msg.mg_seq)
        w.u32(msg.conflict_class)
        w.pid_list(msg.groups)
        w.blob(msg.payload)
    elif isinstance(msg, MultiGroupCommitMessage):
        w.u32(msg.origin)
        w.u64(msg.mg_seq)
        w.u64(msg.commit_ts)
    elif isinstance(msg, BatchMessage):
        for chunk in _encode_batch_body(msg, msg.header.little_endian):
            w.raw(chunk)
    else:  # pragma: no cover - exhaustive over FTMPMessage
        raise CodecError(f"unknown message class {type(msg).__name__}")


# ----------------------------------------------------------------------
# decoding — precompiled unpack_from, no intermediate slices
# ----------------------------------------------------------------------
def peek_header(data: _Buffer) -> FTMPHeader:
    """Decode only the 40-byte header (used by traces and filters)."""
    if len(data) < HEADER_SIZE:
        raise CodecError(f"datagram shorter than header: {len(data)} bytes")
    flags = data[_FLAGS_OFFSET]
    little = bool(flags & _FLAG_LITTLE_ENDIAN)
    magic, vmaj, vmin, flags, mtype, size, source, group, seq, ts, ack = (
        _HDR[little].unpack_from(data, 0)
    )
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    # dict lookup beats the enum's __call__ by an order of magnitude on
    # the per-frame decode path
    message_type = _TYPE_BY_VALUE.get(mtype)
    if message_type is None:
        raise CodecError(f"unknown message type {mtype}")
    return FTMPHeader(
        message_type=message_type,
        source=source,
        group=group,
        sequence_number=seq,
        timestamp=ts,
        ack_timestamp=ack,
        retransmission=bool(flags & _FLAG_RETRANSMISSION),
        little_endian=little,
        message_size=size,
        magic=magic,
        version=(vmaj, vmin),
    )


def _decode_batch(h: FTMPHeader, data: _Buffer, little: bool) -> BatchMessage:
    """Unpack a Batch envelope, reconstructing each part's full encoding.

    Works off a single buffer with offset arithmetic: the only per-part
    allocation is the reconstructed part itself (elided header fields are
    re-packed from the envelope; body bytes are copied once).
    """
    n = len(data)
    pos = HEADER_SIZE
    u16 = _U16[little]
    rec = _BATCH_REC[little]
    verbatim = _BATCH_VERBATIM[little]
    hdr = _HDR[little]
    if pos + 2 > n:
        raise CodecError("truncated FTMP message body")
    (count,) = u16.unpack_from(data, pos)
    pos += 2
    parts = []
    for _ in range(count):
        if pos >= n:
            raise CodecError("truncated batch record")
        if data[pos] & _REC_VERBATIM:
            if pos + verbatim.size > n:
                raise CodecError("truncated batch record")
            _marker, plen = verbatim.unpack_from(data, pos)
            pos += verbatim.size
            if pos + plen > n:
                raise CodecError("truncated batch part")
            parts.append(bytes(data[pos : pos + plen]))
            pos += plen
        else:
            if pos + rec.size > n:
                raise CodecError("truncated batch record")
            pflags, ptype, pseq, pts, pack_ts, blen = rec.unpack_from(data, pos)
            pos += rec.size
            if pos + blen > n:
                raise CodecError("truncated batch part")
            parts.append(
                hdr.pack(MAGIC, VERSION_MAJOR, VERSION_MINOR, pflags, ptype,
                         HEADER_SIZE + blen, h.source, h.group, pseq, pts,
                         pack_ts)
                + bytes(data[pos : pos + blen])
            )
            pos += blen
    return BatchMessage(h, tuple(parts))


def decode(data: _Buffer) -> FTMPMessage:
    """Deserialize a full FTMP message (header + body)."""
    h = peek_header(data)
    if h.message_size != len(data):
        raise CodecError(
            f"size field {h.message_size} != datagram length {len(data)}"
        )
    little = h.little_endian
    t = h.message_type
    if t == MessageType.REGULAR:
        s = _REGULAR_BODY[little]
        try:
            cd, cg, sd, sg, req, plen = s.unpack_from(data, HEADER_SIZE)
        except struct.error as exc:
            raise CodecError("truncated FTMP message body") from exc
        start = HEADER_SIZE + s.size
        if start + plen > len(data):
            raise CodecError("truncated payload")
        return RegularMessage(h, ConnectionId(cd, cg, sd, sg), req,
                              bytes(data[start : start + plen]))
    if t == MessageType.HEARTBEAT:
        return HeartbeatMessage(h)
    if t == MessageType.RETRANSMIT_REQUEST:
        try:
            proc, start_seq, stop_seq = _RETRANSMIT_BODY[little].unpack_from(
                data, HEADER_SIZE)
        except struct.error as exc:
            raise CodecError("truncated FTMP message body") from exc
        return RetransmitRequestMessage(h, proc, start_seq, stop_seq)
    if t == MessageType.REMOVE_PROCESSOR:
        try:
            (member,) = _REMOVE_BODY[little].unpack_from(data, HEADER_SIZE)
        except struct.error as exc:
            raise CodecError("truncated FTMP message body") from exc
        return RemoveProcessorMessage(h, member)
    if t == MessageType.ACK_SUMMARY:
        body = _ACK_SUMMARY_BODY[little]
        entry_struct = _ACK_SUMMARY_ENTRY[little]
        try:
            kind, cover_ts, ack_ts, count = body.unpack_from(data, HEADER_SIZE)
            pos = HEADER_SIZE + body.size
            unpack = entry_struct.unpack_from
            entries = tuple(
                unpack(data, pos + i * entry_struct.size) for i in range(count)
            )
        except struct.error as exc:
            raise CodecError("truncated FTMP message body") from exc
        return AckSummaryMessage(h, kind, cover_ts, ack_ts, entries)
    if t == MessageType.BATCH:
        return _decode_batch(h, data, little)
    r = _Reader(data, HEADER_SIZE, little)
    if t == MessageType.CONNECT_REQUEST:
        return ConnectRequestMessage(h, r.connection_id(), r.pid_list())
    if t == MessageType.CONNECT:
        return ConnectMessage(h, r.connection_id(), r.u32(), r.u32(), r.u64(), r.pid_list())
    if t == MessageType.ADD_PROCESSOR:
        return AddProcessorMessage(h, r.u64(), r.pid_list(), r.seq_vector(), r.u32())
    if t == MessageType.SUSPECT:
        return SuspectMessage(h, r.u64(), r.pid_list())
    if t == MessageType.MEMBERSHIP:
        return MembershipMessage(h, r.u64(), r.pid_list(), r.seq_vector(), r.pid_list())
    if t == MessageType.MULTI_GROUP_PROPOSE:
        return MultiGroupProposeMessage(h, r.u64(), r.u32(), r.pid_list(), r.blob())
    if t == MessageType.MULTI_GROUP_COMMIT:
        return MultiGroupCommitMessage(h, r.u32(), r.u64(), r.u64())
    raise CodecError(f"unhandled message type {t}")  # pragma: no cover


def decode_view(data: _Buffer) -> FTMPMessage:
    """:func:`decode`, but a REGULAR payload is a zero-copy ``memoryview``
    over the caller's buffer instead of a ``bytes`` copy.

    Ring-ingest entry point for the sharded datapath: the record popped
    from a shared-memory ring is already a fresh immutable ``bytes``
    object, so the payload view pins it alive and nothing can mutate it.
    Callers that cannot guarantee buffer immutability/lifetime must use
    :func:`decode`.  Non-REGULAR messages decode identically via
    :func:`decode` — their bodies are unpacked into plain values anyway.
    """
    mv = data if isinstance(data, memoryview) else memoryview(data)
    h = peek_header(mv)
    if h.message_size != len(mv):
        raise CodecError(
            f"size field {h.message_size} != datagram length {len(mv)}"
        )
    if h.message_type == MessageType.REGULAR:
        s = _REGULAR_BODY[h.little_endian]
        try:
            cd, cg, sd, sg, req, plen = s.unpack_from(mv, HEADER_SIZE)
        except struct.error as exc:
            raise CodecError("truncated FTMP message body") from exc
        start = HEADER_SIZE + s.size
        if start + plen > len(mv):
            raise CodecError("truncated payload")
        return RegularMessage(h, ConnectionId(cd, cg, sd, sg), req,
                              mv[start:start + plen])
    return decode(mv)


def header_of(data: _Buffer) -> FTMPHeader:
    """Alias of :func:`peek_header` for readability at call sites."""
    return peek_header(data)


def mark_retransmission(raw: _Buffer) -> bytes:
    """Copy of an encoded message with the retransmission flag set (§3.2).

    A retransmission is byte-identical to the original message except for
    this one flag, so holders can re-send retained wire bytes without
    re-encoding (and without touching the sender's clock or counters).
    """
    if len(raw) <= _FLAGS_OFFSET:
        raise CodecError(f"datagram shorter than the flags field: {len(raw)} bytes")
    out = bytearray(raw)
    out[_FLAGS_OFFSET] |= _FLAG_RETRANSMISSION
    return bytes(out)
