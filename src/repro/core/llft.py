"""LLFT — the leader-follower fast-path ordering engine (extension).

The legacy ROMP total order (paper §6) is symmetric: a message is
delivered once *every* member's stream has been heard past its timestamp,
which puts an all-member wait — heartbeat-bound at low load — on the
delivery critical path.  The Low Latency Fault Tolerance line of work
(arXiv 1004.1864) removes that wait with an asymmetric discipline, which
``FTMPConfig.llft_mode`` enables:

* **the total order is the leader's reliable FIFO stream.**  The leader's
  own ordered messages deliver at their position in its stream, carrying
  their original timestamps;
* every other member's ordered message is *announced*: the leader, on
  receiving it, assigns it a fresh timestamp from its clock and multicasts
  a small :data:`ORDER_INFO_CID` Regular inside its own stream naming
  ``(source, sequence number, assigned timestamp)``.  The message delivers
  everywhere at the announcement's stream position, restamped with the
  assigned timestamp — so delivered ``(timestamp, source)`` keys are
  identical at every member and strictly increasing (they all come from
  the leader's single monotonic clock);
* the **leader delivers immediately**: its own sends at send time, other
  members' messages at receipt — no ack-stability wait on the critical
  path.  Followers deliver one leader hop later;
* **stability (§6) advances asynchronously** off the piggybacked acks.
  In LLFT mode a processor's advertised ack is its *cover* timestamp (the
  stream heard contiguously from every member), so the group-wide
  stability minimum still soundly drives retransmission-buffer GC and the
  flow-control credit window — it just left the delivery path;
* at a **view change** the §7.2 drain machinery reconciles the leader's
  stream suffix: every survivor processes the old leader's stream through
  the synchronized cut, the new leader announces the surviving backlog in
  one takeover batch, and followers adopt the new leader's order from its
  takeover announcement onward — so virtual synchrony holds and the
  oracle battery runs unchanged.

Everything here is instantiated only when ``llft_mode`` is on; with the
knob off the engine does not exist and the stack is bit-identical legacy.

Wire format: an announcement is an ordinary Regular message (it rides
RMP's reliability, retention and batching unchanged) whose connection id
is the reserved :data:`ORDER_INFO_CID` sentinel and whose payload is a
count-prefixed list of ``(source u32, seq u32, assigned_ts u64)`` entries,
little-endian.  Announcements never consume flow-control credits: like
heartbeats and NACKs they are exactly the traffic that keeps the group
advancing.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, FrozenSet, List, Optional, Tuple

from .constants import MessageType
from .messages import ConnectionId, FTMPMessage, RegularMessage

if TYPE_CHECKING:  # pragma: no cover
    from .datapath import ProcessorGroup

__all__ = ["ORDER_INFO_CID", "LLFTStats", "LeaderOrdering",
           "encode_order_info", "decode_order_info"]

#: Reserved connection id marking a Regular message as an LLFT ordering
#: announcement rather than application traffic.
ORDER_INFO_CID = ConnectionId(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF)

_ENTRY = struct.Struct("<IIQ")
_COUNT = struct.Struct("<I")


def encode_order_info(entries: List[Tuple[int, int, int]]) -> bytes:
    """Pack ``(source, seq, assigned_ts)`` entries into an OrderInfo payload."""
    return _COUNT.pack(len(entries)) + b"".join(
        _ENTRY.pack(src, seq, ts) for src, seq, ts in entries
    )


def decode_order_info(payload: bytes) -> List[Tuple[int, int, int]]:
    """Unpack an OrderInfo payload (inverse of :func:`encode_order_info`)."""
    (n,) = _COUNT.unpack_from(payload, 0)
    return [_ENTRY.unpack_from(payload, _COUNT.size + i * _ENTRY.size)
            for i in range(n)]


@dataclass
class LLFTStats:
    """Leader-follower fast-path counters (read by E20 and the oracles)."""

    fast_path_deliveries: int = 0  #: leader's own sends delivered at send
    announced: int = 0  #: messages assigned a position by this leader
    orderinfos_sent: int = 0  #: announcement messages multicast
    takeover_batches: int = 0  #: view-install backlog announcements
    adopted_deliveries: int = 0  #: follower deliveries via announcements
    stream_deliveries: int = 0  #: follower deliveries of leader-stream items
    parked: int = 0  #: messages held while quiescent / not leader
    entries_skipped: int = 0  #: §7.2 beyond-the-cut entries dropped
    entries_skipped_prebaseline: int = 0  #: entries below our join baseline
    stale_discards: int = 0  #: duplicate arrivals below the consumed top


class LeaderOrdering:
    """Per-group LLFT ordering state (one instance, leader or follower).

    Every processor runs the same engine; the asymmetry is the ``leader()``
    computation.  All ordered traffic flows through ``_pending`` — one
    arrival-order deque per source — and is consumed strictly head-first
    per source (RMP delivers each source exactly once, gap-free, in
    sequence order), so announcement resolution is always a head pop.
    """

    #: cap on parked messages from a source that is not (yet) a member —
    #: mirrors ROMP's staging cap so a rogue source cannot grow unbounded
    _STAGING_CAP = 4096

    #: entries per coalesced backlog OrderInfo (keeps one announcement
    #: datagram comfortably under the batcher's size limits)
    _ANNOUNCE_CAP = 64

    def __init__(self, group: "ProcessorGroup"):
        self._g = group
        #: per-source backlog in arrival (= sequence) order; includes our
        #: own parked sends and non-member staging
        self._pending: Dict[int, Deque[FTMPMessage]] = {}
        #: highest sequence number consumed (delivered or skipped) per
        #: source; arrivals at or below it are stale duplicates
        self._announced_top: Dict[int, int] = {}
        #: True between a leader change and the new leader's takeover
        #: announcement: the old pending prefix of the new leader's stream
        #: is only deliverable through the takeover entries
        self._adopting = False
        #: §7.2 drain state: (survivors, cut_ts, sync targets, old leader)
        self._transition: Optional[
            Tuple[FrozenSet[int], int, Dict[int, int], int]
        ] = None
        #: True from the start of install_view until on_view_installed has
        #: flushed the backlog: a send from the view-change listener must
        #: park rather than fast-path ahead of the takeover batch
        self._installing = False
        self._processing = False
        self.stats = LLFTStats()

    # ------------------------------------------------------------------
    # leadership
    # ------------------------------------------------------------------
    def leader(self) -> int:
        """The current leader: the configured pid while it is a member,
        else the smallest member pid (deterministic at every processor)."""
        return self._leader_of(self._g.membership)

    def _leader_of(self, membership: Tuple[int, ...]) -> int:
        preferred = self._g.config.llft_leader_pid
        if preferred and preferred in membership:
            return preferred
        return min(membership) if membership else self._g.pid

    def _quiescent(self) -> bool:
        """True while ordering decisions must be parked: an unresolved
        fault round, or the §7.2 drain before a fault view installs."""
        return self._transition is not None or self._g.pgmp.in_fault_round

    def _live_leader(self) -> bool:
        return (
            not self._g.joining
            and not self._installing
            and not self._quiescent()
            and self.leader() == self._g.pid
        )

    def _congested(self) -> bool:
        """True while our §6 credit window is exhausted.

        An uncongested leader announces each arrival on the spot (the
        low-latency path).  Once the stability feedback says the group
        cannot absorb more of our stream, per-arrival announcements would
        pour unthrottled control traffic into the very backlog the
        credits exist to bound — so arrivals park instead, and the next
        :meth:`_leader_drain` after credits recycle announces the whole
        backlog as one coalesced OrderInfo.  Announcement *latency*
        degrades to the stability period exactly when everything else is
        equally backlogged; announcement *throughput* stays bounded.
        """
        flow = self._g.flow
        return flow.enabled and (flow.blocked or flow.credits <= 0)

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def on_own_send(self, msg: FTMPMessage) -> None:
        """Hook after one of our ordered messages went to the wire.

        The live leader delivers immediately — this *is* the fast path:
        local delivery at the message's position in our own stream, no
        all-member wait.  Everyone else (and a quiescent leader) parks;
        our loopback copy is discarded on arrival, so the parked object
        is the single local representative of the send.
        """
        pid = self._g.pid
        if self._live_leader() and not self._pending.get(pid):
            self.stats.fast_path_deliveries += 1
            self._deliver(msg)
            return
        self.stats.parked += 1
        self._pending.setdefault(pid, deque()).append(msg)

    def on_reliable(self, msg: FTMPMessage) -> None:
        """Hook for every totally-ordered message RMP hands up.

        Called by ROMP after the clock/cover bookkeeping.  Our own
        loopbacks were already consumed at send time; everything else is
        either announced on the spot (live leader) or parked until the
        leader's stream orders it.
        """
        h = msg.header
        src = h.source
        if src == self._g.pid:
            return  # own loopback: consumed by on_own_send
        if h.sequence_number <= self._announced_top.get(src, 0):
            self.stats.stale_discards += 1
            return
        if (
            self._live_leader()
            and src in self._g.membership
            and not self._pending.get(src)
            and not self._congested()
        ):
            self._announce_batch([msg])
            return
        q = self._pending.setdefault(src, deque())
        if src not in self._g.membership and len(q) >= self._STAGING_CAP:
            return
        self.stats.parked += 1
        q.append(msg)

    # ------------------------------------------------------------------
    # the leader side: assigning positions
    # ------------------------------------------------------------------
    def _announce_batch(self, msgs: List[FTMPMessage]) -> None:
        """Assign each message a fresh timestamp, multicast one OrderInfo
        naming them all, then deliver them locally in that order.

        The announcement is sent *before* the local deliveries so its wire
        position in our stream matches our local delivery order (followers
        replay our stream; any send a delivery triggers lands after it).
        """
        entries: List[Tuple[int, int, int]] = []
        for m in msgs:
            h = m.header
            ts = self._g.clock.tick()
            entries.append((h.source, h.sequence_number, ts))
            self._announced_top[h.source] = max(
                self._announced_top.get(h.source, 0), h.sequence_number
            )
            h.timestamp = ts  # the message's position in the total order
        self._send_order_info(entries)
        self.stats.announced += len(entries)
        for m in msgs:
            self._deliver(m)

    def _send_order_info(self, entries: List[Tuple[int, int, int]]) -> None:
        """Multicast an announcement inside our own reliable stream.

        Goes straight to the send path: announcements are control traffic
        — exempt from flow-control credits and the §7 barrier, like the
        heartbeats and NACKs that keep stability advancing.  The header is
        stamped *after* the entry timestamps, so its own timestamp (and
        every later stream position) exceeds them.
        """
        g = self._g
        msg = RegularMessage(
            header=g._header(MessageType.REGULAR, reliable=True),
            connection_id=ORDER_INFO_CID,
            request_num=0,
            payload=encode_order_info(entries),
        )
        self.stats.orderinfos_sent += 1
        g.send_path.send(msg)

    # ------------------------------------------------------------------
    # the follower side: replaying the leader's stream
    # ------------------------------------------------------------------
    @staticmethod
    def _is_order_info(msg: FTMPMessage) -> bool:
        return (
            isinstance(msg, RegularMessage)
            and msg.connection_id == ORDER_INFO_CID
        )

    def process(self) -> None:
        """Consume everything currently deliverable (idempotent).

        Drives the follower replay of the leader's stream, the leader's
        leftover-backlog announcements, and the §7.2 transition drain.
        Re-entrant calls (a delivery installs a view, which evaluates)
        return immediately; the outer loop re-reads all state per step.
        """
        if self._processing:
            return
        self._processing = True
        try:
            while self._step():
                pass
        finally:
            self._processing = False

    def _step(self) -> bool:
        g = self._g
        if self._transition is not None:
            return self._transition_step()
        if g.pgmp.in_fault_round:
            return False  # park everything until the round resolves
        me = g.pid
        if g.joining:
            # replay the sponsor-side leader's stream; we cannot lead (or
            # deliver our own sends) before our join completes, even if
            # our pid would win the leadership rule
            lead = self._leader_of(tuple(p for p in g.membership if p != me))
            if lead == me:
                return False  # no usable membership snapshot yet
        else:
            lead = self.leader()
        if lead == me:
            return self._leader_drain()
        q = self._pending.get(lead)
        if self._adopting:
            return self._adopt_step(lead, q)
        if not q:
            return False
        head = q[0]
        if self._is_order_info(head):
            if not self._resolve_order_info(head):
                return False  # blocked on a missing target (NACK pending)
            q.popleft()
            self._consumed(lead, head.header.sequence_number)
        else:
            q.popleft()
            self._consumed(lead, head.header.sequence_number)
            self.stats.stream_deliveries += 1
            self._deliver(head)  # the leader's own message, original ts
        return True

    def _leader_drain(self) -> bool:
        """A live leader with parked backlog (just installed a view, a
        guard parked something, or congestion coalesced arrivals): own
        stream items first — their wire positions are the earliest — then
        announce the rest as one batched OrderInfo."""
        if self._g.joining:
            return False
        me = self._g.pid
        own = self._pending.get(me)
        if own:
            self.stats.fast_path_deliveries += 1
            self._deliver(own.popleft())
            return True
        backlog = sum(
            len(q) for src, q in self._pending.items()
            if src != me and src in self._g.membership
        )
        if self._congested() and backlog < self._ANNOUNCE_CAP:
            # hold a sub-capacity backlog while our credit window is
            # exhausted; it flushes as one batch later.  A *full* batch
            # goes out regardless: one coalesced datagram per
            # _ANNOUNCE_CAP messages is bounded overhead, and without it
            # a leader blocked on its own sends would stall every
            # follower's pipeline under sustained overload.
            return False
        batch: List[FTMPMessage] = []
        for src in sorted(self._pending):
            if src == me or src not in self._g.membership:
                continue
            q = self._pending[src]
            while q and len(batch) < self._ANNOUNCE_CAP:
                batch.append(q.popleft())
        if not batch:
            return False
        # original per-source timestamps are monotonic in sequence order,
        # so this cross-source merge preserves each source's FIFO
        batch.sort(key=lambda m: (m.header.timestamp, m.header.source))
        self._announce_batch(batch)
        return True

    def _adopt_step(self, lead: int, q: Optional[Deque[FTMPMessage]]) -> bool:
        """Waiting for a new leader's takeover announcement.

        The takeover OrderInfo sits *behind* the new leader's pre-takeover
        stream items in its deque (they were sent first) and its entries
        name exactly those items, so resolving it consumes everything
        ahead of it; afterwards normal stream replay resumes.
        """
        if not q:
            return False
        info = next((m for m in q if self._is_order_info(m)), None)
        if info is None:
            return False
        if not self._resolve_order_info(info):
            return False
        q.remove(info)
        self._consumed(lead, info.header.sequence_number)
        self._adopting = False
        return True

    def _resolve_order_info(
        self,
        info: RegularMessage,
        survivors: Optional[FrozenSet[int]] = None,
        targets: Optional[Dict[int, int]] = None,
    ) -> bool:
        """Deliver an announcement's entries in order; False if blocked.

        Already-consumed entries are skipped (a retried partial
        resolution), so blocking midway and retrying later is safe.
        ``survivors``/``targets`` carry the §7.2 skip rule during a
        transition drain: entries naming a removed member's message
        beyond its synchronized prefix are dropped by every survivor.
        """
        for src, seq, ts in decode_order_info(info.payload):
            if seq <= self._announced_top.get(src, 0):
                continue  # consumed on an earlier (partial) pass
            if (
                survivors is not None
                and src not in survivors
                and seq > (targets or {}).get(src, 0)
            ):
                self._consumed(src, seq)
                self.stats.entries_skipped += 1
                continue
            q = self._pending.get(src)
            if q and q[0].header.sequence_number == seq:
                m = q.popleft()
                self._consumed(src, seq)
                m.header.timestamp = ts  # adopt the leader's position
                self.stats.adopted_deliveries += 1
                self._deliver(m)
                continue
            if self._g.rmp.contiguous_top(src) >= seq:
                # RMP is contiguous past this seq yet we never held the
                # message: it predates our join baseline (the snapshot
                # skipped it for us) — skip it here too.
                self._consumed(src, seq)
                self.stats.entries_skipped_prebaseline += 1
                continue
            return False  # not yet received; RMP's NACKs will fetch it
        return True

    def _consumed(self, src: int, seq: int) -> None:
        top = self._announced_top.get(src, 0)
        if seq > top:
            self._announced_top[src] = seq

    def _deliver(self, msg: FTMPMessage) -> None:
        """Hand one ordered message upward at its decided position."""
        self._g.romp.stats.ordered_deliveries += 1
        if msg.header.message_type == MessageType.REGULAR:
            self._g.deliver_regular(msg)  # type: ignore[arg-type]
        else:
            self._g.pgmp_receive_ordered(msg)

    # ------------------------------------------------------------------
    # §7.2 fault-view transition drain
    # ------------------------------------------------------------------
    def begin_transition(
        self,
        survivors: FrozenSet[int],
        cut_ts: int,
        targets: Optional[Dict[int, int]] = None,
    ) -> None:
        """Start reconciling the (old) leader's stream suffix.

        ``targets`` is the §7.2 synchronized per-source sequence vector;
        the old leader's entry is the *cut*: every survivor — the old
        leader included, from its own parked sends — processes the old
        leader's stream through it before the fault view installs, and
        nothing beyond it, so all delivery histories cut identically.
        """
        self._transition = (
            frozenset(survivors),
            cut_ts,
            dict(targets or {}),
            self.leader(),
        )
        self.process()

    def end_transition(self) -> None:
        self._transition = None

    def _transition_step(self) -> bool:
        assert self._transition is not None
        survivors, _cut_ts, targets, old = self._transition
        cut_seq = targets.get(old, 0)
        q = self._pending.get(old)
        if not q:
            return False
        if self._adopting:
            # Mid-handoff when the fault hit: only the takeover entries
            # can deliver the old pending prefix.  No in-cut takeover
            # announcement means nothing of this stream is deliverable —
            # the next leader re-announces the backlog after the install.
            info = next(
                (m for m in q
                 if self._is_order_info(m)
                 and m.header.sequence_number <= cut_seq),
                None,
            )
            if info is None:
                return False
            if not self._resolve_order_info(info, survivors, targets):
                return False
            q.remove(info)
            self._consumed(old, info.header.sequence_number)
            self._adopting = False
            return True
        head = q[0]
        if head.header.sequence_number > cut_seq:
            return False
        if self._is_order_info(head):
            if not self._resolve_order_info(head, survivors, targets):
                return False
            q.popleft()
            self._consumed(old, head.header.sequence_number)
        else:
            q.popleft()
            self._consumed(old, head.header.sequence_number)
            self.stats.stream_deliveries += 1
            self._deliver(head)
        return True

    def transition_drained(self) -> bool:
        """True when the old leader's in-cut stream suffix is consumed."""
        if self._transition is None:
            return True
        _survivors, _cut_ts, targets, old = self._transition
        cut_seq = targets.get(old, 0)
        q = self._pending.get(old)
        if not q:
            return True
        if self._adopting:
            return not any(
                self._is_order_info(m)
                and m.header.sequence_number <= cut_seq
                for m in q
            )
        return q[0].header.sequence_number > cut_seq

    # ------------------------------------------------------------------
    # view installation
    # ------------------------------------------------------------------
    def begin_install(self) -> None:
        """A view installation started: park sends until the backlog flush.

        Cleared by :meth:`on_view_installed` once the takeover batch is
        out — anything the view-change listener sent meanwhile sits in
        our pending and is flushed right after, behind the batch.
        """
        self._installing = True

    def on_view_installed(
        self, prev_membership: Tuple[int, ...], reason: str
    ) -> None:
        """React to a freshly installed view (any reason).

        The new leader flushes the surviving backlog: its *own* parked
        sends first (they are already stream items at every follower —
        delivered at their original positions), then one takeover batch
        announcing everything else, ordered by original timestamp.  After
        a leader change the new leader's parked sends go *into* the batch
        instead (followers mid-adoption only deliver its pre-takeover
        prefix through the takeover entries), and an announcement is sent
        even when empty so followers can leave the adopting state.
        Followers flip to adopting on any leader change; everyone drops
        the remaining backlog of removed members (the in-cut announced
        part was delivered during the drain — the rest was announced
        nowhere, so dropping it is the same decision at every survivor).
        """
        g = self._g
        members = set(g.membership)
        for src in set(prev_membership) - members:
            self._pending.pop(src, None)
            self._announced_top.pop(src, None)
        new_leader = self.leader()
        changed = new_leader != self._leader_of(prev_membership)
        if new_leader != g.pid:
            self._installing = False
            if changed:
                self._adopting = True
            self.process()
            return
        self._adopting = False
        if not changed:
            # our parked sends are already stream items at every follower,
            # positioned before anything we announce next: deliver them at
            # their original timestamps, ahead of the batch
            own = self._pending.get(g.pid)
            while own:
                self.stats.fast_path_deliveries += 1
                self._deliver(own.popleft())
        self._flush_backlog(
            include_own=changed, force=changed or reason == "fault"
        )
        self._installing = False
        self.process()

    def _flush_backlog(self, include_own: bool, force: bool) -> None:
        """Announce every member's parked backlog in one takeover batch.

        ``include_own``: after a leadership change our own parked sends
        must be *announced* (restamped) too — mid-adoption followers only
        deliver our pre-takeover stream through the takeover entries.
        ``force`` sends the announcement even when empty: it is the marker
        adopting followers wait for.
        """
        g = self._g
        members = set(g.membership)
        batch: List[FTMPMessage] = []
        for src in sorted(self._pending):
            if src not in members or (src == g.pid and not include_own):
                continue
            q = self._pending[src]
            while q:
                batch.append(q.popleft())
        batch.sort(key=lambda m: (m.header.timestamp, m.header.source))
        if batch or force:
            self.stats.takeover_batches += 1
            self._announce_batch(batch)

    def on_join_completed(self) -> None:
        """Our own join just completed (we were not in the prior view).

        If we come in as the leader (a configured leader pid rejoining, or
        a pid below every current member), announce a takeover batch at
        once so the members — who flipped to adopting when our
        AddProcessor was ordered — can resume delivery.
        """
        if self.leader() == self._g.pid:
            self._adopting = False
            self._flush_backlog(include_own=True, force=True)
        self.process()

    # ------------------------------------------------------------------
    # purges & bookkeeping (delegated from ROMP)
    # ------------------------------------------------------------------
    def drop_after(self, src: int, seq_cutoff: int) -> int:
        """Drop ``src``'s parked messages with seq > ``seq_cutoff`` (§7.2:
        beyond the synchronized prefix, received by no quorum)."""
        q = self._pending.get(src)
        if not q:
            return 0
        kept = deque(m for m in q if m.header.sequence_number <= seq_cutoff)
        dropped = len(q) - len(kept)
        if dropped:
            self._pending[src] = kept
        return dropped

    def drop_all(self, src: int) -> int:
        """Drop every parked message from a departed source."""
        q = self._pending.pop(src, None)
        return len(q) if q else 0

    def backlog(self) -> int:
        """Parked messages from current members (the ordering queue depth
        analogue; non-member staging excluded, as in legacy ROMP)."""
        return sum(
            len(q) for src, q in self._pending.items()
            if src in self._g.membership
        )

    def backlog_of(self, src: int) -> int:
        return len(self._pending.get(src, ()))
