"""Tunable parameters of the FTMP stack.

Defaults are chosen for the simulated LAN (link latency ~100 us); the
heartbeat interval and fault timeout are the paper's central tuning knobs
(§5: "The choice of the heartbeat interval is a compromise between message
latency and network traffic").  All times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["FTMPConfig", "ClockMode"]


class ClockMode:
    """Timestamp source for ROMP ordering (paper §6)."""

    LAMPORT = "lamport"
    SYNCHRONIZED = "synchronized"


@dataclass(frozen=True)
class FTMPConfig:
    """Immutable configuration shared by all groups of one stack."""

    # --- heartbeats / liveness (paper §5, §7.2) -----------------------
    #: Multicast a Heartbeat if no Regular message was sent for this long.
    heartbeat_interval: float = 0.010
    #: Suspect a member after this much silence (must exceed several
    #: heartbeat intervals to tolerate loss).
    suspect_timeout: float = 0.060
    #: Re-announce an unresolved suspicion at this period.
    suspect_resend_interval: float = 0.020

    # --- negative acknowledgements (paper §5) --------------------------
    #: Delay between detecting a sequence gap and multicasting the
    #: RetransmitRequest (lets reordered packets arrive first).
    nack_delay: float = 0.002
    #: Re-send an unanswered RetransmitRequest at this period.
    nack_retry_interval: float = 0.010
    #: Multiply the retry period by this factor on every consecutive
    #: retry that makes no progress (SRM-style repair-request backoff,
    #: capped at ``nack_retry_max``); progress resets to the base
    #: period.  1.0 keeps the paper's fixed retry period.  Persistent
    #: holes otherwise re-request at the full retry rate forever, and on
    #: a congested network that repair traffic can itself sustain the
    #: congestion that keeps the holes open.
    nack_backoff_factor: float = 1.0
    #: Upper bound of the backed-off NACK retry period.
    nack_retry_max: float = 0.160
    #: Base for the randomized retransmission backoff: a non-source holder
    #: of a requested message waits U(0,1) * base before retransmitting and
    #: suppresses if it sees another copy first (NACK-implosion avoidance).
    retransmit_backoff: float = 0.002
    #: Ablation A1: disable the backoff/suppression scheme (every holder
    #: answers every RetransmitRequest immediately).
    retransmit_suppression: bool = True
    #: Ablation A2: if False, only the original source answers NACKs
    #: (the paper's "any processor ... may retransmit" turned off).
    retransmit_any_holder: bool = True

    # --- retransmission pacing (extension) ------------------------------
    #: Token-bucket rate cap on retransmissions answered by this
    #: processor (retransmissions / second).  Recovery traffic beyond the
    #: rate is deferred, not dropped, so loss bursts cannot starve fresh
    #: sends of the egress.  0 disables pacing (legacy behaviour).
    retransmit_rate_limit: float = 0.0
    #: Bucket depth for the pacing token bucket: a burst of up to this
    #: many retransmissions may go out back-to-back.
    retransmit_burst: int = 8
    #: Suppress duplicate RetransmitRequests: a request for a (source,
    #: seq) this processor answered less than this many seconds ago is
    #: ignored (the answer is still in flight).  0 disables (legacy).
    nack_dedupe_window: float = 0.0

    # --- connections (paper §7) ----------------------------------------
    #: Client retries ConnectRequest at this period until Connect arrives.
    connect_retry_interval: float = 0.020
    #: Server retransmits Connect at this period until it sees traffic
    #: from the client over the new connection.
    connect_resend_interval: float = 0.020
    #: AddProcessor is retransmitted to the (unreliable) new member at
    #: this period until the new member is heard from.
    add_resend_interval: float = 0.020

    # --- ordering clock (paper §6) --------------------------------------
    #: ClockMode.LAMPORT or ClockMode.SYNCHRONIZED.
    clock_mode: str = ClockMode.LAMPORT
    #: Resolution of the synchronized clock in seconds per tick.
    sync_clock_resolution: float = 1e-6
    #: Bounded skew applied to this processor's synchronized clock.
    sync_clock_skew: float = 0.0

    # --- batching / piggybacking (extension) -----------------------------
    #: Coalescing window for small Regular messages (seconds).  Within a
    #: window, Regulars to the group address are packed into one Batch
    #: datagram and pending heartbeats are suppressed (the batch carries
    #: fresher timestamps anyway).  0 disables batching entirely: every
    #: send goes out immediately, bit-identical to the unbatched stack.
    batch_window: float = 0.0
    #: Flush a pending batch as soon as its packed parts reach this many
    #: bytes; also the per-message eligibility cap (bigger messages are
    #: sent unbatched).
    batch_max_bytes: int = 1200
    #: Adapt the coalescing window to the offered load: when the recent
    #: send rate would not fill a window with at least ``batch_min_fill``
    #: messages, eligible sends bypass the window entirely (near-unbatched
    #: low-load latency); under load the window grows back toward
    #: ``batch_window`` / ``batch_max_bytes`` coalescing.  Only meaningful
    #: with ``batch_window > 0``.
    batch_adaptive: bool = False
    #: Minimum expected messages per window for the adaptive window to
    #: engage coalescing (the break-even batch size).
    batch_min_fill: int = 4

    # --- flow control (extension) ----------------------------------------
    #: Per-sender credit window: the maximum number of this processor's
    #: own Regular messages that may be in flight — sent but not yet
    #: *stable* (at/below ``romp.stability_timestamp()``, the §6 positive
    #: acknowledgement signal).  Application sends beyond the window queue
    #: at the sender (backpressure) instead of flooding the network.
    #: 0 disables flow control (legacy behaviour).
    flow_control_window: int = 0
    #: Optional cap on sends held back at the sender (the flow-control
    #: backpressure queue plus sends deferred by a §7 quiescence
    #: barrier).  A multicast beyond the cap raises
    #: ``FlowControlSaturated`` instead of queueing, giving the
    #: application a synchronous load-shedding signal.  0 = unbounded
    #: (legacy behaviour; queue depth still visible via fc_queue_depth).
    flow_queue_limit: int = 0

    # --- LLFT leader-follower fast path (extension, arXiv 1004.1864) -----
    #: Replace the symmetric Lamport total order with a leader-follower
    #: ordering discipline: the leader's own reliable FIFO stream *is* the
    #: total order.  The leader delivers its own Regulars immediately after
    #: the local send (no all-member ack-stability wait on the critical
    #: path) and assigns every other member's ordered messages a position
    #: by multicasting small OrderInfo announcements inside its stream;
    #: followers deliver by adopting the leader's order.  Stability (§6)
    #: still advances asynchronously in the background off the piggybacked
    #: acks — it keeps driving buffer GC and flow-control credits, it just
    #: leaves the delivery critical path.  At a view change the §7.2 drain
    #: machinery reconciles the leader's suffix so virtual synchrony
    #: holds.  LLFT implies agreed delivery (``delivery_mode`` "safe" is
    #: ignored).  False = the legacy symmetric ordering, bit-identical.
    llft_mode: bool = False
    #: Preferred leader pid for LLFT mode.  0 (default) auto-selects the
    #: smallest pid of the current membership; a configured pid leads
    #: whenever it is a member and the auto rule applies otherwise (so a
    #: leader crash deterministically falls back to min(membership)).
    llft_leader_pid: int = 0

    # --- overlay dissemination (extension, cf. arXiv 2309.14074) ---------
    #: Route Regular messages and §6 stability over a deterministic k-ary
    #: tree derived from the sorted current membership instead of the flat
    #: IP-multicast fan-out.  Interior relays forward each Regular once
    #: per subtree, and each relay folds its subtree's minimum
    #: cover/ack timestamps into one compact AckSummary message up the
    #: tree, so the root observes stability in O(depth) messages instead
    #: of O(n); the resulting frontier is re-broadcast down the tree and
    #: keeps driving buffer GC and flow-control credits unchanged.  The
    #: tree is recomputed at every view install, so PGMP membership stays
    #: the single source of truth.  NACK recovery, membership/control
    #: traffic and the §7.2 drain stay flat multicast.  False = the
    #: legacy flat dissemination, bit-identical.
    overlay_mode: bool = False
    #: Fan-out k of the dissemination tree (children per interior node).
    overlay_fanout: int = 4
    #: Period of the per-member AckSummary exchange along tree edges
    #: (up-summaries to the parent, frontier re-broadcast to children).
    #: Also the liveness keepalive cadence between tree neighbours; the
    #: end-to-end stability latency is about 2 * depth * interval.
    overlay_summary_interval: float = 0.005

    # --- multi-group atomic multicast (extension, arXiv 1904.07171) ------
    #: Enable genuine multi-group atomic multicast: a message addressed
    #: to a *set* of groups collects one Lamport position from each
    #: addressed group's ordering core (a MultiGroupPropose riding that
    #: group's totally-ordered stream), commits at the max over the
    #: groups, and is delivered in every addressed group at the committed
    #: timestamp — so any two multi-group messages are delivered in the
    #: same relative order everywhere they are both delivered.  Only the
    #: addressed groups exchange messages (genuineness): uninvolved
    #: groups take zero ordering steps, preserving per-group sharding.
    #: Messages declaring a non-zero conflict class commute with
    #: different classes and skip the commit wait (Generic Multicast,
    #: arXiv 2410.01901).  False = legacy single-group ordering,
    #: bit-identical.
    multigroup_mode: bool = False

    # --- delivery guarantee ----------------------------------------------
    #: "agreed" (default): deliver as soon as the total order is decided.
    #: "safe": additionally wait until the message is *stable* — the ack
    #: timestamps show every member holds it — before delivering (Totem's
    #: agreed/safe distinction, built on §6's ack machinery).  Safe
    #: delivery survives any minority of simultaneous crashes without a
    #: survivor having delivered something the others never received.
    delivery_mode: str = "agreed"

    # --- buffering -------------------------------------------------------
    #: If False, ack-timestamp garbage collection is disabled (experiment
    #: E4 measures the resulting unbounded buffer growth).
    buffer_gc_enabled: bool = True
    #: Grace period granted to a freshly added member before the fault
    #: detector may suspect it.
    join_grace: float = 0.100

    # --- wire ------------------------------------------------------------
    #: Encode little-endian (the header's byte-order flag, paper §3.2).
    little_endian: bool = True

    def __post_init__(self) -> None:
        if self.llft_mode and self.overlay_mode:
            raise ValueError(
                "llft_mode and overlay_mode are mutually exclusive: the "
                "leader fast path assumes flat dissemination of the "
                "leader stream"
            )
        if self.multigroup_mode and (self.llft_mode or self.overlay_mode):
            raise ValueError(
                "multigroup_mode is mutually exclusive with llft_mode and "
                "overlay_mode: multi-group commit positions are defined in "
                "terms of the symmetric Lamport order"
            )
        if self.multigroup_mode and self.delivery_mode == "safe":
            raise ValueError(
                "multigroup_mode requires delivery_mode='agreed': the "
                "commit wait already spans groups and safe delivery would "
                "deadlock against it"
            )

    def with_(self, **kwargs) -> "FTMPConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)
