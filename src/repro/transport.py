"""Runtime-neutral transport seam between protocol stacks and a network.

FTMP (and every baseline protocol) is written against :class:`Endpoint`:
a processor-local handle that can join multicast groups, send datagrams,
read a clock and arm timers.  Three implementations exist:

* :class:`repro.simnet.network.SimEndpoint` — deterministic discrete-event
  simulation (the semantic truth: tests, chaos, schedule exploration);
* :class:`repro.simnet.udp.UdpEndpoint` — real UDP sockets with threaded
  loopback fan-out emulating multicast groups (single-process live demo);
* :class:`repro.runtime.aio.AioEndpoint` — asyncio event loop per
  processor process, real UDP multicast or loopback fan-out across OS
  processes (the wall-clock truth: cluster runtime and benchmarks).

This module sits *below* every runtime: ``repro.core`` and
``repro.baselines`` import only this seam, never ``repro.simnet`` or
``repro.runtime`` (the layering is guard-tested), so the identical
protocol stack runs unmodified on all three substrates.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Endpoint", "TimerHandle", "NamedTimerSet"]


@runtime_checkable
class TimerHandle(Protocol):
    """Anything returned by :meth:`Endpoint.schedule`; only needs cancel()."""

    def cancel(self) -> None: ...


class Endpoint(abc.ABC):
    """A processor's interface to the (real or simulated) network."""

    @property
    @abc.abstractmethod
    def processor_id(self) -> int:
        """The processor identifier this endpoint belongs to."""

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or monotonic wall clock)."""

    @abc.abstractmethod
    def schedule(self, delay: float, fn: Callable[..., None], *args) -> TimerHandle:
        """Arm a one-shot timer; returns a cancellable handle."""

    @abc.abstractmethod
    def set_receiver(self, cb: Callable[[bytes], None]) -> None:
        """Register the datagram receive callback for this processor."""

    @abc.abstractmethod
    def join(self, group_addr: int) -> None:
        """Subscribe to a multicast group address."""

    @abc.abstractmethod
    def leave(self, group_addr: int) -> None:
        """Unsubscribe from a multicast group address."""

    @abc.abstractmethod
    def multicast(self, group_addr: int, data: bytes) -> None:
        """Best-effort multicast ``data`` to every subscriber of the group."""

    @abc.abstractmethod
    def random(self) -> random.Random:
        """RNG for protocol-internal randomization (NACK backoff)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Detach from the network; no further callbacks fire."""


class NamedTimerSet:
    """Cancellable named one-shot timers over any ``schedule`` function.

    Arming a name cancels its previous timer, so a name always has at most
    one pending firing — the semantics a coalescing window wants (the
    datapath uses this for its batch-flush timer).  Works over
    :meth:`~repro.simnet.scheduler.Scheduler.schedule` and over any
    :class:`Endpoint` ``schedule`` alike: the only requirement is that the
    returned handle has ``cancel()``.
    """

    def __init__(self, schedule: Callable[..., Any]):
        self._schedule = schedule
        self._timers: dict = {}

    def arm(self, name: str, delay: float, fn: Callable[..., Any], *args: Any):
        """(Re-)arm ``name`` to run ``fn(*args)`` after ``delay`` seconds."""
        self.cancel(name)

        def fire() -> None:
            self._timers.pop(name, None)
            fn(*args)

        handle = self._schedule(delay, fire)
        self._timers[name] = handle
        return handle

    def is_armed(self, name: str) -> bool:
        return name in self._timers

    def cancel(self, name: str) -> bool:
        """Cancel ``name`` if armed; True if a timer was actually cancelled."""
        handle = self._timers.pop(name, None)
        if handle is None:
            return False
        handle.cancel()
        return True

    def cancel_all(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
