"""CORBA system exceptions (the subset the mini-ORB raises).

System exceptions travel in Reply messages with status SYSTEM_EXCEPTION;
user exceptions (raised by servants) travel with status USER_EXCEPTION and
are re-raised client-side as :class:`UserException`.
"""

from __future__ import annotations

__all__ = [
    "CORBAException",
    "SystemException",
    "ObjectNotExist",
    "BadOperation",
    "CommFailure",
    "Transient",
    "Marshal",
    "UserException",
    "system_exception_by_name",
]


class CORBAException(Exception):
    """Base of everything the ORB raises on behalf of remote calls."""


class SystemException(CORBAException):
    """A CORBA standard system exception."""

    repo_id = "IDL:omg.org/CORBA/SystemException:1.0"

    def __init__(self, detail: str = ""):
        super().__init__(detail)
        self.detail = detail


class ObjectNotExist(SystemException):
    repo_id = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"


class BadOperation(SystemException):
    repo_id = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"


class CommFailure(SystemException):
    repo_id = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"


class Transient(SystemException):
    repo_id = "IDL:omg.org/CORBA/TRANSIENT:1.0"


class Marshal(SystemException):
    repo_id = "IDL:omg.org/CORBA/MARSHAL:1.0"


_BY_ID = {
    cls.repo_id: cls
    for cls in (SystemException, ObjectNotExist, BadOperation, CommFailure,
                Transient, Marshal)
}


def system_exception_by_name(repo_id: str) -> type:
    """Map a repository id back to an exception class (client-side raise)."""
    return _BY_ID.get(repo_id, SystemException)


class UserException(CORBAException):
    """An application-defined exception raised by a servant."""

    def __init__(self, name: str, detail: str = ""):
        super().__init__(f"{name}: {detail}" if detail else name)
        self.name = name
        self.detail = detail
