"""GIOP message fragmentation (GIOP 1.1 Fragment semantics).

IP datagrams have an MTU; GIOP 1.1 introduced the Fragment message so one
large Request/Reply can cross several transport frames: the initial
message carries a "more fragments follow" flag, and FragmentMessages carry
the continuation, the last one with the flag clear.

On the wire we use header byte 6 as a flags octet (bit 0 = little endian,
bit 1 = more fragments) — exactly GIOP 1.1's layout, and backward
compatible with the 1.0 boolean byte-order octet this codebase otherwise
emits (bit 1 is simply zero for unfragmented messages).

Fragments of one message travel FIFO from one source, which FTMP's RMP
layer guarantees, so reassembly needs only a per-source accumulator.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from .cdr import MarshalError
from .messages import GIOP_MAGIC

__all__ = ["fragment_giop", "Reassembler", "more_fragments_flag", "FragmentationError"]

_HEADER_LEN = 12
_FLAG_MORE = 0x02
_FRAGMENT_TYPE = 7


class FragmentationError(MarshalError):
    """Raised on inconsistent fragment streams."""


def more_fragments_flag(data: bytes) -> bool:
    """Read the 'more fragments follow' bit of an encoded GIOP message."""
    if len(data) < _HEADER_LEN or data[:4] != GIOP_MAGIC:
        raise FragmentationError("not a GIOP message")
    return bool(data[6] & _FLAG_MORE)


def _with_flags_and_size(header: bytes, more: bool, mtype: Optional[int],
                         size: int, little: bool) -> bytes:
    out = bytearray(header)
    if more:
        out[6] |= _FLAG_MORE
    else:
        out[6] &= ~_FLAG_MORE & 0xFF
    if mtype is not None:
        out[7] = mtype
    out[8:12] = size.to_bytes(4, "little" if little else "big")
    return bytes(out)


def fragment_giop(data: bytes, mtu: int) -> List[bytes]:
    """Split an encoded GIOP message into <=``mtu``-byte wire messages.

    Returns ``[data]`` unchanged when it already fits.  Otherwise the
    first piece keeps the original message type with the more-fragments
    flag set, and the continuation travels as Fragment messages (the
    last with the flag clear).
    """
    if len(data) <= mtu:
        return [data]
    if mtu <= _HEADER_LEN:
        raise FragmentationError(f"mtu {mtu} leaves no room for a body")
    if len(data) < _HEADER_LEN or data[:4] != GIOP_MAGIC:
        raise FragmentationError("not a GIOP message")
    little = bool(data[6] & 0x01)
    header = data[:_HEADER_LEN]
    body = data[_HEADER_LEN:]
    chunk = mtu - _HEADER_LEN

    pieces: List[bytes] = []
    first_body = body[:chunk]
    pieces.append(
        _with_flags_and_size(header, True, None, len(first_body), little)
        + first_body
    )
    offset = len(first_body)
    while offset < len(body):
        part = body[offset : offset + chunk]
        offset += len(part)
        more = offset < len(body)
        pieces.append(
            _with_flags_and_size(header, more, _FRAGMENT_TYPE, len(part), little)
            + part
        )
    return pieces


class Reassembler:
    """Per-source reassembly of fragmented GIOP messages.

    Feed every received GIOP wire message through :meth:`push`; it returns
    the complete message bytes once available (immediately for
    unfragmented messages) or ``None`` while a message is still partial.
    """

    def __init__(self) -> None:
        #: source key -> (original header, accumulated body chunks)
        self._partial: Dict[Hashable, tuple] = {}

    def push(self, source: Hashable, data: bytes) -> Optional[bytes]:
        if len(data) < _HEADER_LEN or data[:4] != GIOP_MAGIC:
            raise FragmentationError("not a GIOP message")
        more = bool(data[6] & _FLAG_MORE)
        mtype = data[7]
        body = data[_HEADER_LEN:]

        if source not in self._partial:
            if mtype == _FRAGMENT_TYPE:
                raise FragmentationError("Fragment without an initial message")
            if not more:
                return data  # common case: unfragmented
            self._partial[source] = (data[:_HEADER_LEN], [body])
            return None

        header, chunks = self._partial[source]
        if mtype != _FRAGMENT_TYPE:
            raise FragmentationError(
                "new message started while a fragmented one was incomplete"
            )
        chunks.append(body)
        if more:
            return None
        del self._partial[source]
        little = bool(header[6] & 0x01)
        full_body = b"".join(chunks)
        return _with_flags_and_size(header, False, None, len(full_body), little) + full_body

    def pending(self) -> int:
        """Number of sources with an incomplete message."""
        return len(self._partial)

    def abort(self, source: Hashable) -> None:
        """Drop a partial message (e.g. its source left the membership)."""
        self._partial.pop(source, None)
