"""CDR — Common Data Representation marshaling (CORBA 2.2, chapter 13).

The subset of CDR that GIOP 1.0/1.1 needs: primitive types aligned to
their natural boundary *relative to the start of the stream*, strings
(length-prefixed, NUL-terminated), octet sequences, and encapsulations
(a nested CDR stream prefixed by its own byte-order octet).

Both byte orders are supported; the decoder is told the stream's order by
the caller (GIOP carries it in the message header, encapsulations carry
their own leading octet).
"""

from __future__ import annotations

import struct
from typing import List, Sequence

__all__ = ["CDREncoder", "CDRDecoder", "MarshalError"]


class MarshalError(Exception):
    """Raised on malformed CDR data or unencodable values."""


class CDREncoder:
    """Append-only CDR stream writer."""

    def __init__(self, little_endian: bool = True):
        self.little_endian = little_endian
        self._e = "<" if little_endian else ">"
        self._buf = bytearray()

    # -- alignment ------------------------------------------------------
    def align(self, boundary: int) -> None:
        """Pad with zero octets to a multiple of ``boundary``."""
        rem = len(self._buf) % boundary
        if rem:
            self._buf.extend(b"\x00" * (boundary - rem))

    def _pack(self, fmt: str, value, boundary: int) -> None:
        self.align(boundary)
        try:
            self._buf.extend(struct.pack(self._e + fmt, value))
        except struct.error as exc:
            raise MarshalError(f"cannot marshal {value!r} as {fmt}") from exc

    # -- primitives -------------------------------------------------------
    def octet(self, v: int) -> None:
        self._pack("B", v, 1)

    def boolean(self, v: bool) -> None:
        self._pack("B", 1 if v else 0, 1)

    def char(self, v: str) -> None:
        if len(v) != 1:
            raise MarshalError("char must be a single character")
        self._pack("B", ord(v), 1)

    def short(self, v: int) -> None:
        self._pack("h", v, 2)

    def ushort(self, v: int) -> None:
        self._pack("H", v, 2)

    def long(self, v: int) -> None:
        self._pack("i", v, 4)

    def ulong(self, v: int) -> None:
        self._pack("I", v, 4)

    def longlong(self, v: int) -> None:
        self._pack("q", v, 8)

    def ulonglong(self, v: int) -> None:
        self._pack("Q", v, 8)

    def float_(self, v: float) -> None:
        self._pack("f", v, 4)

    def double(self, v: float) -> None:
        self._pack("d", v, 8)

    def enum(self, v: int) -> None:
        self.ulong(v)

    # -- constructed ------------------------------------------------------
    def string(self, v: str) -> None:
        """CORBA string: ulong length (including NUL), bytes, NUL."""
        data = v.encode("utf-8")
        self.ulong(len(data) + 1)
        self._buf.extend(data)
        self._buf.append(0)

    def octets(self, v: bytes) -> None:
        """sequence<octet>: ulong length then raw bytes."""
        self.ulong(len(v))
        self._buf.extend(v)

    def raw(self, v: bytes) -> None:
        """Unaligned raw bytes (already-encoded material)."""
        self._buf.extend(v)

    def ulong_seq(self, vs: Sequence[int]) -> None:
        self.ulong(len(vs))
        for v in vs:
            self.ulong(v)

    def encapsulation(self, inner: "CDREncoder") -> None:
        """Embed a nested CDR stream (own byte-order octet, as octet seq)."""
        payload = bytes([1 if inner.little_endian else 0]) + inner.getvalue()
        self.octets(payload)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class CDRDecoder:
    """Sequential CDR stream reader with bounds checking."""

    def __init__(self, data: bytes, little_endian: bool = True, offset: int = 0):
        self._data = data
        self._pos = offset
        self.little_endian = little_endian
        self._e = "<" if little_endian else ">"

    # -- alignment ------------------------------------------------------
    def align(self, boundary: int) -> None:
        rem = self._pos % boundary
        if rem:
            self._pos += boundary - rem

    def _unpack(self, fmt: str, boundary: int):
        self.align(boundary)
        s = struct.Struct(self._e + fmt)
        end = self._pos + s.size
        if end > len(self._data):
            raise MarshalError("truncated CDR stream")
        (v,) = s.unpack_from(self._data, self._pos)
        self._pos = end
        return v

    # -- primitives -------------------------------------------------------
    def octet(self) -> int:
        return self._unpack("B", 1)

    def boolean(self) -> bool:
        return bool(self._unpack("B", 1))

    def char(self) -> str:
        return chr(self._unpack("B", 1))

    def short(self) -> int:
        return self._unpack("h", 2)

    def ushort(self) -> int:
        return self._unpack("H", 2)

    def long(self) -> int:
        return self._unpack("i", 4)

    def ulong(self) -> int:
        return self._unpack("I", 4)

    def longlong(self) -> int:
        return self._unpack("q", 8)

    def ulonglong(self) -> int:
        return self._unpack("Q", 8)

    def float_(self) -> float:
        return self._unpack("f", 4)

    def double(self) -> float:
        return self._unpack("d", 8)

    def enum(self) -> int:
        return self.ulong()

    # -- constructed ------------------------------------------------------
    def string(self) -> str:
        n = self.ulong()
        if n == 0:
            return ""
        end = self._pos + n
        if end > len(self._data):
            raise MarshalError("truncated string")
        raw = self._data[self._pos : end - 1]  # strip trailing NUL
        self._pos = end
        return raw.decode("utf-8")

    def octets(self) -> bytes:
        n = self.ulong()
        end = self._pos + n
        if end > len(self._data):
            raise MarshalError("truncated octet sequence")
        raw = self._data[self._pos : end]
        self._pos = end
        return raw

    def ulong_seq(self) -> List[int]:
        n = self.ulong()
        return [self.ulong() for _ in range(n)]

    def encapsulation(self) -> "CDRDecoder":
        payload = self.octets()
        if not payload:
            raise MarshalError("empty encapsulation")
        little = payload[0] == 1
        return CDRDecoder(payload[1:], little_endian=little)

    def remaining(self) -> bytes:
        """Everything not yet consumed (e.g. a request body)."""
        return self._data[self._pos :]

    @property
    def position(self) -> int:
        return self._pos
