"""Self-describing value marshaling for invocation parameters.

A real ORB marshals parameters against IDL-derived TypeCodes.  This
reproduction has no IDL compiler, so method arguments and results travel
as *tagged CDR values* — a small TypeCode-like convention covering the
Python types our examples and tests need:

========  ======================  ==============================
tag       IDL analogue            Python type
========  ======================  ==============================
0         void/null               ``None``
1         boolean                 ``bool``
2         long long               ``int``
3         double                  ``float``
4         string                  ``str``
5         sequence<octet>         ``bytes``
6         sequence<any>           ``list`` / ``tuple``
7         struct (name/value)     ``dict[str, any]``
========  ======================  ==============================

Nested arbitrarily.  ``encode_values``/``decode_values`` handle the
argument lists used by Request/Reply bodies.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from .cdr import CDRDecoder, CDREncoder, MarshalError

__all__ = ["encode_value", "decode_value", "encode_values", "decode_values"]

_TAG_NULL = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_DOUBLE = 3
_TAG_STRING = 4
_TAG_BYTES = 5
_TAG_SEQ = 6
_TAG_STRUCT = 7

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_value(enc: CDREncoder, value: Any) -> None:
    """Append one tagged value to a CDR stream."""
    if value is None:
        enc.octet(_TAG_NULL)
    elif isinstance(value, bool):  # before int: bool is an int subclass
        enc.octet(_TAG_BOOL)
        enc.boolean(value)
    elif isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise MarshalError(f"integer out of 64-bit range: {value}")
        enc.octet(_TAG_INT)
        enc.longlong(value)
    elif isinstance(value, float):
        enc.octet(_TAG_DOUBLE)
        enc.double(value)
    elif isinstance(value, str):
        enc.octet(_TAG_STRING)
        enc.string(value)
    elif isinstance(value, (bytes, bytearray)):
        enc.octet(_TAG_BYTES)
        enc.octets(bytes(value))
    elif isinstance(value, (list, tuple)):
        enc.octet(_TAG_SEQ)
        enc.ulong(len(value))
        for v in value:
            encode_value(enc, v)
    elif isinstance(value, dict):
        enc.octet(_TAG_STRUCT)
        enc.ulong(len(value))
        for k, v in value.items():
            if not isinstance(k, str):
                raise MarshalError("struct keys must be strings")
            enc.string(k)
            encode_value(enc, v)
    else:
        raise MarshalError(f"unmarshalable type {type(value).__name__}")


def decode_value(dec: CDRDecoder) -> Any:
    """Read one tagged value from a CDR stream."""
    tag = dec.octet()
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_BOOL:
        return dec.boolean()
    if tag == _TAG_INT:
        return dec.longlong()
    if tag == _TAG_DOUBLE:
        return dec.double()
    if tag == _TAG_STRING:
        return dec.string()
    if tag == _TAG_BYTES:
        return dec.octets()
    if tag == _TAG_SEQ:
        return [decode_value(dec) for _ in range(dec.ulong())]
    if tag == _TAG_STRUCT:
        return {dec.string(): decode_value(dec) for _ in range(dec.ulong())}
    raise MarshalError(f"unknown value tag {tag}")


def encode_values(values: Sequence[Any], little_endian: bool = True) -> bytes:
    """Encode an argument/result list as a standalone CDR body."""
    enc = CDREncoder(little_endian)
    enc.ulong(len(values))
    for v in values:
        encode_value(enc, v)
    return enc.getvalue()


def decode_values(data: bytes, little_endian: bool = True) -> List[Any]:
    """Decode an argument/result list encoded by :func:`encode_values`."""
    dec = CDRDecoder(data, little_endian)
    return [decode_value(dec) for _ in range(dec.ulong())]
