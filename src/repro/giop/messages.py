"""GIOP message model (CORBA 2.2 chapter 13; paper §3.1).

"CORBA's Generalized Inter-ORB Protocol (GIOP) specification defines eight
message types: Request, Reply, CancelRequest, LocateRequest, LocateReply,
CloseConnection, MessageError and Fragment."  All eight are implemented
with GIOP 1.0 header/body layouts (the byte-order octet form), and each is
what FTMP encapsulates inside a Regular message (Figure 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from .cdr import CDRDecoder, CDREncoder, MarshalError

__all__ = [
    "GIOP_MAGIC",
    "GIOPMessageType",
    "ReplyStatus",
    "LocateStatus",
    "ServiceContext",
    "GIOPHeader",
    "RequestMessage",
    "ReplyMessage",
    "CancelRequestMessage",
    "LocateRequestMessage",
    "LocateReplyMessage",
    "CloseConnectionMessage",
    "MessageErrorMessage",
    "FragmentMessage",
    "GIOPMessage",
    "encode_giop",
    "decode_giop",
]

GIOP_MAGIC = b"GIOP"
_HEADER_LEN = 12


class GIOPMessageType(enum.IntEnum):
    """The eight GIOP message types (CORBA 2.2 §13.2.1)."""

    REQUEST = 0
    REPLY = 1
    CANCEL_REQUEST = 2
    LOCATE_REQUEST = 3
    LOCATE_REPLY = 4
    CLOSE_CONNECTION = 5
    MESSAGE_ERROR = 6
    FRAGMENT = 7


class ReplyStatus(enum.IntEnum):
    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    LOCATION_FORWARD = 3


class LocateStatus(enum.IntEnum):
    UNKNOWN_OBJECT = 0
    OBJECT_HERE = 1
    OBJECT_FORWARD = 2


@dataclass(frozen=True)
class ServiceContext:
    """One entry of a GIOP service context list."""

    context_id: int
    context_data: bytes


@dataclass
class GIOPHeader:
    """The 12-byte GIOP message header."""

    message_type: GIOPMessageType
    little_endian: bool = True
    version: Tuple[int, int] = (1, 0)
    message_size: int = 0  #: body size; filled in at encode time


@dataclass
class RequestMessage:
    header: GIOPHeader
    service_context: List[ServiceContext] = field(default_factory=list)
    request_id: int = 0
    response_expected: bool = True
    object_key: bytes = b""
    operation: str = ""
    requesting_principal: bytes = b""
    body: bytes = b""  #: CDR-encoded in/inout parameters


@dataclass
class ReplyMessage:
    header: GIOPHeader
    service_context: List[ServiceContext] = field(default_factory=list)
    request_id: int = 0
    reply_status: ReplyStatus = ReplyStatus.NO_EXCEPTION
    body: bytes = b""  #: CDR-encoded results / exception


@dataclass
class CancelRequestMessage:
    header: GIOPHeader
    request_id: int = 0


@dataclass
class LocateRequestMessage:
    header: GIOPHeader
    request_id: int = 0
    object_key: bytes = b""


@dataclass
class LocateReplyMessage:
    header: GIOPHeader
    request_id: int = 0
    locate_status: LocateStatus = LocateStatus.UNKNOWN_OBJECT


@dataclass
class CloseConnectionMessage:
    header: GIOPHeader


@dataclass
class MessageErrorMessage:
    header: GIOPHeader


@dataclass
class FragmentMessage:
    """GIOP 1.1 continuation of a fragmented message."""

    header: GIOPHeader
    data: bytes = b""


GIOPMessage = Union[
    RequestMessage,
    ReplyMessage,
    CancelRequestMessage,
    LocateRequestMessage,
    LocateReplyMessage,
    CloseConnectionMessage,
    MessageErrorMessage,
    FragmentMessage,
]


def _encode_service_context(enc: CDREncoder, ctxs: List[ServiceContext]) -> None:
    enc.ulong(len(ctxs))
    for c in ctxs:
        enc.ulong(c.context_id)
        enc.octets(c.context_data)


def _decode_service_context(dec: CDRDecoder) -> List[ServiceContext]:
    return [ServiceContext(dec.ulong(), dec.octets()) for _ in range(dec.ulong())]


def encode_giop(msg: GIOPMessage) -> bytes:
    """Serialize a GIOP message: 12-byte header + CDR body."""
    h = msg.header
    body = CDREncoder(h.little_endian)
    # Body alignment is relative to the start of the message; account for
    # the 12-byte header so multiples-of-8 land correctly.
    body.raw(b"\x00" * _HEADER_LEN)

    if isinstance(msg, RequestMessage):
        _encode_service_context(body, msg.service_context)
        body.ulong(msg.request_id)
        body.boolean(msg.response_expected)
        body.octets(msg.object_key)
        body.string(msg.operation)
        body.octets(msg.requesting_principal)
        body.raw(msg.body)
    elif isinstance(msg, ReplyMessage):
        _encode_service_context(body, msg.service_context)
        body.ulong(msg.request_id)
        body.enum(int(msg.reply_status))
        body.raw(msg.body)
    elif isinstance(msg, CancelRequestMessage):
        body.ulong(msg.request_id)
    elif isinstance(msg, LocateRequestMessage):
        body.ulong(msg.request_id)
        body.octets(msg.object_key)
    elif isinstance(msg, LocateReplyMessage):
        body.ulong(msg.request_id)
        body.enum(int(msg.locate_status))
    elif isinstance(msg, (CloseConnectionMessage, MessageErrorMessage)):
        pass
    elif isinstance(msg, FragmentMessage):
        body.raw(msg.data)
    else:  # pragma: no cover - exhaustive
        raise MarshalError(f"unknown GIOP message {type(msg).__name__}")

    payload = body.getvalue()[_HEADER_LEN:]
    h.message_size = len(payload)

    head = CDREncoder(h.little_endian)
    head.raw(GIOP_MAGIC)
    head.octet(h.version[0])
    head.octet(h.version[1])
    head.boolean(h.little_endian)  # GIOP 1.0 byte_order octet
    head.octet(int(h.message_type))
    head.ulong(h.message_size)
    return head.getvalue() + payload


def decode_giop(data: bytes) -> GIOPMessage:
    """Deserialize a GIOP message."""
    if len(data) < _HEADER_LEN or data[:4] != GIOP_MAGIC:
        raise MarshalError("not a GIOP message")
    version = (data[4], data[5])
    little = data[6] == 1
    try:
        mtype = GIOPMessageType(data[7])
    except ValueError as exc:
        raise MarshalError(f"unknown GIOP message type {data[7]}") from exc
    dec = CDRDecoder(data, little_endian=little, offset=8)
    size = dec.ulong()
    if size != len(data) - _HEADER_LEN:
        raise MarshalError(
            f"GIOP size field {size} != body length {len(data) - _HEADER_LEN}"
        )
    h = GIOPHeader(message_type=mtype, little_endian=little, version=version,
                   message_size=size)

    if mtype == GIOPMessageType.REQUEST:
        ctx = _decode_service_context(dec)
        return RequestMessage(
            header=h,
            service_context=ctx,
            request_id=dec.ulong(),
            response_expected=dec.boolean(),
            object_key=dec.octets(),
            operation=dec.string(),
            requesting_principal=dec.octets(),
            body=dec.remaining(),
        )
    if mtype == GIOPMessageType.REPLY:
        ctx = _decode_service_context(dec)
        return ReplyMessage(
            header=h,
            service_context=ctx,
            request_id=dec.ulong(),
            reply_status=ReplyStatus(dec.enum()),
            body=dec.remaining(),
        )
    if mtype == GIOPMessageType.CANCEL_REQUEST:
        return CancelRequestMessage(header=h, request_id=dec.ulong())
    if mtype == GIOPMessageType.LOCATE_REQUEST:
        return LocateRequestMessage(header=h, request_id=dec.ulong(),
                                    object_key=dec.octets())
    if mtype == GIOPMessageType.LOCATE_REPLY:
        return LocateReplyMessage(header=h, request_id=dec.ulong(),
                                  locate_status=LocateStatus(dec.enum()))
    if mtype == GIOPMessageType.CLOSE_CONNECTION:
        return CloseConnectionMessage(header=h)
    if mtype == GIOPMessageType.MESSAGE_ERROR:
        return MessageErrorMessage(header=h)
    if mtype == GIOPMessageType.FRAGMENT:
        return FragmentMessage(header=h, data=dec.remaining())
    raise MarshalError(f"unhandled GIOP type {mtype}")  # pragma: no cover
