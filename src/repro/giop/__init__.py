"""GIOP — General Inter-ORB Protocol messages and CDR marshaling.

The eight GIOP message types (paper §3.1), CDR primitive/constructed
marshaling, the tagged-value convention used for invocation parameters,
object references, and the CORBA system-exception hierarchy.
"""

from .cdr import CDRDecoder, CDREncoder, MarshalError
from .errors import (
    BadOperation,
    CommFailure,
    CORBAException,
    Marshal,
    ObjectNotExist,
    SystemException,
    Transient,
    UserException,
    system_exception_by_name,
)
from .ior import GroupRef, ObjectRef, decode_ref
from .messages import (
    GIOP_MAGIC,
    CancelRequestMessage,
    CloseConnectionMessage,
    FragmentMessage,
    GIOPHeader,
    GIOPMessage,
    GIOPMessageType,
    LocateReplyMessage,
    LocateRequestMessage,
    LocateStatus,
    MessageErrorMessage,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    ServiceContext,
    decode_giop,
    encode_giop,
)
from .values import decode_value, decode_values, encode_value, encode_values

__all__ = [
    "CDREncoder",
    "CDRDecoder",
    "MarshalError",
    "GIOP_MAGIC",
    "GIOPMessageType",
    "GIOPHeader",
    "GIOPMessage",
    "RequestMessage",
    "ReplyMessage",
    "CancelRequestMessage",
    "LocateRequestMessage",
    "LocateReplyMessage",
    "CloseConnectionMessage",
    "MessageErrorMessage",
    "FragmentMessage",
    "ReplyStatus",
    "LocateStatus",
    "ServiceContext",
    "encode_giop",
    "decode_giop",
    "encode_value",
    "decode_value",
    "encode_values",
    "decode_values",
    "ObjectRef",
    "GroupRef",
    "decode_ref",
    "CORBAException",
    "SystemException",
    "ObjectNotExist",
    "BadOperation",
    "CommFailure",
    "Transient",
    "Marshal",
    "UserException",
    "system_exception_by_name",
]
