"""Object references.

A CORBA IOR names an object by repository type id plus transport profiles.
Our mini-ORB needs two flavours:

* a *singleton* reference: reach one servant over a point-to-point
  (IIOP-style) channel — identified by processor id + object key;
* a *group* reference: reach an object group over FTMP — identified by a
  fault tolerance domain id and an object group id (plus the object key
  within the group), the same identifiers FTMP's connection ids use (§4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cdr import CDRDecoder, CDREncoder, MarshalError

__all__ = ["ObjectRef", "GroupRef"]


@dataclass(frozen=True)
class ObjectRef:
    """Reference to a single (unreplicated) object on one processor."""

    type_id: str
    processor: int
    object_key: bytes

    def stringify(self) -> str:
        return f"corbaloc:sim:{self.processor}/{self.object_key.hex()}#{self.type_id}"

    def encode(self) -> bytes:
        enc = CDREncoder()
        enc.octet(0)  # profile tag: singleton
        enc.string(self.type_id)
        enc.ulong(self.processor)
        enc.octets(self.object_key)
        return enc.getvalue()


@dataclass(frozen=True)
class GroupRef:
    """Reference to a replicated object group reachable over FTMP."""

    type_id: str
    domain: int
    object_group: int
    object_key: bytes

    def stringify(self) -> str:
        return (
            f"corbaloc:ftmp:{self.domain}/{self.object_group}"
            f"/{self.object_key.hex()}#{self.type_id}"
        )

    def encode(self) -> bytes:
        enc = CDREncoder()
        enc.octet(1)  # profile tag: group
        enc.string(self.type_id)
        enc.ulong(self.domain)
        enc.ulong(self.object_group)
        enc.octets(self.object_key)
        return enc.getvalue()


def decode_ref(data: bytes):
    """Decode either reference flavour from its binary form."""
    dec = CDRDecoder(data)
    tag = dec.octet()
    if tag == 0:
        return ObjectRef(dec.string(), dec.ulong(), dec.octets())
    if tag == 1:
        return GroupRef(dec.string(), dec.ulong(), dec.ulong(), dec.octets())
    raise MarshalError(f"unknown reference profile tag {tag}")
