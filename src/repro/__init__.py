"""Reproduction of "A Group Communication Protocol for CORBA" (ICPP 1999).

Subpackages:

* :mod:`repro.core` — FTMP: the paper's group communication protocol
  (RMP / ROMP / PGMP), the primary contribution;
* :mod:`repro.simnet` — simulated IP-Multicast substrate + real-UDP mode;
* :mod:`repro.giop` — CORBA GIOP messages and CDR marshaling;
* :mod:`repro.orb` — miniature ORB with IIOP-style and FTMP transports;
* :mod:`repro.replication` — fault-tolerance infrastructure (object groups,
  active replication, duplicate suppression, state transfer);
* :mod:`repro.baselines` — sequencer / token-ring / point-to-point
  comparators from the paper's related work;
* :mod:`repro.analysis` — workloads, experiment harness, statistics.
"""

__version__ = "1.0.0"

from . import analysis, baselines, core, giop, orb, replication, simnet  # noqa: F401

__all__ = [
    "core",
    "simnet",
    "giop",
    "orb",
    "replication",
    "baselines",
    "analysis",
    "__version__",
]
