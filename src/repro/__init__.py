"""Reproduction of "A Group Communication Protocol for CORBA" (ICPP 1999).

Subpackages:

* :mod:`repro.core` — FTMP: the paper's group communication protocol
  (RMP / ROMP / PGMP), the primary contribution;
* :mod:`repro.simnet` — simulated IP-Multicast substrate + real-UDP mode;
* :mod:`repro.giop` — CORBA GIOP messages and CDR marshaling;
* :mod:`repro.orb` — miniature ORB with IIOP-style and FTMP transports;
* :mod:`repro.replication` — fault-tolerance infrastructure (object groups,
  active replication, duplicate suppression, state transfer);
* :mod:`repro.baselines` — sequencer / token-ring / point-to-point
  comparators from the paper's related work;
* :mod:`repro.analysis` — workloads, experiment harness, statistics;
* :mod:`repro.transport` — the runtime-neutral Endpoint seam the
  protocol layers are written against;
* :mod:`repro.runtime` — real asyncio multi-process cluster runtime
  (wall-clock execution of the identical stack).

Subpackages load lazily (PEP 562): importing the protocol layers never
drags in a runtime, so ``repro.core`` stays importable in a worker
process without paying for (or depending on) the simulator.
"""

import importlib

__version__ = "1.0.0"

_SUBMODULES = (
    "core",
    "simnet",
    "giop",
    "orb",
    "replication",
    "baselines",
    "analysis",
    "runtime",
    "transport",
)

__all__ = [*_SUBMODULES, "__version__"]


def __getattr__(name):
    if name in _SUBMODULES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SUBMODULES))
