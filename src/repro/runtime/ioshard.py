"""I/O-shard worker: owns UDP sockets so the ordering core doesn't.

``python -m repro.runtime.ioshard`` runs one shard process (spec JSON on
stdin).  A shard is the syscall half of the sharded wall-clock datapath
(ISSUE 9): it drains its UDP socket with batched ``recv_into`` calls
into a preallocated buffer, validates each datagram's framing *off* the
ordering core (group prefix + FTMP header sanity via ``peek_header``),
and pushes raw packets through a shared-memory SPSC ring to the core.
On the transmit side it consumes a core->shard ring of op-prefixed
records and issues the ``sendto`` fan-out.

What deliberately stays on the ordering core: full ``wire.decode``
(zero-copy via ``decode_view`` over the popped record), all RMP/ROMP/
PGMP state, and retransmissions — a §5 retransmission is re-sent from
the core's retention buffer over its own fallback socket so any-holder
recovery and retention identity are untouched by sharding.

TX ring record framing (1 op byte + body):

* ``0x00`` DATA  — packet (4-byte group prefix + FTMP frame): send to
  every configured target (loopback mode) or to the group's multicast
  address derived from the prefix (multicast mode);
* ``0x01`` JOIN  — u32 group address: ``IP_ADD_MEMBERSHIP`` (multicast
  mode; no-op in loopback);
* ``0x02`` LEAVE — u32 group address: ``IP_DROP_MEMBERSHIP``.

RX ring records are raw packets, nothing else — shard statistics travel
as JSON lines on stdout (the worker parent reads them), and liveness is
the rx doorbell pipe itself: the shard holds its only write end, so the
core observes EOF the moment the shard dies and fails over to an
in-core socket.

The shard is plain blocking-``selectors`` Python, not asyncio: its loop
is two ring operations and two socket batches — an event loop would
only add per-datagram overhead.
"""

from __future__ import annotations

import fcntl
import json
import os
import selectors
import socket
import struct
import sys
import termios
import time
from typing import Dict, List, Optional, Tuple

from ..core.wire import CodecError, peek_header
from .shm import SpscRing

__all__ = [
    "OP_DATA", "OP_JOIN", "OP_LEAVE",
    "rx_ring_name", "tx_ring_name", "peer_ring_name", "cluster_ring_names",
    "run_shard",
]

OP_DATA = 0
OP_JOIN = 1
OP_LEAVE = 2

_GROUP_PREFIX = struct.Struct("!I")
_U32 = struct.Struct("!I")
#: FTMP header size — a packet shorter than prefix+header can't be valid
_MIN_PACKET = _GROUP_PREFIX.size + 40
_RECV_BUF_SIZE = 65535
_BATCH = 64


# ----------------------------------------------------------------------
# ring naming — shared by supervisor (create/unlink) and attachers
# ----------------------------------------------------------------------
def rx_ring_name(run_id: str, pid: int, shard: int) -> str:
    return f"{run_id}-rx-{pid}-{shard}"


def tx_ring_name(run_id: str, pid: int, shard: int) -> str:
    return f"{run_id}-tx-{pid}-{shard}"


def peer_ring_name(run_id: str, src: int, dst: int) -> str:
    return f"{run_id}-pr-{src}-{dst}"


def cluster_ring_names(run_id: str, pids, io_shards: int,
                       peer_rings: bool) -> List[str]:
    """Every segment name a sharded cluster needs (supervisor creates all
    up front; workers and shards only attach)."""
    names: List[str] = []
    pids = list(pids)
    for pid in pids:
        for s in range(io_shards):
            names.append(rx_ring_name(run_id, pid, s))
            names.append(tx_ring_name(run_id, pid, s))
    if peer_rings:
        for src in pids:
            for dst in pids:
                if src != dst:
                    names.append(peer_ring_name(run_id, src, dst))
    return names


def _rcvbuf_occupancy(sock: socket.socket) -> int:
    """Bytes currently queued in the socket receive buffer (FIONREAD)."""
    try:
        buf = fcntl.ioctl(sock.fileno(), termios.FIONREAD, b"\0\0\0\0")
        return int.from_bytes(buf, sys.byteorder)
    except OSError:  # pragma: no cover - platform without FIONREAD
        return 0


def _multicast_group_ip(group_addr: int, prefix: str) -> str:
    return f"{prefix}.{(group_addr >> 8) & 0xFF}.{group_addr & 0xFF}"


class _ShardStats:
    __slots__ = ("rx_datagrams", "rx_decode_errors", "rx_ring_full",
                 "tx_datagrams", "tx_send_errors", "rcvbuf_max_bytes")

    def __init__(self) -> None:
        self.rx_datagrams = 0
        self.rx_decode_errors = 0
        self.rx_ring_full = 0
        self.tx_datagrams = 0
        self.tx_send_errors = 0
        self.rcvbuf_max_bytes = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: getattr(self, k) for k in self.__slots__}


def run_shard(spec: dict) -> None:
    """Shard main loop; returns when stdin closes (parent teardown)."""
    mode = spec.get("mode", "loopback")
    host = spec.get("host", "127.0.0.1")
    port = int(spec["port"])
    prefix = spec.get("multicast_prefix", "239.193")
    targets: List[Tuple[str, int]] = [
        (h, int(p)) for h, p in spec.get("targets", [])]
    rx_ring = SpscRing.attach(spec["rx_ring"])
    tx_ring = SpscRing.attach(spec["tx_ring"])
    rx_doorbell_w = int(spec["rx_doorbell_fd"])
    tx_doorbell_r = int(spec["tx_doorbell_fd"])
    os.set_blocking(tx_doorbell_r, False)
    stats_interval = float(spec.get("stats_interval_s", 0.25))

    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setblocking(False)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if spec.get("reuse_port"):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
    except OSError:  # pragma: no cover
        pass
    if mode == "multicast":
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
        sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
        sock.bind(("", port))
    else:
        sock.bind((host, port))
    memberships: set = set()

    def join(group_addr: int) -> None:
        if mode != "multicast" or group_addr in memberships:
            return
        memberships.add(group_addr)
        mreq = socket.inet_aton(_multicast_group_ip(group_addr, prefix)) \
            + socket.inet_aton("0.0.0.0")
        try:
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
        except OSError:  # pragma: no cover - duplicate membership
            pass

    def leave(group_addr: int) -> None:
        if mode != "multicast" or group_addr not in memberships:
            return
        memberships.discard(group_addr)
        mreq = socket.inet_aton(_multicast_group_ip(group_addr, prefix)) \
            + socket.inet_aton("0.0.0.0")
        try:
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_DROP_MEMBERSHIP, mreq)
        except OSError:  # pragma: no cover
            pass

    for g in spec.get("groups", []):
        join(int(g))

    stats = _ShardStats()
    recv_buf = bytearray(_RECV_BUF_SIZE)
    recv_view = memoryview(recv_buf)

    def emit_stats() -> bool:
        try:
            print(json.dumps(stats.as_dict()), flush=True)
            return True
        except OSError:  # parent gone; doorbell EOF drives failover
            return False

    def send_packet(packet) -> None:
        if mode == "multicast":
            (group_addr,) = _GROUP_PREFIX.unpack_from(packet)
            dests = ((_multicast_group_ip(group_addr, prefix), port),)
        else:
            dests = targets
        for addr in dests:
            try:
                sock.sendto(packet, addr)
                stats.tx_datagrams += 1
            except OSError:
                stats.tx_send_errors += 1

    def drain_udp() -> int:
        occ = _rcvbuf_occupancy(sock)
        if occ > stats.rcvbuf_max_bytes:
            stats.rcvbuf_max_bytes = occ
        got = 0
        for _ in range(_BATCH):
            try:
                n = sock.recv_into(recv_buf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:  # pragma: no cover - socket torn down
                break
            got += 1
            stats.rx_datagrams += 1
            # validation off the ordering core: framing must be sane
            if n < _MIN_PACKET:
                stats.rx_decode_errors += 1
                continue
            try:
                peek_header(recv_view[_GROUP_PREFIX.size:n])
            except CodecError:
                stats.rx_decode_errors += 1
                continue
            was_empty = rx_ring.is_empty()
            if not rx_ring.try_push(recv_view[:n]):
                stats.rx_ring_full += 1
                continue
            if was_empty:
                try:
                    os.write(rx_doorbell_w, b"\0")
                except OSError:  # pragma: no cover - core gone
                    pass
        return got

    def drain_tx() -> int:
        recs = tx_ring.pop_batch(_BATCH)
        for rec in recs:
            if not rec:
                continue
            op = rec[0]
            if op == OP_DATA:
                send_packet(memoryview(rec)[1:])
            elif op == OP_JOIN and len(rec) >= 1 + _U32.size:
                join(_U32.unpack_from(rec, 1)[0])
            elif op == OP_LEAVE and len(rec) >= 1 + _U32.size:
                leave(_U32.unpack_from(rec, 1)[0])
        return len(recs)

    sel = selectors.DefaultSelector()
    sel.register(sock, selectors.EVENT_READ, "udp")
    sel.register(tx_doorbell_r, selectors.EVENT_READ, "txdb")
    # parent teardown signal: stdin EOF
    stdin_fd = sys.stdin.fileno()
    os.set_blocking(stdin_fd, False)
    sel.register(stdin_fd, selectors.EVENT_READ, "stdin")

    # first stats line doubles as the readiness signal: the socket is
    # bound and both rings are attached when the parent sees it
    emit_stats()
    last_stats = time.monotonic()
    last_emitted: Optional[Dict[str, int]] = stats.as_dict()
    running = True
    while running:
        events = sel.select(timeout=0.05)
        for key, _mask in events:
            if key.data == "txdb":
                try:
                    os.read(tx_doorbell_r, 4096)
                except (BlockingIOError, InterruptedError):
                    pass
                except OSError:
                    running = False
            elif key.data == "stdin":
                try:
                    if not os.read(stdin_fd, 4096):
                        running = False  # parent closed the pipe: exit
                except (BlockingIOError, InterruptedError):
                    pass
                except OSError:
                    running = False
        # always drain both directions: doorbells are wake hints, the
        # 50 ms select timeout is the missed-wakeup safety net
        while drain_udp() == _BATCH:
            pass
        while drain_tx() == _BATCH:
            pass
        now = time.monotonic()
        if now - last_stats >= stats_interval:
            last_stats = now
            snap = stats.as_dict()
            if snap != last_emitted:
                last_emitted = snap
                emit_stats()
    # final stats so the core's counters are complete at teardown
    emit_stats()
    sel.close()
    sock.close()
    rx_ring.close()
    tx_ring.close()


def main() -> int:
    # one JSON line, keeping stdin open: its later EOF is the teardown
    # signal from the parent worker
    spec = json.loads(sys.stdin.readline())
    run_shard(spec)
    return 0


if __name__ == "__main__":
    sys.exit(main())
