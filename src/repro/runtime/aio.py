"""Asyncio implementation of the :class:`~repro.transport.Endpoint` seam.

One :class:`AioFabric` per OS process: it owns the event loop reference,
the monotonic clock origin and the peer address map, and hands out
:class:`AioEndpoint` instances (normally one per process — the cluster
runtime — but in-process multi-endpoint use works too, which is what the
endpoint contract tests exercise).

Two wire modes:

* ``"multicast"`` — real IP multicast: every endpoint binds the shared
  group port, ``join`` translates to ``IP_ADD_MEMBERSHIP`` on a
  ``239.x.y.z`` address derived from the abstract group address, and one
  datagram reaches every member (the paper's own substrate).  Joining
  real multicast groups inside containers/CI is unreliable, hence:
* ``"loopback"`` (default) — unicast fan-out over the loopback
  interface: every processor binds its own UDP port from a static peer
  map and ``multicast`` sends one datagram per peer.  Receivers filter
  on their joined-group set, which preserves the open-group and
  join/leave semantics the protocol assumes of IP multicast.

Every datagram is prefixed with the 4-byte group address so the receive
side can filter by subscription in both modes (with several groups
sharing one port, kernel multicast filtering alone is not airtight).

All protocol callbacks — datagram receipt and timer firings — run on the
event loop thread, giving the single-threaded FTMP stack the same
serialization the discrete-event scheduler provides in simulation, with
no locks.
"""

from __future__ import annotations

import asyncio
import fcntl
import json
import os
import random
import socket
import struct
import subprocess
import sys
import termios
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..transport import Endpoint
from . import ioshard
from .shm import SpscRing

__all__ = [
    "AioFabric", "AioEndpoint", "multicast_available",
    "ShardedAioFabric", "ShardedAioEndpoint",
]

#: max UDP payload minus the 4-byte group-address prefix
_MAX_DGRAM = 65503
_GROUP_PREFIX = struct.Struct("!I")

#: default shared port and IPv4 prefix for real-multicast mode
DEFAULT_MULTICAST_PORT = 29513
DEFAULT_MULTICAST_PREFIX = "239.193"


def multicast_group_ip(group_addr: int, prefix: str = DEFAULT_MULTICAST_PREFIX) -> str:
    """Map an abstract group address onto a 239.x administrative group."""
    return f"{prefix}.{(group_addr >> 8) & 0xFF}.{group_addr & 0xFF}"


def multicast_available(port: int = 0, timeout: float = 0.25) -> bool:
    """Probe whether real IP multicast round-trips on this host.

    Joins a scratch group on the wildcard interface, sends one datagram
    and waits for the kernel loopback copy.  Containers and some CI
    runners fail this; the cluster runtime then falls back to loopback
    unicast fan-out.
    """
    group = "239.193.255.251"
    try:
        rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            rx.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            rx.bind(("", port))
            actual_port = rx.getsockname()[1]
            mreq = socket.inet_aton(group) + socket.inet_aton("0.0.0.0")
            rx.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            rx.settimeout(timeout)
            tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
                tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
                tx.sendto(b"probe", (group, actual_port))
            finally:
                tx.close()
            data, _ = rx.recvfrom(64)
            return data == b"probe"
        finally:
            rx.close()
    except OSError:
        return False


class _AioTimer:
    """Cancellable one-shot timer over ``loop.call_later``."""

    __slots__ = ("_handle",)

    def __init__(self, handle: Optional[asyncio.TimerHandle]):
        self._handle = handle

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()


class _EndpointProtocol(asyncio.DatagramProtocol):
    """Datagram protocol feeding one endpoint's receive path."""

    def __init__(self, endpoint: "AioEndpoint"):
        self._ep = endpoint

    def datagram_received(self, data: bytes, addr) -> None:
        self._ep._on_packet(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable from a peer that has not bound yet (or
        # already exited): best-effort semantics, loss recovery handles it
        self._ep.stats_send_errors += 1


class AioEndpoint(Endpoint):
    """One processor's asyncio handle onto the fabric."""

    def __init__(self, fabric: "AioFabric", pid: int):
        self._fabric = fabric
        self._pid = pid
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._joined: Set[int] = set()
        self._closed = False
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._sock: Optional[socket.socket] = None
        self._rng = random.Random(fabric.seed * 1_000_003 + pid)
        #: datagrams dropped because they arrived for an unjoined group
        self.stats_filtered = 0
        self.stats_send_errors = 0

    # -- identity / time -------------------------------------------------
    @property
    def processor_id(self) -> int:
        return self._pid

    @property
    def now(self) -> float:
        return self._fabric.now()

    def random(self) -> random.Random:
        return self._rng

    # -- timers ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args) -> _AioTimer:
        if self._closed:
            return _AioTimer(None)

        def fire() -> None:
            if not self._closed:
                fn(*args)

        handle = self._fabric.loop.call_later(max(0.0, delay), fire)
        return _AioTimer(handle)

    # -- I/O -------------------------------------------------------------
    def set_receiver(self, cb: Callable[[bytes], None]) -> None:
        self._receiver = cb

    def join(self, group_addr: int) -> None:
        if self._closed or group_addr in self._joined:
            return
        self._joined.add(group_addr)
        self._fabric._join(self, group_addr)

    def leave(self, group_addr: int) -> None:
        if group_addr not in self._joined:
            return
        self._joined.discard(group_addr)
        if not self._closed:
            self._fabric._leave(self, group_addr)

    def multicast(self, group_addr: int, data: bytes) -> None:
        if self._closed:
            return
        if len(data) > _MAX_DGRAM:
            raise ValueError(f"datagram too large: {len(data)} bytes")
        self._fabric._multicast(self, group_addr, data)

    def _on_packet(self, packet: bytes) -> None:
        """Unwrap the group prefix and filter on the joined-group set."""
        if self._closed or len(packet) < _GROUP_PREFIX.size:
            return
        (group_addr,) = _GROUP_PREFIX.unpack_from(packet)
        if group_addr not in self._joined:
            self.stats_filtered += 1
            return
        cb = self._receiver
        if cb is not None:
            cb(packet[_GROUP_PREFIX.size:])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._receiver = None
        self._fabric._detach(self)
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class AioFabric:
    """Per-process endpoint factory + cross-process multicast fabric.

    ``peers`` maps every processor id in the cluster to its UDP port on
    ``host`` (loopback mode); in multicast mode the map only names the
    processor ids.  Endpoints are created with :meth:`start` (a
    coroutine — the datagram socket binds on the running loop).
    """

    def __init__(
        self,
        peers: Dict[int, int],
        mode: str = "loopback",
        host: str = "127.0.0.1",
        seed: int = 0,
        multicast_port: int = DEFAULT_MULTICAST_PORT,
        multicast_prefix: str = DEFAULT_MULTICAST_PREFIX,
    ):
        if mode not in ("loopback", "multicast"):
            raise ValueError(f"unknown fabric mode {mode!r}")
        self.mode = mode
        self.host = host
        self.seed = seed
        self.peers = dict(peers)
        self.multicast_port = multicast_port
        self.multicast_prefix = multicast_prefix
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = time.monotonic()
        #: endpoints living in *this* process (delivered via call_soon in
        #: loopback mode — no kernel round-trip for self/local delivery)
        self._local: Dict[int, AioEndpoint] = {}
        self._peer_addrs: Tuple[Tuple[str, int], ...] = ()
        #: receive-side drop visibility (ISSUE 9): high-water mark of
        #: kernel SO_RCVBUF occupancy, sampled on a coarse timer
        self.rcvbuf_max_bytes = 0
        self._rcvbuf_timer: Optional[asyncio.TimerHandle] = None
        self._rcvbuf_sample_interval = 0.05
        # counters of endpoints that already closed, so ``net_stats`` is
        # complete regardless of snapshot/teardown ordering
        self._closed_filtered = 0
        self._closed_send_errors = 0

    # -- loop / clock ----------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -- endpoint lifecycle ----------------------------------------------
    async def start(self, pid: int) -> AioEndpoint:
        """Bind processor ``pid``'s datagram socket and return its endpoint."""
        if pid not in self.peers:
            raise KeyError(f"processor {pid} is not in the peer map")
        if pid in self._local:
            raise ValueError(f"processor {pid} already started in this process")
        self._loop = asyncio.get_running_loop()
        ep = AioEndpoint(self, pid)
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
        except OSError:
            pass
        if self.mode == "multicast":
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
            sock.bind(("", self.multicast_port))
        else:
            sock.bind((self.host, self.peers[pid]))
        transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _EndpointProtocol(ep), sock=sock
        )
        ep._transport = transport
        ep._sock = sock
        self._local[pid] = ep
        self._rebuild_remote_targets()
        if self._rcvbuf_timer is None:
            self._rcvbuf_timer = self._loop.call_later(
                self._rcvbuf_sample_interval, self._sample_rcvbuf)
        return ep

    def _sample_rcvbuf(self) -> None:
        """Track the kernel receive-queue high-water mark (FIONREAD)."""
        for ep in self._local.values():
            if ep._sock is None:
                continue
            try:
                raw = fcntl.ioctl(ep._sock.fileno(), termios.FIONREAD,
                                  b"\0\0\0\0")
                occ = int.from_bytes(raw, sys.byteorder)
            except OSError:  # pragma: no cover - closed under us
                continue
            if occ > self.rcvbuf_max_bytes:
                self.rcvbuf_max_bytes = occ
        if self._local and self._loop is not None:
            self._rcvbuf_timer = self._loop.call_later(
                self._rcvbuf_sample_interval, self._sample_rcvbuf)
        else:
            self._rcvbuf_timer = None

    def net_stats(self) -> Dict[str, int]:
        """Receive/transmit-side transport counters for ``snapshot()``."""
        return {
            "rx_filtered": self._closed_filtered + sum(
                ep.stats_filtered for ep in self._local.values()),
            "rx_rcvbuf_max_bytes": self.rcvbuf_max_bytes,
            "rx_ring_full": 0,
            "rx_decode_errors": 0,
            "tx_send_errors": self._closed_send_errors + sum(
                ep.stats_send_errors for ep in self._local.values()),
            "shard_failovers": 0,
        }

    def _detach(self, ep: AioEndpoint) -> None:
        if self._local.pop(ep.processor_id, None) is not None:
            self._closed_filtered += ep.stats_filtered
            self._closed_send_errors += ep.stats_send_errors
        self._rebuild_remote_targets()

    def stop(self) -> None:
        """Close every endpoint created in this process (idempotent)."""
        for ep in list(self._local.values()):
            ep.close()
        if self._rcvbuf_timer is not None:
            self._rcvbuf_timer.cancel()
            self._rcvbuf_timer = None

    def _rebuild_remote_targets(self) -> None:
        """Loopback fan-out targets: every peer *not* local to this process."""
        self._peer_addrs = tuple(
            (self.host, port)
            for pid, port in sorted(self.peers.items())
            if pid not in self._local
        )

    # -- group membership -------------------------------------------------
    def _join(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode == "multicast" and ep._sock is not None:
            mreq = socket.inet_aton(
                multicast_group_ip(group_addr, self.multicast_prefix)
            ) + socket.inet_aton("0.0.0.0")
            try:
                ep._sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            except OSError:
                pass  # already a member via another local endpoint

    def _leave(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode == "multicast" and ep._sock is not None:
            mreq = socket.inet_aton(
                multicast_group_ip(group_addr, self.multicast_prefix)
            ) + socket.inet_aton("0.0.0.0")
            try:
                ep._sock.setsockopt(socket.IPPROTO_IP, socket.IP_DROP_MEMBERSHIP, mreq)
            except OSError:
                pass

    # -- datagram fan-out -------------------------------------------------
    def _multicast(self, sender: AioEndpoint, group_addr: int, data: bytes) -> None:
        packet = _GROUP_PREFIX.pack(group_addr) + data
        transport = sender._transport
        if transport is None:
            return
        if self.mode == "multicast":
            transport.sendto(
                packet,
                (multicast_group_ip(group_addr, self.multicast_prefix),
                 self.multicast_port),
            )
            return
        # loopback mode: kernel datagrams to remote processes, call_soon
        # to endpoints in this process (including the sender's loopback —
        # IP multicast semantics deliver a sender its own datagrams)
        for addr in self._peer_addrs:
            transport.sendto(packet, addr)
        call_soon = self.loop.call_soon
        for ep in self._local.values():
            call_soon(ep._on_packet, packet)


# ======================================================================
# sharded wall-clock datapath (ISSUE 9): I/O-shard subprocesses own the
# UDP sockets; the ordering core exchanges datagrams over shared-memory
# SPSC rings — peer-to-peer rings between co-hosted workers on the fast
# path, shard rings bridging everything else
# ======================================================================

#: FTMP flags byte offset within a frame (mirrors core/wire.py privates;
#: the send path peeks it to keep §5 retransmissions off the TX ring)
_FRAME_FLAGS_OFFSET = 6
_FLAG_RETRANSMISSION = 0x02

#: records drained per ring per call_soon batch; bounds how long one
#: ingest callback can monopolize the loop between timer firings
_INGEST_BATCH = 64

#: idle poll period for peer rings when no eventfd doorbells exist
#: (single-process harnesses, pre-3.10 fallback); under load draining
#: re-arms via call_soon, so this timer only bounds idle->busy latency
_PEER_POLL_IDLE_S = 0.001

#: with eventfd doorbells armed the poll is only a lost-wakeup backstop
#: (the shard pipe doorbell's empty-check has a benign race window)
_PEER_POLL_BACKSTOP_S = 0.02

_HAS_EVENTFD = hasattr(os, "eventfd")


class _ShardProc:
    """One spawned I/O-shard subprocess plus its core-side plumbing."""

    __slots__ = ("index", "proc", "rx_ring", "tx_ring", "rx_db_r",
                 "tx_db_w", "alive", "stats", "stdout_buf")

    def __init__(self, index: int, proc: subprocess.Popen,
                 rx_ring: SpscRing, tx_ring: SpscRing,
                 rx_db_r: int, tx_db_w: int):
        self.index = index
        self.proc = proc
        self.rx_ring = rx_ring
        self.tx_ring = tx_ring
        self.rx_db_r = rx_db_r
        self.tx_db_w = tx_db_w
        self.alive = True
        self.stats: Dict[str, int] = {}
        self.stdout_buf = b""  # partial stats line across nonblocking reads


class ShardedAioEndpoint(AioEndpoint):
    """Endpoint whose datagrams travel over shm rings and I/O shards."""

    def _on_packet_view(self, packet: bytes) -> None:
        """Ring-ingest twin of ``_on_packet``: the frame reaches the stack
        as a memoryview over the popped record (zero-copy decode)."""
        if self._closed or len(packet) < _GROUP_PREFIX.size:
            return
        (group_addr,) = _GROUP_PREFIX.unpack_from(packet)
        if group_addr not in self._joined:
            self.stats_filtered += 1
            return
        cb = self._receiver
        if cb is not None:
            cb(memoryview(packet)[_GROUP_PREFIX.size:])


class ShardedAioFabric(AioFabric):
    """AioFabric variant implementing ``--io-shards N``.

    Per started endpoint it spawns ``io_shards`` subprocesses
    (``python -m repro.runtime.ioshard``) that own the UDP socket(s),
    and wires three kinds of SPSC rings:

    * shard RX (``shard -> core``): validated datagrams off the wire;
    * shard TX (``core -> shard``): first-transmission packets +
      join/leave control for the shard's socket;
    * peer rings (``core -> peer core``): the host-local fast path —
      co-hosted workers exchange packets without touching the kernel.
      When every remote processor is reachable by ring, UDP is skipped
      entirely; a full ring falls back to UDP and RMP's loss recovery
      absorbs the overlap.

    Retransmissions (§5) never enter the TX ring: the core re-sends
    retained bytes over its own fallback socket (or peer rings, which
    the core also pushes itself), so any-holder recovery and retention
    identity are exactly the single-loop runtime's.

    Shard death is observed as EOF on the rx doorbell pipe; the core
    then drains the dead shard's ring and, once no shard remains, binds
    the data port itself and continues on the in-core socket path
    (``net.shard_failovers`` counts these).

    Segment lifecycle: with ``own_rings=True`` the fabric creates and
    unlinks its endpoints' segments (single-process harnesses); the
    cluster supervisor instead pre-creates every segment and workers
    attach (``own_rings=False``).
    """

    def __init__(
        self,
        peers: Dict[int, int],
        mode: str = "loopback",
        host: str = "127.0.0.1",
        seed: int = 0,
        multicast_port: int = DEFAULT_MULTICAST_PORT,
        multicast_prefix: str = DEFAULT_MULTICAST_PREFIX,
        *,
        io_shards: int = 1,
        ring_run_id: str,
        peer_rings: bool = True,
        ring_capacity: int = 1 << 20,
        own_rings: bool = False,
        chaos_kill_shard_after_s: Optional[float] = None,
        peer_doorbell_rx: Optional[Dict[int, int]] = None,
        peer_doorbell_tx: Optional[Dict[int, int]] = None,
    ):
        super().__init__(peers, mode, host, seed, multicast_port,
                         multicast_prefix)
        if io_shards < 1:
            raise ValueError("ShardedAioFabric requires io_shards >= 1")
        self.io_shards = io_shards
        self.ring_run_id = ring_run_id
        self.peer_rings = peer_rings
        self.ring_capacity = ring_capacity
        self.own_rings = own_rings
        self.chaos_kill_shard_after_s = chaos_kill_shard_after_s
        self._shards: Dict[int, List[_ShardProc]] = {}
        self._rr: Dict[int, int] = {}  # per-pid round-robin TX shard index
        self._peer_tx: Dict[int, Dict[int, SpscRing]] = {}
        self._peer_rx: Dict[int, Dict[int, SpscRing]] = {}
        # eventfd doorbells between sibling workers (cluster supervisor
        # creates one per ordered worker pair and passes the fds down):
        # rx maps source pid -> readable fd, tx maps dest pid -> writable
        # fd.  The fabric owns both sets and closes them on stop().
        self._peer_db_rx: Dict[int, int] = (
            dict(peer_doorbell_rx) if peer_doorbell_rx and _HAS_EVENTFD else {})
        self._peer_db_tx: Dict[int, int] = (
            dict(peer_doorbell_tx) if peer_doorbell_tx and _HAS_EVENTFD else {})
        self._peer_db_armed = False
        self._owned_rings: List[SpscRing] = []
        self._fallback: Dict[int, socket.socket] = {}
        self._fallback_bound: Set[int] = set()
        self._drain_scheduled = False
        self._peer_poll_handle: Optional[asyncio.TimerHandle] = None
        self._chaos_handle: Optional[asyncio.TimerHandle] = None
        self._stopping = False
        # net.* counters (ISSUE 9 satellite)
        self.stat_tx_ring_full = 0
        self.stat_peer_ring_full = 0
        self.stat_shard_failovers = 0
        self.stat_ring_ingest = 0
        self.stat_fallback_sends = 0

    # -- ring plumbing ---------------------------------------------------
    def _ring(self, name: str, create: bool) -> SpscRing:
        if create:
            ring = SpscRing.create(name, self.ring_capacity)
            self._owned_rings.append(ring)
            return ring
        return SpscRing.attach(name)

    # -- endpoint lifecycle ----------------------------------------------
    async def start(self, pid: int) -> AioEndpoint:
        if pid not in self.peers:
            raise KeyError(f"processor {pid} is not in the peer map")
        if pid in self._local:
            raise ValueError(f"processor {pid} already started in this process")
        self._loop = asyncio.get_running_loop()
        ep = ShardedAioEndpoint(self, pid)

        # fallback socket: core-owned, unbound until failover; carries
        # retransmissions and any traffic the rings cannot
        fb = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        fb.setblocking(False)
        fb.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.mode == "multicast":
            fb.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
            fb.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
        self._fallback[pid] = fb

        # spawn the I/O shards
        shards: List[_ShardProc] = []
        run = self.ring_run_id
        for s in range(self.io_shards):
            rx_ring = self._ring(ioshard.rx_ring_name(run, pid, s),
                                 self.own_rings)
            tx_ring = self._ring(ioshard.tx_ring_name(run, pid, s),
                                 self.own_rings)
            rx_db_r, rx_db_w = os.pipe()
            tx_db_r, tx_db_w = os.pipe()
            os.set_blocking(rx_db_r, False)
            os.set_blocking(tx_db_w, False)
            spec = {
                "mode": self.mode,
                "host": self.host,
                "port": (self.multicast_port if self.mode == "multicast"
                         else self.peers[pid]),
                "multicast_prefix": self.multicast_prefix,
                "targets": [
                    (self.host, port)
                    for p, port in sorted(self.peers.items()) if p != pid
                ],
                "groups": [],
                "rx_ring": rx_ring.name,
                "tx_ring": tx_ring.name,
                "rx_doorbell_fd": rx_db_w,
                "tx_doorbell_fd": tx_db_r,
                "reuse_port": self.io_shards > 1,
            }
            # the shard must import repro regardless of how this process
            # got its sys.path (pytest rootdir, PYTHONPATH, install)
            src_root = os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))))
            env = dict(os.environ)
            env["PYTHONPATH"] = src_root + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.ioshard"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                pass_fds=(rx_db_w, tx_db_r),
                env=env,
            )
            proc.stdin.write(json.dumps(spec).encode() + b"\n")
            proc.stdin.flush()
            # the shard holds the inherited copies; ours must close so
            # pipe EOF tracks the shard's lifetime exactly
            os.close(rx_db_w)
            os.close(tx_db_r)
            handle = _ShardProc(s, proc, rx_ring, tx_ring, rx_db_r, tx_db_w)
            shards.append(handle)
            self._loop.add_reader(rx_db_r, self._on_rx_doorbell, pid, handle)
            stdout_fd = proc.stdout.fileno()
            os.set_blocking(stdout_fd, False)
            self._loop.add_reader(stdout_fd, self._on_shard_stats, handle)
        self._shards[pid] = shards
        self._rr[pid] = 0

        # peer rings to/from every other processor in the cluster
        if self.peer_rings:
            tx: Dict[int, SpscRing] = {}
            rx: Dict[int, SpscRing] = {}
            for other in self.peers:
                if other == pid:
                    continue
                tx[other] = self._ring(ioshard.peer_ring_name(run, pid, other),
                                       self.own_rings and other not in self._local)
                rx[other] = self._ring(ioshard.peer_ring_name(run, other, pid),
                                       self.own_rings and other not in self._local)
            self._peer_tx[pid] = tx
            self._peer_rx[pid] = rx

        if self._peer_db_rx and not self._peer_db_armed:
            self._peer_db_armed = True
            for fd in self._peer_db_rx.values():
                self._loop.add_reader(fd, self._on_peer_doorbell, fd)

        self._local[pid] = ep
        self._rebuild_remote_targets()
        self._arm_peer_poll()
        if (self.chaos_kill_shard_after_s is not None
                and self._chaos_handle is None):
            self._chaos_handle = self._loop.call_later(
                self.chaos_kill_shard_after_s, self._chaos_kill_one_shard)
        return ep

    def shards_ready(self) -> bool:
        """True once every shard has emitted its first stats line (its
        socket is bound and its rings are attached by then)."""
        return all(
            shard.stats or not shard.alive
            for shards in self._shards.values() for shard in shards
        )

    async def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until :meth:`shards_ready` (cluster workers call this
        before announcing themselves joinable)."""
        deadline = self.loop.time() + timeout
        while not self.shards_ready():
            if self.loop.time() >= deadline:
                raise TimeoutError("I/O shards did not become ready")
            await asyncio.sleep(0.01)

    # -- send path -------------------------------------------------------
    def _multicast(self, sender: AioEndpoint, group_addr: int, data) -> None:
        packet = _GROUP_PREFIX.pack(group_addr) + (
            data if type(data) is bytes else bytes(data))
        pid = sender.processor_id
        call_soon = self.loop.call_soon

        peer_tx = self._peer_tx.get(pid)
        if peer_tx is not None:
            # host-local fast path: every non-local processor has a ring,
            # in-process endpoints (incl. the sender's own loopback copy)
            # get call_soon — no kernel datagram at all
            pushed_all = True
            local = self._local
            db_tx = self._peer_db_tx
            for other, ring in peer_tx.items():
                if other in local:
                    continue
                if ring.try_push(packet):
                    # doorbell only when the receiver may be idle: a
                    # post-push backlog (in bytes) deeper than our own
                    # record means it cannot observe empty (and sleep)
                    # without first consuming what we just pushed; the
                    # poll backstop covers the residual stale-cursor
                    # window.  +8 covers the length prefix and a wrap
                    # marker.
                    fd = (db_tx.get(other)
                          if len(ring) <= len(packet) + 8 else None)
                    if fd is not None:
                        try:
                            os.eventfd_write(fd, 1)
                        except OSError:
                            pass  # peer gone; RMP recovery covers it
                else:
                    self.stat_peer_ring_full += 1
                    pushed_all = False
            for ep in local.values():
                call_soon(ep._on_packet, packet)
            if pushed_all:
                return
            # a full ring means a stalled peer: re-cover via UDP (RMP
            # dedups the overlap like any duplicated datagram)
            self._send_udp(pid, group_addr, packet)
            return
        self._send_udp(pid, group_addr, packet)
        if self.mode == "loopback" or self._is_failed_over(pid):
            for ep in self._local.values():
                call_soon(ep._on_packet, packet)

    def _is_failed_over(self, pid: int) -> bool:
        # in multicast mode a bound fallback socket receives its own
        # kernel-loopback copy, like the baseline runtime; before
        # failover self-delivery comes through the shard's socket
        return self.mode == "multicast" and pid in self._fallback_bound

    def _live_shard(self, pid: int) -> Optional[_ShardProc]:
        shards = self._shards.get(pid, ())
        n = len(shards)
        if n == 0:
            return None
        start = self._rr.get(pid, 0)
        for i in range(n):
            cand = shards[(start + i) % n]
            if cand.alive:
                self._rr[pid] = (start + i + 1) % n
                return cand
        return None

    def _send_udp(self, pid: int, group_addr: int, packet: bytes) -> None:
        frame_off = _GROUP_PREFIX.size + _FRAME_FLAGS_OFFSET
        retrans = (len(packet) > frame_off
                   and packet[frame_off] & _FLAG_RETRANSMISSION)
        shard = None if retrans else self._live_shard(pid)
        if shard is not None:
            was_empty = shard.tx_ring.is_empty()
            if shard.tx_ring.try_push(b"\x00" + packet):
                if was_empty:
                    self._ring_tx_doorbell(shard)
                return
            self.stat_tx_ring_full += 1
        self._fallback_send(pid, group_addr, packet)

    def _ring_tx_doorbell(self, shard: _ShardProc) -> None:
        try:
            os.write(shard.tx_db_w, b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # doorbell pipe full: shard is awake anyway
        except OSError:
            pass  # shard gone; EOF handling will fail us over

    def _fallback_send(self, pid: int, group_addr: int, packet: bytes) -> None:
        """Core-owned direct UDP send (retransmissions, ring overflow,
        post-failover traffic)."""
        fb = self._fallback.get(pid)
        if fb is None:
            return
        self.stat_fallback_sends += 1
        ep = self._local.get(pid)
        if self.mode == "multicast":
            dests = ((multicast_group_ip(group_addr, self.multicast_prefix),
                      self.multicast_port),)
        else:
            dests = tuple(
                (self.host, port)
                for p, port in sorted(self.peers.items())
                if p != pid and p not in self._local
            )
        for addr in dests:
            try:
                fb.sendto(packet, addr)
            except OSError:
                if ep is not None:
                    ep.stats_send_errors += 1

    # -- group membership (shard sockets own the memberships) -------------
    def _join(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode != "multicast":
            return
        pid = ep.processor_id
        if pid in self._fallback_bound:
            self._fallback_membership(pid, group_addr, add=True)
            return
        rec = bytes([ioshard.OP_JOIN]) + struct.pack("!I", group_addr)
        for shard in self._shards.get(pid, ()):
            if shard.alive and shard.tx_ring.try_push(rec):
                self._ring_tx_doorbell(shard)

    def _leave(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode != "multicast":
            return
        pid = ep.processor_id
        if pid in self._fallback_bound:
            self._fallback_membership(pid, group_addr, add=False)
            return
        rec = bytes([ioshard.OP_LEAVE]) + struct.pack("!I", group_addr)
        for shard in self._shards.get(pid, ()):
            if shard.alive and shard.tx_ring.try_push(rec):
                self._ring_tx_doorbell(shard)

    def _fallback_membership(self, pid: int, group_addr: int,
                             add: bool) -> None:
        fb = self._fallback.get(pid)
        if fb is None:
            return
        mreq = socket.inet_aton(
            multicast_group_ip(group_addr, self.multicast_prefix)
        ) + socket.inet_aton("0.0.0.0")
        opt = (socket.IP_ADD_MEMBERSHIP if add
               else socket.IP_DROP_MEMBERSHIP)
        try:
            fb.setsockopt(socket.IPPROTO_IP, opt, mreq)
        except OSError:
            pass

    # -- ring ingest -------------------------------------------------------
    def _on_rx_doorbell(self, pid: int, shard: _ShardProc) -> None:
        try:
            chime = os.read(shard.rx_db_r, 4096)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            chime = b""
        if chime == b"":
            self._shard_died(pid, shard)
            return
        self._schedule_drain()

    def _schedule_drain(self) -> None:
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.loop.call_soon(self._drain_rings)

    def _drain_rings(self) -> None:
        self._drain_scheduled = False
        if self._stopping:
            return
        more = False
        for pid, shards in self._shards.items():
            ep = self._local.get(pid)
            if ep is None:
                continue
            on_packet = ep._on_packet_view
            for shard in shards:
                recs = shard.rx_ring.pop_batch(_INGEST_BATCH)
                if recs:
                    self.stat_ring_ingest += len(recs)
                    for packet in recs:
                        on_packet(packet)
                    more = True
        for pid, rx in self._peer_rx.items():
            ep = self._local.get(pid)
            if ep is None:
                continue
            on_packet = ep._on_packet_view
            for ring in rx.values():
                recs = ring.pop_batch(_INGEST_BATCH)
                if recs:
                    self.stat_ring_ingest += len(recs)
                    for packet in recs:
                        on_packet(packet)
                    more = True
        if more:
            self._schedule_drain()

    def _on_peer_doorbell(self, fd: int) -> None:
        try:
            os.eventfd_read(fd)  # clear the counter; coalesces pushes
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            try:
                self.loop.remove_reader(fd)
            except (OSError, ValueError):  # pragma: no cover
                pass
            return
        self._schedule_drain()

    def _arm_peer_poll(self) -> None:
        if self._peer_poll_handle is not None or self._stopping:
            return
        if not self._peer_rx and not self._shards:
            return
        period = (_PEER_POLL_BACKSTOP_S if self._peer_db_armed
                  else _PEER_POLL_IDLE_S)
        self._peer_poll_handle = self.loop.call_later(period, self._peer_poll)

    def _peer_poll(self) -> None:
        """Idle-wakeup backstop: doorbell-less peer rings are poll-only
        and a shard doorbell can be missed in its empty-check race."""
        self._peer_poll_handle = None
        if self._stopping:
            return
        self._drain_rings()
        self._arm_peer_poll()

    # -- shard death / failover -------------------------------------------
    def _on_shard_stats(self, shard: _ShardProc) -> None:
        try:
            blob = os.read(shard.proc.stdout.fileno(), 65536)
        except (BlockingIOError, InterruptedError):
            return
        except (OSError, ValueError):
            blob = b""
        if not blob:
            return  # EOF itself is handled by the rx doorbell path
        shard.stdout_buf += blob
        *lines, shard.stdout_buf = shard.stdout_buf.split(b"\n")
        for line in lines:
            if not line:
                continue
            try:
                shard.stats = json.loads(line)
            except ValueError:
                continue

    def _shard_died(self, pid: int, shard: _ShardProc) -> None:
        if not shard.alive:
            return
        shard.alive = False
        try:
            self.loop.remove_reader(shard.rx_db_r)
        except (OSError, ValueError):  # pragma: no cover
            pass
        os.close(shard.rx_db_r)
        # harvest any final stats line, then stop watching stdout
        self._on_shard_stats(shard)
        try:
            self.loop.remove_reader(shard.proc.stdout.fileno())
        except (OSError, ValueError):  # pragma: no cover
            pass
        # drain what the shard managed to push before dying
        self._drain_rings()
        if self._stopping:
            return
        if any(s.alive for s in self._shards.get(pid, ())):
            return  # surviving shards keep the socket path up
        self._failover_to_core(pid)

    def _failover_to_core(self, pid: int) -> None:
        """All shards of ``pid`` are gone: bind the data port in-core and
        continue on the single-loop socket path."""
        if pid in self._fallback_bound:
            return
        fb = self._fallback.get(pid)
        ep = self._local.get(pid)
        if fb is None or ep is None:
            return
        try:
            if self.mode == "multicast":
                fb.bind(("", self.multicast_port))
            else:
                fb.bind((self.host, self.peers[pid]))
        except OSError:
            # port still held (shard in teardown limbo): retry shortly
            self.loop.call_later(0.05, self._failover_to_core, pid)
            return
        self._fallback_bound.add(pid)
        self.stat_shard_failovers += 1
        if self.mode == "multicast":
            for group_addr in ep._joined:
                self._fallback_membership(pid, group_addr, add=True)
        self.loop.add_reader(fb.fileno(), self._drain_fallback, pid, fb)

    def _drain_fallback(self, pid: int, fb: socket.socket) -> None:
        ep = self._local.get(pid)
        for _ in range(_INGEST_BATCH):
            try:
                data, _addr = fb.recvfrom(65535)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if ep is not None:
                ep._on_packet(data)

    def _chaos_kill_one_shard(self) -> None:
        """Chaos hook: SIGKILL the first live shard (spec-driven)."""
        self._chaos_handle = None
        for shards in self._shards.values():
            for shard in shards:
                if shard.alive and shard.proc.poll() is None:
                    shard.proc.kill()
                    return

    # -- stats / teardown --------------------------------------------------
    def net_stats(self) -> Dict[str, int]:
        base = super().net_stats()
        shard_stats = [s.stats for shards in self._shards.values()
                       for s in shards]
        base.update({
            "rx_ring_full": sum(st.get("rx_ring_full", 0)
                                for st in shard_stats),
            "rx_decode_errors": sum(st.get("rx_decode_errors", 0)
                                    for st in shard_stats),
            "rx_rcvbuf_max_bytes": max(
                [base["rx_rcvbuf_max_bytes"]]
                + [st.get("rcvbuf_max_bytes", 0) for st in shard_stats]),
            "shard_rx_datagrams": sum(st.get("rx_datagrams", 0)
                                      for st in shard_stats),
            "shard_tx_datagrams": sum(st.get("tx_datagrams", 0)
                                      for st in shard_stats),
            "tx_ring_full": self.stat_tx_ring_full,
            "peer_ring_full": self.stat_peer_ring_full,
            "ring_ingest": self.stat_ring_ingest,
            "fallback_sends": self.stat_fallback_sends,
            "shard_failovers": self.stat_shard_failovers,
        })
        return base

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._peer_poll_handle is not None:
            self._peer_poll_handle.cancel()
            self._peer_poll_handle = None
        if self._chaos_handle is not None:
            self._chaos_handle.cancel()
            self._chaos_handle = None
        super().stop()
        for pid, shards in self._shards.items():
            for shard in shards:
                if shard.alive:
                    try:
                        self.loop.remove_reader(shard.rx_db_r)
                    except (OSError, ValueError):
                        pass
                    try:
                        self.loop.remove_reader(shard.proc.stdout.fileno())
                    except (OSError, ValueError):
                        pass
                    os.close(shard.rx_db_r)
                    shard.alive = False
                try:
                    shard.proc.stdin.close()  # EOF: graceful shard exit
                except OSError:
                    pass
                try:
                    shard.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    shard.proc.kill()
                    shard.proc.wait()
                # the shard prints a last stats line on its way out
                self._on_shard_stats(shard)
                try:
                    shard.proc.stdout.close()
                except OSError:
                    pass
                try:
                    os.close(shard.tx_db_w)
                except OSError:
                    pass
                shard.rx_ring.close()
                shard.tx_ring.close()
        for pid, fb in self._fallback.items():
            if pid in self._fallback_bound:
                try:
                    self.loop.remove_reader(fb.fileno())
                except (OSError, ValueError):
                    pass
            fb.close()
        self._fallback.clear()
        for fd in self._peer_db_rx.values():
            if self._peer_db_armed:
                try:
                    self.loop.remove_reader(fd)
                except (OSError, ValueError):
                    pass
            try:
                os.close(fd)
            except OSError:
                pass
        for fd in self._peer_db_tx.values():
            try:
                os.close(fd)
            except OSError:
                pass
        self._peer_db_rx = {}
        self._peer_db_tx = {}
        for rings in list(self._peer_tx.values()) + list(self._peer_rx.values()):
            for ring in rings.values():
                if ring not in self._owned_rings:
                    ring.close()
        self._peer_tx.clear()
        self._peer_rx.clear()
        for ring in self._owned_rings:
            ring.close()
            ring.unlink()
        self._owned_rings.clear()
