"""Asyncio implementation of the :class:`~repro.transport.Endpoint` seam.

One :class:`AioFabric` per OS process: it owns the event loop reference,
the monotonic clock origin and the peer address map, and hands out
:class:`AioEndpoint` instances (normally one per process — the cluster
runtime — but in-process multi-endpoint use works too, which is what the
endpoint contract tests exercise).

Two wire modes:

* ``"multicast"`` — real IP multicast: every endpoint binds the shared
  group port, ``join`` translates to ``IP_ADD_MEMBERSHIP`` on a
  ``239.x.y.z`` address derived from the abstract group address, and one
  datagram reaches every member (the paper's own substrate).  Joining
  real multicast groups inside containers/CI is unreliable, hence:
* ``"loopback"`` (default) — unicast fan-out over the loopback
  interface: every processor binds its own UDP port from a static peer
  map and ``multicast`` sends one datagram per peer.  Receivers filter
  on their joined-group set, which preserves the open-group and
  join/leave semantics the protocol assumes of IP multicast.

Every datagram is prefixed with the 4-byte group address so the receive
side can filter by subscription in both modes (with several groups
sharing one port, kernel multicast filtering alone is not airtight).

All protocol callbacks — datagram receipt and timer firings — run on the
event loop thread, giving the single-threaded FTMP stack the same
serialization the discrete-event scheduler provides in simulation, with
no locks.
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import time
from typing import Callable, Dict, Optional, Set, Tuple

from ..transport import Endpoint

__all__ = ["AioFabric", "AioEndpoint", "multicast_available"]

#: max UDP payload minus the 4-byte group-address prefix
_MAX_DGRAM = 65503
_GROUP_PREFIX = struct.Struct("!I")

#: default shared port and IPv4 prefix for real-multicast mode
DEFAULT_MULTICAST_PORT = 29513
DEFAULT_MULTICAST_PREFIX = "239.193"


def multicast_group_ip(group_addr: int, prefix: str = DEFAULT_MULTICAST_PREFIX) -> str:
    """Map an abstract group address onto a 239.x administrative group."""
    return f"{prefix}.{(group_addr >> 8) & 0xFF}.{group_addr & 0xFF}"


def multicast_available(port: int = 0, timeout: float = 0.25) -> bool:
    """Probe whether real IP multicast round-trips on this host.

    Joins a scratch group on the wildcard interface, sends one datagram
    and waits for the kernel loopback copy.  Containers and some CI
    runners fail this; the cluster runtime then falls back to loopback
    unicast fan-out.
    """
    group = "239.193.255.251"
    try:
        rx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            rx.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            rx.bind(("", port))
            actual_port = rx.getsockname()[1]
            mreq = socket.inet_aton(group) + socket.inet_aton("0.0.0.0")
            rx.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            rx.settimeout(timeout)
            tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
                tx.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
                tx.sendto(b"probe", (group, actual_port))
            finally:
                tx.close()
            data, _ = rx.recvfrom(64)
            return data == b"probe"
        finally:
            rx.close()
    except OSError:
        return False


class _AioTimer:
    """Cancellable one-shot timer over ``loop.call_later``."""

    __slots__ = ("_handle",)

    def __init__(self, handle: Optional[asyncio.TimerHandle]):
        self._handle = handle

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()


class _EndpointProtocol(asyncio.DatagramProtocol):
    """Datagram protocol feeding one endpoint's receive path."""

    def __init__(self, endpoint: "AioEndpoint"):
        self._ep = endpoint

    def datagram_received(self, data: bytes, addr) -> None:
        self._ep._on_packet(data)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable from a peer that has not bound yet (or
        # already exited): best-effort semantics, loss recovery handles it
        self._ep.stats_send_errors += 1


class AioEndpoint(Endpoint):
    """One processor's asyncio handle onto the fabric."""

    def __init__(self, fabric: "AioFabric", pid: int):
        self._fabric = fabric
        self._pid = pid
        self._receiver: Optional[Callable[[bytes], None]] = None
        self._joined: Set[int] = set()
        self._closed = False
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._sock: Optional[socket.socket] = None
        self._rng = random.Random(fabric.seed * 1_000_003 + pid)
        #: datagrams dropped because they arrived for an unjoined group
        self.stats_filtered = 0
        self.stats_send_errors = 0

    # -- identity / time -------------------------------------------------
    @property
    def processor_id(self) -> int:
        return self._pid

    @property
    def now(self) -> float:
        return self._fabric.now()

    def random(self) -> random.Random:
        return self._rng

    # -- timers ----------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args) -> _AioTimer:
        if self._closed:
            return _AioTimer(None)

        def fire() -> None:
            if not self._closed:
                fn(*args)

        handle = self._fabric.loop.call_later(max(0.0, delay), fire)
        return _AioTimer(handle)

    # -- I/O -------------------------------------------------------------
    def set_receiver(self, cb: Callable[[bytes], None]) -> None:
        self._receiver = cb

    def join(self, group_addr: int) -> None:
        if self._closed or group_addr in self._joined:
            return
        self._joined.add(group_addr)
        self._fabric._join(self, group_addr)

    def leave(self, group_addr: int) -> None:
        if group_addr not in self._joined:
            return
        self._joined.discard(group_addr)
        if not self._closed:
            self._fabric._leave(self, group_addr)

    def multicast(self, group_addr: int, data: bytes) -> None:
        if self._closed:
            return
        if len(data) > _MAX_DGRAM:
            raise ValueError(f"datagram too large: {len(data)} bytes")
        self._fabric._multicast(self, group_addr, data)

    def _on_packet(self, packet: bytes) -> None:
        """Unwrap the group prefix and filter on the joined-group set."""
        if self._closed or len(packet) < _GROUP_PREFIX.size:
            return
        (group_addr,) = _GROUP_PREFIX.unpack_from(packet)
        if group_addr not in self._joined:
            self.stats_filtered += 1
            return
        cb = self._receiver
        if cb is not None:
            cb(packet[_GROUP_PREFIX.size:])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._receiver = None
        self._fabric._detach(self)
        if self._transport is not None:
            self._transport.close()
            self._transport = None


class AioFabric:
    """Per-process endpoint factory + cross-process multicast fabric.

    ``peers`` maps every processor id in the cluster to its UDP port on
    ``host`` (loopback mode); in multicast mode the map only names the
    processor ids.  Endpoints are created with :meth:`start` (a
    coroutine — the datagram socket binds on the running loop).
    """

    def __init__(
        self,
        peers: Dict[int, int],
        mode: str = "loopback",
        host: str = "127.0.0.1",
        seed: int = 0,
        multicast_port: int = DEFAULT_MULTICAST_PORT,
        multicast_prefix: str = DEFAULT_MULTICAST_PREFIX,
    ):
        if mode not in ("loopback", "multicast"):
            raise ValueError(f"unknown fabric mode {mode!r}")
        self.mode = mode
        self.host = host
        self.seed = seed
        self.peers = dict(peers)
        self.multicast_port = multicast_port
        self.multicast_prefix = multicast_prefix
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = time.monotonic()
        #: endpoints living in *this* process (delivered via call_soon in
        #: loopback mode — no kernel round-trip for self/local delivery)
        self._local: Dict[int, AioEndpoint] = {}
        self._peer_addrs: Tuple[Tuple[str, int], ...] = ()

    # -- loop / clock ----------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    def now(self) -> float:
        return time.monotonic() - self._t0

    # -- endpoint lifecycle ----------------------------------------------
    async def start(self, pid: int) -> AioEndpoint:
        """Bind processor ``pid``'s datagram socket and return its endpoint."""
        if pid not in self.peers:
            raise KeyError(f"processor {pid} is not in the peer map")
        if pid in self._local:
            raise ValueError(f"processor {pid} already started in this process")
        self._loop = asyncio.get_running_loop()
        ep = AioEndpoint(self, pid)
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
        except OSError:
            pass
        if self.mode == "multicast":
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP, 1)
            sock.setsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL, 1)
            sock.bind(("", self.multicast_port))
        else:
            sock.bind((self.host, self.peers[pid]))
        transport, _ = await self._loop.create_datagram_endpoint(
            lambda: _EndpointProtocol(ep), sock=sock
        )
        ep._transport = transport
        ep._sock = sock
        self._local[pid] = ep
        self._rebuild_remote_targets()
        return ep

    def _detach(self, ep: AioEndpoint) -> None:
        self._local.pop(ep.processor_id, None)
        self._rebuild_remote_targets()

    def stop(self) -> None:
        """Close every endpoint created in this process (idempotent)."""
        for ep in list(self._local.values()):
            ep.close()

    def _rebuild_remote_targets(self) -> None:
        """Loopback fan-out targets: every peer *not* local to this process."""
        self._peer_addrs = tuple(
            (self.host, port)
            for pid, port in sorted(self.peers.items())
            if pid not in self._local
        )

    # -- group membership -------------------------------------------------
    def _join(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode == "multicast" and ep._sock is not None:
            mreq = socket.inet_aton(
                multicast_group_ip(group_addr, self.multicast_prefix)
            ) + socket.inet_aton("0.0.0.0")
            try:
                ep._sock.setsockopt(socket.IPPROTO_IP, socket.IP_ADD_MEMBERSHIP, mreq)
            except OSError:
                pass  # already a member via another local endpoint

    def _leave(self, ep: AioEndpoint, group_addr: int) -> None:
        if self.mode == "multicast" and ep._sock is not None:
            mreq = socket.inet_aton(
                multicast_group_ip(group_addr, self.multicast_prefix)
            ) + socket.inet_aton("0.0.0.0")
            try:
                ep._sock.setsockopt(socket.IPPROTO_IP, socket.IP_DROP_MEMBERSHIP, mreq)
            except OSError:
                pass

    # -- datagram fan-out -------------------------------------------------
    def _multicast(self, sender: AioEndpoint, group_addr: int, data: bytes) -> None:
        packet = _GROUP_PREFIX.pack(group_addr) + data
        transport = sender._transport
        if transport is None:
            return
        if self.mode == "multicast":
            transport.sendto(
                packet,
                (multicast_group_ip(group_addr, self.multicast_prefix),
                 self.multicast_port),
            )
            return
        # loopback mode: kernel datagrams to remote processes, call_soon
        # to endpoints in this process (including the sender's loopback —
        # IP multicast semantics deliver a sender its own datagrams)
        for addr in self._peer_addrs:
            transport.sendto(packet, addr)
        call_soon = self.loop.call_soon
        for ep in self._local.values():
            call_soon(ep._on_packet, packet)
