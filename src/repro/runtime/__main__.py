"""``python -m repro.runtime`` — run a multi-process cluster workload."""

import sys

from .cluster import main

if __name__ == "__main__":
    sys.exit(main())
