"""Single-producer single-consumer byte ring over POSIX shared memory.

The sharded wall-clock datapath (ISSUE 9) moves datagrams between OS
processes on the same host without the kernel socket stack: an I/O shard
(or a co-located peer's ordering core) pushes length-prefixed records
into a fixed-size ring that the consuming ordering core drains in
batches.  Pure Python, no locks:

* exactly one producer process and one consumer process per ring;
* ``head`` (consumer-owned) and ``tail`` (producer-owned) are free
  running u64 byte counters on their own cache lines, read/written via
  ``struct`` on the shared ``memoryview`` — an aligned 8-byte store is
  a single memcpy in CPython, atomic on every platform this repo
  targets (x86-64/arm64);
* the producer writes record bytes first and publishes ``tail`` last;
  the consumer reads ``tail`` first and record bytes second, so a
  record is only ever observed fully written (release/acquire by
  program order; CPython's memory-model granularity is far coarser
  than the hardware's).

Ring layout (``capacity`` data bytes after a 128-byte control block)::

    offset 0    u64 head   -- consumer cursor (free-running)
    offset 64   u64 tail   -- producer cursor (free-running)
    offset 128  data[capacity]

Records are ``u32 length | payload``.  A record never wraps: when the
contiguous space at the end of the data region cannot hold it, the
producer writes the ``0xFFFFFFFF`` wrap marker (when >= 4 bytes remain)
and skips to offset 0; the consumer mirrors the skip.  ``try_push``
returns ``False`` when the ring is full — transport-level backpressure;
the protocol's NACK/retransmission machinery recovers exactly as it
does from a dropped datagram.

Idle wakeup is a pipe doorbell *owned by the caller* (see
``runtime/ioshard.py``): the producer writes one byte when it observes
the empty->nonempty transition, the consumer drains the pipe and then
the ring.  The empty-observation uses a possibly stale ``head``, so a
wakeup can be missed in a narrow race — consumers keep a coarse poll
timer as the safety net, which also covers a producer that dies between
the ring write and the doorbell write.

Lifecycle: the cluster supervisor ``create()``s every segment up front
and ``unlink()``s them at teardown; workers and shards only
``attach()``.  Attaching deliberately unregisters the segment from
``multiprocessing.resource_tracker`` — otherwise the tracker of a
*killed* shard process (the chaos scenario) would unlink segments still
in use by the survivors.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional

__all__ = ["SpscRing", "ring_segment_size", "DATA_OFFSET"]

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_HEAD_OFFSET = 0
_TAIL_OFFSET = 64
DATA_OFFSET = 128
_WRAP = 0xFFFFFFFF
_LEN_SIZE = 4


def ring_segment_size(capacity: int) -> int:
    """Shared-memory segment size for a ring with ``capacity`` data bytes."""
    return DATA_OFFSET + capacity


class SpscRing:
    """One direction of a cross-process datagram channel.

    Construct via :meth:`create` (owner) or :meth:`attach` (user); each
    process must use the instance from a single role only (producer XOR
    consumer) — nothing enforces it, SPSC is the contract.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self._shm = shm
        self._owner = owner
        self._buf = shm.buf
        self.capacity = shm.size - DATA_OFFSET
        if self.capacity <= _LEN_SIZE:
            raise ValueError(f"segment too small for a ring: {shm.size}")
        # producer-side statistics (meaningless on the consumer side)
        self.pushes = 0
        self.full_rejects = 0
        # consumer-side statistics
        self.pops = 0
        # cursor caches: each side owns its cursor (no shm read needed)
        # and re-reads the *other* side's only at the full/empty
        # boundary, where the cached value is provably conservative
        self._ptail = self._tail()  # producer cursor (authoritative)
        self._phead = self._head()  # producer's last-seen head
        self._chead = self._head()  # consumer cursor (authoritative)
        self._ctail = self._tail()  # consumer's last-seen tail

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, name: str, capacity: int) -> "SpscRing":
        """Create (and zero) a new ring segment; caller must unlink it."""
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=ring_segment_size(capacity))
        shm.buf[:DATA_OFFSET] = bytes(DATA_OFFSET)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        """Attach to an existing segment without adopting its lifetime."""
        shm = shared_memory.SharedMemory(name=name)
        # the attacher's resource tracker must NOT unlink the segment
        # when this process exits (or is killed: chaos shard-death)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment (owner only; survives double calls)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # cursors
    # ------------------------------------------------------------------
    def _head(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFFSET)[0]

    def _tail(self) -> int:
        return _U64.unpack_from(self._buf, _TAIL_OFFSET)[0]

    def _resync(self) -> None:
        """Reload the cursor caches from shm — only needed after cursors
        were rewritten out-of-band (tests zeroing a reused segment)."""
        self._ptail = self._tail()
        self._phead = self._head()
        self._chead = self._head()
        self._ctail = self._tail()

    def __len__(self) -> int:
        """Unread bytes (including framing/wrap padding); racy snapshot."""
        return self._tail() - self._head()

    def is_empty(self) -> bool:
        return self._tail() == self._head()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def try_push(self, data) -> bool:
        """Append one record; False when the ring lacks space (drop).

        ``data`` may be bytes, bytearray or memoryview.  Raises
        ``ValueError`` for records that could never fit.
        """
        n = len(data)
        need = _LEN_SIZE + n
        cap = self.capacity
        # worst case the record needs its own space plus an end-of-region
        # skip; -1 keeps tail-head < capacity unambiguous (full vs empty)
        if need + _LEN_SIZE > cap - 1:
            raise ValueError(f"record of {n} bytes exceeds ring capacity {cap}")
        buf = self._buf
        tail = self._ptail
        pos = tail % cap
        contig = cap - pos
        total = need if contig >= need else contig + need
        if cap - (tail - self._phead) - 1 < total:
            # cached head is stale-conservative: refresh before rejecting
            self._phead = _U64.unpack_from(buf, _HEAD_OFFSET)[0]
            if cap - (tail - self._phead) - 1 < total:
                self.full_rejects += 1
                return False
        if contig < need:
            if contig >= _LEN_SIZE:
                _U32.pack_into(buf, DATA_OFFSET + pos, _WRAP)
            tail += contig
            pos = 0
        base = DATA_OFFSET + pos
        _U32.pack_into(buf, base, n)
        buf[base + _LEN_SIZE:base + _LEN_SIZE + n] = data
        # publish: single aligned 8-byte store, after the record bytes
        tail += need
        _U64.pack_into(buf, _TAIL_OFFSET, tail)
        self._ptail = tail
        self.pushes += 1
        return True

    def push(self, data, timeout: float = 1.0) -> bool:
        """``try_push`` with exponential-backoff retry while full."""
        deadline = time.monotonic() + timeout
        delay = 1e-5
        while True:
            if self.try_push(data):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(delay)
            delay = min(delay * 2, 1e-3)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def try_pop(self) -> Optional[bytes]:
        """Remove and return the oldest record, or None when empty."""
        buf = self._buf
        head = self._chead
        if head == self._ctail:
            # cached tail is stale-conservative: refresh before giving up
            self._ctail = _U64.unpack_from(buf, _TAIL_OFFSET)[0]
            if head == self._ctail:
                return None
        cap = self.capacity
        pos = head % cap
        contig = cap - pos
        wrapped = False
        if contig < _LEN_SIZE:
            head += contig
            pos = 0
            wrapped = True
        else:
            length = _U32.unpack_from(buf, DATA_OFFSET + pos)[0]
            if length == _WRAP:
                head += contig
                pos = 0
                wrapped = True
        if wrapped:
            if head == self._ctail:  # pragma: no cover - never just a marker
                _U64.pack_into(buf, _HEAD_OFFSET, head)
                self._chead = head
                return None
            length = _U32.unpack_from(buf, DATA_OFFSET)[0]
        base = DATA_OFFSET + pos
        data = bytes(buf[base + _LEN_SIZE:base + _LEN_SIZE + length])
        head += _LEN_SIZE + length
        _U64.pack_into(buf, _HEAD_OFFSET, head)
        self._chead = head
        self.pops += 1
        return data

    def pop_batch(self, max_records: int = 64) -> List[bytes]:
        """Drain up to ``max_records`` records in one call."""
        out: List[bytes] = []
        pop = self.try_pop
        for _ in range(max_records):
            rec = pop()
            if rec is None:
                break
            out.append(rec)
        return out

    def pop(self, timeout: float = 1.0) -> Optional[bytes]:
        """``try_pop`` with exponential-backoff wait while empty."""
        deadline = time.monotonic() + timeout
        delay = 1e-5
        while True:
            rec = self.try_pop()
            if rec is not None:
                return rec
            if time.monotonic() >= deadline:
                return None
            time.sleep(delay)
            delay = min(delay * 2, 1e-3)
