"""Cluster supervisor: N real processor processes running one FTMP group.

``run_cluster`` spawns one ``python -m repro.runtime.worker`` process per
processor, wires them into a shared group over the asyncio UDP fabric
(real multicast when the host supports it, loopback fan-out otherwise),
barrier-starts a multicast workload, and collects each worker's delivery
log, latency samples and ``FTMPStack.snapshot()`` over a TCP control
socket.  The collected logs are then cross-checked by the chaos-campaign
oracles (total order, per-source FIFO, no duplicates) — the same
invariants the deterministic simulation enforces, now asserted across
real OS processes.

CLI::

    python -m repro.runtime.cluster --processes 3 --messages 3400

exits non-zero unless every process delivered every message and the
oracles came back clean.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.events import Delivery, RecordingListener
from ..core.messages import ConnectionId
from ..replication.oracles import (
    Violation,
    check_fifo,
    check_no_duplicates,
    check_total_order,
)
from . import ioshard
from .aio import multicast_available
from .shm import SpscRing

__all__ = ["ClusterSpec", "ClusterResult", "run_cluster", "default_cluster_config",
           "main"]


def default_cluster_config() -> Dict[str, object]:
    """Stack tuning for wall-clock runs: the full PR 1–4 datapath.

    Adaptive batching + stability-driven flow control on (the production
    posture), heartbeats slow enough for real timers, and a suspect
    timeout generous enough that CPU contention between N Python
    processes on one host cannot convict a live member.
    """
    return {
        "heartbeat_interval": 0.02,
        "suspect_timeout": 30.0,
        "suspect_resend_interval": 0.5,
        "nack_delay": 0.003,
        "nack_retry_interval": 0.03,
        "nack_dedupe_window": 0.02,
        "batch_window": 0.002,
        "batch_adaptive": True,
        "batch_max_bytes": 8192,
        "flow_control_window": 256,
    }


@dataclass
class ClusterSpec:
    """Parameters of one multi-process cluster run."""

    processes: int = 3
    messages_per_process: int = 200
    payload_size: int = 64
    #: "loopback", "multicast", or "auto" (probe, fall back to loopback)
    mode: str = "auto"
    group_id: int = 1
    group_addr: int = 5001
    seed: int = 0
    config: Dict[str, object] = field(default_factory=default_cluster_config)
    warmup_timeout: float = 15.0
    run_timeout: float = 120.0
    #: extra seconds allowed for spawn + socket binding + handshakes
    spawn_timeout: float = 30.0
    record_digests: bool = True
    #: sharded wall-clock datapath (ISSUE 9): I/O-shard subprocesses per
    #: worker; 0 keeps the single-loop runtime byte-identical
    io_shards: int = 0
    #: host-local shm fast path between co-located workers (sharded mode)
    peer_rings: bool = True
    ring_capacity: int = 1 << 20
    #: chaos hook: SIGKILL one of worker 1's I/O shards after this many
    #: seconds into the run (sharded mode; None = no chaos)
    chaos_kill_shard_after_s: Optional[float] = None


@dataclass
class ClusterResult:
    """Aggregated outcome of one cluster run."""

    mode: str
    processes: int
    expected_per_process: int
    delivered: Dict[int, int]
    total_delivered: int
    wall_s: float
    msgs_s: float
    latency_p50_ms: float
    latency_p99_ms: float
    violations: List[Dict[str, object]]
    snapshots: Dict[int, Dict[str, float]]
    worker_errors: List[str]
    io_shards: int = 0
    #: summed net.* transport counters across workers (sharded + baseline)
    net: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.violations
            and not self.worker_errors
            and all(n == self.expected_per_process for n in self.delivered.values())
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "processes": self.processes,
            "expected_per_process": self.expected_per_process,
            "delivered": {str(k): v for k, v in sorted(self.delivered.items())},
            "total_delivered": self.total_delivered,
            "wall_s": round(self.wall_s, 4),
            "msgs_s": round(self.msgs_s, 1),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "violations": self.violations,
            "worker_errors": self.worker_errors,
            "io_shards": self.io_shards,
            "net": {k: v for k, v in sorted(self.net.items())},
            "ok": self.ok,
        }


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _allocate_udp_ports(n: int) -> List[int]:
    """Reserve n distinct loopback UDP ports (bound until read, then freed)."""
    socks = []
    try:
        for _ in range(n):
            s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def _listener_from_log(records: List[List[object]], group_id: int) -> RecordingListener:
    """Rebuild a RecordingListener the oracles can consume from a worker's
    serialized delivery log ([source, seq, ts, digest?] per delivery)."""
    lst = RecordingListener()
    none_cid = ConnectionId.none()
    for rec in records:
        digest = rec[3] if len(rec) > 3 else ""
        lst.on_deliver(Delivery(
            group=group_id,
            source=int(rec[0]),
            sequence_number=int(rec[1]),
            timestamp=int(rec[2]),
            connection_id=none_cid,
            request_num=0,
            payload=bytes.fromhex(digest) if digest else b"",
            delivered_at=0.0,
        ))
    return lst


def _python_env() -> Dict[str, str]:
    """Child env with the package root on PYTHONPATH (src layout)."""
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = pkg_root + (os.pathsep + existing if existing else "")
    return env


def run_cluster(spec: ClusterSpec) -> ClusterResult:
    """Run one multi-process cluster workload and aggregate the results."""
    if spec.processes < 2:
        raise ValueError("a cluster needs at least 2 processes")
    mode = spec.mode
    if mode == "auto":
        mode = "multicast" if multicast_available() else "loopback"

    pids = list(range(1, spec.processes + 1))
    ports = _allocate_udp_ports(len(pids))
    peers = dict(zip(pids, ports))

    control = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    control.bind(("127.0.0.1", 0))
    control.listen(spec.processes)
    control_port = control.getsockname()[1]
    # one UDP port number per cluster keeps concurrent multicast clusters
    # from cross-talking: reuse the (TCP) control port number
    multicast_port = control_port

    io_shards = spec.io_shards
    if io_shards > 1 and mode == "multicast":
        # several shards on one multicast socket pair would each receive
        # every group datagram (duplicate ingest); one shard per worker
        # still takes all socket syscalls off the ordering core
        io_shards = 1

    # the supervisor owns every shm segment's lifetime: create all rings
    # up front, workers and shards only attach (a killed shard can then
    # never take a segment down with it)
    ring_run_id = f"ftmp{control_port}-{os.getpid()}"
    owned_rings: List[SpscRing] = []
    if io_shards > 0:
        for name in ioshard.cluster_ring_names(
                ring_run_id, pids, io_shards, spec.peer_rings):
            owned_rings.append(SpscRing.create(name, spec.ring_capacity))

    # eventfd doorbells make the peer-ring fast path event-driven: one
    # counter per ordered worker pair, created here and inherited by
    # both ends (sender writes after a ring push, receiver add_reader's
    # it) — without them receivers fall back to 1 ms ring polling
    peer_doorbells: Dict[Tuple[int, int], int] = {}
    if io_shards > 0 and spec.peer_rings and hasattr(os, "eventfd"):
        for a in pids:
            for b in pids:
                if a != b:
                    peer_doorbells[(a, b)] = os.eventfd(0, os.EFD_NONBLOCK)

    procs: List[subprocess.Popen] = []
    stderr_files = []
    conns: Dict[int, Tuple[socket.socket, object]] = {}
    results: Dict[int, dict] = {}
    worker_errors: List[str] = []
    env = _python_env()
    try:
        for pid in pids:
            wspec = {
                "pid": pid,
                "peers": peers,
                "mode": mode,
                "seed": spec.seed,
                "multicast_port": multicast_port,
                "group_id": spec.group_id,
                "group_addr": spec.group_addr,
                "messages": spec.messages_per_process,
                "payload_size": spec.payload_size,
                "control_port": control_port,
                "config": spec.config,
                "warmup_timeout": spec.warmup_timeout,
                "run_timeout": spec.run_timeout,
                "record_digests": spec.record_digests,
                "io_shards": io_shards,
                "ring_run_id": ring_run_id,
                "peer_rings": spec.peer_rings,
                "ring_capacity": spec.ring_capacity,
                # chaos: only the first worker loses a shard
                "chaos_kill_shard_after_s": (
                    spec.chaos_kill_shard_after_s if pid == pids[0] else None),
            }
            worker_fds = ()
            if peer_doorbells:
                db_tx = {str(b): fd for (a, b), fd in peer_doorbells.items()
                         if a == pid}
                db_rx = {str(a): fd for (a, b), fd in peer_doorbells.items()
                         if b == pid}
                wspec["peer_doorbell_tx"] = db_tx
                wspec["peer_doorbell_rx"] = db_rx
                # pass_fds keeps the fd numbers identical in the child,
                # so the spec can name them directly
                worker_fds = tuple(sorted(
                    set(db_tx.values()) | set(db_rx.values())))
            errf = tempfile.TemporaryFile()
            stderr_files.append(errf)
            p = subprocess.Popen(
                [sys.executable, "-u", "-m", "repro.runtime.worker"],
                stdin=subprocess.PIPE,
                stdout=subprocess.DEVNULL,
                stderr=errf,
                pass_fds=worker_fds,
                env=env,
            )
            p.stdin.write(json.dumps(wspec).encode())
            p.stdin.close()
            procs.append(p)

        # -- handshake barrier ------------------------------------------
        control.settimeout(spec.spawn_timeout)
        for _ in pids:
            s, _addr = control.accept()
            s.settimeout(spec.run_timeout + spec.spawn_timeout)
            f = s.makefile("rwb")
            ready = json.loads(f.readline())
            if ready.get("type") != "ready":
                raise RuntimeError(f"bad handshake from worker: {ready!r}")
            conns[int(ready["pid"])] = (s, f)
        t_start = time.monotonic()
        for s, f in conns.values():
            f.write(b'{"type":"start"}\n')
            f.flush()

        # -- collect results --------------------------------------------
        for pid in sorted(conns):
            _s, f = conns[pid]
            try:
                msg = json.loads(f.readline())
            except (socket.timeout, ValueError, OSError) as exc:
                worker_errors.append(f"worker {pid}: no result ({exc})")
                continue
            if msg.get("type") != "result":
                worker_errors.append(f"worker {pid}: unexpected {msg.get('type')!r}")
                continue
            results[pid] = msg
        wall_s = time.monotonic() - t_start

        # release the workers (they hold retransmission state until now)
        for _s, f in conns.values():
            try:
                f.write(b'{"type":"stop"}\n')
                f.flush()
            except OSError:
                pass
    finally:
        for s, f in conns.values():
            try:
                f.close()
                s.close()
            except OSError:
                pass
        control.close()
        deadline = time.monotonic() + 10.0
        for p in procs:
            try:
                p.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait()
        for p, errf in zip(procs, stderr_files):
            if p.returncode not in (0, None):
                errf.seek(0)
                tail = errf.read()[-2000:].decode(errors="replace").strip()
                worker_errors.append(
                    f"worker exited {p.returncode}" + (f": {tail}" if tail else "")
                )
            errf.close()
        for fd in peer_doorbells.values():
            try:
                os.close(fd)  # workers hold their inherited copies
            except OSError:
                pass
        for ring in owned_rings:
            ring.close()
            ring.unlink()

    # -- oracle cross-check over the per-process delivery logs ----------
    listeners = {
        pid: _listener_from_log(msg.get("deliveries", []), spec.group_id)
        for pid, msg in results.items()
    }
    violations: List[Violation] = []
    if listeners:
        violations += check_total_order(listeners, spec.group_id)
        violations += check_fifo(listeners, spec.group_id)
        violations += check_no_duplicates(listeners, spec.group_id)

    delivered = {pid: int(msg.get("delivered", 0)) for pid, msg in results.items()}
    for pid in pids:
        delivered.setdefault(pid, 0)
    latencies: List[float] = []
    for msg in results.values():
        latencies.extend(msg.get("latencies_ms", []))
    total = sum(delivered.values())
    # transport counters: sum each worker's net.* snapshot entries
    # (high-water marks like rcvbuf occupancy take the max instead)
    net: Dict[str, float] = {}
    for msg in results.values():
        for key, value in msg.get("snapshot", {}).items():
            if not key.startswith("net."):
                continue
            short = key[4:]
            if short.endswith("_max_bytes"):
                net[short] = max(net.get(short, 0), value)
            else:
                net[short] = net.get(short, 0) + value
    return ClusterResult(
        mode=mode,
        processes=spec.processes,
        expected_per_process=spec.messages_per_process * spec.processes,
        delivered=delivered,
        total_delivered=total,
        wall_s=wall_s,
        msgs_s=total / wall_s if wall_s > 0 else 0.0,
        latency_p50_ms=_percentile(latencies, 0.50),
        latency_p99_ms=_percentile(latencies, 0.99),
        violations=[v.as_dict() for v in violations],
        snapshots={pid: msg.get("snapshot", {}) for pid, msg in results.items()},
        worker_errors=worker_errors,
        io_shards=io_shards,
        net=net,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run an FTMP cluster across real OS processes")
    parser.add_argument("--processes", type=int, default=3)
    parser.add_argument("--messages", type=int, default=3400,
                        help="multicasts per process")
    parser.add_argument("--payload-size", type=int, default=64)
    parser.add_argument("--mode", choices=("auto", "loopback", "multicast"),
                        default="auto")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--run-timeout", type=float, default=120.0)
    parser.add_argument("--io-shards", type=int, default=0,
                        help="I/O-shard subprocesses per worker "
                             "(0 = single-loop runtime, the default)")
    parser.add_argument("--no-peer-rings", dest="peer_rings",
                        action="store_false",
                        help="disable the host-local shm fast path: all "
                             "sharded traffic traverses the UDP shards")
    parser.add_argument("--chaos-kill-shard-after", type=float, default=None,
                        metavar="SECONDS",
                        help="SIGKILL one of worker 1's I/O shards this "
                             "many seconds into the run (failover demo)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    spec = ClusterSpec(
        processes=args.processes,
        messages_per_process=args.messages,
        payload_size=args.payload_size,
        mode=args.mode,
        seed=args.seed,
        run_timeout=args.run_timeout,
        io_shards=args.io_shards,
        peer_rings=args.peer_rings,
        chaos_kill_shard_after_s=args.chaos_kill_shard_after,
    )
    result = run_cluster(spec)

    shard_note = (f", io_shards={result.io_shards}" if result.io_shards
                  else "")
    print(f"cluster: {result.processes} processes, mode={result.mode}"
          f"{shard_note}")
    print(f"  ordered deliveries: {result.total_delivered} "
          f"(expected {result.expected_per_process} x {result.processes})")
    for pid in sorted(result.delivered):
        print(f"    processor {pid}: {result.delivered[pid]}")
    print(f"  wall time: {result.wall_s:.2f}s  "
          f"throughput: {result.msgs_s:,.0f} ordered msgs/s")
    print(f"  send-to-own-delivery latency: "
          f"p50 {result.latency_p50_ms:.2f} ms, p99 {result.latency_p99_ms:.2f} ms")
    if result.net:
        drops = {k: int(v) for k, v in result.net.items()
                 if k in ("rx_ring_full", "rx_decode_errors",
                          "tx_send_errors", "shard_failovers") and v}
        rcvbuf = int(result.net.get("rx_rcvbuf_max_bytes", 0))
        print(f"  net: rcvbuf high-water {rcvbuf} B"
              + (f", {drops}" if drops else ", no drops"))
    if result.violations:
        print(f"  ORACLE VIOLATIONS ({len(result.violations)}):")
        for v in result.violations[:10]:
            print(f"    {v['oracle']}: {v['detail']}")
    if result.worker_errors:
        print("  worker errors:")
        for e in result.worker_errors:
            print(f"    {e}")
    print(f"  verdict: {'OK' if result.ok else 'FAIL'}")

    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
