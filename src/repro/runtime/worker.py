"""One cluster processor process: FTMP stack + workload on an asyncio loop.

Launched by :mod:`repro.runtime.cluster` as ``python -m
repro.runtime.worker`` with a JSON spec on stdin.  Life cycle, all over a
newline-delimited-JSON control connection to the supervisor:

1. bind the datagram socket, build the stack, connect the control
   socket, report ``ready``;
2. on ``start`` (the supervisor's barrier, sent once every worker is
   ready): wait until every peer has been heard from, then multicast the
   workload and record every ordered delivery;
3. when every expected delivery arrived (or the deadline passed), report
   ``result`` — delivery log, own-send latencies, wall-clock timings and
   the full ``FTMPStack.snapshot()``;
4. hold the stack alive until ``stop`` — peers may still need this
   processor's retransmission buffer to finish — then tear down.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
import sys
import time
import traceback
from typing import Dict, List

from ..core import FTMPConfig, FTMPStack, Listener
from ..core.datapath import FlowControlSaturated
from .aio import AioFabric, ShardedAioFabric

__all__ = ["run_worker", "make_payload", "payload_digest"]

_PAYLOAD_HEADER = struct.Struct("!II")  # (sender pid, message index)


def make_payload(pid: int, index: int, size: int) -> bytes:
    """Deterministic workload payload: (pid, index) header + filler."""
    head = _PAYLOAD_HEADER.pack(pid, index)
    if size <= len(head):
        return head
    filler = (b"%08x" % (pid * 2654435761 % 0xFFFFFFFF)) * (size // 8 + 1)
    return head + filler[: size - len(head)]


def payload_digest(payload: bytes) -> str:
    """Short content digest recorded per delivery (total-order oracle
    checks content agreement across processes on it)."""
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


class _DeliveryLog(Listener):
    """Records ordered deliveries + latency of this processor's own sends."""

    def __init__(self, pid: int, group_id: int, record_digests: bool):
        self.pid = pid
        self.group_id = group_id
        self.record_digests = record_digests
        #: [source, seq, ordering timestamp, digest?] per ordered delivery
        self.deliveries: List[List[object]] = []
        self.send_times: Dict[int, float] = {}  # request_num -> monotonic
        self.latencies_ms: List[float] = []
        self.first_delivery: float = 0.0
        self.last_delivery: float = 0.0

    def on_deliver(self, d) -> None:
        if d.group != self.group_id:
            return
        now = time.monotonic()
        if not self.deliveries:
            self.first_delivery = now
        self.last_delivery = now
        rec: List[object] = [d.source, d.sequence_number, d.timestamp]
        if self.record_digests:
            rec.append(payload_digest(d.payload))
        self.deliveries.append(rec)
        if d.source == self.pid:
            t0 = self.send_times.pop(d.request_num, None)
            if t0 is not None:
                self.latencies_ms.append((now - t0) * 1e3)


async def _send_json(writer: asyncio.StreamWriter, obj: dict) -> None:
    writer.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
    await writer.drain()


async def _read_json(reader: asyncio.StreamReader) -> dict:
    line = await reader.readline()
    if not line:
        raise ConnectionError("control connection closed by supervisor")
    return json.loads(line)


async def run_worker(spec: dict) -> int:
    pid = int(spec["pid"])
    peers = {int(k): int(v) for k, v in spec["peers"].items()}
    group_id = int(spec.get("group_id", 1))
    group_addr = int(spec.get("group_addr", 5001))
    messages = int(spec.get("messages", 100))
    payload_size = int(spec.get("payload_size", 64))
    warmup_timeout = float(spec.get("warmup_timeout", 10.0))
    run_timeout = float(spec.get("run_timeout", 60.0))
    record_digests = bool(spec.get("record_digests", True))

    io_shards = int(spec.get("io_shards", 0))
    if io_shards > 0:
        # sharded wall-clock datapath (ISSUE 9): UDP lives in shard
        # subprocesses, datagrams reach this core over shm rings
        fabric: AioFabric = ShardedAioFabric(
            peers=peers,
            mode=spec.get("mode", "loopback"),
            host=spec.get("host", "127.0.0.1"),
            seed=int(spec.get("seed", 0)),
            multicast_port=int(spec.get("multicast_port", 29513)),
            io_shards=io_shards,
            ring_run_id=str(spec["ring_run_id"]),
            peer_rings=bool(spec.get("peer_rings", True)),
            ring_capacity=int(spec.get("ring_capacity", 1 << 20)),
            chaos_kill_shard_after_s=spec.get("chaos_kill_shard_after_s"),
            peer_doorbell_rx={int(k): int(v) for k, v in
                              spec.get("peer_doorbell_rx", {}).items()},
            peer_doorbell_tx={int(k): int(v) for k, v in
                              spec.get("peer_doorbell_tx", {}).items()},
        )
    else:
        fabric = AioFabric(
            peers=peers,
            mode=spec.get("mode", "loopback"),
            host=spec.get("host", "127.0.0.1"),
            seed=int(spec.get("seed", 0)),
            multicast_port=int(spec.get("multicast_port", 29513)),
        )
    endpoint = await fabric.start(pid)
    if io_shards > 0:
        await fabric.wait_ready(timeout=float(spec.get("warmup_timeout", 10.0)))
    config = FTMPConfig(**spec.get("config", {}))
    log = _DeliveryLog(pid, group_id, record_digests)
    stack = FTMPStack(endpoint, config, log)
    # transport drop visibility rides the stats registry: snapshot()
    # reports net.rx_ring_full, net.rx_decode_errors, net.shard_failovers…
    stack.registry.register("net", fabric.net_stats)
    stack.create_group(group_id, group_addr, tuple(sorted(peers)))
    group = stack.group(group_id)

    reader, writer = await asyncio.open_connection(
        spec.get("control_host", "127.0.0.1"), int(spec["control_port"])
    )
    try:
        await _send_json(writer, {"type": "ready", "pid": pid})
        msg = await _read_json(reader)
        if msg.get("type") != "start":
            raise RuntimeError(f"expected start, got {msg!r}")

        # warm-up: every member's heartbeats flowing means ordering can
        # advance from the first Regular instead of stalling on recovery
        deadline = time.monotonic() + warmup_timeout
        others = [p for p in peers if p != pid]
        while not all(group.has_heard_from(p) for p in others):
            if time.monotonic() > deadline:
                break
            await asyncio.sleep(0.002)

        t_start = time.monotonic()
        expected = messages * len(peers)

        async def produce() -> None:
            for i in range(1, messages + 1):
                payload = make_payload(pid, i, payload_size)
                while True:
                    try:
                        log.send_times[i] = time.monotonic()
                        stack.multicast(group_id, payload, request_num=i)
                        break
                    except FlowControlSaturated:
                        await asyncio.sleep(0.001)
                # cooperative pacing: yield to the receive path every
                # send, and back off while the credit queue is deep
                await asyncio.sleep(0)
                while group.flow.queue_depth > 4 * max(1, config.flow_control_window):
                    await asyncio.sleep(0.001)

        producer = asyncio.ensure_future(produce())
        run_deadline = t_start + run_timeout
        while len(log.deliveries) < expected and time.monotonic() < run_deadline:
            await asyncio.sleep(0.01)
        await producer
        elapsed = time.monotonic() - t_start

        await _send_json(writer, {
            "type": "result",
            "pid": pid,
            "delivered": len(log.deliveries),
            "expected": expected,
            "elapsed_s": elapsed,
            "delivery_span_s": max(0.0, log.last_delivery - log.first_delivery),
            "deliveries": log.deliveries,
            "latencies_ms": [round(x, 3) for x in log.latencies_ms],
            "snapshot": stack.snapshot(),
        })

        # hold the retransmission buffers for peers until the supervisor
        # has every worker's result
        try:
            await asyncio.wait_for(_read_json(reader), timeout=run_timeout)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        return 0
    finally:
        stack.stop()
        fabric.stop()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def main() -> int:
    spec = json.load(sys.stdin)
    try:
        return asyncio.run(run_worker(spec))
    except Exception:
        traceback.print_exc(file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
