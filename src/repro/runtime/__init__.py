"""Real asyncio multi-process cluster runtime for the FTMP stack.

The discrete-event simulator (:mod:`repro.simnet`) is the *semantic*
truth — deterministic, oracle-checked, explorable.  This package is the
*wall-clock* truth: the identical protocol stack (flow control, adaptive
batching, retransmission pacing included) running over real OS
processes, one asyncio event loop per processor, with datagrams on real
UDP sockets.

* :mod:`repro.runtime.aio` — :class:`AioFabric` / :class:`AioEndpoint`:
  the :class:`~repro.transport.Endpoint` seam over an asyncio loop
  (monotonic clock, ``loop.call_later`` timers, UDP datagram endpoints),
  with real IP-multicast or a loopback unicast fan-out fallback;
* :mod:`repro.runtime.worker` — one processor process: stack + workload
  + delivery log, reporting to the supervisor over a control socket;
* :mod:`repro.runtime.cluster` — the supervisor: spawns N processor
  processes, barrier-starts the workload, collects delivery logs and
  ``FTMPStack.snapshot()`` stats, and cross-checks total order with the
  chaos-campaign oracles.
"""

from .aio import AioEndpoint, AioFabric
from .cluster import ClusterResult, ClusterSpec, run_cluster

__all__ = [
    "AioEndpoint",
    "AioFabric",
    "ClusterSpec",
    "ClusterResult",
    "run_cluster",
]
