"""A CORBA Naming Service, replication-ready.

The classic first service of any ORB: maps hierarchical names
("accounts/savings/alice") to object references.  The servant here is
deterministic and implements the ``get_state``/``set_state`` hooks, so it
can be actively replicated over FTMP exactly like any application object
— which is how a fault-tolerant deployment bootstraps: clients resolve
every other service through a naming service that is itself replicated.

``NamingClient`` wraps a proxy with encode/decode of object references
(:mod:`repro.giop.ior`) so callers bind and resolve real ``GroupRef`` /
``ObjectRef`` objects.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..giop import UserException
from ..giop.ior import GroupRef, ObjectRef, decode_ref
from .orb import ORB, Proxy

__all__ = ["NamingContext", "NamingClient", "NAMING_OBJECT_KEY"]

#: conventional object key servants of this service are activated under
NAMING_OBJECT_KEY = b"NameService"


class NamingContext:
    """The replicated servant: a hierarchical name -> reference registry."""

    def __init__(self) -> None:
        self._bindings: Dict[str, bytes] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(name: str) -> str:
        if not name or name.startswith("/") or name.endswith("/") or "//" in name:
            raise UserException("InvalidName", name)
        return name

    def bind(self, name: str, ref_bytes: bytes) -> bool:
        """Bind a name; raises AlreadyBound if taken."""
        name = self._validate(name)
        if name in self._bindings:
            raise UserException("AlreadyBound", name)
        self._bindings[name] = ref_bytes
        return True

    def rebind(self, name: str, ref_bytes: bytes) -> bool:
        """Bind a name, replacing any existing binding."""
        self._bindings[self._validate(name)] = ref_bytes
        return True

    def resolve(self, name: str) -> bytes:
        """Look a name up; raises NotFound."""
        ref = self._bindings.get(self._validate(name))
        if ref is None:
            raise UserException("NotFound", name)
        return ref

    def unbind(self, name: str) -> bool:
        if self._bindings.pop(self._validate(name), None) is None:
            raise UserException("NotFound", name)
        return True

    def list(self, prefix: str = "") -> List[str]:
        """All bound names under a prefix ('' = everything)."""
        if prefix:
            prefix = self._validate(prefix) + "/"
        return sorted(n for n in self._bindings if n.startswith(prefix) or n == prefix[:-1])

    # ------------------------------------------------------------------
    # replication hooks
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return {n: bytes(r) for n, r in self._bindings.items()}

    def set_state(self, state: dict) -> None:
        self._bindings = {n: bytes(r) for n, r in state.items()}


class NamingClient:
    """Typed client wrapper: binds and resolves decoded references."""

    def __init__(self, orb: ORB, proxy: Proxy, timeout: float = 5.0):
        self._orb = orb
        self._proxy = proxy
        self._timeout = timeout

    def bind(self, name: str, ref: Union[ObjectRef, GroupRef]) -> None:
        self._orb.call(self._proxy, "bind", name, ref.encode(),
                       timeout=self._timeout)

    def rebind(self, name: str, ref: Union[ObjectRef, GroupRef]) -> None:
        self._orb.call(self._proxy, "rebind", name, ref.encode(),
                       timeout=self._timeout)

    def resolve(self, name: str) -> Union[ObjectRef, GroupRef]:
        raw = self._orb.call(self._proxy, "resolve", name, timeout=self._timeout)
        return decode_ref(raw)

    def unbind(self, name: str) -> None:
        self._orb.call(self._proxy, "unbind", name, timeout=self._timeout)

    def list(self, prefix: str = "") -> List[str]:
        return self._orb.call(self._proxy, "list", prefix, timeout=self._timeout)

    def resolve_proxy(self, name: str) -> Proxy:
        """Resolve a name straight to an invocable proxy."""
        return self._orb.proxy(self.resolve(name))
