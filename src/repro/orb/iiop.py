"""IIOP-style point-to-point transport (the unreplicated baseline).

CORBA's IIOP runs GIOP over TCP: a reliable, FIFO, point-to-point byte
stream.  :class:`IIOPNetwork` models exactly that on the discrete-event
scheduler — per-message latency with per-connection FIFO enforcement and
no loss (TCP's retransmission is abstracted away, as the paper does when
it contrasts IIOP's "physical connection" with FTMP's logical one, §4).

This is the baseline transport for experiment E8 (end-to-end GIOP
request/reply latency, FTMP vs point-to-point).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..simnet.scheduler import Scheduler

__all__ = ["IIOPNetwork"]


@dataclass
class IIOPStats:
    messages: int = 0
    bytes: int = 0


class IIOPNetwork:
    """Reliable FIFO unicast fabric between ORB endpoints."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: float = 0.0001,
        jitter: float = 0.00005,
        seed: int = 0,
    ):
        self._sched = scheduler
        self.latency = latency
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._handlers: Dict[int, Callable[[int, bytes], None]] = {}
        #: per (src, dst) earliest next delivery time (FIFO enforcement)
        self._stream_clock: Dict[Tuple[int, int], float] = {}
        self.stats = IIOPStats()

    def attach(self, pid: int, handler: Callable[[int, bytes], None]) -> None:
        """Register a processor's receive handler(src_pid, data)."""
        self._handlers[pid] = handler

    def detach(self, pid: int) -> None:
        self._handlers.pop(pid, None)

    def send(self, src: int, dst: int, data: bytes) -> None:
        """Reliable in-order delivery of ``data`` from src to dst."""
        if dst not in self._handlers:
            raise KeyError(f"no IIOP endpoint attached for processor {dst}")
        delay = self.latency + self._rng.uniform(0.0, self.jitter)
        at = max(self._sched.now + delay, self._stream_clock.get((src, dst), 0.0))
        self._stream_clock[(src, dst)] = at + 1e-9
        self.stats.messages += 1
        self.stats.bytes += len(data)
        self._sched.at(at, self._deliver, src, dst, data)

    def _deliver(self, src: int, dst: int, data: bytes) -> None:
        handler = self._handlers.get(dst)
        if handler is not None:
            handler(src, data)
