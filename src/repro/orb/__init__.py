"""Miniature ORB: POA, proxies, IIOP baseline, and the GIOP->FTMP adapter."""

from .ftiop import ClientIdentity, FTMPAdapter
from .futures import FutureError, InvocationFuture
from .iiop import IIOPNetwork
from .events import EventChannel
from .interfaces import InterfaceDef, OperationDef, TypedProxy
from .naming import NAMING_OBJECT_KEY, NamingClient, NamingContext
from .orb import ORB, Proxy
from .poa import GET_STATE_OP, SET_STATE_OP, POA, ServantEntry

__all__ = [
    "ORB",
    "Proxy",
    "POA",
    "ServantEntry",
    "GET_STATE_OP",
    "SET_STATE_OP",
    "IIOPNetwork",
    "InterfaceDef",
    "OperationDef",
    "TypedProxy",
    "NamingContext",
    "NamingClient",
    "NAMING_OBJECT_KEY",
    "EventChannel",
    "FTMPAdapter",
    "ClientIdentity",
    "InvocationFuture",
    "FutureError",
]
