"""IDL-like interface definitions.

Real CORBA generates stubs and skeletons from IDL; this reproduction has
no IDL compiler, so :class:`InterfaceDef` provides the part that matters
for correctness: a declared contract (operation names and arities) that
is checked *locally* — client-side before a Request is marshaled, and
server-side when a servant claims to implement the interface — instead of
surfacing as a remote BAD_OPERATION after a round trip.

>>> bank = InterfaceDef("IDL:Bank:1.0", operations={
...     "open":     OperationDef(params=1),
...     "deposit":  OperationDef(params=2),
...     "audit":    OperationDef(params=0, oneway=True),
... })
>>> bank.validate_servant(BankImpl())     # raises if methods are missing
>>> proxy = bank.bind(orb.proxy(ref))     # arity-checked stub
>>> proxy.deposit("alice", 100)           # OK -> future
>>> proxy.deposit("alice")                # raises BadOperation locally
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict

from ..giop import BadOperation
from .orb import Proxy

__all__ = ["OperationDef", "InterfaceDef", "TypedProxy"]


@dataclass(frozen=True)
class OperationDef:
    """One declared operation."""

    params: int  #: number of parameters (excluding self)
    oneway: bool = False  #: fire-and-forget (no Reply expected)


@dataclass(frozen=True)
class InterfaceDef:
    """A declared remote interface."""

    type_id: str
    operations: Dict[str, OperationDef] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def check_call(self, operation: str, args: tuple) -> OperationDef:
        """Validate an outgoing invocation; returns the operation def."""
        op = self.operations.get(operation)
        if op is None:
            raise BadOperation(
                f"{self.type_id} has no operation {operation!r}; "
                f"declared: {sorted(self.operations)}"
            )
        if len(args) != op.params:
            raise BadOperation(
                f"{self.type_id}.{operation} takes {op.params} argument(s), "
                f"got {len(args)}"
            )
        return op

    # ------------------------------------------------------------------
    def validate_servant(self, servant: Any) -> None:
        """Raise if the servant does not implement every declared operation."""
        problems = []
        for name, op in self.operations.items():
            method = getattr(servant, name, None)
            if method is None or not callable(method):
                problems.append(f"missing operation {name!r}")
                continue
            try:
                sig = inspect.signature(method)
            except (TypeError, ValueError):  # builtins etc.: skip arity check
                continue
            positional = [
                p
                for p in sig.parameters.values()
                if p.kind
                in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
            has_varargs = any(
                p.kind == p.VAR_POSITIONAL for p in sig.parameters.values()
            )
            required = sum(1 for p in positional if p.default is p.empty)
            if not has_varargs and not (required <= op.params <= len(positional)):
                problems.append(
                    f"{name!r} accepts {required}..{len(positional)} "
                    f"argument(s), interface declares {op.params}"
                )
        if problems:
            raise BadOperation(
                f"servant {type(servant).__name__} does not implement "
                f"{self.type_id}: " + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    def bind(self, proxy: Proxy) -> "TypedProxy":
        """Wrap a raw proxy with this interface's call validation."""
        return TypedProxy(self, proxy)


class TypedProxy:
    """Arity-checked client stub for one interface."""

    def __init__(self, interface: InterfaceDef, proxy: Proxy):
        self._interface = interface
        self._proxy = proxy

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in self._interface.operations:
            raise BadOperation(
                f"{self._interface.type_id} has no operation {name!r}"
            )

        def call(*args):
            op = self._interface.check_call(name, args)
            if op.oneway:
                self._proxy._oneway(name, *args)
                return None
            return getattr(self._proxy, name)(*args)

        return call

    @property
    def interface(self) -> InterfaceDef:
        return self._interface

    @property
    def raw(self) -> Proxy:
        return self._proxy
