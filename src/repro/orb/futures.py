"""Futures for event-driven invocations.

The simulator is single-threaded, so a "pending reply" is just a value
slot plus callbacks; :meth:`ORB.wait` (in :mod:`repro.orb.orb`) pumps the
scheduler until the slot fills.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["InvocationFuture", "FutureError"]


class FutureError(Exception):
    """Raised when waiting on a future that can never complete."""


class InvocationFuture:
    """Completion slot for one remote invocation."""

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["InvocationFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any) -> None:
        if self._done:
            return  # duplicate replies are suppressed upstream; be safe
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            return
        self._done = True
        self._exception = exc
        self._fire()

    def result(self) -> Any:
        """Return the value (or raise the recorded exception)."""
        if not self._done:
            raise FutureError("invocation has not completed")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, cb: Callable[["InvocationFuture"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
