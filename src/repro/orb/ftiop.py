"""The GIOP → FTMP mapping (the paper's §4: "a concrete mapping of CORBA's
GIOP specification onto FTMP").

:class:`FTMPAdapter` sits between an :class:`~repro.orb.orb.ORB` and an
:class:`~repro.core.stack.FTMPStack`, transparent to both — the approach
of the authors' Eternal system:

* outgoing invocations on a :class:`~repro.giop.ior.GroupRef` become GIOP
  Requests encapsulated in FTMP Regular messages on the logical connection
  between the client object group and the server object group;
* every member of the connection's processor group receives every Request
  and Reply ("delivered to both groups", §4); the adapter suppresses
  duplicates by ``(connection id, request number, kind)`` so replicated
  clients invoke once and replicated servers answer once — per receiver;
* server replicas execute delivered Requests in FTMP's total order, which
  is what keeps active replicas consistent;
* reserved ``_set_state`` Requests implement state transfer to freshly
  added replicas at a consistent cut (see :mod:`repro.replication`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple  # noqa: F401

from ..core import (
    ConnectionEvent,
    ConnectionId,
    Delivery,
    FaultReport,
    FTMPStack,
    Listener,
    RequestNumbering,
    ViewChange,
)
from ..giop import (
    CDRDecoder,
    CDREncoder,
    CloseConnectionMessage,
    CommFailure,
    GIOPHeader,
    GIOPMessageType,
    GroupRef,
    MarshalError,
    ReplyMessage,
    RequestMessage,
    ServiceContext,
    decode_giop,
    encode_giop,
    encode_values,
)
from ..giop.fragmentation import FragmentationError, Reassembler, fragment_giop
from .futures import InvocationFuture
from .orb import ORB
from .poa import SET_STATE_OP

__all__ = ["FTMPAdapter", "ClientIdentity"]

#: request numbers for server-originated traffic (state transfer) live in
#: a disjoint range from client-assigned numbers
_SERVER_NUM_BASE = 1 << 32

#: FT-CORBA's FT_REQUEST service context id (OMG tag); carries the client
#: group id, the retention (request) id and an expiration time — the
#: standardized descendant of this paper's (connection id, request number)
FT_REQUEST_CONTEXT_ID = 0x4654_0000 + 1


def encode_ft_request_context(client_group: int, retention_id: int,
                              expiration: float) -> ServiceContext:
    enc = CDREncoder()
    enc.ulong(client_group)
    enc.ulonglong(retention_id)
    enc.double(expiration)
    return ServiceContext(FT_REQUEST_CONTEXT_ID, enc.getvalue())


def decode_ft_request_context(ctx: ServiceContext):
    dec = CDRDecoder(ctx.context_data)
    return dec.ulong(), dec.ulonglong(), dec.double()


@dataclass
class ClientIdentity:
    """This processor's client object group identity (§4 connection ids)."""

    domain: int
    object_group: int
    processor_ids: Tuple[int, ...]


@dataclass
class _PendingConnection:
    """Invocations issued before the Connect handshake finished."""

    sends: List[Tuple[bytes, int]] = field(default_factory=list)


class FTMPAdapter(Listener):
    """Binds one ORB to one FTMP stack (install as the stack's listener)."""

    def __init__(self, orb: ORB, stack: FTMPStack,
                 downstream: Optional[Listener] = None,
                 giop_mtu: Optional[int] = None):
        #: fragment GIOP messages larger than this many bytes (None = off)
        self.giop_mtu = giop_mtu
        #: FT_REQUEST expiration: seconds of validity stamped on outgoing
        #: Requests; servers discard Requests past their expiration
        #: (FT-CORBA semantics; None = no expiration context attached)
        self.request_expiration: Optional[float] = None
        self._reassembler = Reassembler()
        self.orb = orb
        self.stack = stack
        self.downstream = downstream if downstream is not None else Listener()
        stack.listener = self
        orb._set_ftmp_adapter(self)
        #: (domain, object_group) pairs whose servants this processor hosts
        self._served: Set[Tuple[int, int]] = set()
        self._client: Optional[ClientIdentity] = None
        self._numbering: Dict[ConnectionId, RequestNumbering] = {}
        self._server_counter = 0
        #: (cid, request_num) -> future awaiting the first Reply
        self._pending: Dict[Tuple[ConnectionId, int], InvocationFuture] = {}
        self._awaiting_connection: Dict[ConnectionId, _PendingConnection] = {}
        #: object keys buffering deliveries until state transfer completes
        self._awaiting_state: Set[bytes] = set()
        self._buffered: Dict[bytes, List[RequestMessage]] = {}
        #: callbacks invoked on every view change (replication manager hook)
        self.view_callbacks: List[Callable[[ViewChange], None]] = []
        self.fault_callbacks: List[Callable[[FaultReport], None]] = []
        #: (cid, request_num) -> encoded Reply, re-sent when a duplicate
        #: request arrives (answers log-replayed requests, §4)
        self._reply_cache: "OrderedDict[Tuple[ConnectionId, int], Tuple[int, bytes]]" = OrderedDict()
        self.reply_cache_size = 1024
        self.stats_requests_executed = 0
        self.stats_duplicates_suppressed = 0
        self.stats_replies_matched = 0
        self.stats_replies_served_from_cache = 0
        self.stats_requests_expired = 0

    # ==================================================================
    # server side
    # ==================================================================
    def export(self, domain: int, object_group: int,
               server_pids: Tuple[int, ...]) -> None:
        """Declare this processor a member of a server object group."""
        self._served.add((domain, object_group))
        self.stack.serve(domain, object_group, server_pids)

    def serves(self, cid: ConnectionId) -> bool:
        return (cid.server_domain, cid.server_group) in self._served

    def ordering_leader(self, group: int) -> Optional[int]:
        """The processor currently ordering ``group``'s traffic, or None.

        Meaningful only with ``llft_mode`` on (LLFT leader-follower
        replication): a client that co-locates with — or routes its
        invocations through — the leader sees fast-path latency, one
        leader hop below everyone else.  None in legacy active mode,
        where ordering is symmetric and no processor is special.
        """
        g = self.stack.group(group)
        if g is None or g.romp.llft is None:
            return None
        return g.romp.llft.leader()

    # ==================================================================
    # client side
    # ==================================================================
    def set_client(self, identity: ClientIdentity) -> None:
        """Set this processor's client object-group identity."""
        self._client = identity

    def connection_id_for(self, ref: GroupRef) -> ConnectionId:
        if self._client is None:
            raise RuntimeError("client identity not set (call set_client)")
        return ConnectionId(
            client_domain=self._client.domain,
            client_group=self._client.object_group,
            server_domain=ref.domain,
            server_group=ref.object_group,
        )

    def open_connection(self, ref: GroupRef) -> ConnectionId:
        """Start the ConnectRequest/Connect handshake toward a group ref."""
        cid = self.connection_id_for(ref)
        self.stack.request_connection(cid, self._client.processor_ids)
        return cid

    def invoke(self, ref: GroupRef, operation: str, args: Tuple[Any, ...],
               response_expected: bool = True) -> InvocationFuture:
        """Multicast a GIOP Request over the logical connection."""
        cid = self.connection_id_for(ref)
        numbering = self._numbering.setdefault(cid, RequestNumbering())
        request_num = numbering.next()
        service_context = []
        if self.request_expiration is not None:
            service_context.append(encode_ft_request_context(
                self._client.object_group, request_num,
                self.stack.endpoint.now + self.request_expiration,
            ))
        req = RequestMessage(
            header=GIOPHeader(GIOPMessageType.REQUEST,
                              little_endian=self.stack.config.little_endian),
            service_context=service_context,
            request_id=request_num,
            response_expected=response_expected,
            object_key=ref.object_key,
            operation=operation,
            body=encode_values(args, self.stack.config.little_endian),
        )
        fut = InvocationFuture()
        if response_expected:
            self._pending[(cid, request_num)] = fut
        else:
            fut.set_result(None)
        binding = self.stack.connection_binding(cid)
        if binding is None or not binding.established:
            # first invocation opens the connection; buffer until Connect
            pending = self._awaiting_connection.setdefault(cid, _PendingConnection())
            for piece in self._wire_pieces(encode_giop(req)):
                pending.sends.append((piece, request_num))
            if binding is None:
                self.open_connection(ref)
            return fut
        self._send_pieces(cid, encode_giop(req), request_num)
        return fut

    # ==================================================================
    # wire helpers
    # ==================================================================
    def _wire_pieces(self, data: bytes) -> list:
        """Apply GIOP fragmentation when an MTU is configured."""
        if self.giop_mtu is None:
            return [data]
        return fragment_giop(data, self.giop_mtu)

    def _send_pieces(self, cid: ConnectionId, data: bytes, request_num: int) -> None:
        for piece in self._wire_pieces(data):
            self.stack.send_on_connection(cid, piece, request_num)

    # ==================================================================
    # connection release (§7 "releasing a logical connection")
    # ==================================================================
    def close_connection(self, ref: GroupRef) -> None:
        """Release the logical connection to a group reference.

        A GIOP CloseConnection travels the connection's total order, so
        every member (clients and servers) tears down at the same point.
        """
        cid = self.connection_id_for(ref)
        binding = self.stack.connection_binding(cid)
        if binding is None or not binding.established:
            raise CommFailure(f"connection {cid} is not established")
        msg = CloseConnectionMessage(
            header=GIOPHeader(GIOPMessageType.CLOSE_CONNECTION,
                              little_endian=self.stack.config.little_endian)
        )
        numbering = self._numbering.setdefault(cid, RequestNumbering())
        self.stack.send_on_connection(cid, encode_giop(msg), numbering.next())

    def _on_close(self, cid: ConnectionId) -> None:
        # fail anything still awaiting a reply on this connection
        for key in [k for k in self._pending if k[0] == cid]:
            fut = self._pending.pop(key)
            fut.set_exception(CommFailure("connection closed"))
        self._awaiting_connection.pop(cid, None)
        self._numbering.pop(cid, None)
        self.stack.release_connection_local(cid)

    # ==================================================================
    # state transfer (used by repro.replication)
    # ==================================================================
    def await_state(self, object_key: bytes) -> None:
        """Buffer this key's Requests until a ``_set_state`` arrives."""
        self._awaiting_state.add(object_key)
        self._buffered.setdefault(object_key, [])

    def send_state(self, cid: ConnectionId, object_key: bytes, state: Any) -> None:
        """Donor side: ship captured servant state down the connection."""
        self._server_counter += 1
        request_num = _SERVER_NUM_BASE + self.stack.pid * (1 << 20) + self._server_counter
        req = RequestMessage(
            header=GIOPHeader(GIOPMessageType.REQUEST,
                              little_endian=self.stack.config.little_endian),
            request_id=request_num & 0xFFFFFFFF,
            response_expected=False,
            object_key=object_key,
            operation=SET_STATE_OP,
            body=encode_values([state], self.stack.config.little_endian),
        )
        self._send_pieces(cid, encode_giop(req), request_num)

    # ==================================================================
    # FTMP listener implementation
    # ==================================================================
    def on_deliver(self, delivery: Delivery) -> None:
        if delivery.connection_id == ConnectionId.none():
            self.downstream.on_deliver(delivery)
            return
        payload = delivery.payload
        try:
            if payload[:4] == b"GIOP":
                # fragments of one message arrive FIFO per source (RMP)
                payload = self._reassembler.push(
                    (delivery.connection_id, delivery.source), payload
                )
                if payload is None:
                    return  # fragmented message still incomplete
            msg = decode_giop(payload)
        except (MarshalError, FragmentationError):
            self.downstream.on_deliver(delivery)
            return
        cid = delivery.connection_id
        if isinstance(msg, RequestMessage):
            self._on_request(cid, delivery.group, delivery.request_num, msg)
        elif isinstance(msg, ReplyMessage):
            self._on_reply(cid, delivery.request_num, msg)
        elif isinstance(msg, CloseConnectionMessage):
            self._on_close(cid)
        else:
            self.downstream.on_deliver(delivery)

    def _on_request(self, cid: ConnectionId, group: int, request_num: int,
                    msg: RequestMessage) -> None:
        kind = "state" if msg.operation == SET_STATE_OP else "request"
        if self.stack.duplicates.is_duplicate(cid, request_num, kind):
            self.stats_duplicates_suppressed += 1
            cached = self._reply_cache.get((cid, request_num))
            if cached is not None and msg.response_expected:
                # a replayed request: answer from the reply log instead of
                # re-executing ("necessary ... when replaying messages
                # from a log", §4)
                self.stats_replies_served_from_cache += 1
                c_group, c_data = cached
                for piece in self._wire_pieces(c_data):
                    self.stack.multicast(c_group, piece, cid, request_num)
            return
        if msg.operation == SET_STATE_OP:
            self._on_state_transfer(cid, group, msg)
            return
        if not self.serves(cid):
            return  # we are on the client side of this connection
        if msg.object_key in self._awaiting_state:
            self._buffered[msg.object_key].append((group, request_num, msg))
            return
        if self._expired(msg):
            # FT-CORBA: an expired request is discarded, never executed —
            # the client has already given up on it
            self.stats_requests_expired += 1
            return
        self._execute(cid, group, request_num, msg)

    def _expired(self, msg: RequestMessage) -> bool:
        for ctx in msg.service_context:
            if ctx.context_id == FT_REQUEST_CONTEXT_ID:
                try:
                    _cg, _rid, expiration = decode_ft_request_context(ctx)
                except MarshalError:
                    return False
                return self.stack.endpoint.now > expiration
        return False

    def _execute(self, cid: ConnectionId, group: int, request_num: int,
                 msg: RequestMessage) -> None:
        self.stats_requests_executed += 1
        reply = self.orb.poa.dispatch(msg)
        if reply is not None:
            # reply on the processor group the Request was delivered on —
            # a freshly added replica has the group before any binding
            data = encode_giop(reply)
            self._reply_cache[(cid, request_num)] = (group, data)
            while len(self._reply_cache) > self.reply_cache_size:
                self._reply_cache.popitem(last=False)
            for piece in self._wire_pieces(data):
                self.stack.multicast(group, piece, cid, request_num)

    def _on_state_transfer(self, cid: ConnectionId, group: int,
                           msg: RequestMessage) -> None:
        key = msg.object_key
        if key not in self._awaiting_state:
            return  # donors and up-to-date replicas ignore state shipments
        self._awaiting_state.discard(key)
        self.orb.poa.dispatch(msg)  # applies _set_state to the servant
        # replay the requests buffered between the join cut and now
        for b_group, b_num, buffered in self._buffered.pop(key, []):
            # request numbers were recorded at buffering time; replies for
            # replayed requests are suppressed as duplicates by receivers
            self._execute(cid, b_group, b_num, buffered)

    def _on_reply(self, cid: ConnectionId, request_num: int,
                  msg: ReplyMessage) -> None:
        # a pending future always wins, even when the reply is nominally a
        # duplicate — a log replay deliberately solicits a re-sent reply
        fut = self._pending.pop((cid, request_num), None)
        duplicate = self.stack.duplicates.is_duplicate(cid, request_num, "reply")
        if fut is not None:
            self.stats_replies_matched += 1
            self.orb.complete_from_reply(fut, msg)
        elif duplicate:
            self.stats_duplicates_suppressed += 1

    def on_connection(self, event: ConnectionEvent) -> None:
        pending = self._awaiting_connection.pop(event.connection_id, None)
        if pending is not None:
            for data, request_num in pending.sends:
                self.stack.send_on_connection(event.connection_id, data, request_num)
        self.downstream.on_connection(event)

    def on_view_change(self, view: ViewChange) -> None:
        for cb in self.view_callbacks:
            cb(view)
        self.downstream.on_view_change(view)

    def on_fault_report(self, report: FaultReport) -> None:
        for cb in self.fault_callbacks:
            cb(report)
        self.downstream.on_fault_report(report)
