"""A CORBA Event Service channel (pull model), replication-ready.

The related work the paper cites built "Reliable CORBA Event Channels" on
group communication; this is that idea on FTMP.  The channel is a
deterministic servant (replicable with ``get_state``/``set_state``):
suppliers ``push`` events into it, consumers register and ``try_pull``
their private queues.  The pull model keeps all invocations
client-initiated, which composes cleanly with active replication — every
replica's queues evolve identically because they see the same total order
of pushes and pulls.

Queues are bounded; on overflow the oldest event is dropped and counted
(back-pressure would require callbacks, which the pull model avoids).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..giop import UserException

__all__ = ["EventChannel", "DEFAULT_QUEUE_LIMIT"]

DEFAULT_QUEUE_LIMIT = 256


class EventChannel:
    """The replicated servant."""

    def __init__(self, queue_limit: int = DEFAULT_QUEUE_LIMIT):
        self._queue_limit = queue_limit
        self._queues: Dict[str, List[Any]] = {}
        self._dropped: Dict[str, int] = {}
        self.pushed = 0

    # ------------------------------------------------------------------
    # consumer administration
    # ------------------------------------------------------------------
    def connect_consumer(self, consumer_id: str) -> bool:
        if consumer_id in self._queues:
            raise UserException("AlreadyConnected", consumer_id)
        self._queues[consumer_id] = []
        self._dropped[consumer_id] = 0
        return True

    def disconnect_consumer(self, consumer_id: str) -> bool:
        if self._queues.pop(consumer_id, None) is None:
            raise UserException("NotConnected", consumer_id)
        self._dropped.pop(consumer_id, None)
        return True

    def consumers(self) -> List[str]:
        return sorted(self._queues)

    # ------------------------------------------------------------------
    # supplier side
    # ------------------------------------------------------------------
    def push(self, event: Any) -> int:
        """Fan an event out to every connected consumer's queue.

        Returns the number of consumers that received it.
        """
        self.pushed += 1
        for cid, q in self._queues.items():
            q.append(event)
            if len(q) > self._queue_limit:
                q.pop(0)
                self._dropped[cid] += 1
        return len(self._queues)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def try_pull(self, consumer_id: str) -> Any:
        """Dequeue the next event, or None if the queue is empty."""
        q = self._queues.get(consumer_id)
        if q is None:
            raise UserException("NotConnected", consumer_id)
        if not q:
            return None
        return q.pop(0)

    def pull_batch(self, consumer_id: str, limit: int) -> List[Any]:
        """Dequeue up to ``limit`` events at once."""
        q = self._queues.get(consumer_id)
        if q is None:
            raise UserException("NotConnected", consumer_id)
        batch, self._queues[consumer_id] = q[:limit], q[limit:]
        return batch

    def pending(self, consumer_id: str) -> int:
        q = self._queues.get(consumer_id)
        if q is None:
            raise UserException("NotConnected", consumer_id)
        return len(q)

    def dropped(self, consumer_id: str) -> int:
        return self._dropped.get(consumer_id, 0)

    # ------------------------------------------------------------------
    # replication hooks
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        return {
            "limit": self._queue_limit,
            "queues": {c: list(q) for c, q in self._queues.items()},
            "dropped": dict(self._dropped),
            "pushed": self.pushed,
        }

    def set_state(self, state: dict) -> None:
        self._queue_limit = state["limit"]
        self._queues = {c: list(q) for c, q in state["queues"].items()}
        self._dropped = dict(state["dropped"])
        self.pushed = state["pushed"]
