"""POA — a miniature Portable Object Adapter.

Maps object keys to *servants* (plain Python objects) and dispatches GIOP
Requests to them: arguments arrive as tagged CDR values
(:mod:`repro.giop.values`), the servant method runs, and the result (or
exception) is marshaled into a Reply.

Method name restrictions: only public methods (no leading underscore) are
invocable, except the replication hooks ``__get_state__``/``__set_state__``
which the FT infrastructure invokes through reserved operation names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..giop import (
    BadOperation,
    GIOPHeader,
    GIOPMessageType,
    MarshalError,
    ObjectNotExist,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    SystemException,
    UserException,
    decode_values,
    encode_values,
)

__all__ = ["POA", "ServantEntry"]

#: reserved operation names used by the replication infrastructure
GET_STATE_OP = "_get_state"
SET_STATE_OP = "_set_state"


@dataclass
class ServantEntry:
    """One activated object."""

    object_key: bytes
    servant: Any
    type_id: str = ""


class POA:
    """Object adapter: object key -> servant, plus request dispatch."""

    def __init__(self) -> None:
        self._servants: Dict[bytes, ServantEntry] = {}
        self.requests_dispatched = 0
        self.errors_returned = 0

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    def activate(self, object_key: bytes, servant: Any, type_id: str = "") -> ServantEntry:
        """Register a servant under an object key."""
        if object_key in self._servants:
            raise ValueError(f"object key {object_key!r} already active")
        entry = ServantEntry(object_key, servant, type_id)
        self._servants[object_key] = entry
        return entry

    def deactivate(self, object_key: bytes) -> None:
        self._servants.pop(object_key, None)

    def servant(self, object_key: bytes) -> Optional[Any]:
        entry = self._servants.get(object_key)
        return entry.servant if entry is not None else None

    def keys(self):
        return list(self._servants)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: RequestMessage) -> Optional[ReplyMessage]:
        """Execute a Request; returns the Reply (None for oneway calls)."""
        self.requests_dispatched += 1
        little = request.header.little_endian
        try:
            result = self._invoke(request)
            status, body = ReplyStatus.NO_EXCEPTION, encode_values([result], little)
        except UserException as exc:
            status = ReplyStatus.USER_EXCEPTION
            body = encode_values([exc.name, exc.detail], little)
            self.errors_returned += 1
        except SystemException as exc:
            status = ReplyStatus.SYSTEM_EXCEPTION
            body = encode_values([exc.repo_id, exc.detail], little)
            self.errors_returned += 1
        except Exception as exc:  # servant bug -> CORBA system exception
            status = ReplyStatus.SYSTEM_EXCEPTION
            body = encode_values(
                [SystemException.repo_id, f"{type(exc).__name__}: {exc}"], little
            )
            self.errors_returned += 1
        if not request.response_expected:
            return None
        return ReplyMessage(
            header=GIOPHeader(GIOPMessageType.REPLY, little_endian=little),
            request_id=request.request_id,
            reply_status=status,
            body=body,
        )

    def _invoke(self, request: RequestMessage) -> Any:
        entry = self._servants.get(request.object_key)
        if entry is None:
            raise ObjectNotExist(f"no servant for key {request.object_key!r}")
        servant = entry.servant
        op = request.operation
        if op == GET_STATE_OP:
            return self._get_state(servant)
        if op == SET_STATE_OP:
            (state,) = decode_values(request.body, request.header.little_endian)
            self._set_state(servant, state)
            return None
        if op.startswith("_"):
            raise BadOperation(f"operation {op!r} is not invocable")
        method = getattr(servant, op, None)
        if method is None or not callable(method):
            raise BadOperation(f"servant has no operation {op!r}")
        try:
            args = decode_values(request.body, request.header.little_endian)
        except MarshalError as exc:
            raise BadOperation(f"cannot unmarshal arguments: {exc}") from exc
        return method(*args)

    # ------------------------------------------------------------------
    # replication hooks
    # ------------------------------------------------------------------
    @staticmethod
    def _get_state(servant: Any) -> Any:
        getter = getattr(servant, "get_state", None)
        if getter is None:
            raise BadOperation("servant does not support state transfer")
        return getter()

    @staticmethod
    def _set_state(servant: Any, state: Any) -> None:
        setter = getattr(servant, "set_state", None)
        if setter is None:
            raise BadOperation("servant does not support state transfer")
        setter(state)
