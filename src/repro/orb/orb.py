"""The miniature ORB.

One :class:`ORB` per processor.  It owns a :class:`~repro.orb.poa.POA`,
can be attached to an IIOP network (point-to-point GIOP over a TCP-like
channel) and/or to an FTMP stack (via
:class:`~repro.orb.ftiop.FTMPAdapter`), and gives out proxies whose method
calls return :class:`~repro.orb.futures.InvocationFuture`.

The paper's architecture (Figure 1) puts the ORB *above* FTMP with no ORB
modification: the adapter intercepts GIOP messages at the transport
boundary, exactly like the Eternal system the authors built.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..giop import (
    CommFailure,
    GIOPHeader,
    GIOPMessage,
    GIOPMessageType,
    GroupRef,
    LocateReplyMessage,
    LocateRequestMessage,
    LocateStatus,
    MessageErrorMessage,
    MarshalError,
    ObjectRef,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    UserException,
    decode_giop,
    decode_values,
    encode_giop,
    encode_values,
    system_exception_by_name,
)
from ..simnet.scheduler import Scheduler
from .futures import FutureError, InvocationFuture
from .iiop import IIOPNetwork
from .poa import POA

__all__ = ["ORB", "Proxy"]


class _Operation:
    """A bound remote operation; calling it returns a future."""

    __slots__ = ("_proxy", "_name")

    def __init__(self, proxy: "Proxy", name: str):
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any) -> InvocationFuture:
        return self._proxy._invoke(self._name, args, response_expected=True)


class Proxy:
    """Client stub for a remote object (singleton or group reference)."""

    def __init__(self, orb: "ORB", ref):
        self._orb = orb
        self._ref = ref

    def __getattr__(self, name: str) -> _Operation:
        if name.startswith("_"):
            raise AttributeError(name)
        return _Operation(self, name)

    def _invoke(self, operation: str, args: Tuple[Any, ...],
                response_expected: bool = True) -> InvocationFuture:
        return self._orb.invoke(self._ref, operation, args, response_expected)

    def _oneway(self, operation: str, *args: Any) -> None:
        """Fire-and-forget invocation (no Reply expected)."""
        self._orb.invoke(self._ref, operation, args, response_expected=False)

    @property
    def ref(self):
        return self._ref


class ORB:
    """One processor's Object Request Broker."""

    def __init__(self, pid: int, scheduler: Optional[Scheduler] = None,
                 little_endian: bool = True):
        self.pid = pid
        self.poa = POA()
        self._sched = scheduler
        self._little = little_endian
        self._iiop: Optional[IIOPNetwork] = None
        self._ftmp_adapter = None  # set by FTMPAdapter.attach
        self._next_request_id = 1
        #: IIOP pending replies: request_id -> future
        self._pending: Dict[int, InvocationFuture] = {}

    # ------------------------------------------------------------------
    # transports
    # ------------------------------------------------------------------
    def attach_iiop(self, network: IIOPNetwork) -> None:
        """Join a point-to-point IIOP fabric."""
        self._iiop = network
        network.attach(self.pid, self._on_iiop_data)

    def _set_ftmp_adapter(self, adapter) -> None:
        self._ftmp_adapter = adapter

    # ------------------------------------------------------------------
    # references & proxies
    # ------------------------------------------------------------------
    def activate(self, object_key: bytes, servant: Any, type_id: str = "") -> ObjectRef:
        """Register a servant and return its singleton reference."""
        self.poa.activate(object_key, servant, type_id)
        return ObjectRef(type_id=type_id, processor=self.pid, object_key=object_key)

    def proxy(self, ref) -> Proxy:
        """Create a client stub for a singleton or group reference."""
        return Proxy(self, ref)

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def invoke(self, ref, operation: str, args: Tuple[Any, ...],
               response_expected: bool = True) -> InvocationFuture:
        """Marshal and send one GIOP Request along the right transport."""
        if isinstance(ref, GroupRef):
            if self._ftmp_adapter is None:
                raise CommFailure("no FTMP adapter attached for group reference")
            return self._ftmp_adapter.invoke(ref, operation, args, response_expected)
        if isinstance(ref, ObjectRef):
            return self._invoke_iiop(ref, operation, args, response_expected)
        raise TypeError(f"not an object reference: {ref!r}")

    def _invoke_iiop(self, ref: ObjectRef, operation: str, args: Tuple[Any, ...],
                     response_expected: bool) -> InvocationFuture:
        if self._iiop is None:
            raise CommFailure("no IIOP network attached")
        request_id = self._next_request_id
        self._next_request_id += 1
        req = RequestMessage(
            header=GIOPHeader(GIOPMessageType.REQUEST, little_endian=self._little),
            request_id=request_id,
            response_expected=response_expected,
            object_key=ref.object_key,
            operation=operation,
            body=encode_values(args, self._little),
        )
        fut = InvocationFuture()
        if response_expected:
            self._pending[request_id] = fut
        else:
            fut.set_result(None)
        self._iiop.send(self.pid, ref.processor, encode_giop(req))
        return fut

    def locate(self, ref: ObjectRef) -> InvocationFuture:
        """Send a GIOP LocateRequest; future resolves to a LocateStatus."""
        if self._iiop is None:
            raise CommFailure("no IIOP network attached")
        request_id = self._next_request_id
        self._next_request_id += 1
        msg = LocateRequestMessage(
            header=GIOPHeader(GIOPMessageType.LOCATE_REQUEST, little_endian=self._little),
            request_id=request_id,
            object_key=ref.object_key,
        )
        fut = InvocationFuture()
        self._pending[request_id] = fut
        self._iiop.send(self.pid, ref.processor, encode_giop(msg))
        return fut

    # ------------------------------------------------------------------
    # IIOP receive path
    # ------------------------------------------------------------------
    def _on_iiop_data(self, src: int, data: bytes) -> None:
        try:
            msg = decode_giop(data)
        except MarshalError:
            err = MessageErrorMessage(
                header=GIOPHeader(GIOPMessageType.MESSAGE_ERROR, little_endian=self._little)
            )
            self._iiop.send(self.pid, src, encode_giop(err))
            return
        self._handle_giop(src, msg)

    def _handle_giop(self, src: int, msg: GIOPMessage) -> None:
        if isinstance(msg, RequestMessage):
            reply = self.poa.dispatch(msg)
            if reply is not None:
                self._iiop.send(self.pid, src, encode_giop(reply))
        elif isinstance(msg, ReplyMessage):
            fut = self._pending.pop(msg.request_id, None)
            if fut is not None:
                self.complete_from_reply(fut, msg)
        elif isinstance(msg, LocateRequestMessage):
            status = (
                LocateStatus.OBJECT_HERE
                if self.poa.servant(msg.object_key) is not None
                else LocateStatus.UNKNOWN_OBJECT
            )
            reply = LocateReplyMessage(
                header=GIOPHeader(GIOPMessageType.LOCATE_REPLY, little_endian=self._little),
                request_id=msg.request_id,
                locate_status=status,
            )
            self._iiop.send(self.pid, src, encode_giop(reply))
        elif isinstance(msg, LocateReplyMessage):
            fut = self._pending.pop(msg.request_id, None)
            if fut is not None:
                fut.set_result(msg.locate_status)
        # CancelRequest: dispatch here is synchronous, nothing to cancel.
        # CloseConnection / MessageError / Fragment: accepted and ignored.

    # ------------------------------------------------------------------
    # reply unmarshaling (shared with the FTMP adapter)
    # ------------------------------------------------------------------
    def complete_from_reply(self, fut: InvocationFuture, reply: ReplyMessage) -> None:
        """Resolve a future from a decoded GIOP Reply."""
        little = reply.header.little_endian
        if reply.reply_status == ReplyStatus.NO_EXCEPTION:
            (value,) = decode_values(reply.body, little)
            fut.set_result(value)
        elif reply.reply_status == ReplyStatus.USER_EXCEPTION:
            name, detail = decode_values(reply.body, little)
            fut.set_exception(UserException(name, detail))
        else:
            repo_id, detail = decode_values(reply.body, little)
            fut.set_exception(system_exception_by_name(repo_id)(detail))

    # ------------------------------------------------------------------
    # synchronous convenience (simulation only)
    # ------------------------------------------------------------------
    def wait(self, fut: InvocationFuture, timeout: float = 5.0) -> Any:
        """Pump the scheduler until the future completes; return its value."""
        if self._sched is None:
            raise FutureError("ORB has no scheduler; use callbacks instead")
        deadline = self._sched.now + timeout
        while not fut.done and self._sched.now < deadline:
            if not self._sched.step():
                break
        if not fut.done:
            raise CommFailure(f"no reply within {timeout}s")
        return fut.result()

    def call(self, proxy: Proxy, operation: str, *args: Any, timeout: float = 5.0) -> Any:
        """Synchronous invocation helper: invoke then wait."""
        return self.wait(getattr(proxy, operation)(*args), timeout=timeout)
