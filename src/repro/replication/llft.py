"""LLFT replication mode — the public face of the leader-follower path.

The ordering engine itself lives in :mod:`repro.core.llft` (it is a
datapath concern, wired under ROMP when ``FTMPConfig.llft_mode`` is on).
This module is the replication-layer entry point: helpers to build an
LLFT configuration, to ask a running stack who leads a group, and the
re-exported engine types for tests and tooling.

Semantics in one paragraph: the leader's reliable FIFO stream *is* the
total order.  The leader delivers its own sends at send time and
announces everyone else's via OrderInfo Regulars inside its stream;
followers replay that stream one hop behind.  §6 stability (buffer GC,
flow-control credits) advances asynchronously off cover timestamps, and
the §7.2 view-change drain plus a takeover batch from the successor
leader preserve virtual synchrony across leader failure — the full
chaos-oracle battery runs against the mode unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core import FTMPConfig, FTMPStack
from ..core.llft import ORDER_INFO_CID, LeaderOrdering, LLFTStats

__all__ = [
    "llft_config",
    "current_leader",
    "ORDER_INFO_CID",
    "LeaderOrdering",
    "LLFTStats",
]


def llft_config(base: Optional[FTMPConfig] = None,
                leader: int = 0) -> FTMPConfig:
    """An :class:`FTMPConfig` with the LLFT fast path enabled.

    ``base`` carries every other knob (defaults when omitted); ``leader``
    pins the preferred leader pid — 0 keeps the deterministic fallback,
    the smallest member pid.
    """
    cfg = base if base is not None else FTMPConfig()
    return dataclasses.replace(cfg, llft_mode=True, llft_leader_pid=leader)


def current_leader(stack: FTMPStack, group_id: int) -> Optional[int]:
    """The pid currently ordering ``group_id`` at this stack, or None.

    None when the stack does not have the group or runs in legacy active
    mode (symmetric ordering — no processor is special).  During a view
    change the answer is this processor's deterministic projection from
    its current membership; every member converges on it with the view.
    """
    g = stack.group(group_id)
    if g is None or g.romp.llft is None:
        return None
    return g.romp.llft.leader()
