"""Checkpointing and log truncation.

The §4 replay story (see :mod:`repro.replication.failover`) rebuilds a
replacement server by replaying the *entire* request log — unbounded work
and unbounded log growth.  The standard remedy, which the authors'
Eternal system employed, is periodic checkpointing: capture servant state
every N executed requests, then truncate the log prefix the checkpoint
covers.  Recovery becomes *checkpoint + tail replay*, both bounded by N.

The checkpoint must name its position in the total order; here that is
the per-connection request-number watermark at capture time — the same
cut discipline used everywhere else in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core import ConnectionId
from ..giop import decode_values, encode_values
from .message_log import LoggedRequest, MessageLog

__all__ = ["Checkpoint", "CheckpointStore", "CheckpointingLog"]


@dataclass(frozen=True)
class Checkpoint:
    """A captured servant state plus its position in the request stream."""

    state: Any
    #: highest contiguous request number covered, per connection key
    watermark: Dict[str, int]
    sequence: int  #: checkpoint generation number
    captured_at: float

    @staticmethod
    def cid_key(cid: ConnectionId) -> str:
        return (f"{cid.client_domain}:{cid.client_group}:"
                f"{cid.server_domain}:{cid.server_group}")

    def covers(self, cid: ConnectionId, request_num: int) -> bool:
        return request_num <= self.watermark.get(self.cid_key(cid), 0)

    # -- serialization (stable storage stand-in) ------------------------
    def encode(self) -> bytes:
        return encode_values([self.state, self.watermark, self.sequence,
                              self.captured_at])

    @staticmethod
    def decode(data: bytes) -> "Checkpoint":
        state, watermark, sequence, captured_at = decode_values(data)
        return Checkpoint(state=state, watermark=watermark,
                          sequence=int(sequence), captured_at=captured_at)


class CheckpointStore:
    """Keeps the most recent checkpoints (stable storage stand-in)."""

    def __init__(self, keep: int = 2):
        self.keep = keep
        self._checkpoints: List[bytes] = []

    def save(self, cp: Checkpoint) -> None:
        self._checkpoints.append(cp.encode())
        del self._checkpoints[:-self.keep]

    def latest(self) -> Optional[Checkpoint]:
        if not self._checkpoints:
            return None
        return Checkpoint.decode(self._checkpoints[-1])

    def __len__(self) -> int:
        return len(self._checkpoints)


class CheckpointingLog:
    """Couples a :class:`MessageLog` with periodic checkpoints.

    Use on a server replica (or a monitoring host that sees the request
    stream): call :meth:`note_executed` after each request execution; the
    servant's state is captured every ``interval`` requests, and the log
    entries the checkpoint covers are truncated.

    Recovery: :meth:`recovery_plan` returns (checkpoint, tail) —
    ``servant.set_state(checkpoint.state)`` then replay ``tail`` in order.
    """

    def __init__(self, servant: Any, log: MessageLog, interval: int = 50,
                 store: Optional[CheckpointStore] = None,
                 now_fn=lambda: 0.0):
        self.servant = servant
        self.log = log
        self.interval = interval
        self.store = store if store is not None else CheckpointStore()
        self._now = now_fn
        self._since_checkpoint = 0
        self._sequence = 0
        self._watermark: Dict[str, int] = {}
        self.truncated_total = 0

    # ------------------------------------------------------------------
    def note_executed(self, cid: ConnectionId, request_num: int) -> Optional[Checkpoint]:
        """Record one executed request; checkpoint when the interval fills."""
        key = Checkpoint.cid_key(cid)
        self._watermark[key] = max(self._watermark.get(key, 0), request_num)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.interval:
            return self.checkpoint_now()
        return None

    def checkpoint_now(self) -> Checkpoint:
        """Capture state, persist it, truncate the covered log prefix."""
        self._sequence += 1
        cp = Checkpoint(
            state=self.servant.get_state(),
            watermark=dict(self._watermark),
            sequence=self._sequence,
            captured_at=self._now(),
        )
        self.store.save(cp)
        self._since_checkpoint = 0
        self.truncated_total += self._truncate(cp)
        return cp

    def _truncate(self, cp: Checkpoint) -> int:
        """Drop answered log entries the checkpoint covers."""
        dead = [
            (e.connection_id, e.request_num)
            for e in self.log.entries()
            if e.answered and cp.covers(e.connection_id, e.request_num)
        ]
        for key in dead:
            self.log._log.pop(key, None)
            try:
                self.log._order.remove(key)
            except ValueError:
                pass
        return len(dead)

    # ------------------------------------------------------------------
    def recovery_plan(self) -> Tuple[Optional[Checkpoint], List[LoggedRequest]]:
        """What a replacement replica needs: latest checkpoint + log tail."""
        cp = self.store.latest()
        if cp is None:
            return None, self.log.entries()
        tail = [
            e
            for e in self.log.entries()
            if e.request_payload and not cp.covers(e.connection_id, e.request_num)
        ]
        return cp, tail
