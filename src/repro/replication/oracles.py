"""Protocol-invariant oracles over recorded FTMP histories (chaos campaign).

Each oracle is a pure function over the per-processor histories collected
by :class:`~repro.core.events.RecordingListener` (and, for the live-state
oracles, the stacks themselves) that returns a list of
:class:`Violation` records — empty when the invariant holds.  They encode
the paper's §5–§7 guarantees as checkable properties:

* **total order** — processors deliver the messages they have in common
  in the same relative order, and agree on each message's content;
* **per-source FIFO** — each source's messages are delivered in strictly
  increasing sequence-number order;
* **no duplicates** — no ``(source, seq)`` is delivered twice, and no
  GIOP ``(connection id, request number)`` is delivered twice from the
  same source;
* **virtual synchrony** — processors that transition through the same
  pair of views deliver the same message set in the earlier view;
* **convergence** — once quiescent, every final member holds every
  message another final member delivered after it started delivering;
* **buffer-GC safety** — a message some accepted member still lacks is
  retained in at least one live member's retransmission buffer (checked
  *during* the run, not just at the end);
* **quiescence** — after faults heal and traffic stops, no gaps, empty
  ordering queues, and no stuck safe-delivery holds.

The chaos campaign runner (``repro.analysis.chaos``) drives these across
seeded fault scenarios; the soak test reuses them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.events import Delivery, RecordingListener, ViewChange
from ..core.multigroup import is_multigroup_delivery, is_total_multigroup_delivery

__all__ = [
    "Violation",
    "check_total_order",
    "check_fifo",
    "check_no_duplicates",
    "check_virtual_synchrony",
    "check_convergence",
    "check_membership_agreement",
    "check_buffer_gc_safety",
    "check_quiescence",
    "check_multigroup_acyclicity",
    "run_history_oracles",
]

#: message identity independent of the ordering timestamp
MessageId = Tuple[int, int]  # (source, sequence_number)


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough detail to read the repro artifact."""

    oracle: str
    detail: str
    members: Tuple[int, ...] = ()
    #: machine-readable equivalence key: ``(oracle, stable discriminators)``.
    #: Two violations with the same key are "the same bug" for the schedule
    #: shrinker — it only accepts a reduction if the reduced run still
    #: raises a violation whose key matches the original's, so a shrink
    #: can never silently swap the target bug for an unrelated one.  Keys
    #: deliberately exclude run-size-dependent detail (counts, indices,
    #: timestamps) that legitimate reductions would perturb.
    key: Tuple[object, ...] = ()
    #: for the acyclicity oracle: the offending cycle as a closed walk of
    #: ``(origin, mg_seq)`` multicast ids (first id repeated at the end)
    cycle: Tuple[Tuple[int, int], ...] = ()

    @property
    def signature(self) -> Tuple[object, ...]:
        """The equivalence key, falling back to the oracle name alone."""
        return self.key if self.key else (self.oracle,)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"oracle": self.oracle, "detail": self.detail,
                                  "members": list(self.members),
                                  "key": list(self.signature)}
        if self.cycle:
            out["cycle"] = [list(m) for m in self.cycle]
        return out


def _ids(listener: RecordingListener, group: int) -> List[MessageId]:
    return [(d.source, d.sequence_number)
            for d in listener.deliveries if d.group == group]


# ----------------------------------------------------------------------
# total order
# ----------------------------------------------------------------------
def check_total_order(listeners: Dict[int, RecordingListener],
                      group: int) -> List[Violation]:
    """Pairwise agreement on the relative order (and content) of common
    messages, plus per-member monotonicity of the ordering key."""
    violations: List[Violation] = []
    ids: Dict[int, List[MessageId]] = {}
    content: Dict[MessageId, Tuple[int, bytes]] = {}  # id -> (ts, payload)
    for pid, lst in sorted(listeners.items()):
        ids[pid] = _ids(lst, group)
        prev_key = None
        for d in lst.deliveries:
            if d.group != group:
                continue
            mid = (d.source, d.sequence_number)
            seen = content.get(mid)
            if seen is None:
                content[mid] = (d.timestamp, d.payload)
            elif seen != (d.timestamp, d.payload):
                violations.append(Violation(
                    "total-order",
                    f"message {mid} has diverging (timestamp, payload) "
                    f"across members: {seen} vs {(d.timestamp, d.payload)}",
                    (pid,),
                    key=("total-order", "content"),
                ))
            key = (d.timestamp, d.source)
            if prev_key is not None and key <= prev_key:
                violations.append(Violation(
                    "total-order",
                    f"member {pid} delivered non-monotonic ordering keys "
                    f"{prev_key} then {key}",
                    (pid,),
                    key=("total-order", "monotonic"),
                ))
            prev_key = key
    pids = sorted(ids)
    for i, a in enumerate(pids):
        set_a = set(ids[a])
        for b in pids[i + 1:]:
            common = set_a & set(ids[b])
            seq_a = [m for m in ids[a] if m in common]
            seq_b = [m for m in ids[b] if m in common]
            if seq_a != seq_b:
                at = next(
                    (k for k, (x, y) in enumerate(zip(seq_a, seq_b)) if x != y),
                    min(len(seq_a), len(seq_b)),
                )
                violations.append(Violation(
                    "total-order",
                    f"members {a} and {b} deliver common messages in "
                    f"different orders; first divergence at common index "
                    f"{at}: {seq_a[at:at + 3]} vs {seq_b[at:at + 3]}",
                    (a, b),
                    key=("total-order", "pair-order"),
                ))
    return violations


# ----------------------------------------------------------------------
# per-source FIFO
# ----------------------------------------------------------------------
def check_fifo(listeners: Dict[int, RecordingListener],
               group: int) -> List[Violation]:
    """Sequence numbers (and timestamps) strictly increase per source."""
    violations: List[Violation] = []
    for pid, lst in sorted(listeners.items()):
        last: Dict[int, Tuple[int, int]] = {}  # source -> (seq, ts)
        for d in lst.deliveries:
            if d.group != group:
                continue
            prev = last.get(d.source)
            if prev is not None and (d.sequence_number <= prev[0]
                                     or d.timestamp <= prev[1]):
                violations.append(Violation(
                    "fifo",
                    f"member {pid} delivered source {d.source} out of FIFO "
                    f"order: (seq {prev[0]}, ts {prev[1]}) then "
                    f"(seq {d.sequence_number}, ts {d.timestamp})",
                    (pid,),
                    key=("fifo", d.source),
                ))
            last[d.source] = (d.sequence_number, d.timestamp)
    return violations


# ----------------------------------------------------------------------
# duplicate suppression
# ----------------------------------------------------------------------
def check_no_duplicates(listeners: Dict[int, RecordingListener],
                        group: int) -> List[Violation]:
    """No (source, seq) delivered twice; no GIOP (cid, request) repeated."""
    violations: List[Violation] = []
    for pid, lst in sorted(listeners.items()):
        seen_ids: set = set()
        seen_requests: set = set()
        for d in lst.deliveries:
            if d.group != group:
                continue
            mid = (d.source, d.sequence_number)
            if mid in seen_ids:
                violations.append(Violation(
                    "no-duplicates",
                    f"member {pid} delivered message {mid} more than once",
                    (pid,),
                    key=("no-duplicates", "message"),
                ))
            seen_ids.add(mid)
            cid = d.connection_id
            if cid is not None and cid != cid.none():
                rid = (d.source, cid, d.request_num)
                if rid in seen_requests:
                    violations.append(Violation(
                        "no-duplicates",
                        f"member {pid} delivered GIOP request "
                        f"(cid={cid}, request={d.request_num}) from source "
                        f"{d.source} more than once",
                        (pid,),
                        key=("no-duplicates", "giop"),
                    ))
                seen_requests.add(rid)
    return violations


# ----------------------------------------------------------------------
# virtual synchrony
# ----------------------------------------------------------------------
def _view_epochs(listener: RecordingListener, group: int):
    """Segment one member's deliveries by the view they arrived in.

    Returns a list of dicts ``{key, succ_ts, succ_members, ids}`` in view
    order; ``succ_ts``/``succ_members`` are ``None`` for the final (open)
    epoch.  Deliveries sourced from a member removed by a view transition
    are attributed to the *earlier* view: the stack explicitly
    grandfathers a convicted member's synchronized messages (virtual
    synchrony), and whether one lands just before or just after the fault
    view installs is a race that carries no ordering meaning.
    """
    current_key: Optional[Tuple[int, Tuple[int, ...]]] = None
    current: List[MessageId] = []
    epochs: List[dict] = []
    for ev in listener.events:
        if isinstance(ev, ViewChange) and ev.group == group:
            if current_key is not None:
                epochs.append({"key": current_key, "succ_ts": ev.view_timestamp,
                               "succ_members": ev.membership, "ids": current})
            # an eviction (empty membership) ends this member's history
            current_key = (ev.view_timestamp, ev.membership) if ev.membership else None
            current = []
        elif isinstance(ev, Delivery) and ev.group == group:
            current.append((ev.source, ev.sequence_number))
    if current_key is not None:
        epochs.append({"key": current_key, "succ_ts": None,
                       "succ_members": None, "ids": current})
    for earlier, later in zip(epochs, epochs[1:]):
        removed = set(earlier["key"][1]) - set(later["key"][1])
        if not removed:
            continue
        moved = [m for m in later["ids"] if m[0] in removed]
        if moved:
            earlier["ids"] = earlier["ids"] + moved
            later["ids"] = [m for m in later["ids"] if m[0] not in removed]
    return epochs


def check_virtual_synchrony(listeners: Dict[int, RecordingListener],
                            group: int) -> List[Violation]:
    """Members that pass through the same (view, successor) transition
    must have delivered the same message set in the earlier view.

    Multi-group deliveries get one relaxation: a member in its *first*
    epoch of the group may be missing multi-group sentinel deliveries
    that incumbents made.  A multicast whose Propose was ordered before
    the joiner's AddProcessor but whose Commit landed after it is
    delivered by every incumbent yet never by the joiner — its replay of
    the group's stream starts at the join barrier, so the Propose (and
    hence the pending entry the Commit completes) does not exist there.
    That is the documented non-uniform window of the multi-group
    protocol, not an ordering bug, so it must not trip the oracle.
    """
    mg_ids = {
        (d.source, d.sequence_number)
        for lst in listeners.values()
        for d in lst.deliveries
        if d.group == group and d.connection_id is not None
        and is_multigroup_delivery(d.connection_id)
    }
    transitions: Dict[
        tuple, List[Tuple[int, Tuple[int, ...], frozenset, bool]]
    ] = {}
    for pid, lst in sorted(listeners.items()):
        for index, epoch in enumerate(_view_epochs(lst, group)):
            if epoch["succ_ts"] is None:
                continue  # open epoch: no virtual-synchrony obligation
            transitions.setdefault((epoch["key"], epoch["succ_ts"]), []).append(
                (pid, epoch["succ_members"], frozenset(epoch["ids"]),
                 index == 0)
            )
    violations: List[Violation] = []
    for (key, succ_ts), entries in sorted(transitions.items()):
        # an evicted member reports successor membership (); every other
        # member must name the same successor view for sets to be comparable
        real_succs = {m for _p, m, _s, _f in entries if m != ()}
        if len(real_succs) > 1:
            continue  # concurrent successor views (split): no obligation
        # virtual synchrony binds only processors that *survive* into the
        # successor view; a member evicted at this transition (successor
        # membership ()) failed, and a failed processor's delivery set is
        # allowed to be a prefix of the survivors'
        entries = [e for e in entries if e[1] != ()]
        if len(entries) < 2:
            continue
        sets = {s for _p, _m, s, _f in entries}
        if len(sets) > 1:
            reference = max(sets, key=len)
            diffs = []
            for pid, _m, s, first in entries:
                missing = reference - s
                if first:
                    missing -= mg_ids  # join-window gap, see docstring
                extra = s - reference
                if missing or extra:
                    diffs.append(f"member {pid} "
                                 f"missing={sorted(missing)[:5]} "
                                 f"extra={sorted(extra)[:5]}")
            if diffs:
                violations.append(Violation(
                    "virtual-synchrony",
                    f"view {key} -> ts {succ_ts}: delivery sets diverge "
                    f"({'; '.join(diffs)})",
                    tuple(p for p, _m, _s, _f in entries),
                    key=("virtual-synchrony",),
                ))
    return violations


# ----------------------------------------------------------------------
# convergence among final members
# ----------------------------------------------------------------------
def check_convergence(listeners: Dict[int, RecordingListener], group: int,
                      pids: Iterable[int]) -> List[Violation]:
    """Every final member delivered every message another final member
    delivered after its own first delivery (joiners hold a suffix).

    Messages originated by processors *outside* the final membership are
    exempt: a member removed by a fault view has its tail grandfathered
    only at the members of that view — a joiner admitted afterwards
    legitimately never sees it (virtual synchrony covers those epochs).
    """
    pids = sorted(pids)
    final = set(pids)
    keyed: Dict[int, List[Tuple[Tuple[int, int], MessageId]]] = {}
    for pid in pids:
        keyed[pid] = [((d.timestamp, d.source), (d.source, d.sequence_number))
                      for d in listeners[pid].deliveries if d.group == group]
    violations: List[Violation] = []
    for a in pids:
        for b in pids:
            if a == b or not keyed[b]:
                continue
            low_b = keyed[b][0][0]
            have_b = {mid for _k, mid in keyed[b]}
            missing = [mid for k, mid in keyed[a]
                       if k > low_b and mid not in have_b and mid[0] in final]
            if missing:
                violations.append(Violation(
                    "convergence",
                    f"member {b} never delivered {len(missing)} message(s) "
                    f"that member {a} delivered after {b}'s first delivery, "
                    f"e.g. {missing[:5]}",
                    (a, b),
                    key=("convergence",),
                ))
    return violations


def check_membership_agreement(listeners: Dict[int, RecordingListener],
                               group: int, pids: Iterable[int],
                               expected: Optional[Tuple[int, ...]] = None,
                               ) -> List[Violation]:
    """All given members report the same current membership."""
    violations: List[Violation] = []
    views = {p: listeners[p].current_membership(group) for p in sorted(pids)}
    reference = expected
    for pid, membership in views.items():
        if reference is None:
            reference = membership
        if membership != reference:
            violations.append(Violation(
                "membership-agreement",
                f"member {pid} reports membership {membership}, "
                f"expected {reference}",
                (pid,),
                key=("membership-agreement",),
            ))
    return violations


# ----------------------------------------------------------------------
# live-state oracles (fed from the stacks, not the listeners)
# ----------------------------------------------------------------------
def check_buffer_gc_safety(stacks: Dict[int, object], group: int,
                           crashed: Iterable[int] = ()) -> List[Violation]:
    """Nothing was reclaimed below a peer's ack: any message an accepted
    member still lacks is retained by at least one live member."""
    crashed = set(crashed)
    groups = {}
    for pid, st in stacks.items():
        if pid in crashed:
            continue
        g = st.group(group)
        if g is not None and not g.joining:
            groups[pid] = g
    if not groups:
        return []
    # only members every live stack currently counts in the membership —
    # an evicted-but-unaware processor has no retention claim on the rest
    accepted = [p for p in groups
                if all(p in g.membership for g in groups.values())]
    accepted_set = set(accepted)
    violations: List[Violation] = []
    for pid in accepted:
        for src, state in groups[pid].rmp.sources().items():
            if src not in accepted_set:
                # messages from a crashed or evicted source carry no
                # retention promise: the source may have advertised a seq
                # nobody ever received, and virtual synchrony (not NACK
                # recovery) governs its synchronized prefix
                continue
            for seq in range(state.next_seq, state.highest_heard + 1):
                if seq in state.pending:
                    continue
                if not any((src, seq) in g.buffer for g in groups.values()):
                    violations.append(Violation(
                        "buffer-gc-safety",
                        f"member {pid} still needs ({src}, {seq}) but no "
                        f"live member retains it (reclaimed below a "
                        f"peer's ack)",
                        (pid,),
                        key=("buffer-gc-safety", src),
                    ))
    return violations


def check_quiescence(stacks: Dict[int, object], group: int,
                     pids: Iterable[int]) -> List[Violation]:
    """After cool-down: no RMP gaps, drained ordering/safe queues."""
    members = set(pids)
    violations: List[Violation] = []
    for pid in sorted(pids):
        st = stacks.get(pid)
        g = st.group(group) if st is not None else None
        if g is None:
            violations.append(Violation(
                "quiescence", f"final member {pid} no longer has the group",
                (pid,),
                key=("quiescence", "group-gone"),
            ))
            continue
        # only gaps in *member* sources matter: an evicted processor that
        # resumed sending leaves an unfillable (and irrelevant) gap
        gappy = [src for src, state in g.rmp.sources().items()
                 if src in members and state.highest_heard > state.contiguous_top]
        if gappy:
            violations.append(Violation(
                "quiescence",
                f"member {pid} has unrecovered sequence gaps from "
                f"source(s) {sorted(gappy)}",
                (pid,),
                key=("quiescence", "gaps"),
            ))
        if g.romp.queued():
            violations.append(Violation(
                "quiescence",
                f"member {pid} has {g.romp.queued()} messages stuck in the "
                f"ordering queue",
                (pid,),
                key=("quiescence", "ordering-queue"),
            ))
        if g.romp.unsafe_held():
            violations.append(Violation(
                "quiescence",
                f"member {pid} holds {g.romp.unsafe_held()} undelivered "
                f"safe-mode messages",
                (pid,),
                key=("quiescence", "safe-hold"),
            ))
    return violations


# ----------------------------------------------------------------------
# cross-group acyclicity (multi-group atomic multicast)
# ----------------------------------------------------------------------
def check_multigroup_acyclicity(
    listeners: Dict[int, RecordingListener],
    groups: Dict[int, Iterable[int]],
) -> List[Violation]:
    """The union of per-group delivery orders of totally ordered
    multi-group multicasts contains no cycle.

    Within one group every member delivers the same sequence (the
    total-order oracle checks that), but two multicasts addressed to
    overlapping group sets could in principle be delivered as A<B in one
    group and B<A in another — the classic non-atomic interleaving the
    timestamp-commit protocol exists to rule out.  We build the directed
    graph whose nodes are multicast ids ``(origin, mg_seq)`` and whose
    edges are the consecutive-delivery pairs observed at every
    ``(member, group)`` projection restricted to conflict-class-0
    (sentinel-CID) deliveries, then look for a cycle.  Commutative
    (non-zero conflict class) deliveries are excluded: they carry no
    cross-group ordering promise.  The returned violation carries the
    offending cycle in its ``cycle`` field, with edge provenance in the
    detail text.

    ``groups`` maps each group id to the member pids whose histories
    should be projected (typically the group's final membership).
    """
    edges: Dict[int, set] = {}
    provenance: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for gid in sorted(groups):
        for pid in sorted(groups[gid]):
            lst = listeners.get(pid)
            if lst is None:
                continue
            seq = [d.request_num for d in lst.deliveries
                   if d.group == gid and d.connection_id is not None
                   and is_total_multigroup_delivery(d.connection_id)]
            for a, b in zip(seq, seq[1:]):
                edges.setdefault(a, set())
                edges.setdefault(b, set())
                if b not in edges[a]:
                    edges[a].add(b)
                    provenance.setdefault((a, b), (pid, gid))
    # iterative coloured DFS; report the first cycle found
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in edges}
    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        color[root] = GRAY
        path = [root]
        stack = [(root, iter(sorted(edges[root])))]
        while stack:
            node, it = stack[-1]
            nxt = next(it, None)
            if nxt is None:
                stack.pop()
                path.pop()
                color[node] = BLACK
                continue
            if color[nxt] == GRAY:
                walk = path[path.index(nxt):] + [nxt]
                cycle = tuple((r >> 32, r & 0xFFFFFFFF) for r in walk)
                hops = []
                pids = set()
                for a, b in zip(walk, walk[1:]):
                    wpid, wgid = provenance[(a, b)]
                    pids.add(wpid)
                    hops.append(
                        f"({a >> 32},{a & 0xFFFFFFFF})<"
                        f"({b >> 32},{b & 0xFFFFFFFF}) at member {wpid} "
                        f"in group {wgid}"
                    )
                return [Violation(
                    "multigroup-acyclicity",
                    "cross-group delivery orders form a cycle: "
                    + "; ".join(hops),
                    tuple(sorted(pids)),
                    key=("multigroup-acyclicity",),
                    cycle=cycle,
                )]
            if color[nxt] == WHITE:
                color[nxt] = GRAY
                path.append(nxt)
                stack.append((nxt, iter(sorted(edges[nxt]))))
    return []


def run_history_oracles(listeners: Dict[int, RecordingListener],
                        group: int,
                        final_members: Optional[Sequence[int]] = None,
                        ) -> List[Violation]:
    """The full post-run battery over recorded histories."""
    violations = []
    violations += check_total_order(listeners, group)
    violations += check_fifo(listeners, group)
    violations += check_no_duplicates(listeners, group)
    violations += check_virtual_synchrony(listeners, group)
    if final_members:
        violations += check_convergence(listeners, group, final_members)
        violations += check_membership_agreement(
            listeners, group, final_members,
            expected=tuple(sorted(final_members)),
        )
    return violations
