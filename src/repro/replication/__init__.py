"""Fault tolerance infrastructure above FTMP.

Object groups, active replication with duplicate suppression, replica
management with consistent-cut state transfer, message logging/replay,
and fault-injection scenario helpers.
"""

from .chaos import SCENARIOS, ChaosEvent, ChaosPlan
from .checkpointing import Checkpoint, CheckpointingLog, CheckpointStore
from .failover import LogReplayer, ReplayReport
from .fault_injection import FaultInjector, Injection
from .llft import (
    ORDER_INFO_CID,
    LeaderOrdering,
    LLFTStats,
    current_leader,
    llft_config,
)
from .oracles import (
    Violation,
    check_buffer_gc_safety,
    check_convergence,
    check_fifo,
    check_membership_agreement,
    check_no_duplicates,
    check_quiescence,
    check_total_order,
    check_virtual_synchrony,
    run_history_oracles,
)
from .message_log import LoggedRequest, MessageLog
from .object_group import ObjectGroupRegistry, ObjectGroupSpec
from .passive import PassiveReplicaController, STATE_UPDATE_OP
from .replica_manager import ProcessorHost, ReplicaManager

__all__ = [
    "ChaosEvent",
    "ChaosPlan",
    "SCENARIOS",
    "Violation",
    "check_total_order",
    "check_fifo",
    "check_no_duplicates",
    "check_virtual_synchrony",
    "check_convergence",
    "check_membership_agreement",
    "check_buffer_gc_safety",
    "check_quiescence",
    "run_history_oracles",
    "ObjectGroupSpec",
    "ObjectGroupRegistry",
    "ReplicaManager",
    "ProcessorHost",
    "MessageLog",
    "LoggedRequest",
    "FaultInjector",
    "Injection",
    "LogReplayer",
    "ReplayReport",
    "PassiveReplicaController",
    "llft_config",
    "current_leader",
    "ORDER_INFO_CID",
    "LeaderOrdering",
    "LLFTStats",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointingLog",
    "STATE_UPDATE_OP",
]
