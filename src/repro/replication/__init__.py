"""Fault tolerance infrastructure above FTMP.

Object groups, active replication with duplicate suppression, replica
management with consistent-cut state transfer, message logging/replay,
and fault-injection scenario helpers.
"""

from .checkpointing import Checkpoint, CheckpointingLog, CheckpointStore
from .failover import LogReplayer, ReplayReport
from .fault_injection import FaultInjector, Injection
from .message_log import LoggedRequest, MessageLog
from .object_group import ObjectGroupRegistry, ObjectGroupSpec
from .passive import PassiveReplicaController, STATE_UPDATE_OP
from .replica_manager import ProcessorHost, ReplicaManager

__all__ = [
    "ObjectGroupSpec",
    "ObjectGroupRegistry",
    "ReplicaManager",
    "ProcessorHost",
    "MessageLog",
    "LoggedRequest",
    "FaultInjector",
    "Injection",
    "LogReplayer",
    "ReplayReport",
    "PassiveReplicaController",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointingLog",
    "STATE_UPDATE_OP",
]
