"""Log-based replay and failover (paper §4).

"[Connection id and request number] are also used to match a request with
its corresponding reply which is necessary, for example, when replaying
messages from a log."  Two recovery patterns build on the
:class:`~repro.replication.message_log.MessageLog`:

* **Client failover** — a surviving or recovering client replica re-issues
  the *unanswered* requests from the log with their original request
  numbers.  Servers that already executed them answer from their reply
  cache (no re-execution); servers that never saw them execute normally.
* **Server rebuild** — a replacement server replica (when the whole server
  group was lost) is reconstructed by replaying the *entire* request log
  into a fresh servant in the original total order; replies to requests
  the clients already saw are suppressed client-side as duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import ConnectionId, FlowControlSaturated
from ..orb.futures import InvocationFuture
from .message_log import LoggedRequest, MessageLog
from .replica_manager import ProcessorHost

__all__ = ["LogReplayer", "ReplayReport"]


@dataclass
class ReplayReport:
    """What a replay pass did.

    ``replayed`` counts every request accepted by the stack — sent to the
    wire immediately *or* queued behind flow-control backpressure
    (``queued`` tells those apart).  ``rejected`` is non-zero when the
    stack's admission control (``flow_queue_limit``) refused a send: the
    replay stops cleanly at that entry, nothing after it was issued, and
    no future was left registered for the refused request.
    """

    replayed: int
    skipped_answered: int
    futures: List[InvocationFuture]
    queued: int = 0
    rejected: int = 0

    @property
    def saturated(self) -> bool:
        """True when the replay was cut short by flow-control saturation."""
        return self.rejected > 0


class LogReplayer:
    """Re-issues logged requests over an established connection."""

    def __init__(self, host: ProcessorHost, log: MessageLog):
        self.host = host
        self.log = log

    def replay(
        self,
        cid: ConnectionId,
        include_answered: bool = False,
        await_replies: bool = True,
    ) -> ReplayReport:
        """Re-send logged requests on ``cid``.

        ``include_answered=False`` (client failover): only requests with
        no logged reply are re-issued.  ``include_answered=True`` (server
        rebuild): the full request history is replayed in order.

        When ``await_replies`` is set, a future is registered per replayed
        request so the caller can collect the (possibly late) replies.
        """
        binding = self.host.stack.connection_binding(cid)
        if binding is None or not binding.established:
            raise RuntimeError(f"connection {cid} is not established on this host")
        replayed = 0
        skipped = 0
        queued = 0
        rejected = 0
        futures: List[InvocationFuture] = []
        for entry in self.log.entries():
            if entry.connection_id != cid or not entry.request_payload:
                continue
            if entry.answered and not include_answered:
                skipped += 1
                continue
            fut: Optional[InvocationFuture] = None
            created = False
            if await_replies and self._response_expected(entry):
                key = (cid, entry.request_num)
                # an invocation may still be awaiting this very request:
                # keep its future rather than replacing it
                fut = self.host.adapter._pending.get(key)
                if fut is None:
                    fut = InvocationFuture()
                    self.host.adapter._pending[key] = fut
                    created = True
            try:
                sent = self.host.stack.send_on_connection(
                    cid, entry.request_payload, entry.request_num
                )
            except FlowControlSaturated:
                # Admission control refused the send: stop here.  Entries
                # before this one are on the wire (or queued) with futures
                # intact; this entry was never issued, so a future we just
                # registered for it would dangle forever — unregister it.
                # A pre-existing future (a live invocation) stays.
                if created:
                    self.host.adapter._pending.pop((cid, entry.request_num), None)
                rejected += 1
                break
            if fut is not None:
                futures.append(fut)
            if not sent:
                queued += 1  # accepted, held back by backpressure/barrier
            replayed += 1
        return ReplayReport(replayed=replayed, skipped_answered=skipped,
                            futures=futures, queued=queued, rejected=rejected)

    @staticmethod
    def _response_expected(entry: LoggedRequest) -> bool:
        """Peek the GIOP Request's response_expected flag from the log."""
        from ..giop import MarshalError, RequestMessage, decode_giop

        try:
            msg = decode_giop(entry.request_payload)
        except MarshalError:
            return False
        return isinstance(msg, RequestMessage) and msg.response_expected
